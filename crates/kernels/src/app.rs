//! Core application abstractions (§3.1 of the paper): a [`Stage`] is a unit
//! of computation implemented by a compute kernel; an [`Application`] is a
//! sequence of stages processing a streaming input; an [`AppModel`] is the
//! non-executable description (names + work profiles) that the profiler,
//! optimizer, and simulator consume; a [`TaskGraph`] linearizes acyclic
//! stage dependencies into the sequence BetterTogether schedules.

use std::fmt;
use std::sync::Arc;

use bt_soc::WorkProfile;
use serde::{Deserialize, Serialize};

use crate::ParCtx;

/// A kernel callable on a mutable task payload with a parallelism context.
pub type KernelFn<P> = Arc<dyn Fn(&mut P, &ParCtx) + Send + Sync>;

/// A source loading the `seq`-th streaming input into a recycled payload.
pub type SourceFn<P> = Arc<dyn Fn(&mut P, u64) + Send + Sync>;

/// A factory allocating fresh task payloads (the TaskObject contents).
pub type FactoryFn<P> = Arc<dyn Fn() -> P + Send + Sync>;

/// One pipeline stage: a named compute kernel plus its resource profile.
pub struct Stage<P> {
    name: String,
    work: WorkProfile,
    kernel: KernelFn<P>,
}

impl<P> Stage<P> {
    /// Creates a stage.
    pub fn new(name: impl Into<String>, work: WorkProfile, kernel: KernelFn<P>) -> Stage<P> {
        Stage {
            name: name.into(),
            work,
            kernel,
        }
    }

    /// The stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stage's resource-demand profile.
    pub fn work(&self) -> &WorkProfile {
        &self.work
    }

    /// Executes the stage's kernel on a payload.
    pub fn run(&self, payload: &mut P, ctx: &ParCtx) {
        (self.kernel)(payload, ctx);
    }

    /// The kernel function (shared with dispatcher threads).
    pub fn kernel(&self) -> KernelFn<P> {
        Arc::clone(&self.kernel)
    }
}

impl<P> Clone for Stage<P> {
    fn clone(&self) -> Stage<P> {
        Stage {
            name: self.name.clone(),
            work: self.work.clone(),
            kernel: Arc::clone(&self.kernel),
        }
    }
}

impl<P> fmt::Debug for Stage<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stage").field("name", &self.name).finish()
    }
}

/// A streaming application: an ordered sequence of stages plus the machinery
/// to allocate and refill task payloads.
pub struct Application<P> {
    name: String,
    stages: Vec<Stage<P>>,
    factory: FactoryFn<P>,
    source: SourceFn<P>,
}

impl<P> Application<P> {
    /// Creates an application.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(
        name: impl Into<String>,
        stages: Vec<Stage<P>>,
        factory: FactoryFn<P>,
        source: SourceFn<P>,
    ) -> Application<P> {
        assert!(
            !stages.is_empty(),
            "an application needs at least one stage"
        );
        Application {
            name: name.into(),
            stages,
            factory,
            source,
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stages in pipeline order.
    pub fn stages(&self) -> &[Stage<P>] {
        &self.stages
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Allocates a fresh task payload.
    pub fn new_payload(&self) -> P {
        (self.factory)()
    }

    /// Loads streaming input `seq` into a payload.
    pub fn load_input(&self, payload: &mut P, seq: u64) {
        (self.source)(payload, seq)
    }

    /// The payload factory (shared with the pipeline runtime).
    pub fn factory(&self) -> FactoryFn<P> {
        Arc::clone(&self.factory)
    }

    /// The input source (shared with the pipeline runtime).
    pub fn source(&self) -> SourceFn<P> {
        Arc::clone(&self.source)
    }

    /// Runs all stages sequentially on one input — the reference execution
    /// used by correctness tests and the paper's single-PU baselines.
    pub fn run_sequential(&self, payload: &mut P, seq: u64, ctx: &ParCtx) {
        self.load_input(payload, seq);
        for stage in &self.stages {
            stage.run(payload, ctx);
        }
    }

    /// Builds an application from stages given in *arbitrary* order plus
    /// their dependency graph, linearizing by topological sort (§3.1 of
    /// the paper: acyclic task graphs are supported by linearization
    /// without modifying the core abstraction).
    ///
    /// `graph` indexes into `stages` as provided; the resulting
    /// application's stage order is the deterministic topological order.
    ///
    /// # Errors
    ///
    /// Returns [`CyclicGraphError`] if the dependencies contain a cycle.
    ///
    /// # Panics
    ///
    /// Panics if `graph.len() != stages.len()` or `stages` is empty.
    pub fn from_task_graph(
        name: impl Into<String>,
        stages: Vec<Stage<P>>,
        graph: &TaskGraph,
        factory: FactoryFn<P>,
        source: SourceFn<P>,
    ) -> Result<Application<P>, CyclicGraphError> {
        assert_eq!(graph.len(), stages.len(), "graph/stage count mismatch");
        let order = graph.linearize()?;
        let mut slots: Vec<Option<Stage<P>>> = stages.into_iter().map(Some).collect();
        let ordered = order
            .into_iter()
            .map(|i| slots[i].take().expect("each stage placed once"))
            .collect();
        Ok(Application::new(name, ordered, factory, source))
    }

    /// Extracts the non-executable model (names + work profiles) consumed
    /// by the profiler, optimizer, and simulator.
    pub fn model(&self) -> AppModel {
        AppModel {
            name: self.name.clone(),
            stages: self
                .stages
                .iter()
                .map(|s| StageModel {
                    name: s.name.clone(),
                    work: s.work.clone(),
                })
                .collect(),
        }
    }
}

impl<P> fmt::Debug for Application<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Application")
            .field("name", &self.name)
            .field("stages", &self.stages.len())
            .finish()
    }
}

/// Non-executable description of a stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageModel {
    /// Stage name.
    pub name: String,
    /// Resource-demand profile.
    pub work: WorkProfile,
}

/// Non-executable description of an application — everything the profiler
/// and optimizer need, with no payload type attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// Application name.
    pub name: String,
    /// Per-stage models in pipeline order.
    pub stages: Vec<StageModel>,
}

impl AppModel {
    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The work profiles in pipeline order.
    pub fn works(&self) -> Vec<WorkProfile> {
        self.stages.iter().map(|s| s.work.clone()).collect()
    }
}

/// Error returned when a task graph cannot be linearized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclicGraphError;

impl fmt::Display for CyclicGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("task graph contains a cycle")
    }
}

impl std::error::Error for CyclicGraphError {}

/// An acyclic stage-dependency graph, linearized by topological sort so
/// applications with non-linear dependencies (e.g. the octree's final stage
/// depending on stages 3, 4, and 6) still fit the sequential pipeline
/// abstraction (§3.1).
#[derive(Debug, Clone)]
pub struct TaskGraph {
    n: usize,
    deps: Vec<(usize, usize)>,
}

impl TaskGraph {
    /// A graph over `n` stages with no dependencies yet.
    pub fn new(n: usize) -> TaskGraph {
        TaskGraph {
            n,
            deps: Vec::new(),
        }
    }

    /// Declares that `to` consumes an output of `from` (so `from` must run
    /// earlier).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_dep(&mut self, from: usize, to: usize) -> &mut TaskGraph {
        assert!(from < self.n && to < self.n, "stage index out of range");
        self.deps.push((from, to));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no stages.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Produces a deterministic topological order (Kahn's algorithm,
    /// lowest-index-first tie-breaking).
    ///
    /// # Errors
    ///
    /// Returns [`CyclicGraphError`] if the dependencies contain a cycle.
    pub fn linearize(&self) -> Result<Vec<usize>, CyclicGraphError> {
        let mut indegree = vec![0usize; self.n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(from, to) in &self.deps {
            indegree[to] += 1;
            out_edges[from].push(to);
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..self.n)
            .filter(|&i| indegree[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            order.push(i);
            for &j in &out_edges[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(std::cmp::Reverse(j));
                }
            }
        }
        if order.len() == self.n {
            Ok(order)
        } else {
            Err(CyclicGraphError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_stage(name: &str) -> Stage<u32> {
        Stage::new(
            name,
            WorkProfile::new(1.0, 1.0),
            Arc::new(|p: &mut u32, _ctx: &ParCtx| *p += 1),
        )
    }

    fn counter_app() -> Application<u32> {
        Application::new(
            "counter",
            vec![trivial_stage("a"), trivial_stage("b"), trivial_stage("c")],
            Arc::new(|| 0u32),
            Arc::new(|p: &mut u32, seq| *p = seq as u32 * 100),
        )
    }

    #[test]
    fn sequential_execution_applies_all_stages() {
        let app = counter_app();
        let mut payload = app.new_payload();
        app.run_sequential(&mut payload, 2, &ParCtx::serial());
        assert_eq!(payload, 203);
    }

    #[test]
    fn model_extraction() {
        let app = counter_app();
        let model = app.model();
        assert_eq!(model.name, "counter");
        assert_eq!(model.stage_count(), 3);
        assert_eq!(model.stages[1].name, "b");
        assert_eq!(model.works().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_app_panics() {
        let _: Application<u32> = Application::new(
            "empty",
            vec![],
            Arc::new(|| 0u32),
            Arc::new(|_: &mut u32, _| {}),
        );
    }

    #[test]
    fn linear_graph_keeps_order() {
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 1).add_dep(1, 2).add_dep(2, 3);
        assert_eq!(g.linearize().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn octree_style_dag_linearizes() {
        // 7 stages; stage 6 (build octree) depends on 2 (dedup), 3 (radix
        // tree), and 5 (prefix sum), like the paper's example.
        let mut g = TaskGraph::new(7);
        g.add_dep(0, 1)
            .add_dep(1, 2)
            .add_dep(2, 3)
            .add_dep(3, 4)
            .add_dep(4, 5)
            .add_dep(2, 6)
            .add_dep(3, 6)
            .add_dep(5, 6);
        let order = g.linearize().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn independent_stages_sorted_by_index() {
        let g = TaskGraph::new(3);
        assert_eq!(g.linearize().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn cycle_detected() {
        let mut g = TaskGraph::new(2);
        g.add_dep(0, 1).add_dep(1, 0);
        assert_eq!(g.linearize(), Err(CyclicGraphError));
    }

    #[test]
    fn from_task_graph_linearizes_out_of_order_stages() {
        // Stages provided shuffled; deps force the canonical order, and the
        // payload trace proves execution happens in dependency order.
        let stage = |tag: u32| -> Stage<Vec<u32>> {
            Stage::new(
                format!("s{tag}"),
                WorkProfile::new(1.0, 1.0),
                Arc::new(move |p: &mut Vec<u32>, _ctx: &ParCtx| p.push(tag)),
            )
        };
        // Provided order: [2, 0, 1]; dependencies 0 → 1 → 2 (by provided
        // index: stages[1]=s0 before stages[2]=s1 before stages[0]=s2).
        let mut g = TaskGraph::new(3);
        g.add_dep(1, 2).add_dep(2, 0);
        let app = Application::from_task_graph(
            "dag",
            vec![stage(2), stage(0), stage(1)],
            &g,
            Arc::new(Vec::new),
            Arc::new(|p: &mut Vec<u32>, _| p.clear()),
        )
        .expect("acyclic");
        let mut payload = app.new_payload();
        app.run_sequential(&mut payload, 0, &ParCtx::serial());
        assert_eq!(payload, vec![0, 1, 2]);
        assert_eq!(app.stages()[0].name(), "s0");
    }

    #[test]
    fn from_task_graph_rejects_cycles() {
        let stage = |tag: u32| -> Stage<u32> {
            Stage::new(
                format!("s{tag}"),
                WorkProfile::new(1.0, 1.0),
                Arc::new(move |_: &mut u32, _: &ParCtx| {}),
            )
        };
        let mut g = TaskGraph::new(2);
        g.add_dep(0, 1).add_dep(1, 0);
        let r = Application::from_task_graph(
            "cyclic",
            vec![stage(0), stage(1)],
            &g,
            Arc::new(|| 0u32),
            Arc::new(|_: &mut u32, _| {}),
        );
        assert!(r.is_err());
    }

    #[test]
    fn stage_clone_shares_kernel() {
        let s = trivial_stage("x");
        let s2 = s.clone();
        let mut p = 0u32;
        s2.run(&mut p, &ParCtx::serial());
        assert_eq!(p, 1);
        assert_eq!(s2.name(), "x");
    }
}
