//! Core application abstractions (§3.1 of the paper): a [`Stage`] is a unit
//! of computation implemented by a compute kernel; an [`Application`] is a
//! set of stages with an acyclic dependency [`TaskGraph`] processing a
//! streaming input; an [`AppModel`] is the non-executable description
//! (names + work profiles + graph) that the profiler, optimizer, and
//! simulator consume.
//!
//! The task graph — not its linearization — is the canonical structure:
//! every application carries one (a chain by default), stages are stored in
//! deterministic topological order, and [`TaskGraph::linearize`] survives as
//! the degenerate-chain fast path plus the canonical ordering used when an
//! app is built from out-of-order stages.

use std::fmt;
use std::sync::Arc;

use bt_soc::WorkProfile;
use serde::{Deserialize, Serialize};

use crate::ParCtx;

/// A kernel callable on a mutable task payload with a parallelism context.
pub type KernelFn<P> = Arc<dyn Fn(&mut P, &ParCtx) + Send + Sync>;

/// A source loading the `seq`-th streaming input into a recycled payload.
pub type SourceFn<P> = Arc<dyn Fn(&mut P, u64) + Send + Sync>;

/// A factory allocating fresh task payloads (the TaskObject contents).
pub type FactoryFn<P> = Arc<dyn Fn() -> P + Send + Sync>;

/// One pipeline stage: a named compute kernel plus its resource profile.
pub struct Stage<P> {
    name: String,
    work: WorkProfile,
    kernel: KernelFn<P>,
}

impl<P> Stage<P> {
    /// Creates a stage.
    pub fn new(name: impl Into<String>, work: WorkProfile, kernel: KernelFn<P>) -> Stage<P> {
        Stage {
            name: name.into(),
            work,
            kernel,
        }
    }

    /// The stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stage's resource-demand profile.
    pub fn work(&self) -> &WorkProfile {
        &self.work
    }

    /// Executes the stage's kernel on a payload.
    pub fn run(&self, payload: &mut P, ctx: &ParCtx) {
        (self.kernel)(payload, ctx);
    }

    /// The kernel function (shared with dispatcher threads).
    pub fn kernel(&self) -> KernelFn<P> {
        Arc::clone(&self.kernel)
    }
}

impl<P> Clone for Stage<P> {
    fn clone(&self) -> Stage<P> {
        Stage {
            name: self.name.clone(),
            work: self.work.clone(),
            kernel: Arc::clone(&self.kernel),
        }
    }
}

impl<P> fmt::Debug for Stage<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stage").field("name", &self.name).finish()
    }
}

/// A streaming application: stages in topological order, their dependency
/// graph, plus the machinery to allocate and refill task payloads.
pub struct Application<P> {
    name: String,
    stages: Vec<Stage<P>>,
    graph: TaskGraph,
    factory: FactoryFn<P>,
    source: SourceFn<P>,
}

impl<P> Application<P> {
    /// Creates a linear-chain application (stage `i` feeds stage `i + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(
        name: impl Into<String>,
        stages: Vec<Stage<P>>,
        factory: FactoryFn<P>,
        source: SourceFn<P>,
    ) -> Application<P> {
        assert!(
            !stages.is_empty(),
            "an application needs at least one stage"
        );
        let graph = TaskGraph::chain(stages.len());
        Application {
            name: name.into(),
            stages,
            graph,
            factory,
            source,
        }
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stages in pipeline order.
    pub fn stages(&self) -> &[Stage<P>] {
        &self.stages
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The stage-dependency graph, indexed in the stored (topological)
    /// stage order. A chain for applications built with
    /// [`Application::new`].
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Allocates a fresh task payload.
    pub fn new_payload(&self) -> P {
        (self.factory)()
    }

    /// Loads streaming input `seq` into a payload.
    pub fn load_input(&self, payload: &mut P, seq: u64) {
        (self.source)(payload, seq)
    }

    /// The payload factory (shared with the pipeline runtime).
    pub fn factory(&self) -> FactoryFn<P> {
        Arc::clone(&self.factory)
    }

    /// The input source (shared with the pipeline runtime).
    pub fn source(&self) -> SourceFn<P> {
        Arc::clone(&self.source)
    }

    /// Runs all stages sequentially on one input — the reference execution
    /// used by correctness tests and the paper's single-PU baselines.
    pub fn run_sequential(&self, payload: &mut P, seq: u64, ctx: &ParCtx) {
        self.load_input(payload, seq);
        for stage in &self.stages {
            stage.run(payload, ctx);
        }
    }

    /// Builds an application from stages given in *arbitrary* order plus
    /// their dependency graph. Stages are stored in the deterministic
    /// topological order and the graph is kept (re-indexed to that order)
    /// as the application's canonical structure, so fork/join shapes
    /// survive into the model instead of being flattened away.
    ///
    /// `graph` indexes into `stages` as provided; the resulting
    /// application's stage order is the deterministic topological order.
    ///
    /// # Errors
    ///
    /// Returns [`CyclicGraphError`] (reporting the offending cycle) if the
    /// dependencies contain a cycle.
    ///
    /// # Panics
    ///
    /// Panics if `graph.len() != stages.len()` or `stages` is empty.
    pub fn from_task_graph(
        name: impl Into<String>,
        stages: Vec<Stage<P>>,
        graph: &TaskGraph,
        factory: FactoryFn<P>,
        source: SourceFn<P>,
    ) -> Result<Application<P>, CyclicGraphError> {
        assert_eq!(graph.len(), stages.len(), "graph/stage count mismatch");
        assert!(
            !stages.is_empty(),
            "an application needs at least one stage"
        );
        let order = graph.linearize()?;
        let relabeled = graph.relabeled(&order);
        let mut slots: Vec<Option<Stage<P>>> = stages.into_iter().map(Some).collect();
        let ordered = order
            .into_iter()
            .map(|i| slots[i].take().expect("each stage placed once"))
            .collect();
        Ok(Application {
            name: name.into(),
            stages: ordered,
            graph: relabeled,
            factory,
            source,
        })
    }

    /// Extracts the non-executable model (names + work profiles + graph)
    /// consumed by the profiler, optimizer, and simulator.
    ///
    /// Chain-shaped graphs are stored as `None` so models of linear apps
    /// serialize exactly as before the DAG generalization.
    pub fn model(&self) -> AppModel {
        AppModel {
            name: self.name.clone(),
            stages: self
                .stages
                .iter()
                .map(|s| StageModel {
                    name: s.name.clone(),
                    work: s.work.clone(),
                })
                .collect(),
            graph: if self.graph.is_chain() {
                None
            } else {
                Some(self.graph.clone())
            },
        }
    }
}

impl<P> fmt::Debug for Application<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Application")
            .field("name", &self.name)
            .field("stages", &self.stages.len())
            .finish()
    }
}

/// Non-executable description of a stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageModel {
    /// Stage name.
    pub name: String,
    /// Resource-demand profile.
    pub work: WorkProfile,
}

/// Non-executable description of an application — everything the profiler
/// and optimizer need, with no payload type attached.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// Application name.
    pub name: String,
    /// Per-stage models in (topological) pipeline order.
    pub stages: Vec<StageModel>,
    /// The stage-dependency graph when it is not a plain chain. `None`
    /// (the serde default) means "linear chain over the stages", which
    /// keeps pre-DAG models deserializable and chain models byte-stable.
    #[serde(default)]
    pub graph: Option<TaskGraph>,
}

impl AppModel {
    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The work profiles in pipeline order.
    pub fn works(&self) -> Vec<WorkProfile> {
        self.stages.iter().map(|s| s.work.clone()).collect()
    }

    /// The stage-dependency graph (materializing the implicit chain when
    /// none is stored).
    pub fn task_graph(&self) -> TaskGraph {
        match &self.graph {
            Some(g) => g.clone(),
            None => TaskGraph::chain(self.stages.len()),
        }
    }

    /// Whether the app is chain-shaped (every topological neighbour pair
    /// is dependency-ordered), i.e. schedulable by the linear-chain fast
    /// paths.
    pub fn is_chain(&self) -> bool {
        match &self.graph {
            Some(g) => g.is_chain(),
            None => true,
        }
    }
}

pub use bt_rt::{CyclicGraphError, TaskGraph};

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_stage(name: &str) -> Stage<u32> {
        Stage::new(
            name,
            WorkProfile::new(1.0, 1.0),
            Arc::new(|p: &mut u32, _ctx: &ParCtx| *p += 1),
        )
    }

    fn counter_app() -> Application<u32> {
        Application::new(
            "counter",
            vec![trivial_stage("a"), trivial_stage("b"), trivial_stage("c")],
            Arc::new(|| 0u32),
            Arc::new(|p: &mut u32, seq| *p = seq as u32 * 100),
        )
    }

    #[test]
    fn sequential_execution_applies_all_stages() {
        let app = counter_app();
        let mut payload = app.new_payload();
        app.run_sequential(&mut payload, 2, &ParCtx::serial());
        assert_eq!(payload, 203);
    }

    #[test]
    fn model_extraction() {
        let app = counter_app();
        let model = app.model();
        assert_eq!(model.name, "counter");
        assert_eq!(model.stage_count(), 3);
        assert_eq!(model.stages[1].name, "b");
        assert_eq!(model.works().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_app_panics() {
        let _: Application<u32> = Application::new(
            "empty",
            vec![],
            Arc::new(|| 0u32),
            Arc::new(|_: &mut u32, _| {}),
        );
    }

    #[test]
    fn from_task_graph_linearizes_out_of_order_stages() {
        // Stages provided shuffled; deps force the canonical order, and the
        // payload trace proves execution happens in dependency order.
        let stage = |tag: u32| -> Stage<Vec<u32>> {
            Stage::new(
                format!("s{tag}"),
                WorkProfile::new(1.0, 1.0),
                Arc::new(move |p: &mut Vec<u32>, _ctx: &ParCtx| p.push(tag)),
            )
        };
        // Provided order: [2, 0, 1]; dependencies 0 → 1 → 2 (by provided
        // index: stages[1]=s0 before stages[2]=s1 before stages[0]=s2).
        let mut g = TaskGraph::new(3);
        g.add_dep(1, 2).add_dep(2, 0);
        let app = Application::from_task_graph(
            "dag",
            vec![stage(2), stage(0), stage(1)],
            &g,
            Arc::new(Vec::new),
            Arc::new(|p: &mut Vec<u32>, _| p.clear()),
        )
        .expect("acyclic");
        let mut payload = app.new_payload();
        app.run_sequential(&mut payload, 0, &ParCtx::serial());
        assert_eq!(payload, vec![0, 1, 2]);
        assert_eq!(app.stages()[0].name(), "s0");
    }

    #[test]
    fn from_task_graph_rejects_cycles() {
        let stage = |tag: u32| -> Stage<u32> {
            Stage::new(
                format!("s{tag}"),
                WorkProfile::new(1.0, 1.0),
                Arc::new(move |_: &mut u32, _: &ParCtx| {}),
            )
        };
        let mut g = TaskGraph::new(2);
        g.add_dep(0, 1).add_dep(1, 0);
        let r = Application::from_task_graph(
            "cyclic",
            vec![stage(0), stage(1)],
            &g,
            Arc::new(|| 0u32),
            Arc::new(|_: &mut u32, _| {}),
        );
        assert!(r.is_err());
    }

    #[test]
    fn chain_app_model_omits_graph_and_roundtrips() {
        let app = counter_app();
        assert!(app.graph().is_chain());
        let model = app.model();
        assert!(model.graph.is_none());
        assert!(model.is_chain());
        assert_eq!(model.task_graph(), TaskGraph::chain(3));
        // Pre-DAG JSON (no "graph" key) still deserializes via the serde
        // default, and chain models serialize without the key's contents.
        let json = serde_json::to_string(&model).unwrap();
        let back: AppModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, model);
    }

    #[test]
    fn dag_app_model_carries_graph() {
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 1).add_dep(0, 2).add_dep(1, 3).add_dep(2, 3);
        let app = Application::from_task_graph(
            "diamond",
            vec![
                trivial_stage("src"),
                trivial_stage("a"),
                trivial_stage("b"),
                trivial_stage("join"),
            ],
            &g,
            Arc::new(|| 0u32),
            Arc::new(|_: &mut u32, _| {}),
        )
        .expect("acyclic");
        assert!(!app.graph().is_chain());
        let model = app.model();
        assert!(!model.is_chain());
        let stored = model.graph.as_ref().expect("non-chain graph stored");
        assert_eq!(stored.len(), 4);
        let back: AppModel = serde_json::from_str(&serde_json::to_string(&model).unwrap()).unwrap();
        assert_eq!(back, model);
        assert!(!back.is_chain());
    }

    #[test]
    fn stage_clone_shares_kernel() {
        let s = trivial_stage("x");
        let s2 = s.clone();
        let mut p = 0u32;
        s2.run(&mut p, &ParCtx::serial());
        assert_eq!(p, 1);
        assert_eq!(s2.name(), "x");
    }
}
