//! Sparse convolution: CSR weights × im2col patches.

use crate::sparse::CsrMatrix;
use crate::{ParCtx, Tensor};

/// Lowers a `[C, H, W]` input into the im2col patch matrix for a `k × k`
/// same-padding convolution: row-major `[C·k·k, H·W]`, where entry
/// `(c·k·k + ky·k + kx, y·W + x)` is the input pixel under kernel tap
/// `(ky, kx)` at output `(y, x)` (zero outside the image).
pub fn im2col(input: &Tensor, k: usize, pad: usize) -> Vec<f32> {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    let mut patches = vec![0.0f32; c * k * k * h * w];
    let data = input.as_slice();
    let cols = h * w;
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let out_row = &mut patches[row * cols..(row + 1) * cols];
                for y in 0..h {
                    let iy = y as i64 + ky as i64 - pad as i64;
                    if iy < 0 || iy >= h as i64 {
                        continue;
                    }
                    let in_base = (ci * h + iy as usize) * w;
                    for x in 0..w {
                        let ix = x as i64 + kx as i64 - pad as i64;
                        if ix >= 0 && ix < w as i64 {
                            out_row[y * w + x] = data[in_base + ix as usize];
                        }
                    }
                }
            }
        }
    }
    patches
}

/// Computes `out = relu(csr_weights × im2col(input) + bias)` — the sparse
/// counterpart of [`crate::dense::conv2d`] with CSR weights
/// `[C_out, C_in·k·k]`.
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn sparse_conv2d(
    ctx: &ParCtx,
    weights: &CsrMatrix,
    bias: &[f32],
    input: &Tensor,
    k: usize,
    pad: usize,
    out: &mut Tensor,
) {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    assert_eq!(weights.cols(), c * k * k, "weight columns mismatch");
    assert_eq!(bias.len(), weights.rows(), "bias mismatch");
    assert_eq!(
        out.shape(),
        &[weights.rows(), h, w],
        "output shape mismatch"
    );

    let patches = im2col(input, k, pad);
    weights.spmm(ctx, &patches, h * w, out.as_mut_slice());
    let plane = h * w;
    let out_data = out.as_mut_slice();
    for (i, v) in out_data.iter_mut().enumerate() {
        *v = (*v + bias[i / plane]).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{conv2d_reference, Conv2dParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn im2col_identity_kernel() {
        // k=1, pad=0: patches are just the flattened input.
        let input = Tensor::from_vec(&[2, 2, 2], vec![1., 2., 3., 4., 5., 6., 7., 8.]);
        let patches = im2col(&input, 1, 0);
        assert_eq!(patches, input.as_slice());
    }

    #[test]
    fn sparse_conv_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let params = Conv2dParams {
            in_channels: 3,
            out_channels: 5,
            kernel: 3,
            padding: 1,
        };
        let mut input = Tensor::zeros(&[3, 8, 8]);
        input
            .as_mut_slice()
            .iter_mut()
            .for_each(|x| *x = rng.gen_range(-1.0..1.0));
        // Sparse-ish weights with explicit zeros.
        let weights: Vec<f32> = (0..5 * 27)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    rng.gen_range(-0.5..0.5)
                } else {
                    0.0
                }
            })
            .collect();
        let bias: Vec<f32> = (0..5).map(|_| rng.gen_range(-0.1..0.1)).collect();
        let expect = conv2d_reference(&params, &input, &weights, &bias);

        let csr = CsrMatrix::from_dense(&weights, 5, 27, 0.0);
        let mut got = Tensor::zeros(&[5, 8, 8]);
        sparse_conv2d(&ParCtx::new(3), &csr, &bias, &input, 3, 1, &mut got);
        assert!(got.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn relu_applied() {
        let input = Tensor::from_vec(&[1, 1, 1], vec![1.0]);
        let csr = CsrMatrix::from_dense(&[-1.0], 1, 1, 0.0);
        let mut out = Tensor::zeros(&[1, 1, 1]);
        sparse_conv2d(&ParCtx::serial(), &csr, &[0.0], &input, 1, 0, &mut out);
        assert_eq!(out.as_slice(), &[0.0]);
    }
}
