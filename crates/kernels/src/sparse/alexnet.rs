//! AlexNet-sparse: the dense network with conv layers pruned to CSR,
//! processing a batch of images per task (§4.1 of the paper uses 128).

use crate::dense::{maxpool2x2, AlexNetDense, AlexNetLayout};
use crate::sparse::{prune_to_csr, sparse_conv2d, CsrMatrix};
use crate::{ParCtx, Tensor};

/// The sparse AlexNet variant.
///
/// Shares the dense network's layout and non-conv weights; conv weights are
/// magnitude-pruned to a target density and stored in CSR, which is what
/// turns the workload's dense linear algebra into irregular sparse compute.
#[derive(Debug, Clone)]
pub struct AlexNetSparse {
    dense: AlexNetDense,
    csr_weights: Vec<CsrMatrix>,
    density: f64,
    batch: usize,
}

impl AlexNetSparse {
    /// Prunes `dense` so each conv layer keeps `density` of its weights,
    /// and configures tasks of `batch` images.
    ///
    /// # Panics
    ///
    /// Panics if `density` is outside `(0, 1]` or `batch == 0`.
    pub fn prune(dense: AlexNetDense, density: f64, batch: usize) -> AlexNetSparse {
        assert!(batch > 0, "batch must be positive");
        let csr_weights = (0..4)
            .map(|li| {
                let p = &dense.layout().convs()[li].params;
                let cols = p.in_channels * p.kernel * p.kernel;
                prune_to_csr(dense.conv_weights(li), p.out_channels, cols, density)
            })
            .collect();
        AlexNetSparse {
            dense,
            csr_weights,
            density,
            batch,
        }
    }

    /// The shared network layout.
    pub fn layout(&self) -> &AlexNetLayout {
        self.dense.layout()
    }

    /// Images per task.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Target density the conv layers were pruned to.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// The CSR weights of conv layer `li`.
    pub fn csr_weights(&self, li: usize) -> &CsrMatrix {
        &self.csr_weights[li]
    }

    /// Shape of the batched activation flowing into stage `stage`:
    /// `[batch, …per-image shape]`.
    pub fn batched_input_shape(&self, stage: usize) -> Vec<usize> {
        let mut shape = vec![self.batch];
        shape.extend(self.layout().input_shape(stage));
        shape
    }

    /// Runs stage `stage` over a batched activation `[batch, …]`,
    /// parallelizing across images.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= 9` or the batch dimension mismatches.
    pub fn run_stage(&self, ctx: &ParCtx, stage: usize, input: &Tensor) -> Tensor {
        assert!(stage < AlexNetLayout::STAGES, "stage out of range");
        assert_eq!(input.shape()[0], self.batch, "batch mismatch");
        let per_in: Vec<usize> = input.shape()[1..].to_vec();
        let per_out = self.layout().output_shape(stage);
        let in_stride: usize = per_in.iter().product();
        let out_stride: usize = per_out.iter().product();

        let mut out_shape = vec![self.batch];
        out_shape.extend(per_out.iter().copied());
        let mut out = Tensor::zeros(&out_shape);

        let in_data = input.as_slice();
        let serial = ParCtx::serial();
        let run_image = |img: usize, out_chunk: &mut [f32]| {
            let img_in = Tensor::from_vec(
                &per_in,
                in_data[img * in_stride..(img + 1) * in_stride].to_vec(),
            );
            let mut img_out = Tensor::zeros(&per_out);
            match stage {
                0 | 2 | 4 | 6 => {
                    let li = stage / 2;
                    let p = &self.layout().convs()[li].params;
                    sparse_conv2d(
                        &serial,
                        &self.csr_weights[li],
                        self.dense.conv_biases(li),
                        &img_in,
                        p.kernel,
                        p.padding,
                        &mut img_out,
                    );
                }
                8 => {
                    img_out = self.dense.run_stage(&serial, 8, &img_in);
                }
                _ => maxpool2x2(&serial, &img_in, &mut img_out),
            }
            out_chunk.copy_from_slice(img_out.as_slice());
        };
        ctx.for_each_block(out.as_mut_slice(), out_stride, run_image);
        out
    }

    /// Full batched forward pass; returns `[batch, 10]` logits.
    pub fn forward(&self, ctx: &ParCtx, batch: &Tensor) -> Tensor {
        let mut act = batch.clone();
        for stage in 0..AlexNetLayout::STAGES {
            act = self.run_stage(ctx, stage, &act);
        }
        act
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cifar::CifarStream;

    fn small_sparse(batch: usize, density: f64) -> AlexNetSparse {
        let dense = AlexNetDense::random(AlexNetLayout::cifar(), 3);
        AlexNetSparse::prune(dense, density, batch)
    }

    #[test]
    fn full_density_matches_dense_network() {
        let dense = AlexNetDense::random(AlexNetLayout::cifar(), 5);
        let sparse = AlexNetSparse::prune(dense.clone(), 1.0, 2);
        let mut stream = CifarStream::new(2);
        let batch = stream.next_batch(2);
        let ctx = ParCtx::new(2);
        let sparse_logits = sparse.forward(&ctx, &batch);

        for img in 0..2 {
            let mut single = Tensor::zeros(&[3, 32, 32]);
            single
                .as_mut_slice()
                .copy_from_slice(&batch.as_slice()[img * 3072..(img + 1) * 3072]);
            let expect = dense.forward(&ctx, &single);
            let got = &sparse_logits.as_slice()[img * 10..(img + 1) * 10];
            for (g, e) in got.iter().zip(expect.as_slice()) {
                assert!((g - e).abs() < 1e-3, "img {img}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn pruning_reduces_nnz() {
        let sparse = small_sparse(1, 0.1);
        for li in 0..4 {
            let d = sparse.csr_weights(li).density();
            assert!((d - 0.1).abs() < 0.02, "layer {li} density {d}");
        }
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let sparse = small_sparse(3, 0.2);
        let batch = CifarStream::new(9).next_batch(3);
        let logits = sparse.forward(&ParCtx::new(4), &batch);
        assert_eq!(logits.shape(), &[3, 10]);
        assert!(logits.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn batched_input_shape() {
        let sparse = small_sparse(4, 0.5);
        assert_eq!(sparse.batched_input_shape(0), vec![4, 3, 32, 32]);
        assert_eq!(sparse.batched_input_shape(8), vec![4, 256, 2, 2]);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let sparse = small_sparse(4, 0.3);
        let batch = CifarStream::new(1).next_batch(4);
        let a = sparse.forward(&ParCtx::serial(), &batch);
        let b = sparse.forward(&ParCtx::new(6), &batch);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }
}
