//! Sparse CNN kernels: CSR matrices, magnitude-based structured pruning,
//! sparse convolution via CSR × im2col, and the AlexNet-sparse variant
//! (batch of 128 images per task, §4.1 of the paper).

mod alexnet;
mod conv;
mod csr;
mod prune;

pub use alexnet::AlexNetSparse;
pub use conv::{im2col, sparse_conv2d};
pub use csr::CsrMatrix;
pub use prune::prune_to_csr;
