//! Compressed Sparse Row matrices.

use crate::ParCtx;

/// A CSR (Compressed Sparse Row) f32 matrix.
///
/// ```
/// use bt_kernels::sparse::CsrMatrix;
/// let dense = vec![
///     1.0, 0.0, 2.0, //
///     0.0, 0.0, 0.0, //
///     0.0, 3.0, 0.0,
/// ];
/// let csr = CsrMatrix::from_dense(&dense, 3, 3, 0.0);
/// assert_eq!(csr.nnz(), 3);
/// assert_eq!(csr.to_dense()[2 * 3 + 1], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a row-major dense matrix, keeping entries
    /// with `|v| > threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != rows * cols`.
    pub fn from_dense(dense: &[f32], rows: usize, cols: usize, threshold: f32) -> CsrMatrix {
        assert_eq!(dense.len(), rows * cols, "dense shape mismatch");
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v.abs() > threshold {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Builds directly from CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are structurally inconsistent (wrong `row_ptr`
    /// length, non-monotonic `row_ptr`, column out of range, or length
    /// mismatch between `col_idx` and `values`).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_idx: Vec<u32>,
        values: Vec<f32>,
    ) -> CsrMatrix {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/val length");
        assert_eq!(*row_ptr.last().expect("non-empty") as usize, values.len());
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr monotonic"
        );
        assert!(col_idx.iter().all(|&c| (c as usize) < cols), "column range");
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored (`nnz / (rows × cols)`).
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// The `(col_idx, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        self.col_idx[start..end]
            .iter()
            .zip(&self.values[start..end])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Converts back to a row-major dense matrix.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut dense = vec![0.0; self.rows * self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                dense[r * self.cols + c] = v;
            }
        }
        dense
    }

    /// Sparse matrix × dense matrix: `out[r][j] = Σ_c self[r][c] · rhs[c][j]`,
    /// where `rhs` is row-major `[cols × rhs_cols]` and `out` is row-major
    /// `[rows × rhs_cols]`. Parallelized over output rows.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn spmm(&self, ctx: &ParCtx, rhs: &[f32], rhs_cols: usize, out: &mut [f32]) {
        assert_eq!(rhs.len(), self.cols * rhs_cols, "rhs shape mismatch");
        assert_eq!(out.len(), self.rows * rhs_cols, "out shape mismatch");
        ctx.for_each_chunk(out, |offset, chunk| {
            // Worker splits may land mid-row; process the chunk as runs of
            // contiguous elements belonging to one output row each.
            let mut i = 0;
            while i < chunk.len() {
                let idx = offset + i;
                let r = idx / rhs_cols;
                let j0 = idx % rhs_cols;
                let j1 = rhs_cols.min(j0 + (chunk.len() - i));
                let width = j1 - j0;
                let row_out = &mut chunk[i..i + width];
                row_out.iter_mut().for_each(|x| *x = 0.0);
                let start = self.row_ptr[r] as usize;
                let end = self.row_ptr[r + 1] as usize;
                for k in start..end {
                    let c = self.col_idx[k] as usize;
                    let v = self.values[k];
                    let rhs_row = &rhs[c * rhs_cols + j0..c * rhs_cols + j1];
                    for (o, x) in row_out.iter_mut().zip(rhs_row) {
                        *o += v * x;
                    }
                }
                i += width;
            }
        });
    }

    /// Sparse matrix × dense vector.
    pub fn spmv(&self, ctx: &ParCtx, x: &[f32], out: &mut [f32]) {
        self.spmm(ctx, x, 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dense(seed: u64, rows: usize, cols: usize, density: f64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows * cols)
            .map(|_| {
                if rng.gen_bool(density) {
                    rng.gen_range(-1.0f32..1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn dense_round_trip() {
        let dense = random_dense(1, 13, 17, 0.3);
        let csr = CsrMatrix::from_dense(&dense, 13, 17, 0.0);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn threshold_drops_small_entries() {
        let dense = vec![0.05, -0.5, 0.2, 0.0];
        let csr = CsrMatrix::from_dense(&dense, 2, 2, 0.1);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.to_dense(), vec![0.0, -0.5, 0.2, 0.0]);
    }

    #[test]
    fn spmm_matches_dense_multiply() {
        let a = random_dense(2, 9, 11, 0.4);
        let b = random_dense(3, 11, 7, 1.0);
        let csr = CsrMatrix::from_dense(&a, 9, 11, 0.0);
        let mut got = vec![0.0; 9 * 7];
        csr.spmm(&ParCtx::new(4), &b, 7, &mut got);
        for r in 0..9 {
            for j in 0..7 {
                let expect: f32 = (0..11).map(|c| a[r * 11 + c] * b[c * 7 + j]).sum();
                assert!((got[r * 7 + j] - expect).abs() < 1e-4, "({r},{j})");
            }
        }
    }

    #[test]
    fn spmv_equals_single_column_spmm() {
        let a = random_dense(4, 6, 8, 0.5);
        let x = random_dense(5, 8, 1, 1.0);
        let csr = CsrMatrix::from_dense(&a, 6, 8, 0.0);
        let mut via_spmv = vec![0.0; 6];
        let mut via_spmm = vec![0.0; 6];
        csr.spmv(&ParCtx::serial(), &x, &mut via_spmv);
        csr.spmm(&ParCtx::new(3), &x, 1, &mut via_spmm);
        assert_eq!(via_spmv, via_spmm);
    }

    #[test]
    fn density_calculation() {
        let dense = vec![1.0, 0.0, 0.0, 0.0];
        let csr = CsrMatrix::from_dense(&dense, 2, 2, 0.0);
        assert!((csr.density() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row_ptr length")]
    fn from_parts_validates() {
        let _ = CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let dense = vec![0.0, 0.0, 1.0, 0.0];
        let csr = CsrMatrix::from_dense(&dense, 2, 2, 0.0);
        assert_eq!(csr.row(0).count(), 0);
        assert_eq!(csr.row(1).count(), 1);
    }
}
