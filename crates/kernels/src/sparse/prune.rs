//! Magnitude-based pruning to CSR — the stand-in for Condensa's structured
//! pruning (DESIGN.md substitution table).
//!
//! The paper prunes AlexNet's conv layers with Condensa and stores the
//! result in CSR. What the scheduler cares about is the artefact: CSR
//! weight tensors with a target density and realistic row-length skew.
//! Global magnitude pruning produces exactly that (rows corresponding to
//! low-energy filters end up much shorter than others).

use crate::sparse::CsrMatrix;

/// Prunes a dense row-major `[rows × cols]` matrix to approximately
/// `density` (fraction of weights kept, in `(0, 1]`) by keeping the
/// largest-magnitude entries, returning the CSR form.
///
/// # Panics
///
/// Panics if `density` is outside `(0, 1]` or the shape is inconsistent.
pub fn prune_to_csr(dense: &[f32], rows: usize, cols: usize, density: f64) -> CsrMatrix {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    assert_eq!(dense.len(), rows * cols, "dense shape mismatch");

    if density >= 1.0 {
        return CsrMatrix::from_dense(dense, rows, cols, 0.0);
    }

    // Global magnitude threshold at the (1 - density) quantile.
    let keep = ((dense.len() as f64 * density).round() as usize).max(1);
    let mut magnitudes: Vec<f32> = dense.iter().map(|v| v.abs()).collect();
    // Partial selection of the keep-th largest magnitude.
    let cut = magnitudes.len() - keep;
    magnitudes.select_nth_unstable_by(cut, |a, b| a.partial_cmp(b).expect("weights are finite"));
    let threshold = magnitudes[cut];

    // Keep entries strictly above OR equal to the threshold, breaking ties
    // by first-come until the budget is met (exact count matters for tests).
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    let mut budget = keep;
    row_ptr.push(0u32);
    for r in 0..rows {
        for c in 0..cols {
            let v = dense[r * cols + c];
            if budget > 0 && v.abs() >= threshold && v != 0.0 {
                col_idx.push(c as u32);
                values.push(v);
                budget -= 1;
            }
        }
        row_ptr.push(col_idx.len() as u32);
    }
    CsrMatrix::from_parts(rows, cols, row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_weights(seed: u64, n: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn hits_target_density() {
        let dense = random_weights(1, 64 * 27);
        let csr = prune_to_csr(&dense, 64, 27, 0.1);
        let got = csr.density();
        assert!((got - 0.1).abs() < 0.01, "density {got}");
    }

    #[test]
    fn keeps_the_largest_magnitudes() {
        let dense = vec![0.9, -0.8, 0.1, 0.05, 0.7, -0.02];
        let csr = prune_to_csr(&dense, 2, 3, 0.5);
        let kept = csr.to_dense();
        assert_eq!(kept, vec![0.9, -0.8, 0.0, 0.0, 0.7, 0.0]);
    }

    #[test]
    fn full_density_is_lossless() {
        let dense = random_weights(2, 50);
        let csr = prune_to_csr(&dense, 5, 10, 1.0);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn pruned_rows_have_skewed_lengths() {
        // Make half the rows low-energy; they should end up much sparser.
        let mut dense = random_weights(3, 40 * 40);
        for r in 20..40 {
            for c in 0..40 {
                dense[r * 40 + c] *= 0.05;
            }
        }
        let csr = prune_to_csr(&dense, 40, 40, 0.3);
        let strong: usize = (0..20).map(|r| csr.row(r).count()).sum();
        let weak: usize = (20..40).map(|r| csr.row(r).count()).sum();
        assert!(strong > 5 * weak.max(1), "strong {strong} weak {weak}");
    }

    #[test]
    #[should_panic(expected = "density")]
    fn zero_density_panics() {
        let _ = prune_to_csr(&[1.0], 1, 1, 0.0);
    }
}
