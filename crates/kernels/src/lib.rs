//! # bt-kernels — real compute kernels and applications
//!
//! The paper evaluates BetterTogether on three computer-vision edge
//! workloads (§4.1); this crate implements all of them for real, in Rust,
//! plus a fourth, genuinely branching workload:
//!
//! - [`dense`] — AlexNet-dense for CIFAR-10: direct convolution,
//!   max-pooling, and a fully-connected classifier, 9 pipeline stages.
//! - [`sparse`] — AlexNet-sparse: the same network magnitude-pruned to CSR
//!   (the Condensa stand-in), processed in batches.
//! - [`octree`] — the 7-stage Karras octree-construction pipeline over
//!   Morton-coded point clouds (radix sort, radix tree, edge counting,
//!   prefix sum, octree linking).
//! - [`perception`] — a fork/join tracking pipeline: preprocessing forks
//!   into a detection branch (convolution + NMS) and an optical-flow
//!   branch (pyramid + solve) that join in a fusion/tracking tail — the
//!   workload exercising DAG-aware scheduling.
//!
//! Every stage is exposed both as an executable kernel (run by the host
//! pipeline runtime and by tests) and as a [`bt_soc::WorkProfile`] consumed
//! by the device simulator. The [`apps`] module packages the four
//! workloads as ready-made [`Application`]s.
//!
//! # Example
//!
//! ```
//! use bt_kernels::{apps, ParCtx};
//! use bt_kernels::pointcloud::CloudShape;
//!
//! let app = apps::octree_app(apps::OctreeConfig {
//!     points: 2000,
//!     shape: CloudShape::Uniform,
//!     max_depth: 6,
//!     seed: 7,
//! });
//! let mut task = app.new_payload();
//! app.run_sequential(&mut task, 0, &ParCtx::new(4));
//! assert!(task.octree.expect("octree built").cell_count() > 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
pub mod apps;
pub mod cifar;
pub mod dense;
pub mod octree;
mod par;
pub mod perception;
pub mod pointcloud;
pub mod sensor;
pub mod sparse;
mod tensor;

pub use app::{
    AppModel, Application, CyclicGraphError, FactoryFn, KernelFn, SourceFn, Stage, StageModel,
    TaskGraph,
};
pub use par::ParCtx;
pub use tensor::Tensor;
