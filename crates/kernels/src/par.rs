//! Minimal data-parallel execution helper — the OpenMP stand-in.
//!
//! The paper's CPU kernels use `#pragma omp parallel for` with the OpenMP
//! pool bound to a cluster. On the host backend we reproduce the shape of
//! that contract with scoped threads and static chunking: a [`ParCtx`]
//! carries the worker count a chunk's cluster provides, and
//! [`ParCtx::parallel_for`] splits an index range across that many workers.

use std::ops::Range;

/// Execution context handed to every CPU kernel: how many worker threads
/// the current PU cluster provides.
///
/// ```
/// use bt_kernels::ParCtx;
/// let ctx = ParCtx::new(4);
/// let mut data = vec![0u32; 1000];
/// ctx.for_each_chunk(&mut data, |offset, chunk| {
///     for (i, x) in chunk.iter_mut().enumerate() {
///         *x = (offset + i) as u32;
///     }
/// });
/// assert_eq!(data[999], 999);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParCtx {
    threads: usize,
}

impl ParCtx {
    /// A context with `threads` workers (at least 1).
    pub fn new(threads: usize) -> ParCtx {
        ParCtx {
            threads: threads.max(1),
        }
    }

    /// A serial context (one worker).
    pub fn serial() -> ParCtx {
        ParCtx::new(1)
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `body` once per worker with that worker's index sub-range of
    /// `0..n`, in parallel. Static chunking, like OpenMP's default
    /// schedule. `body` only observes disjoint ranges, so it can index
    /// into shared read-only data freely.
    pub fn parallel_for<F>(&self, n: usize, body: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            body(0..n);
            return;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                if start >= end {
                    break;
                }
                let body = &body;
                scope.spawn(move || body(start..end));
            }
        });
    }

    /// Splits `data` into per-worker chunks and runs `body(offset, chunk)`
    /// on each in parallel — the mutable-output counterpart of
    /// [`ParCtx::parallel_for`].
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], body: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            body(0, data);
            return;
        }
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut offset = 0;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                let body = &body;
                scope.spawn(move || body(offset, head));
                offset += take;
                rest = tail;
            }
        });
    }

    /// Splits `data` into consecutive blocks of exactly `block` elements and
    /// processes them in parallel with `body(block_index, block_slice)`.
    /// Used for batch processing where each image owns a fixed-size region.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `block`.
    pub fn for_each_block<T, F>(&self, data: &mut [T], block: usize, body: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(block > 0, "block size must be positive");
        assert_eq!(data.len() % block, 0, "data must be block-aligned");
        let blocks = data.len() / block;
        if blocks == 0 {
            return;
        }
        let workers = self.threads.min(blocks);
        if workers == 1 {
            for (i, chunk) in data.chunks_mut(block).enumerate() {
                body(i, chunk);
            }
            return;
        }
        let per_worker = blocks.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut rest = data;
            let mut first_block = 0;
            while !rest.is_empty() {
                let take_blocks = per_worker.min(rest.len() / block);
                let (head, tail) = rest.split_at_mut(take_blocks * block);
                let body = &body;
                scope.spawn(move || {
                    for (i, chunk) in head.chunks_mut(block).enumerate() {
                        body(first_block + i, chunk);
                    }
                });
                first_block += take_blocks;
                rest = tail;
            }
        });
    }

    /// Maps `0..n` through `f` in parallel, collecting results in order.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + Default + Clone,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = vec![T::default(); n];
        self.for_each_chunk(&mut out, |offset, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = f(offset + i);
            }
        });
        out
    }

    /// Computes a per-worker partial reduction over `0..n` and folds the
    /// partials serially (deterministic for associative+commutative ops;
    /// used for histograms and max-reductions).
    pub fn reduce<T, F, G>(&self, n: usize, identity: T, partial: F, fold: G) -> T
    where
        T: Send + Clone,
        F: Fn(Range<usize>) -> T + Sync,
        G: Fn(T, T) -> T,
    {
        if n == 0 {
            return identity;
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            return fold(identity, partial(0..n));
        }
        let chunk = n.div_ceil(workers);
        let mut partials: Vec<Option<T>> = vec![None; workers];
        std::thread::scope(|scope| {
            for (w, slot) in partials.iter_mut().enumerate() {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(n);
                if start >= end {
                    break;
                }
                let partial = &partial;
                scope.spawn(move || {
                    *slot = Some(partial(start..end));
                });
            }
        });
        partials.into_iter().flatten().fold(identity, &fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_every_index_once() {
        let ctx = ParCtx::new(4);
        let n = 10_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        ctx.parallel_for(n, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_is_noop() {
        ParCtx::new(8).parallel_for(0, |_| panic!("must not run"));
    }

    #[test]
    fn for_each_chunk_offsets_are_consistent() {
        let ctx = ParCtx::new(3);
        let mut data = vec![0usize; 1000];
        ctx.for_each_chunk(&mut data, |offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = offset + i;
            }
        });
        for (i, x) in data.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn map_preserves_order() {
        let ctx = ParCtx::new(5);
        let out = ctx.map(100, |i| i * i);
        assert_eq!(out[7], 49);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn reduce_sums_correctly() {
        let ctx = ParCtx::new(4);
        let total = ctx.reduce(
            1000,
            0u64,
            |range| range.map(|i| i as u64).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn serial_context_matches_parallel() {
        let serial = ParCtx::serial().map(64, |i| i + 1);
        let parallel = ParCtx::new(8).map(64, |i| i + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn zero_threads_clamped_to_one() {
        assert_eq!(ParCtx::new(0).threads(), 1);
    }
}
