//! Synthetic 3-D point-cloud generator for the octree workload.
//!
//! The paper builds octrees from streaming point clouds (OctoMap-style
//! robotics mapping). We generate deterministic clouds in the unit cube
//! under three distributions that stress the pipeline differently:
//! uniform (balanced tree), clustered (deep local subtrees — the realistic
//! LiDAR-like case), and surface (points on a sphere shell, the 3-D
//! reconstruction case).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A 3-D point in the unit cube.
pub type Point3 = [f32; 3];

/// Spatial distribution of generated points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudShape {
    /// Uniform in the unit cube.
    Uniform,
    /// Gaussian clusters around a handful of centers (LiDAR-like).
    Clustered,
    /// A spherical shell (surface reconstruction-like).
    Surface,
}

/// Deterministic point-cloud stream.
///
/// ```
/// use bt_kernels::pointcloud::{CloudShape, PointCloudStream};
/// let mut s = PointCloudStream::new(CloudShape::Clustered, 42);
/// let cloud = s.next_cloud(1000);
/// assert_eq!(cloud.len(), 1000);
/// assert!(cloud.iter().all(|p| p.iter().all(|&c| (0.0..1.0).contains(&c))));
/// ```
#[derive(Debug)]
pub struct PointCloudStream {
    shape: CloudShape,
    rng: StdRng,
}

impl PointCloudStream {
    /// A stream of `shape`-distributed clouds, deterministic per seed.
    pub fn new(shape: CloudShape, seed: u64) -> PointCloudStream {
        PointCloudStream {
            shape,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the next cloud of `n` points, each coordinate in `[0, 1)`.
    pub fn next_cloud(&mut self, n: usize) -> Vec<Point3> {
        match self.shape {
            CloudShape::Uniform => (0..n).map(|_| self.uniform_point()).collect(),
            CloudShape::Clustered => self.clustered(n),
            CloudShape::Surface => self.surface(n),
        }
    }

    fn uniform_point(&mut self) -> Point3 {
        [
            self.rng.gen_range(0.0..1.0),
            self.rng.gen_range(0.0..1.0),
            self.rng.gen_range(0.0..1.0),
        ]
    }

    fn clustered(&mut self, n: usize) -> Vec<Point3> {
        let k = 8.max(n / 50_000);
        let centers: Vec<Point3> = (0..k).map(|_| self.uniform_point()).collect();
        (0..n)
            .map(|_| {
                let c = centers[self.rng.gen_range(0..k)];
                let mut p = [0.0f32; 3];
                for (axis, slot) in p.iter_mut().enumerate() {
                    // Box-Muller-free: sum of uniforms approximates a Gaussian.
                    let g: f32 = (0..4).map(|_| self.rng.gen_range(-0.5..0.5)).sum::<f32>() / 2.0;
                    *slot = (c[axis] + g * 0.08).clamp(0.0, 0.999_999);
                }
                p
            })
            .collect()
    }

    fn surface(&mut self, n: usize) -> Vec<Point3> {
        (0..n)
            .map(|_| {
                // Rejection-sample a direction, project to a shell.
                loop {
                    let v = [
                        self.rng.gen_range(-1.0f32..1.0),
                        self.rng.gen_range(-1.0f32..1.0),
                        self.rng.gen_range(-1.0f32..1.0),
                    ];
                    let norm = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
                    if norm > 1e-3 && norm <= 1.0 {
                        let r = 0.4 + self.rng.gen_range(-0.01f32..0.01);
                        let p = [
                            (0.5 + v[0] / norm * r).clamp(0.0, 0.999_999),
                            (0.5 + v[1] / norm * r).clamp(0.0, 0.999_999),
                            (0.5 + v[2] / norm * r).clamp(0.0, 0.999_999),
                        ];
                        return p;
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_unit_cube(cloud: &[Point3]) -> bool {
        cloud
            .iter()
            .all(|p| p.iter().all(|&c| (0.0..1.0).contains(&c)))
    }

    #[test]
    fn all_shapes_stay_in_unit_cube() {
        for shape in [
            CloudShape::Uniform,
            CloudShape::Clustered,
            CloudShape::Surface,
        ] {
            let cloud = PointCloudStream::new(shape, 1).next_cloud(2000);
            assert_eq!(cloud.len(), 2000);
            assert!(in_unit_cube(&cloud), "{shape:?} left the unit cube");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = PointCloudStream::new(CloudShape::Clustered, 5).next_cloud(100);
        let b = PointCloudStream::new(CloudShape::Clustered, 5).next_cloud(100);
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_is_denser_than_uniform() {
        // Clustered points concentrate: mean nearest-center distance must
        // be far below the uniform expectation.
        let cloud = PointCloudStream::new(CloudShape::Clustered, 2).next_cloud(4000);
        let centroid = cloud.iter().fold([0.0f64; 3], |mut acc, p| {
            for i in 0..3 {
                acc[i] += p[i] as f64;
            }
            acc
        });
        let n = cloud.len() as f64;
        let centroid = [centroid[0] / n, centroid[1] / n, centroid[2] / n];
        let var: f64 = cloud
            .iter()
            .map(|p| {
                (0..3)
                    .map(|i| (p[i] as f64 - centroid[i]).powi(2))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / n;
        // Uniform variance would be 3/12 = 0.25; clusters should be tighter
        // unless centers happen to spread widely — allow a loose bound.
        assert!(var < 0.25, "variance {var}");
    }

    #[test]
    fn surface_points_lie_on_shell() {
        let cloud = PointCloudStream::new(CloudShape::Surface, 3).next_cloud(500);
        for p in &cloud {
            let r = ((p[0] - 0.5).powi(2) + (p[1] - 0.5).powi(2) + (p[2] - 0.5).powi(2)).sqrt();
            assert!((r - 0.4).abs() < 0.02, "radius {r}");
        }
    }
}
