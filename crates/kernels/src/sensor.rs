//! Sensor-stream DSP kernels for the MCU-class edge pipeline: waveform
//! acquisition, FIR filtering, windowed feature extraction, and a small
//! linear classifier.
//!
//! These are the real CPU kernels behind [`crate::apps::sensor_app`] — a
//! `sample → filter → feature-extract → classify` chain, the
//! canonical always-on workload of dual-core microcontrollers (one core
//! acquires and conditions the signal while the other classifies). Every
//! kernel is deterministic per seed so golden-replay tests can pin
//! end-to-end results.

use crate::ParCtx;

/// Number of taps in the low-pass FIR filter.
pub const FIR_TAPS: usize = 16;

/// Features extracted per analysis window (mean, energy, zero-crossing
/// rate, peak amplitude).
pub const FEATURES_PER_WINDOW: usize = 4;

/// Samples per analysis window.
pub const WINDOW: usize = 64;

/// Number of classes the linear classifier separates.
pub const CLASSES: usize = 8;

fn lcg(state: &mut u64) -> f32 {
    // Numerical Recipes LCG; top 24 bits → [0, 1).
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 40) as f32) / (1u64 << 24) as f32
}

/// Synthesizes one block of `n` sensor samples: a two-tone waveform whose
/// frequencies drift with `seed`, plus uniform noise. Deterministic per
/// `(seed, n)`. Writes into `out`, reusing its capacity.
pub fn synth_samples(seed: u64, n: usize, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(n);
    let mut rng = seed ^ 0x5eed_5eed_5eed_5eed;
    let f1 = 0.01 + 0.002 * ((seed % 7) as f32);
    let f2 = 0.07 + 0.003 * ((seed % 5) as f32);
    for i in 0..n {
        let t = i as f32;
        let tone =
            (core::f32::consts::TAU * f1 * t).sin() + 0.5 * (core::f32::consts::TAU * f2 * t).sin();
        let noise = 0.25 * (lcg(&mut rng) - 0.5);
        out.push(tone + noise);
    }
}

/// The low-pass tap set used by the sensor pipeline: a normalized raised
/// triangle (deterministic, sums to 1 so DC gain is unity).
pub fn lowpass_taps() -> [f32; FIR_TAPS] {
    let mut taps = [0.0f32; FIR_TAPS];
    let mid = (FIR_TAPS - 1) as f32 / 2.0;
    let mut sum = 0.0;
    for (i, t) in taps.iter_mut().enumerate() {
        *t = 1.0 - (i as f32 - mid).abs() / (mid + 1.0);
        sum += *t;
    }
    for t in &mut taps {
        *t /= sum;
    }
    taps
}

/// Convolves `input` with `taps` (same-length output, zero-padded head):
/// `out[i] = Σ_k taps[k] · input[i - k]`. The arithmetic hot spot of the
/// pipeline.
pub fn fir_filter(ctx: &ParCtx, input: &[f32], taps: &[f32; FIR_TAPS], out: &mut Vec<f32>) {
    out.clear();
    out.resize(input.len(), 0.0);
    ctx.for_each_chunk(out, |offset, chunk| {
        for (j, slot) in chunk.iter_mut().enumerate() {
            let i = offset + j;
            let mut acc = 0.0f32;
            for (k, &t) in taps.iter().enumerate() {
                if i >= k {
                    acc += t * input[i - k];
                }
            }
            *slot = acc;
        }
    });
}

/// Extracts [`FEATURES_PER_WINDOW`] features from each [`WINDOW`]-sample
/// window of `filtered`: mean, mean-square energy, zero-crossing rate, and
/// peak amplitude. The tail partial window (if any) is dropped, matching
/// fixed-size DSP frames.
pub fn extract_features(ctx: &ParCtx, filtered: &[f32], out: &mut Vec<f32>) {
    let windows = filtered.len() / WINDOW;
    out.clear();
    out.resize(windows * FEATURES_PER_WINDOW, 0.0);
    ctx.for_each_block(out, FEATURES_PER_WINDOW, |w, f| {
        let frame = &filtered[w * WINDOW..(w + 1) * WINDOW];
        let mut mean = 0.0f32;
        let mut energy = 0.0f32;
        let mut crossings = 0u32;
        let mut peak = 0.0f32;
        for (i, &x) in frame.iter().enumerate() {
            mean += x;
            energy += x * x;
            peak = peak.max(x.abs());
            if i > 0 && (x >= 0.0) != (frame[i - 1] >= 0.0) {
                crossings += 1;
            }
        }
        f[0] = mean / WINDOW as f32;
        f[1] = energy / WINDOW as f32;
        f[2] = crossings as f32 / WINDOW as f32;
        f[3] = peak;
    });
}

/// The classifier's weight matrix, deterministic per `seed`:
/// `CLASSES × FEATURES_PER_WINDOW` values in `[-0.5, 0.5)`.
pub fn classifier_weights(seed: u64) -> Vec<f32> {
    let mut rng = seed ^ 0xc1a5_51f1_ed00_0000;
    (0..CLASSES * FEATURES_PER_WINDOW)
        .map(|_| lcg(&mut rng) - 0.5)
        .collect()
}

/// Scores every window of `features` against `weights` (one matvec per
/// window), sums the per-window scores, and returns the argmax class.
/// Ties break toward the higher class index.
pub fn classify(ctx: &ParCtx, features: &[f32], weights: &[f32]) -> usize {
    assert_eq!(weights.len(), CLASSES * FEATURES_PER_WINDOW);
    let windows = features.len() / FEATURES_PER_WINDOW;
    let totals = ctx.reduce(
        windows,
        [0.0f32; CLASSES],
        |range| {
            let mut scores = [0.0f32; CLASSES];
            for w in range {
                let f = &features[w * FEATURES_PER_WINDOW..(w + 1) * FEATURES_PER_WINDOW];
                for (c, s) in scores.iter_mut().enumerate() {
                    let row = &weights[c * FEATURES_PER_WINDOW..(c + 1) * FEATURES_PER_WINDOW];
                    *s += row.iter().zip(f).map(|(w, x)| w * x).sum::<f32>();
                }
            }
            scores
        },
        |mut acc, part| {
            for (a, p) in acc.iter_mut().zip(part) {
                *a += p;
            }
            acc
        },
    );
    totals
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("scores are finite"))
        .map(|(c, _)| c)
        .expect("CLASSES > 0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_deterministic_and_seed_sensitive() {
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        synth_samples(3, 256, &mut a);
        synth_samples(3, 256, &mut b);
        synth_samples(4, 256, &mut c);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn fir_impulse_response_recovers_taps() {
        let taps = lowpass_taps();
        let mut input = vec![0.0f32; 64];
        input[0] = 1.0;
        let mut out = Vec::new();
        fir_filter(&ParCtx::serial(), &input, &taps, &mut out);
        for (k, &t) in taps.iter().enumerate() {
            assert!((out[k] - t).abs() < 1e-6, "tap {k}");
        }
        assert!(out[FIR_TAPS..].iter().all(|&x| x.abs() < 1e-6));
    }

    #[test]
    fn fir_parallel_matches_serial() {
        let mut input = Vec::new();
        synth_samples(9, 1000, &mut input);
        let taps = lowpass_taps();
        let (mut serial, mut parallel) = (Vec::new(), Vec::new());
        fir_filter(&ParCtx::serial(), &input, &taps, &mut serial);
        fir_filter(&ParCtx::new(4), &input, &taps, &mut parallel);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn features_have_expected_shape_and_values() {
        // A constant-positive signal: mean 1, energy 1, no crossings, peak 1.
        let signal = vec![1.0f32; WINDOW * 3 + 7];
        let mut feats = Vec::new();
        extract_features(&ParCtx::new(2), &signal, &mut feats);
        assert_eq!(feats.len(), 3 * FEATURES_PER_WINDOW, "tail window dropped");
        for w in 0..3 {
            let f = &feats[w * FEATURES_PER_WINDOW..(w + 1) * FEATURES_PER_WINDOW];
            assert!((f[0] - 1.0).abs() < 1e-6);
            assert!((f[1] - 1.0).abs() < 1e-6);
            assert_eq!(f[2], 0.0);
            assert_eq!(f[3], 1.0);
        }
    }

    #[test]
    fn classify_is_deterministic_and_in_range() {
        let mut raw = Vec::new();
        synth_samples(11, WINDOW * 16, &mut raw);
        let taps = lowpass_taps();
        let mut filtered = Vec::new();
        fir_filter(&ParCtx::serial(), &raw, &taps, &mut filtered);
        let mut feats = Vec::new();
        extract_features(&ParCtx::serial(), &filtered, &mut feats);
        let weights = classifier_weights(0);
        let a = classify(&ParCtx::serial(), &feats, &weights);
        let b = classify(&ParCtx::new(4), &feats, &weights);
        assert_eq!(a, b, "parallel reduce must match serial");
        assert!(a < CLASSES);
    }
}
