//! Synthetic CIFAR-10-like input generator.
//!
//! The paper classifies CIFAR-10 images; only their *shape and statistics*
//! affect scheduling (stage cost is content-independent for dense layers and
//! nearly so for the sparse ones). We generate deterministic 3×32×32 f32
//! images with natural-image-like spatial correlation by low-pass filtering
//! seeded noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Tensor;

/// CIFAR image channels, height, and width.
pub const CIFAR_SHAPE: [usize; 3] = [3, 32, 32];

/// Number of CIFAR-10 classes.
pub const CIFAR_CLASSES: usize = 10;

/// Deterministic generator of CIFAR-like images.
///
/// ```
/// use bt_kernels::cifar::CifarStream;
/// let mut stream = CifarStream::new(7);
/// let img = stream.next_image();
/// assert_eq!(img.shape(), &[3, 32, 32]);
/// ```
#[derive(Debug)]
pub struct CifarStream {
    rng: StdRng,
}

impl CifarStream {
    /// A stream seeded deterministically: the same seed yields the same
    /// image sequence.
    pub fn new(seed: u64) -> CifarStream {
        CifarStream {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the next 3×32×32 image, values roughly in `[-1, 1]` with
    /// smooth spatial structure.
    pub fn next_image(&mut self) -> Tensor {
        let [c, h, w] = CIFAR_SHAPE;
        let mut img = Tensor::zeros(&CIFAR_SHAPE);
        // Raw noise, then a 3x3 box blur for spatial correlation.
        let noise: Vec<f32> = (0..c * h * w)
            .map(|_| self.rng.gen_range(-1.0..1.0))
            .collect();
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let mut acc = 0.0;
                    let mut cnt = 0.0;
                    for dy in -1i32..=1 {
                        for dx in -1i32..=1 {
                            let ny = y as i32 + dy;
                            let nx = x as i32 + dx;
                            if ny >= 0 && ny < h as i32 && nx >= 0 && nx < w as i32 {
                                acc += noise[(ch * h + ny as usize) * w + nx as usize];
                                cnt += 1.0;
                            }
                        }
                    }
                    img[(ch, y, x)] = acc / cnt;
                }
            }
        }
        img
    }

    /// Generates a batch of `n` images flattened into one `[n, 3, 32, 32]`
    /// tensor (the sparse AlexNet variant processes 128 images per task).
    pub fn next_batch(&mut self, n: usize) -> Tensor {
        let [c, h, w] = CIFAR_SHAPE;
        let mut batch = Tensor::zeros(&[n, c, h, w]);
        let stride = c * h * w;
        for i in 0..n {
            let img = self.next_image();
            batch.as_mut_slice()[i * stride..(i + 1) * stride].copy_from_slice(img.as_slice());
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = CifarStream::new(3).next_image();
        let b = CifarStream::new(3).next_image();
        assert_eq!(a, b);
        let c = CifarStream::new(4).next_image();
        assert_ne!(a, c);
    }

    #[test]
    fn values_bounded() {
        let img = CifarStream::new(1).next_image();
        assert!(img.as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn images_are_spatially_smooth() {
        // Blurring must reduce adjacent-pixel jumps well below the raw
        // noise scale.
        let img = CifarStream::new(2).next_image();
        let mut total = 0.0;
        let mut n = 0;
        for y in 0..32 {
            for x in 0..31 {
                total += (img[(0, y, x + 1)] - img[(0, y, x)]).abs();
                n += 1;
            }
        }
        assert!(total / n as f32 <= 0.5, "mean jump {}", total / n as f32);
    }

    #[test]
    fn batch_shape() {
        let batch = CifarStream::new(5).next_batch(4);
        assert_eq!(batch.shape(), &[4, 3, 32, 32]);
    }

    #[test]
    fn stream_advances() {
        let mut s = CifarStream::new(9);
        let a = s.next_image();
        let b = s.next_image();
        assert_ne!(a, b);
    }
}
