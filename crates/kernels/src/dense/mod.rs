//! Dense CNN kernels: direct convolution, max-pooling, and fully-connected
//! layers, plus the AlexNet-dense network used by the paper's regular
//! workload.

mod alexnet;
mod conv;
mod gemm;
mod linear;
mod pool;

pub use alexnet::{AlexNetDense, AlexNetLayout, ConvLayerSpec};
pub use conv::{conv2d, conv2d_reference, Conv2dParams};
pub use gemm::{conv2d_gemm, matmul};
pub use linear::linear;
pub use pool::maxpool2x2;
