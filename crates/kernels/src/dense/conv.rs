//! Direct 2-D convolution (NCHW, f32).

use crate::{ParCtx, Tensor};

/// Shape parameters of a conv layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Symmetric zero padding.
    pub padding: usize,
}

impl Conv2dParams {
    /// FLOPs of one application to an `h × w` input (multiply + add per tap,
    /// plus the fused ReLU).
    pub fn flops(&self, h: usize, w: usize) -> f64 {
        let taps = self.in_channels * self.kernel * self.kernel;
        (self.out_channels * h * w) as f64 * (2.0 * taps as f64 + 1.0)
    }
}

/// Computes `out = relu(conv2d(input, weights) + bias)` with stride 1.
///
/// `input` is `[C_in, H, W]`, `weights` is `[C_out, C_in, K, K]`, `bias` is
/// `[C_out]`, and `out` must be `[C_out, H, W]` (same-size convolution:
/// `padding = K / 2`). Parallelized over output channels.
///
/// # Panics
///
/// Panics in debug builds if tensor shapes disagree with `params`.
pub fn conv2d(
    ctx: &ParCtx,
    params: &Conv2dParams,
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out: &mut Tensor,
) {
    let (h, w) = (input.shape()[1], input.shape()[2]);
    debug_assert_eq!(input.shape()[0], params.in_channels);
    debug_assert_eq!(out.shape(), &[params.out_channels, h, w]);
    debug_assert_eq!(
        weights.len(),
        params.out_channels * params.in_channels * params.kernel * params.kernel
    );
    debug_assert_eq!(bias.len(), params.out_channels);

    let k = params.kernel;
    let pad = params.padding as i64;
    let cin = params.in_channels;
    let input_data = input.as_slice();
    let plane = h * w;

    // Split the output tensor by channel; each worker owns whole channels.
    let out_data = out.as_mut_slice();
    ctx.for_each_chunk(out_data, |offset, chunk| {
        for (rel, slot) in chunk.iter_mut().enumerate() {
            let idx = offset + rel;
            let co = idx / plane;
            let y = (idx % plane) / w;
            let x = idx % w;
            let mut acc = bias[co];
            let wbase = co * cin * k * k;
            for ci in 0..cin {
                let ibase = ci * plane;
                let wcbase = wbase + ci * k * k;
                for ky in 0..k {
                    let iy = y as i64 + ky as i64 - pad;
                    if iy < 0 || iy >= h as i64 {
                        continue;
                    }
                    let irow = ibase + iy as usize * w;
                    let wrow = wcbase + ky * k;
                    for kx in 0..k {
                        let ix = x as i64 + kx as i64 - pad;
                        if ix < 0 || ix >= w as i64 {
                            continue;
                        }
                        acc += input_data[irow + ix as usize] * weights[wrow + kx];
                    }
                }
            }
            *slot = acc.max(0.0); // fused ReLU
        }
    });
}

/// Scalar reference convolution used to validate [`conv2d`]; identical
/// semantics, no parallelism, no clever indexing.
pub fn conv2d_reference(
    params: &Conv2dParams,
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
) -> Tensor {
    let (h, w) = (input.shape()[1], input.shape()[2]);
    let mut out = Tensor::zeros(&[params.out_channels, h, w]);
    let k = params.kernel;
    let pad = params.padding as i64;
    for co in 0..params.out_channels {
        for y in 0..h {
            for x in 0..w {
                let mut acc = bias[co];
                for ci in 0..params.in_channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = y as i64 + ky as i64 - pad;
                            let ix = x as i64 + kx as i64 - pad;
                            if iy >= 0 && iy < h as i64 && ix >= 0 && ix < w as i64 {
                                let wv =
                                    weights[((co * params.in_channels + ci) * k + ky) * k + kx];
                                acc += input[(ci, iy as usize, ix as usize)] * wv;
                            }
                        }
                    }
                }
                out[(co, y, x)] = acc.max(0.0);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_setup(
        seed: u64,
        params: &Conv2dParams,
        h: usize,
        w: usize,
    ) -> (Tensor, Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut input = Tensor::zeros(&[params.in_channels, h, w]);
        input
            .as_mut_slice()
            .iter_mut()
            .for_each(|x| *x = rng.gen_range(-1.0..1.0));
        let weights: Vec<f32> =
            (0..params.out_channels * params.in_channels * params.kernel * params.kernel)
                .map(|_| rng.gen_range(-0.5..0.5))
                .collect();
        let bias: Vec<f32> = (0..params.out_channels)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect();
        (input, weights, bias)
    }

    #[test]
    fn matches_reference() {
        let params = Conv2dParams {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            padding: 1,
        };
        let (input, weights, bias) = random_setup(1, &params, 16, 16);
        let expect = conv2d_reference(&params, &input, &weights, &bias);
        let mut got = Tensor::zeros(&[8, 16, 16]);
        conv2d(&ParCtx::new(4), &params, &input, &weights, &bias, &mut got);
        assert!(got.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let params = Conv2dParams {
            in_channels: 4,
            out_channels: 6,
            kernel: 3,
            padding: 1,
        };
        let (input, weights, bias) = random_setup(2, &params, 12, 12);
        let mut serial = Tensor::zeros(&[6, 12, 12]);
        let mut parallel = Tensor::zeros(&[6, 12, 12]);
        conv2d(
            &ParCtx::serial(),
            &params,
            &input,
            &weights,
            &bias,
            &mut serial,
        );
        conv2d(
            &ParCtx::new(7),
            &params,
            &input,
            &weights,
            &bias,
            &mut parallel,
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn relu_clamps_negative() {
        let params = Conv2dParams {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            padding: 0,
        };
        let input = Tensor::from_vec(&[1, 1, 2], vec![1.0, -1.0]);
        let mut out = Tensor::zeros(&[1, 1, 2]);
        conv2d(
            &ParCtx::serial(),
            &params,
            &input,
            &[-2.0],
            &[0.0],
            &mut out,
        );
        assert_eq!(out.as_slice(), &[0.0, 2.0]);
    }

    #[test]
    fn flops_formula() {
        let p = Conv2dParams {
            in_channels: 2,
            out_channels: 4,
            kernel: 3,
            padding: 1,
        };
        // 4*8*8 outputs × (2 × 2·9 + 1)
        assert_eq!(p.flops(8, 8) as u64, (4 * 64) as u64 * 37);
    }
}
