//! Fully-connected (dense matrix–vector) layer.

use crate::{ParCtx, Tensor};

/// Computes `out = W · flatten(input) + bias`, where `W` is row-major
/// `[out_features, in_features]`.
///
/// # Panics
///
/// Panics if `input.len() * out.len() != weights.len()` or bias length
/// mismatches.
pub fn linear(ctx: &ParCtx, input: &Tensor, weights: &[f32], bias: &[f32], out: &mut Tensor) {
    let in_features = input.len();
    let out_features = out.len();
    assert_eq!(
        weights.len(),
        in_features * out_features,
        "weight shape mismatch"
    );
    assert_eq!(bias.len(), out_features, "bias shape mismatch");

    let x = input.as_slice();
    let out_data = out.as_mut_slice();
    ctx.for_each_chunk(out_data, |offset, chunk| {
        for (rel, slot) in chunk.iter_mut().enumerate() {
            let row = offset + rel;
            let wrow = &weights[row * in_features..(row + 1) * in_features];
            let mut acc = bias[row];
            for (wi, xi) in wrow.iter().zip(x) {
                acc += wi * xi;
            }
            *slot = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matvec() {
        let input = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let weights = vec![
            1.0, 0.0, 0.0, //
            0.0, 1.0, 1.0,
        ];
        let bias = vec![0.5, -1.0];
        let mut out = Tensor::zeros(&[2]);
        linear(&ParCtx::serial(), &input, &weights, &bias, &mut out);
        assert_eq!(out.as_slice(), &[1.5, 4.0]);
    }

    #[test]
    fn serial_parallel_agree() {
        let input = Tensor::from_vec(&[64], (0..64).map(|i| i as f32 * 0.1).collect());
        let weights: Vec<f32> = (0..64 * 10)
            .map(|i| ((i % 13) as f32 - 6.0) * 0.05)
            .collect();
        let bias = vec![0.1; 10];
        let mut a = Tensor::zeros(&[10]);
        let mut b = Tensor::zeros(&[10]);
        linear(&ParCtx::serial(), &input, &weights, &bias, &mut a);
        linear(&ParCtx::new(4), &input, &weights, &bias, &mut b);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "weight shape")]
    fn shape_mismatch_panics() {
        let input = Tensor::zeros(&[3]);
        let mut out = Tensor::zeros(&[2]);
        linear(&ParCtx::serial(), &input, &[0.0; 5], &[0.0; 2], &mut out);
    }
}
