//! GEMM-based convolution: the im2col + matrix-multiply lowering used by
//! production CNN libraries, as an alternative to the direct loop in
//! [`crate::dense::conv2d`]. Having both implementations mirrors real
//! kernel engineering (and the paper's premise that kernel quality varies
//! per backend) and gives the benches a same-semantics comparison point.

use crate::sparse::im2col;
use crate::{ParCtx, Tensor};

/// Dense row-major matrix multiply: `c[m×n] = a[m×k] · b[k×n]`,
/// parallelized over rows of `c` with an i-k-j loop order (streaming access
/// on `b` and `c`).
///
/// # Panics
///
/// Panics if the slice lengths disagree with the dimensions.
pub fn matmul(ctx: &ParCtx, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(c.len(), m * n, "out shape mismatch");
    ctx.for_each_block(c, n, |row, out_row| {
        out_row.iter_mut().for_each(|x| *x = 0.0);
        let a_row = &a[row * k..(row + 1) * k];
        for (kk, &a_val) in a_row.iter().enumerate() {
            if a_val == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &b_val) in out_row.iter_mut().zip(b_row) {
                *o += a_val * b_val;
            }
        }
    });
}

/// Computes `out = relu(conv2d(input, weights) + bias)` by lowering to
/// im2col + GEMM — identical semantics to [`crate::dense::conv2d`].
///
/// # Panics
///
/// Panics if shapes disagree.
pub fn conv2d_gemm(
    ctx: &ParCtx,
    params: &crate::dense::Conv2dParams,
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out: &mut Tensor,
) {
    let (cin, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    assert_eq!(cin, params.in_channels, "input channels mismatch");
    assert_eq!(
        out.shape(),
        &[params.out_channels, h, w],
        "output shape mismatch"
    );
    let taps = params.in_channels * params.kernel * params.kernel;
    assert_eq!(weights.len(), params.out_channels * taps, "weight shape");
    assert_eq!(bias.len(), params.out_channels, "bias shape");

    let patches = im2col(input, params.kernel, params.padding);
    let plane = h * w;
    matmul(
        ctx,
        weights,
        &patches,
        out.as_mut_slice(),
        params.out_channels,
        taps,
        plane,
    );
    for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
        *v = (*v + bias[i / plane]).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{conv2d, Conv2dParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(5);
        let (m, k, n) = (7, 11, 13);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut got = vec![0.0; m * n];
        matmul(&ParCtx::new(3), &a, &b, &mut got, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let expect: f32 = (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum();
                assert!((got[i * n + j] - expect).abs() < 1e-4, "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_identity() {
        let n = 5;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        let mut c = vec![0.0; n * n];
        matmul(&ParCtx::serial(), &eye, &b, &mut c, n, n, n);
        assert_eq!(c, b);
    }

    #[test]
    fn gemm_conv_matches_direct_conv() {
        let mut rng = StdRng::seed_from_u64(9);
        let params = Conv2dParams {
            in_channels: 5,
            out_channels: 7,
            kernel: 3,
            padding: 1,
        };
        let mut input = Tensor::zeros(&[5, 10, 10]);
        input
            .as_mut_slice()
            .iter_mut()
            .for_each(|x| *x = rng.gen_range(-1.0..1.0));
        let weights: Vec<f32> = (0..7 * 45).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let bias: Vec<f32> = (0..7).map(|_| rng.gen_range(-0.1..0.1)).collect();

        let mut direct = Tensor::zeros(&[7, 10, 10]);
        conv2d(
            &ParCtx::new(2),
            &params,
            &input,
            &weights,
            &bias,
            &mut direct,
        );
        let mut gemm = Tensor::zeros(&[7, 10, 10]);
        conv2d_gemm(&ParCtx::new(2), &params, &input, &weights, &bias, &mut gemm);
        assert!(
            direct.max_abs_diff(&gemm) < 1e-4,
            "diff {}",
            direct.max_abs_diff(&gemm)
        );
    }

    #[test]
    fn serial_and_parallel_gemm_agree() {
        let mut rng = StdRng::seed_from_u64(10);
        let (m, k, n) = (16, 9, 32);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut serial = vec![0.0; m * n];
        let mut parallel = vec![0.0; m * n];
        matmul(&ParCtx::serial(), &a, &b, &mut serial, m, k, n);
        matmul(&ParCtx::new(5), &a, &b, &mut parallel, m, k, n);
        assert_eq!(serial, parallel);
    }
}
