//! 2×2 max-pooling with stride 2.

use crate::{ParCtx, Tensor};

/// Computes 2×2/stride-2 max-pooling of `input` (`[C, H, W]`, `H` and `W`
/// even) into `out` (`[C, H/2, W/2]`).
///
/// # Panics
///
/// Panics if `H` or `W` is odd, or if `out` has the wrong shape.
pub fn maxpool2x2(ctx: &ParCtx, input: &Tensor, out: &mut Tensor) {
    let (c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2]);
    assert!(h % 2 == 0 && w % 2 == 0, "maxpool2x2 needs even dimensions");
    assert_eq!(out.shape(), &[c, h / 2, w / 2], "output shape mismatch");

    let (oh, ow) = (h / 2, w / 2);
    let in_data = input.as_slice();
    let out_data = out.as_mut_slice();
    ctx.for_each_chunk(out_data, |offset, chunk| {
        for (rel, slot) in chunk.iter_mut().enumerate() {
            let idx = offset + rel;
            let ch = idx / (oh * ow);
            let y = (idx % (oh * ow)) / ow;
            let x = idx % ow;
            let base = (ch * h + 2 * y) * w + 2 * x;
            let a = in_data[base];
            let b = in_data[base + 1];
            let c2 = in_data[base + w];
            let d = in_data[base + w + 1];
            *slot = a.max(b).max(c2).max(d);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maximum() {
        let input = Tensor::from_vec(
            &[1, 4, 4],
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 1., 2., 3., //
                4., 5., 6., 7.,
            ],
        );
        let mut out = Tensor::zeros(&[1, 2, 2]);
        maxpool2x2(&ParCtx::serial(), &input, &mut out);
        assert_eq!(out.as_slice(), &[6., 8., 9., 7.]);
    }

    #[test]
    fn multi_channel() {
        let mut input = Tensor::zeros(&[2, 2, 2]);
        input[(0, 0, 0)] = 1.0;
        input[(1, 1, 1)] = 2.0;
        let mut out = Tensor::zeros(&[2, 1, 1]);
        maxpool2x2(&ParCtx::new(2), &input, &mut out);
        assert_eq!(out.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn serial_parallel_agree() {
        let data: Vec<f32> = (0..3 * 8 * 8).map(|i| ((i * 37) % 101) as f32).collect();
        let input = Tensor::from_vec(&[3, 8, 8], data);
        let mut a = Tensor::zeros(&[3, 4, 4]);
        let mut b = Tensor::zeros(&[3, 4, 4]);
        maxpool2x2(&ParCtx::serial(), &input, &mut a);
        maxpool2x2(&ParCtx::new(5), &input, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn odd_input_panics() {
        let input = Tensor::zeros(&[1, 3, 4]);
        let mut out = Tensor::zeros(&[1, 1, 2]);
        maxpool2x2(&ParCtx::serial(), &input, &mut out);
    }
}
