//! The 9-stage AlexNet-dense network for CIFAR-10 (§4.1 of the paper):
//! four convolution layers, each followed by 2×2 max-pooling, and a final
//! fully-connected classifier. Each layer is one pipeline stage.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dense::{conv2d, linear, maxpool2x2, Conv2dParams};
use crate::{ParCtx, Tensor};

/// One conv layer plus the spatial size of its input.
#[derive(Debug, Clone, Copy)]
pub struct ConvLayerSpec {
    /// Convolution shape parameters.
    pub params: Conv2dParams,
    /// Square input spatial size (height = width).
    pub input_hw: usize,
}

/// Static layout of the CIFAR-10 AlexNet variant.
///
/// ```
/// use bt_kernels::dense::AlexNetLayout;
/// let layout = AlexNetLayout::cifar();
/// assert_eq!(AlexNetLayout::STAGES, 9);
/// assert_eq!(layout.stage_name(8), "fc");
/// ```
#[derive(Debug, Clone)]
pub struct AlexNetLayout {
    convs: [ConvLayerSpec; 4],
    fc_in: usize,
    fc_out: usize,
}

impl AlexNetLayout {
    /// Number of pipeline stages (conv+pool ×4, then fc).
    pub const STAGES: usize = 9;

    /// The standard CIFAR-10 configuration: 3→64→128→256→256 channels over
    /// 32→16→8→4→2 spatial sizes, then a 1024→10 classifier.
    pub fn cifar() -> AlexNetLayout {
        let conv = |cin, cout, hw| ConvLayerSpec {
            params: Conv2dParams {
                in_channels: cin,
                out_channels: cout,
                kernel: 3,
                padding: 1,
            },
            input_hw: hw,
        };
        AlexNetLayout {
            convs: [
                conv(3, 64, 32),
                conv(64, 128, 16),
                conv(128, 256, 8),
                conv(256, 256, 4),
            ],
            fc_in: 256 * 2 * 2,
            fc_out: 10,
        }
    }

    /// The conv layers in order.
    pub fn convs(&self) -> &[ConvLayerSpec; 4] {
        &self.convs
    }

    /// Classifier input features.
    pub fn fc_in(&self) -> usize {
        self.fc_in
    }

    /// Classifier output classes.
    pub fn fc_out(&self) -> usize {
        self.fc_out
    }

    /// Name of stage `i` (`conv1`, `pool1`, …, `fc`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 9`.
    pub fn stage_name(&self, i: usize) -> &'static str {
        const NAMES: [&str; AlexNetLayout::STAGES] = [
            "conv1", "pool1", "conv2", "pool2", "conv3", "pool3", "conv4", "pool4", "fc",
        ];
        NAMES[i]
    }

    /// Shape of the activation tensor flowing *into* stage `i`.
    pub fn input_shape(&self, i: usize) -> Vec<usize> {
        self.shape_table()[i].clone()
    }

    fn shape_table(&self) -> Vec<Vec<usize>> {
        let mut shapes = Vec::with_capacity(Self::STAGES + 1);
        shapes.push(vec![3, 32, 32]);
        for layer in self.convs.iter() {
            let hw = layer.input_hw;
            shapes.push(vec![layer.params.out_channels, hw, hw]); // after conv
            shapes.push(vec![layer.params.out_channels, hw / 2, hw / 2]); // after pool
        }
        shapes.push(vec![self.fc_out]);
        shapes
    }

    /// Shape of the activation produced by stage `i`.
    pub fn output_shape(&self, i: usize) -> Vec<usize> {
        self.shape_table()[i + 1].clone()
    }

    /// FLOPs of stage `i` for one image.
    pub fn stage_flops(&self, i: usize) -> f64 {
        match i {
            0 | 2 | 4 | 6 => {
                let layer = &self.convs[i / 2];
                layer.params.flops(layer.input_hw, layer.input_hw)
            }
            8 => 2.0 * (self.fc_in * self.fc_out) as f64,
            // Pool: 3 compares per output element.
            _ => {
                let shape = self.output_shape(i);
                3.0 * shape.iter().product::<usize>() as f64
            }
        }
    }

    /// Bytes of DRAM traffic of stage `i` for one image (activations in +
    /// out + weights once).
    pub fn stage_bytes(&self, i: usize) -> f64 {
        let input: usize = self.shape_table()[i].iter().product();
        let output: usize = self.shape_table()[i + 1].iter().product();
        let weights = match i {
            0 | 2 | 4 | 6 => {
                let p = &self.convs[i / 2].params;
                p.out_channels * p.in_channels * p.kernel * p.kernel
            }
            8 => self.fc_in * self.fc_out,
            _ => 0,
        };
        4.0 * (input + output + weights) as f64
    }
}

/// AlexNet-dense with concrete weights; provides per-stage forward kernels.
#[derive(Debug, Clone)]
pub struct AlexNetDense {
    layout: AlexNetLayout,
    conv_weights: Vec<Vec<f32>>,
    conv_biases: Vec<Vec<f32>>,
    fc_weights: Vec<f32>,
    fc_bias: Vec<f32>,
}

impl AlexNetDense {
    /// A network with deterministic, He-scaled random weights.
    pub fn random(layout: AlexNetLayout, seed: u64) -> AlexNetDense {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv_weights = Vec::new();
        let mut conv_biases = Vec::new();
        for layer in layout.convs.iter() {
            let p = &layer.params;
            let fan_in = p.in_channels * p.kernel * p.kernel;
            let scale = (2.0 / fan_in as f32).sqrt();
            let n = p.out_channels * fan_in;
            conv_weights.push((0..n).map(|_| rng.gen_range(-scale..scale)).collect());
            conv_biases.push(vec![0.01; p.out_channels]);
        }
        let scale = (2.0 / layout.fc_in as f32).sqrt();
        let fc_weights = (0..layout.fc_in * layout.fc_out)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let fc_bias = vec![0.0; layout.fc_out];
        AlexNetDense {
            layout,
            conv_weights,
            conv_biases,
            fc_weights,
            fc_bias,
        }
    }

    /// The network layout.
    pub fn layout(&self) -> &AlexNetLayout {
        &self.layout
    }

    /// Weights of conv layer `li` (used by the sparse variant's pruner).
    pub fn conv_weights(&self, li: usize) -> &[f32] {
        &self.conv_weights[li]
    }

    /// Biases of conv layer `li`.
    pub fn conv_biases(&self, li: usize) -> &[f32] {
        &self.conv_biases[li]
    }

    /// Runs stage `stage` on `input`, returning the produced activation.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= 9` or `input` has the wrong shape for the stage.
    pub fn run_stage(&self, ctx: &ParCtx, stage: usize, input: &Tensor) -> Tensor {
        assert!(stage < AlexNetLayout::STAGES, "stage out of range");
        let out_shape = self.layout.output_shape(stage);
        let mut out = Tensor::zeros(&out_shape);
        match stage {
            0 | 2 | 4 | 6 => {
                let li = stage / 2;
                conv2d(
                    ctx,
                    &self.layout.convs[li].params,
                    input,
                    &self.conv_weights[li],
                    &self.conv_biases[li],
                    &mut out,
                );
            }
            8 => linear(ctx, input, &self.fc_weights, &self.fc_bias, &mut out),
            _ => maxpool2x2(ctx, input, &mut out),
        }
        out
    }

    /// Full forward pass; returns class logits.
    pub fn forward(&self, ctx: &ParCtx, image: &Tensor) -> Tensor {
        let mut act = image.clone();
        for stage in 0..AlexNetLayout::STAGES {
            act = self.run_stage(ctx, stage, &act);
        }
        act
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cifar::CifarStream;

    #[test]
    fn shapes_chain_correctly() {
        let layout = AlexNetLayout::cifar();
        for i in 0..AlexNetLayout::STAGES - 1 {
            assert_eq!(
                layout.output_shape(i),
                layout.shape_table()[i + 1],
                "stage {i}"
            );
        }
        assert_eq!(layout.output_shape(8), vec![10]);
        assert_eq!(layout.fc_in(), 1024);
    }

    #[test]
    fn forward_produces_logits() {
        let net = AlexNetDense::random(AlexNetLayout::cifar(), 1);
        let img = CifarStream::new(0).next_image();
        let logits = net.forward(&ParCtx::new(4), &img);
        assert_eq!(logits.shape(), &[10]);
        assert!(logits.as_slice().iter().all(|x| x.is_finite()));
        // Non-degenerate: logits differ.
        let first = logits.as_slice()[0];
        assert!(logits.as_slice().iter().any(|&x| (x - first).abs() > 1e-6));
    }

    #[test]
    fn stagewise_equals_forward() {
        let net = AlexNetDense::random(AlexNetLayout::cifar(), 2);
        let img = CifarStream::new(1).next_image();
        let ctx = ParCtx::new(2);
        let full = net.forward(&ctx, &img);
        let mut act = img;
        for s in 0..9 {
            act = net.run_stage(&ctx, s, &act);
        }
        assert!(full.max_abs_diff(&act) < 1e-6);
    }

    #[test]
    fn conv_stages_dominate_flops() {
        let layout = AlexNetLayout::cifar();
        let conv_flops: f64 = [0, 2, 4, 6].iter().map(|&i| layout.stage_flops(i)).sum();
        let other: f64 = [1, 3, 5, 7, 8].iter().map(|&i| layout.stage_flops(i)).sum();
        assert!(conv_flops > 20.0 * other);
    }

    #[test]
    fn deterministic_weights() {
        let a = AlexNetDense::random(AlexNetLayout::cifar(), 7);
        let b = AlexNetDense::random(AlexNetLayout::cifar(), 7);
        assert_eq!(a.conv_weights(0), b.conv_weights(0));
        assert_eq!(a.fc_weights.len(), 1024 * 10);
    }
}
