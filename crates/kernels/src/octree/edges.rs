//! Stage 5: edge counting — how many octree levels each radix-tree node
//! (internal *and* leaf) spans.
//!
//! Following Karras 2012 §4, a node whose prefix length crosses one or more
//! 3-bit boundaries relative to its parent introduces that many octree
//! cells. Leaves are full-resolution voxels (prefix length 30 → level 10);
//! `max_depth` truncates the octree at a coarser voxel resolution, the
//! OctoMap-style configuration.

use crate::octree::{RadixTree, MORTON_BITS};
use crate::ParCtx;

/// Octree level of a node with common-prefix length `prefix_len`, clamped
/// to `max_depth`.
#[inline]
fn level(prefix_len: u32, max_depth: u32) -> u32 {
    (prefix_len / 3).min(max_depth)
}

/// Computes the per-node octree edge counts into `out`, which gets length
/// `2n − 1` for `n` keys: entries `0..n-1` are the internal nodes, entries
/// `n-1..2n-1` the leaves. Entry `x` is the number of octree cells node `x`
/// introduces: its own (clamped) octree level minus its parent's.
///
/// # Panics
///
/// Panics if `max_depth` is 0 or exceeds `MORTON_BITS / 3`.
pub fn count_edges(ctx: &ParCtx, tree: &RadixTree, max_depth: u32, out: &mut Vec<u32>) {
    assert!(
        (1..=MORTON_BITS / 3).contains(&max_depth),
        "max_depth must be in 1..=10"
    );
    let internal = tree.internal_count();
    let leaves = tree.keys().len();
    out.clear();
    out.resize(internal + leaves, 0);
    ctx.for_each_chunk(out, |offset, chunk| {
        for (rel, slot) in chunk.iter_mut().enumerate() {
            let x = offset + rel;
            let (own_level, parent) = if x < internal {
                (level(tree.prefix_len(x), max_depth), tree.parent(x))
            } else {
                (max_depth, tree.leaf_parent(x - internal))
            };
            let parent_level = if parent == u32::MAX {
                0
            } else {
                level(tree.prefix_len(parent as usize), max_depth)
            };
            debug_assert!(own_level >= parent_level, "child prefixes extend parents'");
            *slot = own_level - parent_level;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn tree(seed: u64, n: usize) -> RadixTree {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(rng.gen_range(0..(1u32 << MORTON_BITS)));
        }
        let keys: Vec<u32> = set.into_iter().collect();
        RadixTree::build(&ParCtx::new(4), &keys)
    }

    #[test]
    fn output_length_is_2n_minus_1() {
        let t = tree(1, 300);
        let mut edges = Vec::new();
        count_edges(&ParCtx::new(4), &t, 10, &mut edges);
        assert_eq!(edges.len(), 2 * 300 - 1);
    }

    #[test]
    fn edges_are_bounded_by_depth() {
        let t = tree(1, 300);
        for depth in [1, 4, 10] {
            let mut edges = Vec::new();
            count_edges(&ParCtx::new(4), &t, depth, &mut edges);
            assert!(edges.iter().all(|&e| e <= depth));
        }
    }

    #[test]
    fn leaf_levels_telescope_to_max_depth() {
        // Along any root-to-leaf path, edges sum to the leaf's clamped
        // level, i.e. exactly max_depth (leaves are full-resolution).
        let t = tree(2, 200);
        let depth = 6;
        let mut edges = Vec::new();
        count_edges(&ParCtx::serial(), &t, depth, &mut edges);
        let internal = t.internal_count();
        for q in 0..t.keys().len() {
            let mut acc = edges[internal + q];
            let mut cur = t.leaf_parent(q);
            loop {
                acc += edges[cur as usize];
                let p = t.parent(cur as usize);
                if p == u32::MAX {
                    break;
                }
                cur = p;
            }
            assert_eq!(acc, depth, "leaf {q}");
        }
    }

    #[test]
    fn internal_levels_telescope() {
        let t = tree(3, 200);
        let mut edges = Vec::new();
        count_edges(&ParCtx::serial(), &t, 10, &mut edges);
        for i in 0..t.internal_count() {
            let mut acc = 0u32;
            let mut cur = i as u32;
            loop {
                acc += edges[cur as usize];
                let p = t.parent(cur as usize);
                if p == u32::MAX {
                    break;
                }
                cur = p;
            }
            assert_eq!(acc, t.prefix_len(i) / 3, "node {i}");
        }
    }

    #[test]
    fn octant_keys_give_root_children() {
        // 8 keys in distinct octants, depth 1: each leaf spans exactly one
        // level; internal nodes (prefix < 3 bits) span none.
        let keys: Vec<u32> = (0..8u32).map(|d| d << (MORTON_BITS - 3)).collect();
        let t = RadixTree::build(&ParCtx::serial(), &keys);
        let mut edges = Vec::new();
        count_edges(&ParCtx::serial(), &t, 1, &mut edges);
        let internal = t.internal_count();
        assert!(edges[..internal].iter().all(|&e| e == 0));
        assert!(edges[internal..].iter().all(|&e| e == 1));
    }

    #[test]
    fn serial_parallel_agree() {
        let t = tree(3, 400);
        let mut a = Vec::new();
        let mut b = Vec::new();
        count_edges(&ParCtx::serial(), &t, 7, &mut a);
        count_edges(&ParCtx::new(8), &t, 7, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "max_depth")]
    fn zero_depth_panics() {
        let t = tree(4, 10);
        let mut edges = Vec::new();
        count_edges(&ParCtx::serial(), &t, 0, &mut edges);
    }
}
