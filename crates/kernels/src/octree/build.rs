//! Stage 7: octree construction from the radix tree, edge counts, and their
//! prefix sum (Karras 2012, §4).
//!
//! Every radix-tree node (internal or leaf) whose prefix crosses `edges[x]`
//! 3-bit boundaries contributes a chain of `edges[x]` octree cells; cell 0
//! is the explicit root. Parents within a chain are the chain predecessor;
//! a chain's top cell attaches to the deepest cell of the nearest radix
//! ancestor that produced cells (pointer chasing — the irregular part the
//! paper highlights as GPU-hostile).

use crate::octree::{RadixTree, MORTON_BITS};
use crate::ParCtx;

/// Marker for an absent child slot.
const NO_CHILD: u32 = u32::MAX;

/// A linked octree over Morton-coded points.
#[derive(Debug, Clone)]
pub struct Octree {
    children: Vec<[u32; 8]>,
    level: Vec<u8>,
    code: Vec<u32>,
    first_key: Vec<u32>,
    last_key: Vec<u32>,
    max_depth: u32,
}

impl Octree {
    /// Number of cells, including the root.
    pub fn cell_count(&self) -> usize {
        self.level.len()
    }

    /// The root cell index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// The depth the octree was truncated to.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Children of `cell` (`u32::MAX` marks empty slots).
    pub fn children(&self, cell: usize) -> &[u32; 8] {
        &self.children[cell]
    }

    /// Depth of `cell` (root = 0).
    pub fn level(&self, cell: usize) -> u32 {
        self.level[cell] as u32
    }

    /// Morton prefix of `cell`: the high `3·level` bits of every key it
    /// covers, right-aligned.
    pub fn code(&self, cell: usize) -> u32 {
        self.code[cell]
    }

    /// Range of key indices covered by `cell` (inclusive).
    pub fn key_range(&self, cell: usize) -> (usize, usize) {
        (self.first_key[cell] as usize, self.last_key[cell] as usize)
    }

    /// Whether any point's Morton code falls inside `cell`'s voxel.
    /// Always true for cells of this construction (they exist only where
    /// keys do), exposed for symmetry with occupancy-map queries.
    pub fn is_occupied(&self, cell: usize) -> bool {
        let (lo, hi) = self.key_range(cell);
        lo <= hi
    }

    /// Iterates over the cells at exactly `depth` — the occupancy voxels
    /// OctoMap-style consumers query at their mapping resolution.
    pub fn cells_at_depth(&self, depth: u32) -> impl Iterator<Item = usize> + '_ {
        (0..self.cell_count()).filter(move |&c| self.level(c) == depth)
    }

    /// Number of children of `cell`.
    pub fn child_count(&self, cell: usize) -> usize {
        self.children[cell]
            .iter()
            .filter(|&&c| c != NO_CHILD)
            .count()
    }

    /// Whether `cell` has no children (a leaf of the truncated octree).
    pub fn is_leaf(&self, cell: usize) -> bool {
        self.child_count(cell) == 0
    }

    /// The axis-aligned voxel of `cell` in the unit cube:
    /// `(min corner, side length)`.
    pub fn cell_bounds(&self, cell: usize) -> ([f32; 3], f32) {
        let level = self.level(cell);
        let side = 1.0 / (1u32 << level) as f32;
        // De-interleave the cell's Morton prefix back into grid coords.
        let code = self.code(cell);
        let mut coords = [0u32; 3];
        for bit in 0..level {
            for (axis, coord) in coords.iter_mut().enumerate() {
                let b = (code >> (3 * (level - 1 - bit) + axis as u32)) & 1;
                *coord = (*coord << 1) | b;
            }
        }
        (
            [
                coords[0] as f32 * side,
                coords[1] as f32 * side,
                coords[2] as f32 * side,
            ],
            side,
        )
    }

    /// Walks from the root towards `key`, returning the deepest existing
    /// cell whose prefix contains it.
    pub fn locate(&self, key: u32) -> usize {
        let mut cell = 0usize;
        loop {
            let next_level = self.level(cell) + 1;
            if next_level > self.max_depth {
                return cell;
            }
            let digit = (key >> (MORTON_BITS - 3 * next_level)) & 7;
            let child = self.children[cell][digit as usize];
            if child == NO_CHILD {
                return cell;
            }
            let child = child as usize;
            debug_assert_eq!(
                self.code(child),
                key >> (MORTON_BITS - 3 * self.level(child))
            );
            cell = child;
        }
    }
}

/// Builds the octree. `edges` and `offsets` must come from
/// [`crate::octree::count_edges`] (with the same `max_depth`) and
/// [`crate::octree::exclusive_scan`] over the same `tree`; `total` is the
/// scan's grand total.
///
/// # Panics
///
/// Panics if array lengths are inconsistent with `tree`.
pub fn build_octree(
    ctx: &ParCtx,
    tree: &RadixTree,
    edges: &[u32],
    offsets: &[u32],
    total: u32,
    max_depth: u32,
) -> Octree {
    let internal = tree.internal_count();
    let n_keys = tree.keys().len();
    let n_nodes = internal + n_keys;
    assert_eq!(edges.len(), n_nodes, "edges length mismatch");
    assert_eq!(offsets.len(), n_nodes, "offsets length mismatch");

    let cells = total as usize + 1;
    let mut level = vec![0u8; cells];
    let mut code = vec![0u32; cells];
    let mut first_key = vec![0u32; cells];
    let mut last_key = vec![0u32; cells];
    // Parent of each non-root cell, filled in parallel; child pointers are
    // linked serially afterwards to avoid write races.
    let mut parent_of = vec![NO_CHILD; cells];

    // Root covers everything.
    last_key[0] = (n_keys - 1) as u32;

    let clamped_level = |i: usize| (tree.prefix_len(i) / 3).min(max_depth);

    // anchor(j): deepest cell at or above *internal* radix node j.
    let anchor = |j: u32| -> u32 {
        let mut cur = j;
        loop {
            if edges[cur as usize] > 0 {
                return offsets[cur as usize] + edges[cur as usize]; // 1-based cell idx
            }
            let p = tree.parent(cur as usize);
            if p == u32::MAX {
                return 0; // root cell
            }
            cur = p;
        }
    };

    struct CellInit {
        idx: u32,
        level: u8,
        code: u32,
        first: u32,
        last: u32,
        parent: u32,
    }

    // Parallel: one chain of cells per radix node (internal or leaf) with
    // edges > 0.
    let inits: Vec<CellInit> = {
        let mut slots: Vec<Vec<CellInit>> = Vec::with_capacity(n_nodes);
        slots.resize_with(n_nodes, Vec::new);
        ctx.for_each_chunk(&mut slots, |offset, chunk| {
            for (rel, slot) in chunk.iter_mut().enumerate() {
                let x = offset + rel;
                let e = edges[x];
                if e == 0 {
                    continue;
                }
                let (parent_node, key, first, last) = if x < internal {
                    (
                        tree.parent(x),
                        tree.keys()[tree.first(x)],
                        tree.first(x) as u32,
                        tree.last(x) as u32,
                    )
                } else {
                    let q = x - internal;
                    (tree.leaf_parent(q), tree.keys()[q], q as u32, q as u32)
                };
                let parent_level = if parent_node == u32::MAX {
                    0
                } else {
                    clamped_level(parent_node as usize)
                };
                let above = if parent_node == u32::MAX {
                    0
                } else {
                    anchor(parent_node)
                };
                let base = offsets[x] + 1; // cell index of the chain top
                for k in 0..e {
                    let lvl = parent_level + 1 + k;
                    let parent_cell = if k == 0 { above } else { base + k - 1 };
                    slot.push(CellInit {
                        idx: base + k,
                        level: lvl as u8,
                        code: key >> (MORTON_BITS - 3 * lvl),
                        first,
                        last,
                        parent: parent_cell,
                    });
                }
            }
        });
        slots.into_iter().flatten().collect()
    };

    for init in &inits {
        let c = init.idx as usize;
        level[c] = init.level;
        code[c] = init.code;
        first_key[c] = init.first;
        last_key[c] = init.last;
        parent_of[c] = init.parent;
    }

    // Serial child linking.
    let mut children = vec![[NO_CHILD; 8]; cells];
    for c in 1..cells {
        let p = parent_of[c] as usize;
        debug_assert_eq!(
            level[c] as usize,
            level[p] as usize + 1,
            "levels must chain"
        );
        let digit = (code[c] & 7) as usize;
        debug_assert_eq!(
            children[p][digit], NO_CHILD,
            "cell slot claimed twice (p={p}, digit={digit})"
        );
        children[p][digit] = c as u32;
    }

    Octree {
        children,
        level,
        code,
        first_key,
        last_key,
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::{count_edges, exclusive_scan};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pipeline(keys: &[u32], depth: u32, ctx: &ParCtx) -> Octree {
        let tree = RadixTree::build(ctx, keys);
        let mut edges = Vec::new();
        count_edges(ctx, &tree, depth, &mut edges);
        let mut offsets = Vec::new();
        let total = exclusive_scan(ctx, &edges, &mut offsets);
        build_octree(ctx, &tree, &edges, &offsets, total, depth)
    }

    fn unique_keys(seed: u64, n: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(rng.gen_range(0..(1u32 << MORTON_BITS)));
        }
        set.into_iter().collect()
    }

    #[test]
    fn cell_count_is_one_plus_edge_total() {
        let keys = unique_keys(1, 500);
        let ctx = ParCtx::new(4);
        let tree = RadixTree::build(&ctx, &keys);
        let mut edges = Vec::new();
        count_edges(&ctx, &tree, 6, &mut edges);
        let mut offsets = Vec::new();
        let total = exclusive_scan(&ctx, &edges, &mut offsets);
        let octree = build_octree(&ctx, &tree, &edges, &offsets, total, 6);
        assert_eq!(octree.cell_count(), total as usize + 1);
    }

    #[test]
    fn child_levels_increase_by_one() {
        let keys = unique_keys(2, 300);
        let octree = pipeline(&keys, 8, &ParCtx::new(4));
        for c in 0..octree.cell_count() {
            for &child in octree.children(c) {
                if child != NO_CHILD {
                    assert_eq!(octree.level(child as usize), octree.level(c) + 1);
                }
            }
        }
    }

    #[test]
    fn child_codes_extend_parent_codes() {
        let keys = unique_keys(3, 300);
        let octree = pipeline(&keys, 10, &ParCtx::new(4));
        for c in 0..octree.cell_count() {
            for (digit, &child) in octree.children(c).iter().enumerate() {
                if child != NO_CHILD {
                    let child = child as usize;
                    assert_eq!(octree.code(child) >> 3, octree.code(c), "prefix extends");
                    assert_eq!((octree.code(child) & 7) as usize, digit, "digit slot");
                }
            }
        }
    }

    #[test]
    fn cell_codes_are_unique_per_level() {
        let keys = unique_keys(4, 400);
        let octree = pipeline(&keys, 7, &ParCtx::new(4));
        let mut seen = std::collections::HashSet::new();
        for c in 0..octree.cell_count() {
            assert!(
                seen.insert((octree.level(c), octree.code(c))),
                "duplicate cell (level {}, code {:#x})",
                octree.level(c),
                octree.code(c)
            );
        }
    }

    #[test]
    fn every_key_locates_to_its_full_depth_voxel() {
        let keys = unique_keys(5, 250);
        let depth = 10;
        let octree = pipeline(&keys, depth, &ParCtx::new(4));
        for (idx, &key) in keys.iter().enumerate() {
            let cell = octree.locate(key);
            // At full depth every key gets its own leaf voxel.
            assert_eq!(octree.level(cell), depth, "key {idx}");
            assert_eq!(octree.key_range(cell), (idx, idx));
            assert_eq!(octree.code(cell), key);
        }
    }

    #[test]
    fn truncated_depth_still_covers_every_key() {
        let keys = unique_keys(6, 300);
        let depth = 3;
        let octree = pipeline(&keys, depth, &ParCtx::new(4));
        for (idx, &key) in keys.iter().enumerate() {
            let cell = octree.locate(key);
            let (lo, hi) = octree.key_range(cell);
            assert!((lo..=hi).contains(&idx), "key {idx} in [{lo},{hi}]");
            assert!(octree.level(cell) <= depth);
            let lvl = octree.level(cell);
            if lvl > 0 {
                assert_eq!(octree.code(cell), key >> (MORTON_BITS - 3 * lvl));
            }
        }
    }

    #[test]
    fn key_ranges_nest() {
        let keys = unique_keys(7, 200);
        let octree = pipeline(&keys, 9, &ParCtx::new(4));
        for c in 0..octree.cell_count() {
            let (plo, phi) = octree.key_range(c);
            for &child in octree.children(c) {
                if child != NO_CHILD {
                    let (clo, chi) = octree.key_range(child as usize);
                    assert!(plo <= clo && chi <= phi, "child range escapes parent");
                }
            }
        }
    }

    #[test]
    fn octant_keys_fill_root_children() {
        let keys: Vec<u32> = (0..8u32).map(|d| d << (MORTON_BITS - 3)).collect();
        let octree = pipeline(&keys, 1, &ParCtx::serial());
        assert_eq!(octree.cell_count(), 9);
        for digit in 0..8 {
            let child = octree.children(0)[digit];
            assert_ne!(child, NO_CHILD, "octant {digit} missing");
            assert_eq!(octree.code(child as usize) as usize, digit);
        }
    }

    #[test]
    fn occupancy_queries_and_leaves() {
        let keys = unique_keys(10, 200);
        let depth = 4;
        let octree = pipeline(&keys, depth, &ParCtx::new(2));
        // Every depth-`depth` cell is a leaf of the truncated tree, and the
        // deepest-level cells partition the key set.
        let mut covered = 0usize;
        for c in octree.cells_at_depth(depth) {
            assert!(octree.is_leaf(c), "cell {c} at max depth must be a leaf");
            assert!(octree.is_occupied(c));
            let (lo, hi) = octree.key_range(c);
            covered += hi - lo + 1;
        }
        assert_eq!(covered, keys.len(), "depth-level cells cover every key");
        // Non-leaves have 1..=8 children.
        for c in 0..octree.cell_count() {
            assert!(octree.child_count(c) <= 8);
        }
    }

    #[test]
    fn cell_bounds_contain_their_points() {
        use crate::octree::morton_decode;
        let keys = unique_keys(11, 150);
        let depth = 5;
        let octree = pipeline(&keys, depth, &ParCtx::new(2));
        for &key in keys.iter().step_by(7) {
            let cell = octree.locate(key);
            let ([x0, y0, z0], side) = octree.cell_bounds(cell);
            let p = morton_decode(key);
            let eps = 1e-5;
            assert!(
                p[0] >= x0 - eps && p[0] < x0 + side + eps,
                "x {p:?} in [{x0}, {})",
                x0 + side
            );
            assert!(p[1] >= y0 - eps && p[1] < y0 + side + eps);
            assert!(p[2] >= z0 - eps && p[2] < z0 + side + eps);
        }
        // The root voxel is the whole unit cube.
        assert_eq!(octree.cell_bounds(0), ([0.0, 0.0, 0.0], 1.0));
    }

    #[test]
    fn serial_parallel_build_identical() {
        let keys = unique_keys(8, 350);
        let a = pipeline(&keys, 6, &ParCtx::serial());
        let b = pipeline(&keys, 6, &ParCtx::new(8));
        assert_eq!(a.cell_count(), b.cell_count());
        for c in 0..a.cell_count() {
            assert_eq!(a.children(c), b.children(c));
            assert_eq!(a.code(c), b.code(c));
        }
    }

    #[test]
    fn matches_pointer_based_reference_octree() {
        // Independent reference: insert every key into a pointer-based
        // octree; compare the (level, code) cell sets.
        let keys = unique_keys(9, 150);
        let depth = 5;
        let octree = pipeline(&keys, depth, &ParCtx::new(4));

        let mut reference = std::collections::HashSet::new();
        reference.insert((0u32, 0u32)); // root
        for &key in &keys {
            for lvl in 1..=depth {
                reference.insert((lvl, key >> (MORTON_BITS - 3 * lvl)));
            }
        }
        let mut got = std::collections::HashSet::new();
        for c in 0..octree.cell_count() {
            got.insert((octree.level(c), octree.code(c)));
        }
        assert_eq!(got, reference);
    }
}
