//! 30-bit Morton (Z-order) encoding of 3-D points in the unit cube.

use crate::pointcloud::Point3;
use crate::ParCtx;

/// Bits per Morton code (10 per axis → octree depth 10).
pub const MORTON_BITS: u32 = 30;

/// Spreads the low 10 bits of `v` so consecutive bits land 3 apart.
fn expand_bits(v: u32) -> u32 {
    let mut x = v & 0x3ff;
    x = (x | (x << 16)) & 0x030000FF;
    x = (x | (x << 8)) & 0x0300F00F;
    x = (x | (x << 4)) & 0x030C30C3;
    x = (x | (x << 2)) & 0x09249249;
    x
}

/// Inverse of [`expand_bits`].
fn compact_bits(mut x: u32) -> u32 {
    x &= 0x09249249;
    x = (x | (x >> 2)) & 0x030C30C3;
    x = (x | (x >> 4)) & 0x0300F00F;
    x = (x | (x >> 8)) & 0x030000FF;
    x = (x | (x >> 16)) & 0x3ff;
    x
}

/// Encodes a point with coordinates in `[0, 1)` into a 30-bit Morton code
/// (x bits in positions 0, 3, 6 …; y in 1, 4, 7 …; z in 2, 5, 8 …).
///
/// Coordinates outside `[0, 1)` are clamped.
///
/// ```
/// use bt_kernels::octree::morton_encode;
/// assert_eq!(morton_encode([0.0, 0.0, 0.0]), 0);
/// // points in the same cell share their code's high bits
/// let a = morton_encode([0.9, 0.9, 0.9]);
/// assert!(a < (1 << 30));
/// ```
pub fn morton_encode(p: Point3) -> u32 {
    let quant = |c: f32| -> u32 {
        let scaled = (c.clamp(0.0, 0.999_999) * 1024.0) as u32;
        scaled.min(1023)
    };
    expand_bits(quant(p[0])) | (expand_bits(quant(p[1])) << 1) | (expand_bits(quant(p[2])) << 2)
}

/// Decodes a Morton code back to the cell-corner coordinates (each in
/// `[0, 1)`, quantized to 1/1024).
pub fn morton_decode(code: u32) -> Point3 {
    [
        compact_bits(code) as f32 / 1024.0,
        compact_bits(code >> 1) as f32 / 1024.0,
        compact_bits(code >> 2) as f32 / 1024.0,
    ]
}

/// Stage 1 kernel: encodes a whole cloud in parallel.
pub fn morton_encode_cloud(ctx: &ParCtx, cloud: &[Point3], out: &mut Vec<u32>) {
    out.clear();
    out.resize(cloud.len(), 0);
    ctx.for_each_chunk(out, |offset, chunk| {
        for (i, slot) in chunk.iter_mut().enumerate() {
            *slot = morton_encode(cloud[offset + i]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointcloud::{CloudShape, PointCloudStream};

    #[test]
    fn codes_fit_in_30_bits() {
        let cloud = PointCloudStream::new(CloudShape::Uniform, 1).next_cloud(5000);
        for p in &cloud {
            assert!(morton_encode(*p) < (1 << 30));
        }
    }

    #[test]
    fn encode_decode_round_trip_within_quantization() {
        let cloud = PointCloudStream::new(CloudShape::Clustered, 2).next_cloud(1000);
        for p in &cloud {
            let q = morton_decode(morton_encode(*p));
            for axis in 0..3 {
                assert!((p[axis] - q[axis]).abs() < 1.0 / 1024.0 + 1e-6);
            }
        }
    }

    #[test]
    fn spatial_locality() {
        // Nearby points share high bits more than distant ones.
        let a = morton_encode([0.5, 0.5, 0.5]);
        let near = morton_encode([0.5 + 1.5 / 1024.0, 0.5, 0.5]);
        let far = morton_encode([0.95, 0.1, 0.9]);
        let lz = |x: u32, y: u32| (x ^ y).leading_zeros();
        assert!(lz(a, near) > lz(a, far));
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(morton_encode([-1.0, -0.5, -0.1]), 0);
        let max = morton_encode([2.0, 2.0, 2.0]);
        assert_eq!(max, (1 << 30) - 1);
    }

    #[test]
    fn parallel_encode_matches_serial() {
        let cloud = PointCloudStream::new(CloudShape::Surface, 3).next_cloud(3000);
        let mut par = Vec::new();
        morton_encode_cloud(&ParCtx::new(4), &cloud, &mut par);
        let serial: Vec<u32> = cloud.iter().map(|&p| morton_encode(p)).collect();
        assert_eq!(par, serial);
    }

    #[test]
    fn axes_interleave_correctly() {
        // x = 1 alone sets bit 0; y bit 1; z bit 2.
        let eps = 1.0 / 1024.0;
        assert_eq!(morton_encode([eps, 0.0, 0.0]), 0b001);
        assert_eq!(morton_encode([0.0, eps, 0.0]), 0b010);
        assert_eq!(morton_encode([0.0, 0.0, eps]), 0b100);
    }
}
