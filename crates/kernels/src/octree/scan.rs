//! Stage 6: exclusive prefix sum.

use crate::ParCtx;

/// Writes the exclusive prefix sum of `input` into `out` and returns the
/// total. Two-pass parallel scan: per-chunk partial sums, a serial scan of
/// the partials, then a parallel add-offsets pass — the classic
/// work-efficient structure (two kernel launches on a GPU).
pub fn exclusive_scan(ctx: &ParCtx, input: &[u32], out: &mut Vec<u32>) -> u32 {
    out.clear();
    out.resize(input.len(), 0);
    let n = input.len();
    if n == 0 {
        return 0;
    }
    let workers = ctx.threads().min(n);
    let chunk = n.div_ceil(workers);

    // Pass 1: local exclusive scans.
    ctx.for_each_chunk(out, |offset, slots| {
        let mut acc = 0u32;
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = acc;
            acc += input[offset + i];
        }
    });

    // Serial scan of per-chunk totals.
    let mut totals = Vec::with_capacity(workers);
    let mut acc = 0u32;
    let mut starts = Vec::with_capacity(workers);
    let mut offset = 0;
    while offset < n {
        let end = (offset + chunk).min(n);
        starts.push((offset, acc));
        let chunk_total: u32 = input[offset..end].iter().sum();
        acc += chunk_total;
        totals.push(chunk_total);
        offset = end;
    }
    let grand_total = acc;

    // Pass 2: add chunk offsets.
    ctx.for_each_chunk(out, |offset, slots| {
        // Find this chunk's base offset; chunk boundaries are identical to
        // pass 1 because for_each_chunk uses deterministic static chunking.
        let base = starts
            .iter()
            .rev()
            .find(|(s, _)| *s <= offset)
            .map(|(_, acc)| *acc)
            .unwrap_or(0);
        // Offsets within a chunk already include the local scan; only add
        // the base when the chunk start matches exactly.
        debug_assert!(starts.iter().any(|(s, _)| *s == offset));
        for slot in slots.iter_mut() {
            *slot += base;
        }
    });
    grand_total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(input: &[u32]) -> (Vec<u32>, u32) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u32;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn matches_reference() {
        let input: Vec<u32> = (0..1000).map(|i| (i * 7 % 13) as u32).collect();
        let (expect, total) = reference(&input);
        let mut out = Vec::new();
        let got_total = exclusive_scan(&ParCtx::new(4), &input, &mut out);
        assert_eq!(out, expect);
        assert_eq!(got_total, total);
    }

    #[test]
    fn empty_input() {
        let mut out = vec![1, 2, 3];
        assert_eq!(exclusive_scan(&ParCtx::new(2), &[], &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn single_element() {
        let mut out = Vec::new();
        assert_eq!(exclusive_scan(&ParCtx::new(2), &[5], &mut out), 5);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn all_zeros() {
        let mut out = Vec::new();
        assert_eq!(exclusive_scan(&ParCtx::new(3), &[0; 100], &mut out), 0);
        assert!(out.iter().all(|&x| x == 0));
    }

    #[test]
    fn worker_counts_agree() {
        let input: Vec<u32> = (0..777).map(|i| (i % 5) as u32).collect();
        let (expect, _) = reference(&input);
        for workers in [1, 2, 3, 8, 16] {
            let mut out = Vec::new();
            exclusive_scan(&ParCtx::new(workers), &input, &mut out);
            assert_eq!(out, expect, "workers = {workers}");
        }
    }
}
