//! Stage 4: binary radix tree over sorted unique Morton codes
//! (Karras, "Maximizing Parallelism in the Construction of BVHs, Octrees,
//! and k-d Trees", HPG 2012).
//!
//! For `n` unique keys the tree has `n − 1` internal nodes; node `i` is
//! constructed independently of all others (fully parallel), by locating
//! the range of keys sharing its prefix via binary search on the
//! longest-common-prefix function δ.

use crate::octree::MORTON_BITS;
use crate::ParCtx;

/// Flag bit marking a child index as a leaf (an index into the key array)
/// rather than an internal node.
pub const LEAF_FLAG: u32 = 1 << 31;

/// A binary radix tree over sorted unique 30-bit keys.
#[derive(Debug, Clone)]
pub struct RadixTree {
    keys: Vec<u32>,
    left: Vec<u32>,
    right: Vec<u32>,
    parent: Vec<u32>,
    leaf_parent: Vec<u32>,
    first: Vec<u32>,
    last: Vec<u32>,
    prefix_len: Vec<u8>,
}

/// δ(i, j): length of the longest common prefix (in the 30 significant
/// bits) of keys i and j; −1 when j is out of range.
#[inline]
fn delta(keys: &[u32], i: usize, j: i64) -> i32 {
    if j < 0 || j >= keys.len() as i64 {
        return -1;
    }
    let x = keys[i] ^ keys[j as usize];
    debug_assert!(x != 0, "keys must be unique");
    x.leading_zeros() as i32 - (32 - MORTON_BITS as i32)
}

impl RadixTree {
    /// Builds the radix tree over `keys` (sorted, unique, each < 2^30),
    /// parallelized over internal nodes.
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() < 2`, or in debug builds if keys are not
    /// sorted/unique/in-range.
    pub fn build(ctx: &ParCtx, keys: &[u32]) -> RadixTree {
        assert!(keys.len() >= 2, "radix tree needs at least two keys");
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be sorted unique"
        );
        debug_assert!(
            keys.iter().all(|&k| k < (1 << MORTON_BITS)),
            "keys must be 30-bit"
        );

        let n = keys.len();
        let internal = n - 1;
        let mut left = vec![0u32; internal];
        let mut right = vec![0u32; internal];
        let mut first = vec![0u32; internal];
        let mut last = vec![0u32; internal];
        let mut prefix_len = vec![0u8; internal];

        struct NodeOut {
            left: u32,
            right: u32,
            first: u32,
            last: u32,
            prefix: u8,
        }

        let compute = |i: usize| -> NodeOut {
            let ii = i as i64;
            // Direction of the node's range.
            let d: i64 = if delta(keys, i, ii + 1) > delta(keys, i, ii - 1) {
                1
            } else {
                -1
            };
            let delta_min = delta(keys, i, ii - d);

            // Exponential upper bound for the range length.
            let mut l_max: i64 = 2;
            while delta(keys, i, ii + l_max * d) > delta_min {
                l_max *= 2;
            }

            // Binary search for the exact other end.
            let mut l: i64 = 0;
            let mut t = l_max / 2;
            while t >= 1 {
                if delta(keys, i, ii + (l + t) * d) > delta_min {
                    l += t;
                }
                t /= 2;
            }
            let j = ii + l * d;
            let delta_node = delta(keys, i, j);

            // Binary search for the split point.
            let mut s: i64 = 0;
            let mut t = (l + 1) / 2;
            loop {
                if delta(keys, i, ii + (s + t) * d) > delta_node {
                    s += t;
                }
                if t == 1 {
                    break;
                }
                t = (t + 1) / 2;
            }
            let gamma = ii + s * d + d.min(0);

            let (lo, hi) = (ii.min(j), ii.max(j));
            let left_child = if lo == gamma {
                gamma as u32 | LEAF_FLAG
            } else {
                gamma as u32
            };
            let right_child = if hi == gamma + 1 {
                (gamma + 1) as u32 | LEAF_FLAG
            } else {
                (gamma + 1) as u32
            };
            NodeOut {
                left: left_child,
                right: right_child,
                first: lo as u32,
                last: hi as u32,
                prefix: delta_node as u8,
            }
        };

        // Fill all five arrays in one parallel sweep over node indices.
        {
            let results: Vec<NodeOut> = {
                let mut out: Vec<Option<NodeOut>> = Vec::with_capacity(internal);
                out.resize_with(internal, || None);
                ctx.for_each_chunk(&mut out, |offset, chunk| {
                    for (rel, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(compute(offset + rel));
                    }
                });
                out.into_iter().map(|o| o.expect("filled above")).collect()
            };
            for (i, r) in results.into_iter().enumerate() {
                left[i] = r.left;
                right[i] = r.right;
                first[i] = r.first;
                last[i] = r.last;
                prefix_len[i] = r.prefix;
            }
        }

        // Parent pointers (u32::MAX for the root, node 0); leaves get their
        // own parent array, needed by octree edge counting.
        let mut parent = vec![u32::MAX; internal];
        let mut leaf_parent = vec![u32::MAX; n];
        for i in 0..internal {
            for child in [left[i], right[i]] {
                if child & LEAF_FLAG == 0 {
                    parent[child as usize] = i as u32;
                } else {
                    leaf_parent[(child & !LEAF_FLAG) as usize] = i as u32;
                }
            }
        }

        RadixTree {
            keys: keys.to_vec(),
            left,
            right,
            parent,
            leaf_parent,
            first,
            last,
            prefix_len,
        }
    }

    /// The sorted unique keys the tree is built over.
    pub fn keys(&self) -> &[u32] {
        &self.keys
    }

    /// Number of internal nodes (`keys.len() − 1`).
    pub fn internal_count(&self) -> usize {
        self.left.len()
    }

    /// Left child of internal node `i` ([`LEAF_FLAG`] marks leaves).
    pub fn left(&self, i: usize) -> u32 {
        self.left[i]
    }

    /// Right child of internal node `i`.
    pub fn right(&self, i: usize) -> u32 {
        self.right[i]
    }

    /// Parent of internal node `i` (`u32::MAX` for the root).
    pub fn parent(&self, i: usize) -> u32 {
        self.parent[i]
    }

    /// Internal parent of leaf `q` (every leaf has one for `n ≥ 2`).
    pub fn leaf_parent(&self, q: usize) -> u32 {
        self.leaf_parent[q]
    }

    /// First key index covered by internal node `i`.
    pub fn first(&self, i: usize) -> usize {
        self.first[i] as usize
    }

    /// Last key index covered by internal node `i` (inclusive).
    pub fn last(&self, i: usize) -> usize {
        self.last[i] as usize
    }

    /// Common-prefix length (0–30) of internal node `i`'s key range.
    pub fn prefix_len(&self, i: usize) -> u32 {
        self.prefix_len[i] as u32
    }

    /// The Morton prefix of node `i` as a value: the shared high
    /// `prefix_len` bits of its keys, right-aligned.
    pub fn prefix_code(&self, i: usize) -> u32 {
        let len = self.prefix_len(i);
        if len == 0 {
            0
        } else {
            self.keys[self.first(i)] >> (MORTON_BITS - len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unique_keys(seed: u64, n: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(rng.gen_range(0..(1u32 << MORTON_BITS)));
        }
        set.into_iter().collect()
    }

    fn build(seed: u64, n: usize) -> RadixTree {
        RadixTree::build(&ParCtx::new(4), &unique_keys(seed, n))
    }

    /// Recursively collect the leaf range reachable from internal node `i`.
    fn reachable_leaves(tree: &RadixTree, node: u32, out: &mut Vec<usize>) {
        if node & LEAF_FLAG != 0 {
            out.push((node & !LEAF_FLAG) as usize);
        } else {
            reachable_leaves(tree, tree.left(node as usize), out);
            reachable_leaves(tree, tree.right(node as usize), out);
        }
    }

    #[test]
    fn every_leaf_reachable_exactly_once() {
        let tree = build(1, 300);
        let mut leaves = Vec::new();
        reachable_leaves(&tree, 0, &mut leaves);
        leaves.sort_unstable();
        assert_eq!(leaves, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn node_ranges_match_reachable_leaves() {
        let tree = build(2, 128);
        for i in 0..tree.internal_count() {
            let mut leaves = Vec::new();
            reachable_leaves(&tree, i as u32, &mut leaves);
            let lo = *leaves.iter().min().expect("non-empty");
            let hi = *leaves.iter().max().expect("non-empty");
            assert_eq!(lo, tree.first(i), "node {i}");
            assert_eq!(hi, tree.last(i), "node {i}");
            assert_eq!(
                leaves.len(),
                hi - lo + 1,
                "node {i} covers a contiguous range"
            );
        }
    }

    #[test]
    fn prefix_is_common_to_all_covered_keys() {
        let tree = build(3, 200);
        for i in 0..tree.internal_count() {
            let len = tree.prefix_len(i);
            if len == 0 {
                continue;
            }
            let shift = MORTON_BITS - len;
            let prefix = tree.prefix_code(i);
            for k in tree.first(i)..=tree.last(i) {
                assert_eq!(tree.keys()[k] >> shift, prefix, "node {i}, key {k}");
            }
        }
    }

    #[test]
    fn children_have_strictly_longer_prefixes() {
        let tree = build(4, 150);
        for i in 0..tree.internal_count() {
            for child in [tree.left(i), tree.right(i)] {
                if child & LEAF_FLAG == 0 {
                    assert!(
                        tree.prefix_len(child as usize) > tree.prefix_len(i),
                        "child {child} of node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn parents_are_consistent_with_children() {
        let tree = build(5, 100);
        assert_eq!(tree.parent(0), u32::MAX);
        for i in 0..tree.internal_count() {
            for child in [tree.left(i), tree.right(i)] {
                if child & LEAF_FLAG == 0 {
                    assert_eq!(tree.parent(child as usize), i as u32);
                }
            }
        }
        // Every non-root node has a parent.
        for i in 1..tree.internal_count() {
            assert_ne!(tree.parent(i), u32::MAX, "node {i} orphaned");
        }
    }

    #[test]
    fn two_keys() {
        let tree = RadixTree::build(&ParCtx::serial(), &[1, 2]);
        assert_eq!(tree.internal_count(), 1);
        assert_eq!(tree.left(0), LEAF_FLAG);
        assert_eq!(tree.right(0), 1 | LEAF_FLAG);
    }

    #[test]
    fn serial_parallel_agree() {
        let keys = unique_keys(6, 500);
        let a = RadixTree::build(&ParCtx::serial(), &keys);
        let b = RadixTree::build(&ParCtx::new(8), &keys);
        for i in 0..a.internal_count() {
            assert_eq!(a.left(i), b.left(i));
            assert_eq!(a.right(i), b.right(i));
            assert_eq!(a.prefix_len(i), b.prefix_len(i));
        }
    }

    #[test]
    fn adjacent_keys_with_deep_shared_prefix() {
        // Keys differing only in the lowest bit exercise the deepest split.
        let keys = vec![0b0, 0b1, 1 << 29, (1 << 29) | 0b1];
        let tree = RadixTree::build(&ParCtx::serial(), &keys);
        assert_eq!(tree.internal_count(), 3);
        let mut leaves = Vec::new();
        reachable_leaves(&tree, 0, &mut leaves);
        leaves.sort_unstable();
        assert_eq!(leaves, vec![0, 1, 2, 3]);
    }
}
