//! Stage 3: duplicate removal over sorted codes.

use crate::ParCtx;

/// Compacts a sorted slice into `out`, keeping one copy of each value.
/// A parallel mark phase flags run heads; compaction is a serial sweep
/// (exactly the structure of the paper's GPU dedup: mark → scan → scatter).
///
/// # Panics
///
/// Panics in debug builds if `sorted` is not sorted.
pub fn dedup_sorted(ctx: &ParCtx, sorted: &[u32], out: &mut Vec<u32>) {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    out.clear();
    if sorted.is_empty() {
        return;
    }
    // Parallel mark: head[i] = 1 iff sorted[i] starts a new run.
    let mut heads = vec![0u8; sorted.len()];
    ctx.for_each_chunk(&mut heads, |offset, chunk| {
        for (i, h) in chunk.iter_mut().enumerate() {
            let idx = offset + i;
            *h = u8::from(idx == 0 || sorted[idx] != sorted[idx - 1]);
        }
    });
    out.reserve(sorted.len());
    for (i, &h) in heads.iter().enumerate() {
        if h == 1 {
            out.push(sorted[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(input: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        dedup_sorted(&ParCtx::new(4), input, &mut out);
        out
    }

    #[test]
    fn removes_duplicates() {
        assert_eq!(run(&[1, 1, 2, 3, 3, 3, 4]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(run(&[]), Vec::<u32>::new());
        assert_eq!(run(&[5]), vec![5]);
    }

    #[test]
    fn all_same() {
        assert_eq!(run(&[9; 1000]), vec![9]);
    }

    #[test]
    fn all_unique_is_identity() {
        let input: Vec<u32> = (0..500).collect();
        assert_eq!(run(&input), input);
    }

    #[test]
    fn matches_std_dedup_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut data: Vec<u32> = (0..5000).map(|_| rng.gen_range(0..800)).collect();
        data.sort_unstable();
        let mut expect = data.clone();
        expect.dedup();
        assert_eq!(run(&data), expect);
    }
}
