//! The 7-stage octree-construction pipeline (Karras, HPG 2012; used by
//! OctoMap-style robotics mapping — §4.1 of the paper):
//!
//! 1. **Morton encoding** — quantize 3-D points to 30-bit Morton codes.
//! 2. **Sort** — LSD radix sort of the codes.
//! 3. **Duplicate removal** — compact to unique codes.
//! 4. **Build radix tree** — binary radix tree over the sorted unique codes.
//! 5. **Edge counting** — octree levels each radix node spans.
//! 6. **Prefix sum** — exclusive scan of the edge counts.
//! 7. **Build octree** — allocate and link the octree cells.

mod build;
mod dedup;
mod edges;
mod morton;
mod radix_tree;
mod scan;
mod sort;

pub use build::{build_octree, Octree};
pub use dedup::dedup_sorted;
pub use edges::count_edges;
pub use morton::{morton_decode, morton_encode, morton_encode_cloud, MORTON_BITS};
pub use radix_tree::{RadixTree, LEAF_FLAG};
pub use scan::exclusive_scan;
pub use sort::radix_sort_u32;
