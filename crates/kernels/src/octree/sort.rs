//! Stage 2: LSD radix sort of Morton codes (8-bit digits, 4 passes).

use crate::ParCtx;

const RADIX: usize = 256;
const PASSES: usize = 4;

/// Sorts `data` in place (via `scratch`) with a stable LSD radix sort.
/// Histograms are computed in parallel; the scatter of each pass is serial
/// to preserve stability — mirroring the structure (and the serial
/// bottleneck) of the paper's CPU radix sort stage.
///
/// `scratch` is resized as needed.
pub fn radix_sort_u32(ctx: &ParCtx, data: &mut [u32], scratch: &mut Vec<u32>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    scratch.clear();
    scratch.resize(n, 0);

    for pass in 0..PASSES {
        let shift = (pass * 8) as u32;
        let src: &[u32] = if pass % 2 == 0 { &*data } else { scratch };

        // Parallel histogram.
        let hist = ctx.reduce(
            n,
            vec![0u32; RADIX],
            |range| {
                let mut h = vec![0u32; RADIX];
                for i in range {
                    h[((src[i] >> shift) & 0xff) as usize] += 1;
                }
                h
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );

        // Exclusive scan of the histogram.
        let mut offsets = vec![0u32; RADIX];
        let mut acc = 0u32;
        for d in 0..RADIX {
            offsets[d] = acc;
            acc += hist[d];
        }

        // Stable serial scatter.
        // SAFETY-free split: we need one of data/scratch immutably and the
        // other mutably; alternate per pass.
        if pass % 2 == 0 {
            for &v in data.iter() {
                let d = ((v >> shift) & 0xff) as usize;
                scratch[offsets[d] as usize] = v;
                offsets[d] += 1;
            }
        } else {
            for &v in scratch.iter() {
                let d = ((v >> shift) & 0xff) as usize;
                data[offsets[d] as usize] = v;
                offsets[d] += 1;
            }
        }
    }
    // PASSES is even, so the result ends back in `data`.
    const _: () = assert!(PASSES.is_multiple_of(2));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_sorts(mut input: Vec<u32>) {
        let mut expect = input.clone();
        expect.sort_unstable();
        let mut scratch = Vec::new();
        radix_sort_u32(&ParCtx::new(4), &mut input, &mut scratch);
        assert_eq!(input, expect);
    }

    #[test]
    fn sorts_random_data() {
        let mut rng = StdRng::seed_from_u64(1);
        check_sorts(
            (0..10_000)
                .map(|_| rng.gen::<u32>() & 0x3fff_ffff)
                .collect(),
        );
    }

    #[test]
    fn sorts_full_range_values() {
        let mut rng = StdRng::seed_from_u64(2);
        check_sorts((0..5000).map(|_| rng.gen()).collect());
    }

    #[test]
    fn handles_duplicates() {
        let mut rng = StdRng::seed_from_u64(3);
        check_sorts((0..5000).map(|_| rng.gen_range(0..16u32)).collect());
    }

    #[test]
    fn edge_cases() {
        check_sorts(vec![]);
        check_sorts(vec![42]);
        check_sorts(vec![2, 1]);
        check_sorts(vec![7; 100]);
    }

    #[test]
    fn already_sorted_and_reversed() {
        check_sorts((0..1000).collect());
        check_sorts((0..1000).rev().collect());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let mut rng = StdRng::seed_from_u64(4);
        let input: Vec<u32> = (0..3000).map(|_| rng.gen()).collect();
        let mut a = input.clone();
        let mut b = input;
        let mut s1 = Vec::new();
        let mut s2 = Vec::new();
        radix_sort_u32(&ParCtx::serial(), &mut a, &mut s1);
        radix_sort_u32(&ParCtx::new(8), &mut b, &mut s2);
        assert_eq!(a, b);
    }
}
