//! A minimal dense tensor used by the CNN kernels.
//!
//! BetterTogether's DNN workloads only need contiguous f32 storage with
//! CHW-style shape bookkeeping; this type is deliberately small rather than
//! a general ndarray.

use std::fmt;

/// A dense, row-major `f32` tensor with up to four dimensions.
///
/// ```
/// use bt_kernels::Tensor;
/// let mut t = Tensor::zeros(&[2, 3, 4]);
/// t[(1, 2, 3)] = 5.0;
/// assert_eq!(t[(1, 2, 3)], 5.0);
/// assert_eq!(t.len(), 24);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of the given shape filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty or any dimension is zero.
    pub fn zeros(shape: &[usize]) -> Tensor {
        assert!(!shape.is_empty(), "tensor needs at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "dimensions must be non-zero");
        let len = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Builds a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        let expect: usize = shape.iter().product();
        assert_eq!(data.len(), expect, "data length must match shape");
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&mut self, shape: &[usize]) {
        let expect: usize = shape.iter().product();
        assert_eq!(self.data.len(), expect, "reshape must preserve length");
        self.shape = shape.to_vec();
    }

    /// Fills the tensor with a value.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Maximum absolute difference against another tensor of equal shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shapes must match");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    fn offset3(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 3);
        let (h, w) = (self.shape[1], self.shape[2]);
        debug_assert!(c < self.shape[0] && y < h && x < w);
        (c * h + y) * w + x
    }
}

impl std::ops::Index<(usize, usize, usize)> for Tensor {
    type Output = f32;
    fn index(&self, (c, y, x): (usize, usize, usize)) -> &f32 {
        &self.data[self.offset3(c, y, x)]
    }
}

impl std::ops::IndexMut<(usize, usize, usize)> for Tensor {
    fn index_mut(&mut self, (c, y, x): (usize, usize, usize)) -> &mut f32 {
        let off = self.offset3(c, y, x);
        &mut self.data[off]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, len={})", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert_eq!(t.shape(), &[3, 4, 5]);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t[(1, 0, 1)] = 3.5;
        assert_eq!(t[(1, 0, 1)], 3.5);
        assert_eq!(t.as_slice()[5], 3.5); // (1*2+0)*2+1
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        t.reshape(&[6]);
        assert_eq!(t.shape(), &[6]);
        assert_eq!(t.as_slice()[4], 5.0);
    }

    #[test]
    #[should_panic(expected = "preserve length")]
    fn reshape_wrong_len_panics() {
        let mut t = Tensor::zeros(&[4]);
        t.reshape(&[5]);
    }

    #[test]
    fn max_abs_diff() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![1.0, 2.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "match shape")]
    fn from_vec_checks_len() {
        let _ = Tensor::from_vec(&[2, 2], vec![0.0; 3]);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros(&[1]);
        assert!(!format!("{t:?}").is_empty());
    }
}
