//! The paper's three evaluation workloads (§4.1) as ready-made
//! [`Application`]s — AlexNet-dense, AlexNet-sparse, and Octree — plus the
//! branching perception workload ([`perception_app`]) that exercises
//! DAG-aware scheduling.
//!
//! Each stage carries both a real CPU kernel (executed by the host runtime
//! and by correctness tests) and a [`WorkProfile`] consumed by the device
//! simulator. Flop/byte counts follow from the configured input sizes; the
//! qualitative traits (divergence, irregularity, launch counts) and the
//! per-class efficiency calibrations are fixed per stage and documented
//! inline — they encode how each algorithm maps to CPUs vs. mobile GPUs and
//! are calibrated so the simulated Table 3 baselines reproduce the paper's
//! winners and magnitudes (see EXPERIMENTS.md).

use std::sync::Arc;

use bt_soc::{GpuBackend, PuClass, WorkProfile};

use crate::cifar::CifarStream;
use crate::dense::{AlexNetDense, AlexNetLayout};
use crate::octree::{
    build_octree, count_edges, dedup_sorted, exclusive_scan, morton_encode_cloud, radix_sort_u32,
    Octree, RadixTree,
};
use crate::perception::{
    detect_conv, detect_nms, detection_filters, flow_pyramid, flow_solve, fuse, preprocess,
    synthetic_frame, track, FILTER_SIZE,
};
use crate::pointcloud::{CloudShape, Point3, PointCloudStream};
use crate::sparse::AlexNetSparse;
use crate::{Application, ParCtx, Stage, TaskGraph, Tensor};

/// Configuration of the octree workload.
#[derive(Debug, Clone, Copy)]
pub struct OctreeConfig {
    /// Points per task (the paper streams LiDAR-scale clouds; default 256 Ki).
    pub points: usize,
    /// Input distribution.
    pub shape: CloudShape,
    /// Octree truncation depth (voxel resolution), 1–10. OctoMap-style
    /// mapping uses coarse voxels; 6 keeps cell counts realistic.
    pub max_depth: u32,
    /// Base RNG seed; task `seq` uses `seed + seq`.
    pub seed: u64,
}

impl Default for OctreeConfig {
    fn default() -> OctreeConfig {
        OctreeConfig {
            points: 1 << 18,
            shape: CloudShape::Clustered,
            max_depth: 6,
            seed: 0,
        }
    }
}

/// Task payload of the octree pipeline: the paper's TaskObject contents —
/// input, intermediate scratchpads, and output, all pre-allocated and
/// recycled across tasks.
#[derive(Debug, Default)]
pub struct OctreeTask {
    /// Input point cloud.
    pub cloud: Vec<Point3>,
    /// Morton codes (stage 1 output; sorted in place by stage 2).
    pub codes: Vec<u32>,
    /// Radix-sort scratch buffer.
    pub scratch: Vec<u32>,
    /// Unique sorted codes (stage 3 output).
    pub unique: Vec<u32>,
    /// Binary radix tree (stage 4 output).
    pub tree: Option<RadixTree>,
    /// Per-node octree edge counts (stage 5 output).
    pub edges: Vec<u32>,
    /// Exclusive scan of `edges` (stage 6 output).
    pub offsets: Vec<u32>,
    /// Total of `edges`.
    pub edge_total: u32,
    /// The final octree (stage 7 output).
    pub octree: Option<Octree>,
}

/// The dependency structure of the octree pipeline (§3.1): mostly linear,
/// but the final stage consumes the outputs of dedup (3), radix tree (4),
/// and prefix sum (6).
pub fn octree_task_graph() -> TaskGraph {
    let mut g = TaskGraph::new(7);
    g.add_dep(0, 1) // morton → sort
        .add_dep(1, 2) // sort → dedup
        .add_dep(2, 3) // dedup → radix tree
        .add_dep(3, 4) // radix tree → edge count
        .add_dep(4, 5) // edge count → prefix sum
        .add_dep(2, 6) // dedup → build octree
        .add_dep(3, 6) // radix tree → build octree
        .add_dep(5, 6); // prefix sum → build octree
    g
}

fn octree_works(n: usize) -> Vec<WorkProfile> {
    let n = n as f64;
    vec![
        // 1. Morton encoding: regular DOALL map.
        WorkProfile::new(15.0 * n, 16.0 * n),
        // 2. Radix sort: multi-pass, scatter-heavy, many kernel launches.
        //    The CUDA implementation uses warp-synchronous primitives
        //    (CUB-style) and stays fast; the portable Vulkan shader is the
        //    naive multi-pass variant the paper calls "nontrivial to
        //    implement efficiently on GPUs" — this is the stage Fig. 1
        //    shows performing poorly on the (Mali) GPU.
        WorkProfile::new(30.0 * n, 40.0 * n)
            .with_parallel_fraction(0.99)
            .with_divergence(0.3)
            .with_irregularity(0.5)
            .with_launches(12)
            .with_backend_efficiency(GpuBackend::Vulkan, 0.038)
            .with_backend_efficiency(GpuBackend::Cuda, 1.2),
        // 3. Dedup: mark/scan/compact, light.
        WorkProfile::new(4.0 * n, 10.0 * n)
            .with_parallel_fraction(0.99)
            .with_irregularity(0.1)
            .with_launches(3)
            .with_backend_efficiency(GpuBackend::Vulkan, 0.9),
        // 4. Radix-tree build: per-node binary searches — fully parallel
        //    with no synchronization, which is why Fig. 1 shows the GPU
        //    fastest here despite the divergence.
        WorkProfile::new(380.0 * n, 30.0 * n)
            .with_divergence(0.35)
            .with_irregularity(0.4)
            .with_backend_efficiency(GpuBackend::Vulkan, 1.6)
            .with_backend_efficiency(GpuBackend::Cuda, 1.1),
        // 5. Edge counting: parent-pointer chasing, divergent.
        WorkProfile::new(50.0 * n, 20.0 * n)
            .with_divergence(0.45)
            .with_irregularity(0.5)
            .with_backend_efficiency(GpuBackend::Vulkan, 1.0)
            .with_backend_efficiency(GpuBackend::Cuda, 1.2),
        // 6. Prefix sum: two-pass scan, efficient in CUDA, mediocre as a
        //    portable shader.
        WorkProfile::new(6.0 * n, 16.0 * n)
            .with_parallel_fraction(0.99)
            .with_launches(2)
            .with_backend_efficiency(GpuBackend::Vulkan, 1.0)
            .with_backend_efficiency(GpuBackend::Cuda, 1.2),
        // 7. Octree build: chain allocation + ancestor walks (pointer
        //    chasing, dynamic structure); Fig. 1 shows big/medium CPUs and
        //    the GPU roughly comparable here.
        WorkProfile::new(55.0 * n, 36.0 * n)
            .with_divergence(0.55)
            .with_irregularity(0.6)
            .with_launches(2)
            .with_backend_efficiency(GpuBackend::Vulkan, 0.7)
            .with_backend_efficiency(GpuBackend::Cuda, 1.2),
    ]
}

/// Builds the 7-stage octree application.
pub fn octree_app(cfg: OctreeConfig) -> Application<OctreeTask> {
    let works = octree_works(cfg.points);
    let names = [
        "morton",
        "sort",
        "dedup",
        "radix-tree",
        "edge-count",
        "prefix-sum",
        "build-octree",
    ];
    let kernels: Vec<crate::KernelFn<OctreeTask>> = vec![
        Arc::new(|t: &mut OctreeTask, ctx: &ParCtx| {
            let cloud = std::mem::take(&mut t.cloud);
            morton_encode_cloud(ctx, &cloud, &mut t.codes);
            t.cloud = cloud;
        }),
        Arc::new(|t: &mut OctreeTask, ctx: &ParCtx| {
            let mut codes = std::mem::take(&mut t.codes);
            radix_sort_u32(ctx, &mut codes, &mut t.scratch);
            t.codes = codes;
        }),
        Arc::new(|t: &mut OctreeTask, ctx: &ParCtx| {
            let mut unique = std::mem::take(&mut t.unique);
            dedup_sorted(ctx, &t.codes, &mut unique);
            t.unique = unique;
        }),
        Arc::new(|t: &mut OctreeTask, ctx: &ParCtx| {
            t.tree = Some(RadixTree::build(ctx, &t.unique));
        }),
        {
            let depth = cfg.max_depth;
            Arc::new(move |t: &mut OctreeTask, ctx: &ParCtx| {
                let tree = t.tree.as_ref().expect("radix tree built by stage 4");
                count_edges(ctx, tree, depth, &mut t.edges);
            })
        },
        Arc::new(|t: &mut OctreeTask, ctx: &ParCtx| {
            t.edge_total = exclusive_scan(ctx, &t.edges, &mut t.offsets);
        }),
        {
            let depth = cfg.max_depth;
            Arc::new(move |t: &mut OctreeTask, ctx: &ParCtx| {
                let tree = t.tree.as_ref().expect("radix tree built by stage 4");
                t.octree = Some(build_octree(
                    ctx,
                    tree,
                    &t.edges,
                    &t.offsets,
                    t.edge_total,
                    depth,
                ));
            })
        },
    ];
    let stages = names
        .iter()
        .zip(works)
        .zip(kernels)
        .map(|((name, work), kernel)| Stage::new(*name, work, kernel))
        .collect();
    let points = cfg.points;
    let shape = cfg.shape;
    let seed = cfg.seed;
    Application::new(
        "octree",
        stages,
        Arc::new(OctreeTask::default),
        Arc::new(move |t: &mut OctreeTask, seq| {
            t.cloud = PointCloudStream::new(shape, seed + seq).next_cloud(points);
            t.octree = None;
            t.tree = None;
        }),
    )
}

/// Configuration of the AlexNet workloads.
#[derive(Debug, Clone, Copy)]
pub struct AlexNetConfig {
    /// Weight seed.
    pub seed: u64,
    /// Images per task for the sparse variant (paper: 128).
    pub batch: usize,
    /// Density the sparse variant is pruned to.
    pub density: f64,
}

impl Default for AlexNetConfig {
    fn default() -> AlexNetConfig {
        AlexNetConfig {
            seed: 0,
            batch: 128,
            density: 0.1,
        }
    }
}

/// Task payload of the CNN pipelines: the activation tensor flowing through
/// the stages.
#[derive(Debug)]
pub struct CnnTask {
    /// Current activation (input image/batch before stage 0).
    pub act: Tensor,
}

impl Default for CnnTask {
    fn default() -> CnnTask {
        CnnTask {
            act: Tensor::zeros(&[1]),
        }
    }
}

fn dense_works(layout: &AlexNetLayout) -> Vec<WorkProfile> {
    (0..AlexNetLayout::STAGES)
        .map(|i| {
            let w = WorkProfile::new(layout.stage_flops(i), layout.stage_bytes(i))
                .with_irregularity(0.02);
            match i {
                // Direct convolutions: dense, regular — GPUs excel. The
                // paper's scalar OpenMP loops achieve a small fraction of
                // CPU peak, and the portable Vulkan shader trails the CUDA
                // kernel (calibrated against Table 3).
                0 | 2 | 4 | 6 => w
                    .with_efficiency(PuClass::BigCpu, 0.05)
                    .with_efficiency(PuClass::MediumCpu, 0.05)
                    .with_efficiency(PuClass::LittleCpu, 0.05)
                    .with_efficiency(PuClass::Gpu, 1.0)
                    .with_backend_efficiency(GpuBackend::Vulkan, 1.5)
                    .with_backend_efficiency(GpuBackend::Cuda, 1.3),
                // Max-pooling (bandwidth-bound) and the final matvec need
                // no calibration.
                _ => w,
            }
        })
        .collect()
}

/// Builds the 9-stage AlexNet-dense application (one image per task).
pub fn alexnet_dense_app(cfg: AlexNetConfig) -> Application<CnnTask> {
    let layout = AlexNetLayout::cifar();
    let net = Arc::new(AlexNetDense::random(layout.clone(), cfg.seed));
    let works = dense_works(&layout);
    let stages = (0..AlexNetLayout::STAGES)
        .zip(works)
        .map(|(i, work)| {
            let net = Arc::clone(&net);
            Stage::new(
                layout.stage_name(i),
                work,
                Arc::new(move |t: &mut CnnTask, ctx: &ParCtx| {
                    t.act = net.run_stage(ctx, i, &t.act);
                }) as Arc<dyn Fn(&mut CnnTask, &ParCtx) + Send + Sync>,
            )
        })
        .collect();
    let seed = cfg.seed;
    Application::new(
        "alexnet-dense",
        stages,
        Arc::new(CnnTask::default),
        Arc::new(move |t: &mut CnnTask, seq| {
            t.act = CifarStream::new(seed.wrapping_add(seq)).next_image();
        }),
    )
}

/// Condensa-style structured pruning removes whole channels in addition to
/// individual weights, so the per-image cost of the sparse network is far
/// below `dense × density`; this constant calibrates the residual fraction
/// against the paper's Table 3 sparse baselines.
const SPARSE_CHANNEL_SCALE: f64 = 0.07;

/// Activation shrinkage from channel pruning (pools see 4×-smaller maps
/// and the batch amortizes fixed costs).
const SPARSE_ACT_SCALE: f64 = 0.08;

fn sparse_works(layout: &AlexNetLayout, batch: usize, density: f64) -> Vec<WorkProfile> {
    let b = batch as f64;
    (0..AlexNetLayout::STAGES)
        .map(|i| match i {
            // Sparse convolutions: CSR × im2col. Irregular gathers give the
            // stage a low arithmetic intensity; CSR row-length skew causes
            // warp imbalance on lockstep mobile GPUs (Vulkan backend) while
            // the CUDA kernel tolerates it (load-balanced row merging).
            0 | 2 | 4 | 6 => {
                let flops = layout.stage_flops(i) * density * b * SPARSE_CHANNEL_SCALE;
                let bytes = flops * 0.5;
                WorkProfile::new(flops, bytes)
                    .with_divergence(0.45)
                    .with_irregularity(0.5)
                    .with_efficiency(PuClass::BigCpu, 0.6)
                    .with_efficiency(PuClass::MediumCpu, 0.6)
                    .with_efficiency(PuClass::LittleCpu, 0.6)
                    .with_backend_efficiency(GpuBackend::Vulkan, 0.5)
                    .with_backend_efficiency(GpuBackend::Cuda, 1.3)
            }
            _ => WorkProfile::new(
                layout.stage_flops(i) * b * SPARSE_ACT_SCALE,
                layout.stage_bytes(i) * b * SPARSE_ACT_SCALE,
            )
            .with_irregularity(0.05),
        })
        .collect()
}

/// Builds the 9-stage AlexNet-sparse application (a batch of images per
/// task; conv layers pruned to CSR).
pub fn alexnet_sparse_app(cfg: AlexNetConfig) -> Application<CnnTask> {
    let layout = AlexNetLayout::cifar();
    let dense = AlexNetDense::random(layout.clone(), cfg.seed);
    let net = Arc::new(AlexNetSparse::prune(dense, cfg.density, cfg.batch));
    let works = sparse_works(&layout, cfg.batch, cfg.density);
    let stages = (0..AlexNetLayout::STAGES)
        .zip(works)
        .map(|(i, work)| {
            let net = Arc::clone(&net);
            Stage::new(
                layout.stage_name(i),
                work,
                Arc::new(move |t: &mut CnnTask, ctx: &ParCtx| {
                    t.act = net.run_stage(ctx, i, &t.act);
                }) as Arc<dyn Fn(&mut CnnTask, &ParCtx) + Send + Sync>,
            )
        })
        .collect();
    let seed = cfg.seed;
    let batch = cfg.batch;
    Application::new(
        "alexnet-sparse",
        stages,
        Arc::new(CnnTask::default),
        Arc::new(move |t: &mut CnnTask, seq| {
            t.act = CifarStream::new(seed.wrapping_add(seq)).next_batch(batch);
        }),
    )
}

/// Configuration of the branching perception workload.
#[derive(Debug, Clone, Copy)]
pub struct PerceptionConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of detection filters (the conv stage applies all of them
    /// per pixel — the workload's compute bottleneck).
    pub filters: usize,
    /// Pyramid levels for the flow branch.
    pub levels: usize,
    /// NMS score threshold.
    pub threshold: f32,
    /// Base RNG seed; task `seq` uses `seed + seq`.
    pub seed: u64,
}

impl Default for PerceptionConfig {
    fn default() -> PerceptionConfig {
        PerceptionConfig {
            width: 96,
            height: 96,
            filters: 12,
            levels: 3,
            threshold: 0.5,
            seed: 0,
        }
    }
}

/// Task payload of the perception pipeline. The two branches write
/// disjoint scratch buffers (detection: `detmap`/`detections`; flow:
/// `pyramid`/`flow`), which is what lets a DAG schedule run them
/// concurrently for the same frame.
#[derive(Debug, Default)]
pub struct PerceptionTask {
    /// Input frame (stage −, written by the source).
    pub frame: Vec<f32>,
    /// Preprocessed luminance (stage 0 output, read by both branches).
    pub lum: Vec<f32>,
    /// Per-pixel best filter response (stage 1 output).
    pub detmap: Vec<f32>,
    /// NMS peaks as `(index, score)` (stage 2 output).
    pub detections: Vec<(usize, f32)>,
    /// Concatenated pyramid levels (stage 3 output).
    pub pyramid: Vec<f32>,
    /// Pyramid level dimensions, finest first (stage 3 output).
    pub pyr_dims: Vec<(usize, usize)>,
    /// Per-block `(dx, dy)` flow (stage 4 output).
    pub flow: Vec<f32>,
    /// Fused `(x, y, dx, dy, score)` observations (stage 5 output).
    pub fused: Vec<f32>,
    /// Tracker state `(cx, cy, vx, vy, mass)` (stage 6 output).
    pub track: [f32; 5],
}

/// The fork/join dependency structure of the perception pipeline:
/// preprocessing (0) forks into the detection branch (1 → 2) and the flow
/// branch (3 → 4), which join at fusion (5) feeding tracking (6).
pub fn perception_task_graph() -> TaskGraph {
    let mut g = TaskGraph::new(7);
    g.add_dep(0, 1) // preprocess → detect-conv
        .add_dep(0, 3) // preprocess → flow-pyramid
        .add_dep(1, 2) // detect-conv → detect-nms
        .add_dep(3, 4) // flow-pyramid → flow-solve
        .add_dep(2, 5) // detect-nms → fuse
        .add_dep(4, 5) // flow-solve → fuse
        .add_dep(5, 6); // fuse → track
    g
}

fn perception_works(cfg: &PerceptionConfig) -> Vec<WorkProfile> {
    let n = (cfg.width * cfg.height) as f64;
    let k = cfg.filters as f64;
    let taps = (FILTER_SIZE * FILTER_SIZE) as f64;
    vec![
        // 0. Preprocess: regular 3×3 blur map — cheap, bandwidth-leaning.
        WorkProfile::new(18.0 * n, 14.0 * n).with_parallel_fraction(0.99),
        // 1. Detect-conv: k filters × 25 taps per pixel, dense and
        //    regular — GPU-dominant, which is what rewards mapping the
        //    detection branch to the GPU while the flow branch holds a
        //    CPU cluster.
        WorkProfile::new(2.0 * k * taps * n, 10.0 * n)
            .with_parallel_fraction(0.995)
            .with_efficiency(PuClass::BigCpu, 0.4)
            .with_efficiency(PuClass::MediumCpu, 0.3)
            .with_efficiency(PuClass::LittleCpu, 0.15)
            .with_efficiency(PuClass::Gpu, 1.0)
            .with_backend_efficiency(GpuBackend::Vulkan, 1.2)
            .with_backend_efficiency(GpuBackend::Cuda, 1.3),
        // 2. Detect-NMS: branchy 3×3 scan with early exits — divergent,
        //    poor as a portable shader.
        WorkProfile::new(22.0 * n, 10.0 * n)
            .with_divergence(0.4)
            .with_irregularity(0.35)
            .with_backend_efficiency(GpuBackend::Vulkan, 0.3),
        // 3. Flow-pyramid: bandwidth-bound 2×2 reductions.
        WorkProfile::new(9.0 * n, 26.0 * n)
            .with_parallel_fraction(0.99)
            .with_launches(3),
        // 4. Flow-solve: per-block structure tensors + iterative 2×2
        //    solves — moderate divergence, CPU-favoured (scalar-friendly),
        //    and the workload's dominant interior stage. Big and medium
        //    cores land within ~25% of each other here, which makes this
        //    the stage worth *replicating*: splitting alternate frames
        //    across two comparable clusters halves its steady-state
        //    demand, unlike detect-conv whose CPU fallback is an order of
        //    magnitude off the GPU.
        WorkProfile::new(600.0 * n, 18.0 * n)
            .with_divergence(0.3)
            .with_irregularity(0.3)
            .with_backend_efficiency(GpuBackend::Vulkan, 0.25)
            .with_backend_efficiency(GpuBackend::Cuda, 0.8),
        // 5. Fuse: tiny gather join of both branch outputs.
        WorkProfile::new(4.0 * n, 7.0 * n).with_irregularity(0.2),
        // 6. Track: sequential EMA fold, light.
        WorkProfile::new(3.0 * n, 5.0 * n).with_irregularity(0.3),
    ]
}

/// Builds the 7-stage fork/join perception application — the fourth paper
/// app, and the first whose model carries a non-chain [`TaskGraph`].
pub fn perception_app(cfg: PerceptionConfig) -> Application<PerceptionTask> {
    let works = perception_works(&cfg);
    let names = [
        "preprocess",
        "detect-conv",
        "detect-nms",
        "flow-pyramid",
        "flow-solve",
        "fuse",
        "track",
    ];
    let (w, h) = (cfg.width, cfg.height);
    let filters = Arc::new(detection_filters(cfg.filters, cfg.seed));
    let levels = cfg.levels;
    let threshold = cfg.threshold;
    let kernels: Vec<crate::KernelFn<PerceptionTask>> = vec![
        Arc::new(move |t: &mut PerceptionTask, ctx: &ParCtx| {
            let frame = std::mem::take(&mut t.frame);
            preprocess(ctx, &frame, w, h, &mut t.lum);
            t.frame = frame;
        }),
        {
            let filters = Arc::clone(&filters);
            Arc::new(move |t: &mut PerceptionTask, ctx: &ParCtx| {
                let lum = std::mem::take(&mut t.lum);
                detect_conv(ctx, &lum, w, h, &filters, &mut t.detmap);
                t.lum = lum;
            })
        },
        Arc::new(move |t: &mut PerceptionTask, ctx: &ParCtx| {
            let detmap = std::mem::take(&mut t.detmap);
            detect_nms(ctx, &detmap, w, h, threshold, &mut t.detections);
            t.detmap = detmap;
        }),
        Arc::new(move |t: &mut PerceptionTask, ctx: &ParCtx| {
            let lum = std::mem::take(&mut t.lum);
            t.pyr_dims = flow_pyramid(ctx, &lum, w, h, levels, &mut t.pyramid);
            t.lum = lum;
        }),
        Arc::new(move |t: &mut PerceptionTask, ctx: &ParCtx| {
            let pyramid = std::mem::take(&mut t.pyramid);
            flow_solve(ctx, &pyramid, &t.pyr_dims, &mut t.flow);
            t.pyramid = pyramid;
        }),
        Arc::new(move |t: &mut PerceptionTask, ctx: &ParCtx| {
            let detections = std::mem::take(&mut t.detections);
            fuse(ctx, &detections, &t.flow, w, &mut t.fused);
            t.detections = detections;
        }),
        Arc::new(move |t: &mut PerceptionTask, ctx: &ParCtx| {
            let fused = std::mem::take(&mut t.fused);
            let mut state = t.track;
            track(ctx, &fused, &mut state);
            t.track = state;
            t.fused = fused;
        }),
    ];
    let stages = names
        .iter()
        .zip(works)
        .zip(kernels)
        .map(|((name, work), kernel)| Stage::new(*name, work, kernel))
        .collect();
    let seed = cfg.seed;
    Application::from_task_graph(
        "perception",
        stages,
        &perception_task_graph(),
        Arc::new(PerceptionTask::default),
        Arc::new(move |t: &mut PerceptionTask, seq| {
            t.frame = synthetic_frame(w, h, seed + seq);
            t.track = [0.0; 5];
        }),
    )
    .expect("perception graph is acyclic")
}

/// Configuration of the sensor workload (the MCU-class edge pipeline).
#[derive(Debug, Clone, Copy)]
pub struct SensorConfig {
    /// Samples per task block (one DMA burst from the ADC FIFO).
    pub block: usize,
    /// Base RNG seed; task `seq` uses `seed + seq` for the waveform and
    /// `seed` for the classifier weights.
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> SensorConfig {
        SensorConfig {
            block: 4096,
            seed: 0,
        }
    }
}

/// Task payload of the sensor pipeline: raw ADC block, conditioned and
/// filtered working buffers, the per-window feature matrix, and the
/// predicted class — all pre-allocated and recycled across tasks.
#[derive(Debug, Default)]
pub struct SensorTask {
    /// Raw ADC samples (loaded by the source).
    pub raw: Vec<f32>,
    /// Scaled/conditioned samples (stage 1 output).
    pub conditioned: Vec<f32>,
    /// Low-pass-filtered samples (stage 2 output).
    pub filtered: Vec<f32>,
    /// Per-window feature matrix (stage 3 output).
    pub features: Vec<f32>,
    /// Predicted class (stage 4 output).
    pub class: usize,
}

fn sensor_works(n: usize) -> Vec<WorkProfile> {
    let n = n as f64;
    let taps = crate::sensor::FIR_TAPS as f64;
    vec![
        // 1. Sample: drain the oversampled ADC FIFO into the working
        //    buffer with gain scaling — one multiply per sample, but 24
        //    bytes moved per retained sample (4x oversampling of 16-bit
        //    conversions in, f32 working copy out, uncached flash-side
        //    descriptors). Pure memory traffic, which is exactly what the
        //    MCU's DMA engine (modelled as the Gpu-class PU on
        //    `devices::mcu_m7`) exists for: it beats the M7 on bandwidth
        //    without burning a core, and it is deliberately fat enough
        //    that a DMA chunk survives the optimizer's utilization filter.
        WorkProfile::new(0.5 * n, 24.0 * n)
            .with_parallel_fraction(0.99)
            .with_launches(1),
        // 2. Filter: 16-tap FIR, 2 flops per tap per sample — the
        //    arithmetic hot spot. Regular SIMD-able streaming compute that
        //    only the M7 (dual-issue, DSP extensions) sustains; the DMA
        //    engine has no ALU to speak of (arith_eff 0.10) and the M4 is
        //    ~7x slower.
        WorkProfile::new(2.0 * taps * n, 8.0 * n).with_parallel_fraction(0.99),
        // 3. Feature extraction: windowed mean/energy/zero-crossings/peak
        //    — light arithmetic with a data-dependent branch (the sign
        //    test), cheap enough for the little M4 core while the M7 keeps
        //    the FIR saturated.
        WorkProfile::new(3.0 * n, 4.0 * n)
            .with_parallel_fraction(0.95)
            .with_divergence(0.1),
        // 4. Classify: one tiny matvec per window plus an argmax fold.
        WorkProfile::new(1.0 * n, 0.5 * n).with_irregularity(0.2),
    ]
}

/// Builds the 4-stage sensor application: `sample → filter →
/// feature-extract → classify`, the always-on workload of the MCU-class
/// edge backend ([`devices::mcu_m7`](bt_soc::devices)).
pub fn sensor_app(cfg: SensorConfig) -> Application<SensorTask> {
    use crate::sensor::{
        classifier_weights, classify, extract_features, fir_filter, lowpass_taps, synth_samples,
    };
    const ADC_SCALE: f32 = 1.0 / 4.0;
    let works = sensor_works(cfg.block);
    let names = ["sample", "filter", "feature-extract", "classify"];
    let weights = Arc::new(classifier_weights(cfg.seed));
    let taps = lowpass_taps();
    let kernels: Vec<crate::KernelFn<SensorTask>> = vec![
        Arc::new(|t: &mut SensorTask, ctx: &ParCtx| {
            let raw = std::mem::take(&mut t.raw);
            t.conditioned.clear();
            t.conditioned.resize(raw.len(), 0.0);
            ctx.for_each_chunk(&mut t.conditioned, |offset, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = raw[offset + i] * ADC_SCALE;
                }
            });
            t.raw = raw;
        }),
        Arc::new(move |t: &mut SensorTask, ctx: &ParCtx| {
            let conditioned = std::mem::take(&mut t.conditioned);
            fir_filter(ctx, &conditioned, &taps, &mut t.filtered);
            t.conditioned = conditioned;
        }),
        Arc::new(|t: &mut SensorTask, ctx: &ParCtx| {
            let filtered = std::mem::take(&mut t.filtered);
            extract_features(ctx, &filtered, &mut t.features);
            t.filtered = filtered;
        }),
        {
            let weights = Arc::clone(&weights);
            Arc::new(move |t: &mut SensorTask, ctx: &ParCtx| {
                t.class = classify(ctx, &t.features, &weights);
            })
        },
    ];
    let stages = names
        .iter()
        .zip(works)
        .zip(kernels)
        .map(|((name, work), kernel)| Stage::new(*name, work, kernel))
        .collect();
    let block = cfg.block;
    let seed = cfg.seed;
    Application::new(
        "sensor",
        stages,
        Arc::new(SensorTask::default),
        Arc::new(move |t: &mut SensorTask, seq| {
            synth_samples(seed + seq, block, &mut t.raw);
            t.class = 0;
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octree_app_end_to_end() {
        let app = octree_app(OctreeConfig {
            points: 4000,
            shape: CloudShape::Clustered,
            max_depth: 6,
            seed: 1,
        });
        assert_eq!(app.stage_count(), 7);
        let mut task = app.new_payload();
        app.run_sequential(&mut task, 0, &ParCtx::new(4));
        let octree = task.octree.as_ref().expect("octree built");
        assert!(octree.cell_count() > 1);
        assert_eq!(task.unique.len(), task.tree.as_ref().unwrap().keys().len());
        // Every unique code locates inside the octree.
        for &code in task.unique.iter().take(100) {
            let cell = octree.locate(code);
            assert!(cell < octree.cell_count());
        }
    }

    #[test]
    fn octree_tasks_differ_across_seq() {
        let app = octree_app(OctreeConfig {
            points: 500,
            shape: CloudShape::Uniform,
            max_depth: 6,
            seed: 2,
        });
        let mut a = app.new_payload();
        let mut b = app.new_payload();
        app.load_input(&mut a, 0);
        app.load_input(&mut b, 1);
        assert_ne!(a.cloud, b.cloud);
    }

    #[test]
    fn dense_app_end_to_end() {
        let app = alexnet_dense_app(AlexNetConfig::default());
        assert_eq!(app.stage_count(), 9);
        let mut task = app.new_payload();
        app.run_sequential(&mut task, 3, &ParCtx::new(4));
        assert_eq!(task.act.shape(), &[10]);
        assert!(task.act.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn sparse_app_end_to_end_small_batch() {
        let app = alexnet_sparse_app(AlexNetConfig {
            seed: 1,
            batch: 2,
            density: 0.2,
        });
        let mut task = app.new_payload();
        app.run_sequential(&mut task, 0, &ParCtx::new(4));
        assert_eq!(task.act.shape(), &[2, 10]);
    }

    #[test]
    fn models_have_positive_work() {
        let apps = [
            octree_app(OctreeConfig::default()).model(),
            alexnet_dense_app(AlexNetConfig::default()).model(),
            alexnet_sparse_app(AlexNetConfig::default()).model(),
        ];
        for model in apps {
            for s in &model.stages {
                assert!(s.work.flops() > 0.0, "{}/{}", model.name, s.name);
                assert!(s.work.bytes() > 0.0, "{}/{}", model.name, s.name);
            }
        }
    }

    #[test]
    fn octree_graph_linearizes_to_paper_order() {
        assert_eq!(
            octree_task_graph().linearize().unwrap(),
            vec![0, 1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn perception_app_end_to_end() {
        let app = perception_app(PerceptionConfig {
            width: 64,
            height: 64,
            ..PerceptionConfig::default()
        });
        assert_eq!(app.stage_count(), 7);
        assert!(!app.graph().is_chain());
        let mut task = app.new_payload();
        app.run_sequential(&mut task, 0, &ParCtx::new(4));
        assert!(!task.detections.is_empty(), "blobs detected");
        assert!(!task.flow.is_empty(), "flow solved");
        assert!(!task.fused.is_empty(), "fusion joined both branches");
        assert!(task.track[4] > 0.0, "tracker accumulated mass");
        assert!(task.track.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn perception_model_carries_fork_join_graph() {
        let app = perception_app(PerceptionConfig::default());
        let model = app.model();
        assert!(!model.is_chain());
        let g = model.task_graph();
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![6]);
        // Branch siblings are mutually unreachable.
        let masks = g.reachability().unwrap();
        assert_eq!(masks[1] >> 3 & 1, 0);
        assert_eq!(masks[3] >> 1 & 1, 0);
        for s in &model.stages {
            assert!(s.work.flops() > 0.0, "{}", s.name);
        }
    }

    #[test]
    fn perception_tasks_differ_across_seq() {
        let app = perception_app(PerceptionConfig::default());
        let mut a = app.new_payload();
        let mut b = app.new_payload();
        app.load_input(&mut a, 0);
        app.load_input(&mut b, 1);
        assert_ne!(a.frame, b.frame);
    }

    #[test]
    fn recycled_payload_produces_same_result() {
        // TaskObject recycling (§3.4): re-running a payload must be
        // equivalent to a fresh one.
        let app = octree_app(OctreeConfig {
            points: 1500,
            shape: CloudShape::Surface,
            max_depth: 6,
            seed: 9,
        });
        let ctx = ParCtx::new(2);
        let mut fresh = app.new_payload();
        app.run_sequential(&mut fresh, 5, &ctx);
        let mut recycled = app.new_payload();
        app.run_sequential(&mut recycled, 0, &ctx);
        app.run_sequential(&mut recycled, 5, &ctx);
        assert_eq!(fresh.unique, recycled.unique);
        assert_eq!(
            fresh.octree.as_ref().unwrap().cell_count(),
            recycled.octree.as_ref().unwrap().cell_count()
        );
    }

    #[test]
    fn sensor_app_runs_end_to_end_and_is_deterministic() {
        let app = sensor_app(SensorConfig::default());
        assert_eq!(app.stage_count(), 4);
        let mut a = app.new_payload();
        app.run_sequential(&mut a, 3, &ParCtx::new(2));
        let mut b = app.new_payload();
        app.run_sequential(&mut b, 3, &ParCtx::serial());
        assert_eq!(a.features.len(), 4096 / crate::sensor::WINDOW * 4);
        assert_eq!(a.class, b.class, "class is thread-count independent");
        assert!(a.class < crate::sensor::CLASSES);
    }

    #[test]
    fn sensor_recycled_payload_produces_same_result() {
        let app = sensor_app(SensorConfig {
            block: 512,
            seed: 7,
        });
        let ctx = ParCtx::new(2);
        let mut fresh = app.new_payload();
        app.run_sequential(&mut fresh, 5, &ctx);
        let mut recycled = app.new_payload();
        app.run_sequential(&mut recycled, 0, &ctx);
        app.run_sequential(&mut recycled, 5, &ctx);
        assert_eq!(fresh.features, recycled.features);
        assert_eq!(fresh.class, recycled.class);
    }
}
