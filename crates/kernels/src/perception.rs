//! Perception-pipeline kernels: the fourth paper-style workload, and the
//! first genuinely *branching* one.
//!
//! A preprocessed luminance frame forks into two independent branches —
//! a detection branch (multi-filter convolution + non-maximum suppression)
//! and an optical-flow branch (image pyramid + Lucas–Kanade-style solve) —
//! whose outputs join in a fusion stage feeding a tracker. The branches
//! touch disjoint scratch buffers, so a DAG scheduler may run them on
//! different PUs for the same frame.
//!
//! All kernels are real, deterministic CPU compute (the host substrate
//! executes them); their [`bt_soc::WorkProfile`]s live in
//! [`crate::apps::perception_app`].

use crate::ParCtx;

/// Side length of the square detection filters.
pub const FILTER_SIZE: usize = 5;

/// Builds `k` deterministic oriented 5×5 ridge filters, flattened
/// row-major per filter. The seed perturbs the orientation phase so
/// different app instances exercise different weights.
pub fn detection_filters(k: usize, seed: u64) -> Vec<f32> {
    let mut filters = vec![0.0f32; k * FILTER_SIZE * FILTER_SIZE];
    for f in 0..k {
        let angle = std::f64::consts::PI * (f as f64 + (seed % 7) as f64 * 0.1) / k as f64;
        let (s, c) = angle.sin_cos();
        let base = f * FILTER_SIZE * FILTER_SIZE;
        let mut sum = 0.0f64;
        for y in 0..FILTER_SIZE {
            for x in 0..FILTER_SIZE {
                let dx = x as f64 - (FILTER_SIZE as f64 - 1.0) / 2.0;
                let dy = y as f64 - (FILTER_SIZE as f64 - 1.0) / 2.0;
                // Signed distance to the oriented ridge axis.
                let d = dx * s - dy * c;
                let v = (1.0 - d * d).exp() * (-(dx * dx + dy * dy) / 6.0).exp();
                filters[base + y * FILTER_SIZE + x] = v as f32;
                sum += v;
            }
        }
        // Zero-mean so flat regions respond with 0.
        let mean = (sum / (FILTER_SIZE * FILTER_SIZE) as f64) as f32;
        for w in &mut filters[base..base + FILTER_SIZE * FILTER_SIZE] {
            *w -= mean;
        }
    }
    filters
}

/// Stage 0 — preprocess: normalizes the frame to zero mean and applies a
/// 3×3 box blur, writing the luminance plane both branches consume.
pub fn preprocess(ctx: &ParCtx, frame: &[f32], w: usize, h: usize, lum: &mut Vec<f32>) {
    assert_eq!(frame.len(), w * h, "frame size mismatch");
    let mean = (frame.iter().map(|&v| v as f64).sum::<f64>() / frame.len().max(1) as f64) as f32;
    lum.clear();
    lum.resize(w * h, 0.0);
    ctx.for_each_chunk(lum, |offset, chunk| {
        for (i, out) in chunk.iter_mut().enumerate() {
            let idx = offset + i;
            let (x, y) = ((idx % w) as isize, (idx / w) as isize);
            let mut acc = 0.0f32;
            let mut cnt = 0.0f32;
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx >= 0 && (nx as usize) < w && ny >= 0 && (ny as usize) < h {
                        acc += frame[ny as usize * w + nx as usize] - mean;
                        cnt += 1.0;
                    }
                }
            }
            *out = acc / cnt;
        }
    });
}

/// Stage 1 (detection branch) — convolution: applies every filter at every
/// interior pixel and keeps the strongest response. This is the workload's
/// compute bottleneck (`k · FILTER_SIZE²` MACs per pixel) and the stage
/// worth replicating across PU classes.
pub fn detect_conv(
    ctx: &ParCtx,
    lum: &[f32],
    w: usize,
    h: usize,
    filters: &[f32],
    detmap: &mut Vec<f32>,
) {
    assert_eq!(lum.len(), w * h, "luminance size mismatch");
    assert_eq!(filters.len() % (FILTER_SIZE * FILTER_SIZE), 0);
    let k = filters.len() / (FILTER_SIZE * FILTER_SIZE);
    let r = FILTER_SIZE / 2;
    detmap.clear();
    detmap.resize(w * h, 0.0);
    ctx.for_each_chunk(detmap, |offset, chunk| {
        for (i, out) in chunk.iter_mut().enumerate() {
            let idx = offset + i;
            let (x, y) = (idx % w, idx / w);
            if x < r || x >= w - r || y < r || y >= h - r {
                continue;
            }
            let mut best = 0.0f32;
            for f in 0..k {
                let base = f * FILTER_SIZE * FILTER_SIZE;
                let mut acc = 0.0f32;
                for fy in 0..FILTER_SIZE {
                    let row = (y + fy - r) * w + x - r;
                    for fx in 0..FILTER_SIZE {
                        acc += filters[base + fy * FILTER_SIZE + fx] * lum[row + fx];
                    }
                }
                best = best.max(acc.abs());
            }
            *out = best;
        }
    });
}

/// Stage 2 (detection branch) — non-maximum suppression: keeps pixels that
/// are a strict 3×3 local maximum above `threshold`, as `(index, score)`
/// pairs sorted by index.
pub fn detect_nms(
    _ctx: &ParCtx,
    detmap: &[f32],
    w: usize,
    h: usize,
    threshold: f32,
    detections: &mut Vec<(usize, f32)>,
) {
    assert_eq!(detmap.len(), w * h, "detection map size mismatch");
    detections.clear();
    for y in 1..h.saturating_sub(1) {
        for x in 1..w.saturating_sub(1) {
            let v = detmap[y * w + x];
            if v <= threshold {
                continue;
            }
            let mut is_max = true;
            'scan: for dy in -1..=1isize {
                for dx in -1..=1isize {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let n = ((y as isize + dy) as usize) * w + (x as isize + dx) as usize;
                    if detmap[n] > v {
                        is_max = false;
                        break 'scan;
                    }
                }
            }
            if is_max {
                detections.push((y * w + x, v));
            }
        }
    }
}

/// Stage 3 (flow branch) — image pyramid: `levels` successive 2×2 average
/// downsamples of the luminance plane, concatenated coarsest-last.
/// Returns the (width, height) of each level, finest first.
pub fn flow_pyramid(
    ctx: &ParCtx,
    lum: &[f32],
    w: usize,
    h: usize,
    levels: usize,
    pyramid: &mut Vec<f32>,
) -> Vec<(usize, usize)> {
    assert_eq!(lum.len(), w * h, "luminance size mismatch");
    pyramid.clear();
    let mut dims = Vec::with_capacity(levels);
    let mut src: Vec<f32> = lum.to_vec();
    let (mut sw, mut sh) = (w, h);
    for _ in 0..levels {
        let (dw, dh) = (sw / 2, sh / 2);
        if dw == 0 || dh == 0 {
            break;
        }
        let mut dst = vec![0.0f32; dw * dh];
        let src_ref = &src;
        ctx.for_each_chunk(&mut dst, |offset, chunk| {
            for (i, out) in chunk.iter_mut().enumerate() {
                let idx = offset + i;
                let (x, y) = (idx % dw, idx / dw);
                let base = (2 * y) * sw + 2 * x;
                *out = 0.25
                    * (src_ref[base]
                        + src_ref[base + 1]
                        + src_ref[base + sw]
                        + src_ref[base + sw + 1]);
            }
        });
        pyramid.extend_from_slice(&dst);
        dims.push((dw, dh));
        src = dst;
        sw = dw;
        sh = dh;
    }
    dims
}

/// Stage 4 (flow branch) — Lucas–Kanade-style solve on the finest pyramid
/// level: per 4×4 block, accumulates the structure tensor from central
/// differences and the temporal difference against the next-coarser level,
/// then solves the regularized 2×2 system for `(dx, dy)` per block.
pub fn flow_solve(_ctx: &ParCtx, pyramid: &[f32], dims: &[(usize, usize)], flow: &mut Vec<f32>) {
    flow.clear();
    if dims.len() < 2 {
        return;
    }
    let (fw, fh) = dims[0];
    let (cw, _ch) = dims[1];
    let fine = &pyramid[..fw * fh];
    let coarse = &pyramid[fw * fh..fw * fh + cw * dims[1].1];
    let (bw, bh) = (fw / 4, fh / 4);
    flow.resize(bw * bh * 2, 0.0);
    for by in 0..bh {
        for bx in 0..bw {
            let (mut gxx, mut gxy, mut gyy, mut gxt, mut gyt) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
            for y in (by * 4).max(1)..((by + 1) * 4).min(fh - 1) {
                for x in (bx * 4).max(1)..((bx + 1) * 4).min(fw - 1) {
                    let ix = 0.5 * (fine[y * fw + x + 1] - fine[y * fw + x - 1]) as f64;
                    let iy = 0.5 * (fine[(y + 1) * fw + x] - fine[(y - 1) * fw + x]) as f64;
                    // Temporal difference: the same location one level up
                    // stands in for the "previous frame".
                    let it = (coarse[(y / 2) * cw + x / 2] - fine[y * fw + x]) as f64;
                    gxx += ix * ix;
                    gxy += ix * iy;
                    gyy += iy * iy;
                    gxt += ix * it;
                    gyt += iy * it;
                }
            }
            // Regularized 2×2 solve (Tikhonov eps keeps it well-posed on
            // flat blocks).
            let eps = 1e-3;
            let det = (gxx + eps) * (gyy + eps) - gxy * gxy;
            let dx = (-(gxt) * (gyy + eps) + gxy * gyt) / det;
            let dy = (gxy * gxt - (gxx + eps) * gyt) / det;
            flow[(by * bw + bx) * 2] = dx as f32;
            flow[(by * bw + bx) * 2 + 1] = dy as f32;
        }
    }
}

/// Stage 5 (join) — fuse: pairs each detection with the flow vector of its
/// block, producing flattened `(x, y, dx, dy, score)` observations. This
/// stage consumes both branch outputs, making it the DAG's merge point.
pub fn fuse(
    _ctx: &ParCtx,
    detections: &[(usize, f32)],
    flow: &[f32],
    w: usize,
    fused: &mut Vec<f32>,
) {
    fused.clear();
    let bw = (w / 2) / 4; // flow blocks span 4 px of the half-res level
    for &(idx, score) in detections {
        let (x, y) = (idx % w, idx / w);
        let (bx, by) = ((x / 2 / 4).min(bw.saturating_sub(1)), y / 2 / 4);
        let b = (by * bw + bx) * 2;
        let (dx, dy) = if b + 1 < flow.len() {
            (flow[b], flow[b + 1])
        } else {
            (0.0, 0.0)
        };
        fused.extend_from_slice(&[x as f32, y as f32, dx, dy, score]);
    }
}

/// Stage 6 — track: folds the fused observations into an exponential
/// moving-average track state `(cx, cy, vx, vy, mass)`.
pub fn track(_ctx: &ParCtx, fused: &[f32], state: &mut [f32; 5]) {
    let alpha = 0.2f32;
    for obs in fused.chunks_exact(5) {
        let weight = obs[4].max(0.0);
        let a = alpha * (weight / (1.0 + weight));
        state[0] += a * (obs[0] - state[0]);
        state[1] += a * (obs[1] - state[1]);
        state[2] += a * (obs[2] - state[2]);
        state[3] += a * (obs[3] - state[3]);
        state[4] = state[4] * (1.0 - alpha) + weight * alpha;
    }
}

/// Deterministic synthetic frame: a textured background with a few moving
/// bright blobs (so detection finds peaks and flow sees structure).
pub fn synthetic_frame(w: usize, h: usize, seed: u64) -> Vec<f32> {
    let mut frame = vec![0.0f32; w * h];
    let t = (seed % 64) as f32;
    for y in 0..h {
        for x in 0..w {
            let (xf, yf) = (x as f32, y as f32);
            // Background texture.
            let mut v = 0.15 * ((0.37 * xf).sin() * (0.29 * yf).cos());
            // Three orbiting blobs.
            for b in 0..3u32 {
                let phase = t * 0.2 + b as f32 * 2.1;
                let cx = w as f32 * (0.5 + 0.3 * (phase).cos());
                let cy = h as f32 * (0.5 + 0.3 * (phase * 1.3).sin());
                let d2 = (xf - cx).powi(2) + (yf - cy).powi(2);
                v += (2.0 + b as f32 * 0.5) * (-d2 / 18.0).exp();
            }
            frame[y * w + x] = v;
        }
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_are_zero_mean() {
        let k = 4;
        let f = detection_filters(k, 3);
        assert_eq!(f.len(), k * FILTER_SIZE * FILTER_SIZE);
        for filt in f.chunks_exact(FILTER_SIZE * FILTER_SIZE) {
            let sum: f32 = filt.iter().sum();
            assert!(sum.abs() < 1e-4, "filter mean {sum}");
        }
    }

    #[test]
    fn detection_finds_blobs() {
        let (w, h) = (64, 64);
        let ctx = ParCtx::new(2);
        let frame = synthetic_frame(w, h, 0);
        let mut lum = Vec::new();
        preprocess(&ctx, &frame, w, h, &mut lum);
        assert_eq!(lum.len(), w * h);
        let filters = detection_filters(8, 0);
        let mut detmap = Vec::new();
        detect_conv(&ctx, &lum, w, h, &filters, &mut detmap);
        let mut detections = Vec::new();
        detect_nms(&ctx, &detmap, w, h, 0.5, &mut detections);
        assert!(!detections.is_empty(), "blobs should produce peaks");
        assert!(detections.windows(2).all(|d| d[0].0 < d[1].0));
    }

    #[test]
    fn pyramid_and_flow_shapes() {
        let (w, h) = (64, 48);
        let ctx = ParCtx::serial();
        let frame = synthetic_frame(w, h, 5);
        let mut lum = Vec::new();
        preprocess(&ctx, &frame, w, h, &mut lum);
        let mut pyramid = Vec::new();
        let dims = flow_pyramid(&ctx, &lum, w, h, 3, &mut pyramid);
        assert_eq!(dims, vec![(32, 24), (16, 12), (8, 6)]);
        assert_eq!(pyramid.len(), 32 * 24 + 16 * 12 + 8 * 6);
        let mut flow = Vec::new();
        flow_solve(&ctx, &pyramid, &dims, &mut flow);
        assert_eq!(flow.len(), (32 / 4) * (24 / 4) * 2);
        assert!(flow.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fuse_and_track_are_deterministic() {
        let detections = vec![(10 * 64 + 20, 1.5f32), (30 * 64 + 40, 2.0)];
        let flow = vec![0.5f32; 2 * 8 * 8];
        let ctx = ParCtx::serial();
        let mut fused = Vec::new();
        fuse(&ctx, &detections, &flow, 64, &mut fused);
        assert_eq!(fused.len(), 10);
        let mut s1 = [0.0f32; 5];
        let mut s2 = [0.0f32; 5];
        track(&ctx, &fused, &mut s1);
        track(&ctx, &fused, &mut s2);
        assert_eq!(s1, s2);
        assert!(s1[4] > 0.0, "track accumulated mass");
    }

    #[test]
    fn parallel_matches_serial() {
        let (w, h) = (48, 48);
        let frame = synthetic_frame(w, h, 9);
        let filters = detection_filters(6, 9);
        let run = |ctx: &ParCtx| {
            let mut lum = Vec::new();
            preprocess(ctx, &frame, w, h, &mut lum);
            let mut detmap = Vec::new();
            detect_conv(ctx, &lum, w, h, &filters, &mut detmap);
            (lum, detmap)
        };
        assert_eq!(run(&ParCtx::serial()), run(&ParCtx::new(4)));
    }
}
