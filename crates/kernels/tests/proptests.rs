//! Property-based tests of the compute kernels: the octree stages against
//! standard-library oracles and structural invariants, CSR round trips,
//! CNN shape algebra, and task-graph linearization, over randomized
//! inputs.

use bt_kernels::octree::{
    build_octree, count_edges, dedup_sorted, exclusive_scan, morton_decode, morton_encode,
    radix_sort_u32, RadixTree, MORTON_BITS,
};
use bt_kernels::pointcloud::Point3;
use bt_kernels::sparse::{prune_to_csr, CsrMatrix};
use bt_kernels::{ParCtx, TaskGraph};
use proptest::prelude::*;

fn unit_point() -> impl Strategy<Value = Point3> {
    [0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn radix_sort_matches_std(mut data in proptest::collection::vec(any::<u32>(), 0..3000)) {
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut scratch = Vec::new();
        radix_sort_u32(&ParCtx::new(3), &mut data, &mut scratch);
        prop_assert_eq!(data, expect);
    }

    #[test]
    fn dedup_matches_std(mut data in proptest::collection::vec(0u32..500, 0..2000)) {
        data.sort_unstable();
        let mut expect = data.clone();
        expect.dedup();
        let mut got = Vec::new();
        dedup_sorted(&ParCtx::new(4), &data, &mut got);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn exclusive_scan_matches_fold(data in proptest::collection::vec(0u32..1000, 0..2000)) {
        let mut expect = Vec::with_capacity(data.len());
        let mut acc = 0u32;
        for &x in &data {
            expect.push(acc);
            acc += x;
        }
        let mut got = Vec::new();
        let total = exclusive_scan(&ParCtx::new(5), &data, &mut got);
        prop_assert_eq!(got, expect);
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn morton_round_trip(p in unit_point()) {
        let code = morton_encode(p);
        prop_assert!(code < (1 << MORTON_BITS));
        let q = morton_decode(code);
        for axis in 0..3 {
            prop_assert!((p[axis] - q[axis]).abs() < 1.0 / 1024.0 + 1e-6);
        }
        // Re-encoding the decoded corner must be exact (idempotence).
        prop_assert_eq!(morton_encode(q), code);
    }

    #[test]
    fn morton_preserves_cell_ordering(a in unit_point(), b in unit_point()) {
        // Points in the same 1/1024 cell get the same code.
        let quant = |p: Point3| {
            [
                (p[0] * 1024.0) as u32,
                (p[1] * 1024.0) as u32,
                (p[2] * 1024.0) as u32,
            ]
        };
        if quant(a) == quant(b) {
            prop_assert_eq!(morton_encode(a), morton_encode(b));
        }
    }

    #[test]
    fn radix_tree_structure(keys in proptest::collection::btree_set(0u32..(1 << MORTON_BITS), 2..400)) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let ctx = ParCtx::new(3);
        let tree = RadixTree::build(&ctx, &keys);
        prop_assert_eq!(tree.internal_count(), keys.len() - 1);
        for i in 0..tree.internal_count() {
            // Ranges are proper and the prefix really is common.
            prop_assert!(tree.first(i) <= tree.last(i));
            let len = tree.prefix_len(i);
            if len > 0 {
                let shift = MORTON_BITS - len;
                let prefix = keys[tree.first(i)] >> shift;
                for key in &keys[tree.first(i)..=tree.last(i)] {
                    prop_assert_eq!(key >> shift, prefix);
                }
            }
        }
        // Every leaf has an internal parent whose range covers it.
        for q in 0..keys.len() {
            let p = tree.leaf_parent(q) as usize;
            prop_assert!(tree.first(p) <= q && q <= tree.last(p));
        }
    }

    #[test]
    fn octree_equals_pointer_reference(
        keys in proptest::collection::btree_set(0u32..(1 << MORTON_BITS), 2..300),
        depth in 1u32..=10,
    ) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let ctx = ParCtx::new(2);
        let tree = RadixTree::build(&ctx, &keys);
        let mut edges = Vec::new();
        count_edges(&ctx, &tree, depth, &mut edges);
        let mut offsets = Vec::new();
        let total = exclusive_scan(&ctx, &edges, &mut offsets);
        let octree = build_octree(&ctx, &tree, &edges, &offsets, total, depth);

        // Reference: the set of all distinct key prefixes at levels 0..=depth.
        let mut reference = std::collections::HashSet::new();
        reference.insert((0u32, 0u32));
        for &key in &keys {
            for lvl in 1..=depth {
                reference.insert((lvl, key >> (MORTON_BITS - 3 * lvl)));
            }
        }
        let mut got = std::collections::HashSet::new();
        for c in 0..octree.cell_count() {
            prop_assert!(got.insert((octree.level(c), octree.code(c))), "duplicate cell");
        }
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn csr_round_trip(
        rows in 1usize..20,
        cols in 1usize..20,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dense: Vec<f32> = (0..rows * cols)
            .map(|_| if rng.gen_bool(0.4) { rng.gen_range(-1.0..1.0f32) } else { 0.0 })
            .collect();
        let csr = CsrMatrix::from_dense(&dense, rows, cols, 0.0);
        prop_assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn pruning_density_is_monotone(seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dense: Vec<f32> = (0..40 * 40).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sparse = prune_to_csr(&dense, 40, 40, 0.1);
        let mid = prune_to_csr(&dense, 40, 40, 0.4);
        let full = prune_to_csr(&dense, 40, 40, 1.0);
        prop_assert!(sparse.nnz() <= mid.nnz());
        prop_assert!(mid.nnz() <= full.nnz());
        // Kept entries are a subset relation on magnitude: the smallest kept
        // at 10% must be ≥ the largest dropped at 10%.
        let kept_min = (0..40)
            .flat_map(|r| sparse.row(r))
            .map(|(_, v)| v.abs())
            .fold(f32::MAX, f32::min);
        let dropped_max = {
            let kept: std::collections::HashSet<(usize, usize)> = (0..40)
                .flat_map(|r| sparse.row(r).map(move |(c, _)| (r, c)))
                .collect();
            dense
                .iter()
                .enumerate()
                .filter(|(i, _)| !kept.contains(&(i / 40, i % 40)))
                .map(|(_, v)| v.abs())
                .fold(0.0f32, f32::max)
        };
        prop_assert!(kept_min >= dropped_max - 1e-6);
    }

    /// Random acyclic graphs (edges only go forward) always linearize, the
    /// order is a valid topological order, and it is deterministic.
    #[test]
    fn random_acyclic_graphs_linearize_topologically(
        n in 1usize..10,
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut graph = TaskGraph::new(n);
        let mut deps = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if rng.gen_bool(0.35) {
                    graph.add_dep(i, j);
                    deps.push((i, j));
                }
            }
        }
        let order = graph.linearize().expect("forward edges cannot cycle");
        prop_assert_eq!(order.len(), n);
        let mut position = vec![0usize; n];
        let mut seen = vec![false; n];
        for (pos, &s) in order.iter().enumerate() {
            prop_assert!(s < n && !seen[s], "order must be a permutation");
            seen[s] = true;
            position[s] = pos;
        }
        for &(from, to) in &deps {
            prop_assert!(position[from] < position[to], "dep ({from}, {to}) violated");
        }
        // Deterministic: a second linearization of an identical graph
        // produces the identical order.
        let mut again = TaskGraph::new(n);
        for &(from, to) in &deps {
            again.add_dep(from, to);
        }
        prop_assert_eq!(again.linearize().unwrap(), order);
    }

    /// Shuffled relabelings of an acyclic graph still linearize, and the
    /// relabeled graph's edges map through the order consistently.
    #[test]
    fn relabeled_graphs_stay_consistent(n in 2usize..9, seed in any::<u64>()) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        // Random permutation of a chain plus extra forward edges, then
        // relabel by the linearization: the result must be chain-shaped
        // in the new labels (every edge strictly forward).
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let mut graph = TaskGraph::new(n);
        for w in perm.windows(2) {
            graph.add_dep(w[0], w[1]);
        }
        let order = graph.linearize().expect("permuted chain is acyclic");
        prop_assert_eq!(&order, &perm);
        let relabeled = graph.relabeled(&order);
        for &(from, to) in relabeled.deps() {
            prop_assert!(from < to, "relabeled edge ({from}, {to}) must go forward");
        }
        prop_assert!(relabeled.is_chain());
    }
}
