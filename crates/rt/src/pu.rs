//! The processing-unit class vocabulary every schedule speaks.

use core::fmt;

/// The class of a processing unit on a heterogeneous SoC.
///
/// Mirrors the PU taxonomy of the paper: big.LITTLE CPU clusters (with an
/// optional medium tier, as on the Google Pixel 7a) plus an integrated GPU.
/// A *class* groups identical cores — scheduling in BetterTogether assigns
/// pipeline stages to classes, not to individual cores. On MCU-class
/// devices the same four slots map onto the parts such chips actually
/// have: the fast core (Cortex-M7) in the big slot, the efficiency core
/// (Cortex-M4) in the little slot, and the DMA engine in the async
/// accelerator slot the GPU occupies on phones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "std", derive(serde::Serialize, serde::Deserialize))]
pub enum PuClass {
    /// High-performance out-of-order CPU cores (e.g. Cortex-X1/X3, A78AE).
    BigCpu,
    /// Mid-tier CPU cores (e.g. Cortex-A78, A715/A710).
    MediumCpu,
    /// Energy-efficient in-order CPU cores (e.g. Cortex-A55, A510).
    LittleCpu,
    /// Integrated GPU sharing DRAM with the CPU clusters (UMA) — or, on
    /// MCU-class devices, the asynchronous engine class (DMA).
    Gpu,
}

impl PuClass {
    /// Number of distinct PU classes.
    pub const COUNT: usize = 4;

    /// All PU classes, in canonical order (big, medium, little, GPU).
    pub const ALL: [PuClass; PuClass::COUNT] = [
        PuClass::BigCpu,
        PuClass::MediumCpu,
        PuClass::LittleCpu,
        PuClass::Gpu,
    ];

    /// Stable index of this class in `0..PuClass::COUNT`.
    ///
    /// ```
    /// use bt_rt::PuClass;
    /// assert_eq!(PuClass::BigCpu.index(), 0);
    /// assert_eq!(PuClass::Gpu.index(), 3);
    /// ```
    pub const fn index(self) -> usize {
        match self {
            PuClass::BigCpu => 0,
            PuClass::MediumCpu => 1,
            PuClass::LittleCpu => 2,
            PuClass::Gpu => 3,
        }
    }

    /// Inverse of [`PuClass::index`]; returns `None` for out-of-range values.
    pub const fn from_index(idx: usize) -> Option<PuClass> {
        match idx {
            0 => Some(PuClass::BigCpu),
            1 => Some(PuClass::MediumCpu),
            2 => Some(PuClass::LittleCpu),
            3 => Some(PuClass::Gpu),
            _ => None,
        }
    }

    /// Whether this class is a CPU cluster (as opposed to a GPU).
    pub const fn is_cpu(self) -> bool {
        !matches!(self, PuClass::Gpu)
    }

    /// Short label used in tables and figures ("big", "med", "little", "gpu").
    pub const fn label(self) -> &'static str {
        match self {
            PuClass::BigCpu => "big",
            PuClass::MediumCpu => "med",
            PuClass::LittleCpu => "little",
            PuClass::Gpu => "gpu",
        }
    }
}

impl fmt::Display for PuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::string::ToString;

    #[test]
    fn class_index_roundtrip() {
        for class in PuClass::ALL {
            assert_eq!(PuClass::from_index(class.index()), Some(class));
        }
        assert_eq!(PuClass::from_index(4), None);
    }

    #[test]
    fn class_display_labels() {
        assert_eq!(PuClass::BigCpu.to_string(), "big");
        assert_eq!(PuClass::Gpu.to_string(), "gpu");
    }

    #[test]
    fn is_cpu() {
        assert!(PuClass::BigCpu.is_cpu());
        assert!(PuClass::LittleCpu.is_cpu());
        assert!(!PuClass::Gpu.is_cpu());
    }
}
