//! Unified-memory buffers and TaskObjects (§3.1, §3.4 of the paper).
//!
//! On the paper's UMA SoCs, a `UsmBuffer` is memory visible to both host
//! and device (`cudaMallocManaged` / `VkBuffer`); on the host substrate it
//! is a pre-allocated, recyclable typed buffer that never reallocates
//! during steady-state execution — preserving the zero-copy,
//! no-allocation-on-the-hot-path discipline of the paper's runtime. On an
//! MCU the same discipline is structural: the pool is sized at bring-up
//! and [`TaskObject::recycle`] is the only thing the hot loop ever does.

use core::fmt;

use alloc::vec::Vec;

/// A pre-allocated typed buffer with a fixed capacity and a movable length.
///
/// Growth beyond capacity is an explicit, countable event
/// ([`UsmBuffer::reallocations`]) so tests can assert the hot path stays
/// allocation-free.
///
/// ```
/// use bt_rt::UsmBuffer;
/// let mut buf: UsmBuffer<u32> = UsmBuffer::with_capacity(8);
/// buf.resize(4);
/// buf.as_mut_slice().copy_from_slice(&[1, 2, 3, 4]);
/// assert_eq!(buf.as_slice()[2], 3);
/// assert_eq!(buf.reallocations(), 0);
/// ```
#[derive(Clone)]
pub struct UsmBuffer<T> {
    data: Vec<T>,
    reallocations: u32,
}

impl<T: Default + Clone> UsmBuffer<T> {
    /// Pre-allocates a buffer of `capacity` elements, initially empty.
    pub fn with_capacity(capacity: usize) -> UsmBuffer<T> {
        UsmBuffer {
            data: Vec::with_capacity(capacity),
            reallocations: 0,
        }
    }

    /// Sets the buffer's logical length, zero-filling new elements.
    /// Growing beyond the current capacity is counted as a reallocation.
    pub fn resize(&mut self, len: usize) {
        if len > self.data.capacity() {
            self.reallocations += 1;
        }
        self.data.resize(len, T::default());
    }

    /// Current logical length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is logically empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocated capacity.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// How many times the buffer grew beyond its pre-allocation.
    pub fn reallocations(&self) -> u32 {
        self.reallocations
    }

    /// Read view.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write view.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Clears the logical contents, retaining capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl<T> fmt::Debug for UsmBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UsmBuffer")
            .field("len", &self.data.len())
            .field("capacity", &self.data.capacity())
            .field("reallocations", &self.reallocations)
            .finish()
    }
}

/// A TaskObject: the container holding everything one streaming task needs
/// across all pipeline stages (§3.4). A fixed pool of these circulates
/// through the chunks and is recycled back to the head.
#[derive(Debug)]
pub struct TaskObject<P> {
    /// Which streaming input this object currently carries.
    pub seq: u64,
    /// How many times the object has been recycled.
    pub generation: u32,
    /// Timestamp of pipeline entry (set by the head dispatcher). Host-only:
    /// off-std substrates measure entry with their own [`crate::time::Clock`].
    #[cfg(feature = "std")]
    pub entered: Option<std::time::Instant>,
    /// Tombstone set by the resilient executor when every retry of a stage
    /// failed: the object keeps flowing (so the pool never shrinks) but
    /// downstream chunks skip execution and the tail counts it as dropped
    /// instead of completed. Cleared on [`recycle`](TaskObject::recycle).
    pub dropped: bool,
    /// The application-specific buffers (persistent + scratchpad).
    pub payload: P,
}

impl<P> TaskObject<P> {
    /// Wraps a payload as a fresh TaskObject.
    pub fn new(payload: P) -> TaskObject<P> {
        TaskObject {
            seq: 0,
            generation: 0,
            #[cfg(feature = "std")]
            entered: None,
            dropped: false,
            payload,
        }
    }

    /// Prepares the object for a new task: bumps the generation, assigns
    /// the sequence number, stamps entry time (host only), clears the
    /// tombstone.
    pub fn recycle(&mut self, seq: u64) {
        self.seq = seq;
        self.generation += 1;
        #[cfg(feature = "std")]
        {
            self.entered = Some(std::time::Instant::now());
        }
        self.dropped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_realloc_within_capacity() {
        let mut buf: UsmBuffer<f32> = UsmBuffer::with_capacity(100);
        for len in [10, 50, 100, 30, 100] {
            buf.resize(len);
        }
        assert_eq!(buf.reallocations(), 0);
        assert_eq!(buf.len(), 100);
    }

    #[test]
    fn growth_is_counted() {
        let mut buf: UsmBuffer<u8> = UsmBuffer::with_capacity(4);
        buf.resize(8);
        assert_eq!(buf.reallocations(), 1);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut buf: UsmBuffer<u32> = UsmBuffer::with_capacity(16);
        buf.resize(16);
        buf.clear();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 16);
    }

    #[test]
    fn task_object_recycling() {
        let mut obj = TaskObject::new(alloc::vec![0u8; 4]);
        assert_eq!(obj.generation, 0);
        obj.recycle(7);
        assert_eq!(obj.seq, 7);
        assert_eq!(obj.generation, 1);
        #[cfg(feature = "std")]
        assert!(obj.entered.is_some());
        obj.recycle(8);
        assert_eq!(obj.generation, 2);
    }
}
