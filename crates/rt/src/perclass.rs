//! A tiny per-[`PuClass`] map used throughout the device and cost models.

use crate::pu::PuClass;

/// A small map from [`PuClass`] to `T`, with at most one entry per class.
///
/// Devices carry per-class data everywhere (specs, interference multipliers,
/// profiled latencies); this container gives that pattern a name and O(1)
/// access.
///
/// ```
/// use bt_rt::{PerClass, PuClass};
/// let mut m = PerClass::empty();
/// m.set(PuClass::Gpu, 0.86);
/// assert_eq!(m.get(PuClass::Gpu), Some(&0.86));
/// assert_eq!(m.get(PuClass::BigCpu), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "std", derive(serde::Serialize, serde::Deserialize))]
pub struct PerClass<T>([Option<T>; PuClass::COUNT]);

impl<T> PerClass<T> {
    /// Creates an empty map.
    pub fn empty() -> PerClass<T> {
        PerClass([None, None, None, None])
    }

    /// Inserts or replaces the entry for `class`, returning the old value.
    pub fn set(&mut self, class: PuClass, value: T) -> Option<T> {
        self.0[class.index()].replace(value)
    }

    /// Returns the entry for `class`, if present.
    pub fn get(&self, class: PuClass) -> Option<&T> {
        self.0[class.index()].as_ref()
    }

    /// Returns a mutable reference to the entry for `class`, if present.
    pub fn get_mut(&mut self, class: PuClass) -> Option<&mut T> {
        self.0[class.index()].as_mut()
    }

    /// Whether the map has an entry for `class`.
    pub fn contains(&self, class: PuClass) -> bool {
        self.0[class.index()].is_some()
    }

    /// Iterates over `(class, &value)` pairs in canonical class order.
    pub fn iter(&self) -> impl Iterator<Item = (PuClass, &T)> {
        PuClass::ALL
            .iter()
            .filter_map(move |&c| self.0[c.index()].as_ref().map(|v| (c, v)))
    }

    /// Number of populated entries.
    pub fn len(&self) -> usize {
        self.0.iter().filter(|e| e.is_some()).count()
    }

    /// Whether no entry is populated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for PerClass<T> {
    fn default() -> PerClass<T> {
        PerClass::empty()
    }
}

impl<T> FromIterator<(PuClass, T)> for PerClass<T> {
    fn from_iter<I: IntoIterator<Item = (PuClass, T)>>(iter: I) -> PerClass<T> {
        let mut map = PerClass::empty();
        for (class, value) in iter {
            map.set(class, value);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::vec;
    use alloc::vec::Vec;

    #[test]
    fn per_class_set_get() {
        let mut m: PerClass<u32> = PerClass::empty();
        assert!(m.is_empty());
        assert_eq!(m.set(PuClass::BigCpu, 1), None);
        assert_eq!(m.set(PuClass::BigCpu, 2), Some(1));
        assert_eq!(m.get(PuClass::BigCpu), Some(&2));
        assert_eq!(m.len(), 1);
        assert!(m.contains(PuClass::BigCpu));
        assert!(!m.contains(PuClass::Gpu));
    }

    #[test]
    fn per_class_iter_is_canonical_order() {
        let m: PerClass<u8> = [(PuClass::Gpu, 3), (PuClass::BigCpu, 0)]
            .into_iter()
            .collect();
        let order: Vec<PuClass> = m.iter().map(|(c, _)| c).collect();
        assert_eq!(order, vec![PuClass::BigCpu, PuClass::Gpu]);
    }
}
