//! Thread-affinity maps: which cores a pipeline chunk may be pinned to.

use alloc::vec::Vec;

use crate::perclass::PerClass;
use crate::pu::PuClass;

/// Thread-affinity map of a device: which logical core IDs belong to each
/// CPU cluster, and which of them the OS allows user threads to pin to.
///
/// This is the "target system specification" input of the paper (Fig. 2,
/// step 2): BetterTogether needs it to bind OpenMP worker threads to the
/// cluster a chunk was scheduled on. The host execution backend consumes
/// the same map when pinning real threads with `sched_setaffinity`.
/// Deriving a map from a device's cluster specs lives with the device
/// model (`bt-soc`); the substrate only carries the map itself.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "std", derive(serde::Serialize, serde::Deserialize))]
pub struct AffinityMap {
    cores: PerClass<Vec<usize>>,
    pinnable: PerClass<Vec<usize>>,
}

impl AffinityMap {
    /// Creates an empty map. Add clusters with [`AffinityMap::with_cluster`].
    pub fn new() -> AffinityMap {
        AffinityMap {
            cores: PerClass::empty(),
            pinnable: PerClass::empty(),
        }
    }

    /// Registers the core IDs of a cluster, along with the subset the OS
    /// permits pinning to.
    ///
    /// # Panics
    ///
    /// Panics if `pinnable` is not a subset of `cores`.
    pub fn with_cluster(
        mut self,
        class: PuClass,
        cores: Vec<usize>,
        pinnable: Vec<usize>,
    ) -> AffinityMap {
        assert!(
            pinnable.iter().all(|c| cores.contains(c)),
            "pinnable cores must be a subset of the cluster's cores"
        );
        self.cores.set(class, cores);
        self.pinnable.set(class, pinnable);
        self
    }

    /// Logical core IDs of `class`, empty for absent clusters (and GPUs).
    pub fn cores(&self, class: PuClass) -> &[usize] {
        self.cores.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Core IDs of `class` that can be pinned.
    pub fn pinnable(&self, class: PuClass) -> &[usize] {
        self.pinnable.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of CPU cores in the map.
    pub fn total_cores(&self) -> usize {
        self.cores.iter().map(|(_, v)| v.len()).sum()
    }

    /// Total number of pinnable CPU cores (5 of 8 on the OnePlus 11).
    pub fn total_pinnable(&self) -> usize {
        self.pinnable.iter().map(|(_, v)| v.len()).sum()
    }
}

impl Default for AffinityMap {
    fn default() -> AffinityMap {
        AffinityMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::vec;

    #[test]
    fn cluster_registration_and_totals() {
        let map = AffinityMap::new()
            .with_cluster(PuClass::LittleCpu, vec![0, 1], vec![0, 1])
            .with_cluster(PuClass::BigCpu, vec![2, 3], vec![2]);
        assert_eq!(map.cores(PuClass::BigCpu), &[2, 3]);
        assert_eq!(map.pinnable(PuClass::BigCpu), &[2]);
        assert_eq!(map.total_cores(), 4);
        assert_eq!(map.total_pinnable(), 3);
        assert!(map.cores(PuClass::Gpu).is_empty());
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn pinnable_must_be_subset() {
        let _ = AffinityMap::new().with_cluster(PuClass::BigCpu, vec![0, 1], vec![2]);
    }
}
