//! The acyclic stage-dependency graph — the canonical shape of an
//! application, shared by the scheduler vocabulary ([`crate::dag`]) and
//! every consumer that reasons about stage ordering.

use core::fmt;

use alloc::collections::BinaryHeap;
use alloc::vec;
use alloc::vec::Vec;
use core::cmp::Reverse;

/// Error returned when a task graph cannot be linearized: reports one
/// offending dependency cycle so DAG-authoring mistakes are debuggable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclicGraphError {
    /// Stage indices forming a cycle, in forward-edge order starting at
    /// the smallest member: `cycle[i] -> cycle[i + 1]` and
    /// `cycle.last() -> cycle[0]` are all declared dependencies.
    pub cycle: Vec<usize>,
}

impl fmt::Display for CyclicGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task graph contains a cycle: ")?;
        for s in &self.cycle {
            write!(f, "{s} -> ")?;
        }
        match self.cycle.first() {
            Some(first) => write!(f, "{first}"),
            None => write!(f, "?"),
        }
    }
}

impl core::error::Error for CyclicGraphError {}

/// An acyclic stage-dependency graph — the canonical shape of an
/// application. Chain-shaped graphs take the linearized fast path
/// everywhere; genuine fork/join graphs are scheduled, simulated, and
/// executed as DAGs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "std", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskGraph {
    n: usize,
    deps: Vec<(usize, usize)>,
}

impl TaskGraph {
    /// A graph over `n` stages with no dependencies yet.
    pub fn new(n: usize) -> TaskGraph {
        TaskGraph {
            n,
            deps: Vec::new(),
        }
    }

    /// The linear chain over `n` stages: `0 -> 1 -> … -> n - 1`.
    pub fn chain(n: usize) -> TaskGraph {
        TaskGraph {
            n,
            deps: (1..n).map(|i| (i - 1, i)).collect(),
        }
    }

    /// Declares that `to` consumes an output of `from` (so `from` must run
    /// earlier).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add_dep(&mut self, from: usize, to: usize) -> &mut TaskGraph {
        assert!(from < self.n && to < self.n, "stage index out of range");
        self.deps.push((from, to));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no stages.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The declared dependency edges, in insertion order.
    pub fn deps(&self) -> &[(usize, usize)] {
        &self.deps
    }

    /// Per-stage predecessor sets (sorted, deduplicated).
    pub fn pred_sets(&self) -> Vec<Vec<usize>> {
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(from, to) in &self.deps {
            preds[to].push(from);
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        preds
    }

    /// Per-stage successor sets (sorted, deduplicated).
    pub fn succ_sets(&self) -> Vec<Vec<usize>> {
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(from, to) in &self.deps {
            succs[from].push(to);
        }
        for s in &mut succs {
            s.sort_unstable();
            s.dedup();
        }
        succs
    }

    /// Stages with no predecessors, ascending.
    pub fn sources(&self) -> Vec<usize> {
        let preds = self.pred_sets();
        (0..self.n).filter(|&i| preds[i].is_empty()).collect()
    }

    /// Stages with no successors, ascending.
    pub fn sinks(&self) -> Vec<usize> {
        let succs = self.succ_sets();
        (0..self.n).filter(|&i| succs[i].is_empty()).collect()
    }

    /// Produces a deterministic topological order (Kahn's algorithm,
    /// lowest-index-first tie-breaking).
    ///
    /// # Errors
    ///
    /// Returns [`CyclicGraphError`] reporting one offending cycle if the
    /// dependencies are not acyclic.
    pub fn linearize(&self) -> Result<Vec<usize>, CyclicGraphError> {
        let mut indegree = vec![0usize; self.n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(from, to) in &self.deps {
            indegree[to] += 1;
            out_edges[from].push(to);
        }
        let mut ready: BinaryHeap<Reverse<usize>> = (0..self.n)
            .filter(|&i| indegree[i] == 0)
            .map(Reverse)
            .collect();
        let mut order = Vec::with_capacity(self.n);
        let mut placed = vec![false; self.n];
        while let Some(Reverse(i)) = ready.pop() {
            order.push(i);
            placed[i] = true;
            for &j in &out_edges[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(Reverse(j));
                }
            }
        }
        if order.len() == self.n {
            Ok(order)
        } else {
            Err(CyclicGraphError {
                cycle: self.extract_cycle(&placed),
            })
        }
    }

    /// Finds one cycle among the stages Kahn's algorithm could not place.
    /// Every unplaced stage has an unplaced predecessor, so walking
    /// smallest-predecessor-first backwards must revisit a stage; the
    /// revisited suffix is a cycle, reported in forward-edge order rotated
    /// to start at its smallest member.
    fn extract_cycle(&self, placed: &[bool]) -> Vec<usize> {
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(from, to) in &self.deps {
            if !placed[from] && !placed[to] {
                preds[to].push(from);
            }
        }
        for p in &mut preds {
            p.sort_unstable();
        }
        let start = (0..self.n)
            .find(|&i| !placed[i])
            .expect("linearize failed, so an unplaced stage exists");
        let mut visited_at = vec![usize::MAX; self.n];
        let mut path = Vec::new();
        let mut cur = start;
        loop {
            if visited_at[cur] != usize::MAX {
                // path[k + 1] is a predecessor of path[k], and `cur`
                // (already at position p) is a predecessor of the last
                // element: forward order is cur, then the suffix reversed.
                let p = visited_at[cur];
                let mut cycle = vec![cur];
                cycle.extend(path[p + 1..].iter().rev().copied());
                let min_pos = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &s)| s)
                    .map(|(k, _)| k)
                    .unwrap_or(0);
                cycle.rotate_left(min_pos);
                return cycle;
            }
            visited_at[cur] = path.len();
            path.push(cur);
            cur = preds[cur][0];
        }
    }

    /// Re-indexes the graph so original stage `order[k]` becomes stage `k`
    /// (used when stages are re-sorted into topological order).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..len()`.
    pub fn relabeled(&self, order: &[usize]) -> TaskGraph {
        assert_eq!(order.len(), self.n, "order/stage count mismatch");
        let mut position = vec![usize::MAX; self.n];
        for (k, &orig) in order.iter().enumerate() {
            assert!(
                orig < self.n && position[orig] == usize::MAX,
                "order must be a permutation of stage indices"
            );
            position[orig] = k;
        }
        TaskGraph {
            n: self.n,
            deps: self
                .deps
                .iter()
                .map(|&(from, to)| (position[from], position[to]))
                .collect(),
        }
    }

    /// Reachability closure as bitmasks: bit `j` of `masks[i]` is set iff
    /// a directed path with at least one edge leads from `i` to `j`.
    ///
    /// # Errors
    ///
    /// Returns [`CyclicGraphError`] if the graph is cyclic.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 64 stages (far above any
    /// pipeline this framework schedules).
    pub fn reachability(&self) -> Result<Vec<u64>, CyclicGraphError> {
        assert!(self.n <= 64, "reachability supports up to 64 stages");
        let order = self.linearize()?;
        let succs = self.succ_sets();
        let mut masks = vec![0u64; self.n];
        for &i in order.iter().rev() {
            let mut m = 0u64;
            for &j in &succs[i] {
                m |= (1u64 << j) | masks[j];
            }
            masks[i] = m;
        }
        Ok(masks)
    }

    /// Whether the graph is a chain up to relabeling: acyclic and every
    /// consecutive pair of its deterministic topological order is
    /// dependency-ordered (so the linearization loses nothing).
    pub fn is_chain(&self) -> bool {
        if self.n <= 1 {
            return self.linearize().is_ok();
        }
        let order = match self.linearize() {
            Ok(order) => order,
            Err(_) => return false,
        };
        let masks = match self.reachability() {
            Ok(masks) => masks,
            Err(_) => return false,
        };
        order.windows(2).all(|w| masks[w[0]] >> w[1] & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::string::ToString;

    #[test]
    fn linear_graph_keeps_order() {
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 1).add_dep(1, 2).add_dep(2, 3);
        assert_eq!(g.linearize().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn octree_style_dag_linearizes() {
        // 7 stages; stage 6 (build octree) depends on 2 (dedup), 3 (radix
        // tree), and 5 (prefix sum), like the paper's example.
        let mut g = TaskGraph::new(7);
        g.add_dep(0, 1)
            .add_dep(1, 2)
            .add_dep(2, 3)
            .add_dep(3, 4)
            .add_dep(4, 5)
            .add_dep(2, 6)
            .add_dep(3, 6)
            .add_dep(5, 6);
        let order = g.linearize().unwrap();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn independent_stages_sorted_by_index() {
        let g = TaskGraph::new(3);
        assert_eq!(g.linearize().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn cycle_detected_and_reported() {
        let mut g = TaskGraph::new(2);
        g.add_dep(0, 1).add_dep(1, 0);
        let err = g.linearize().unwrap_err();
        assert_eq!(err.cycle, vec![0, 1]);
        assert_eq!(err.to_string(), "task graph contains a cycle: 0 -> 1 -> 0");
    }

    #[test]
    fn cycle_reported_behind_acyclic_prefix() {
        // 0 -> 1 feeds a 3-cycle 2 -> 3 -> 4 -> 2; the cycle must name
        // only the cyclic stages, rotated to start at the smallest.
        let mut g = TaskGraph::new(5);
        g.add_dep(0, 1)
            .add_dep(1, 2)
            .add_dep(2, 3)
            .add_dep(3, 4)
            .add_dep(4, 2);
        let err = g.linearize().unwrap_err();
        assert_eq!(err.cycle, vec![2, 3, 4]);
        for w in err.cycle.windows(2) {
            assert!(g.deps().contains(&(w[0], w[1])));
        }
        assert!(g.deps().contains(&(4, 2)));
    }

    #[test]
    fn chain_and_shape_queries() {
        let chain = TaskGraph::chain(4);
        assert!(chain.is_chain());
        assert_eq!(chain.sources(), vec![0]);
        assert_eq!(chain.sinks(), vec![3]);
        assert_eq!(chain.pred_sets()[2], vec![1]);
        assert_eq!(chain.succ_sets()[0], vec![1]);

        // Diamond fork/join: not a chain.
        let mut diamond = TaskGraph::new(4);
        diamond
            .add_dep(0, 1)
            .add_dep(0, 2)
            .add_dep(1, 3)
            .add_dep(2, 3);
        assert!(!diamond.is_chain());
        assert_eq!(diamond.sources(), vec![0]);
        assert_eq!(diamond.sinks(), vec![3]);
        let masks = diamond.reachability().unwrap();
        assert_eq!(masks[0], 0b1110);
        assert_eq!(masks[1], 0b1000);
        assert_eq!(masks[1] >> 2 & 1, 0, "siblings are not reachable");

        // A chain up to relabeling is still recognized as a chain.
        let mut shuffled = TaskGraph::new(3);
        shuffled.add_dep(2, 0).add_dep(0, 1);
        assert!(shuffled.is_chain());
    }

    #[test]
    fn relabeled_maps_edges_through_topo_order() {
        let mut g = TaskGraph::new(3);
        g.add_dep(2, 0).add_dep(0, 1);
        let order = g.linearize().unwrap();
        assert_eq!(order, vec![2, 0, 1]);
        let r = g.relabeled(&order);
        assert_eq!(r.deps(), &[(0, 1), (1, 2)]);
        assert!(r.is_chain());
    }
}
