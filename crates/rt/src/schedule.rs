//! Pipeline schedules: the stage → PU mapping produced by BT-Optimizer and
//! consumed by the executors.

use core::fmt;

#[cfg(feature = "std")]
use alloc::string::ToString;
use alloc::vec;
use alloc::vec::Vec;

use crate::pu::PuClass;

/// Error constructing a [`Schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No stages.
    Empty,
    /// A PU class reappears after a different class (violates C2).
    NotContiguous {
        /// The stage index where the violation occurs.
        stage: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Empty => f.write_str("a schedule needs at least one stage"),
            ScheduleError::NotContiguous { stage } => {
                write!(
                    f,
                    "stages on one PU must be contiguous (violated at stage {stage})"
                )
            }
        }
    }
}

impl core::error::Error for ScheduleError {}

/// One chunk of a schedule: a PU class and the contiguous stage range it
/// executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "std", derive(serde::Serialize, serde::Deserialize))]
pub struct ChunkAssignment {
    /// The serving PU class.
    pub pu: PuClass,
    /// First stage index (inclusive).
    pub first_stage: usize,
    /// Last stage index (inclusive).
    pub last_stage: usize,
}

impl ChunkAssignment {
    /// Number of stages in this chunk.
    pub fn stage_count(&self) -> usize {
        self.last_stage - self.first_stage + 1
    }
}

/// A validated pipeline schedule: for each stage, the PU class it runs on,
/// with the contiguity constraint (C2) enforced at construction.
///
/// ```
/// use bt_rt::{PuClass, Schedule};
///
/// let s = Schedule::new(vec![
///     PuClass::BigCpu, PuClass::BigCpu, PuClass::Gpu,
/// ])?;
/// assert_eq!(s.chunks().len(), 2);
/// assert_eq!(s.to_string(), "BBG");
/// # Ok::<(), bt_rt::ScheduleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    assignment: Vec<PuClass>,
    /// Maximal chunks, precomputed at construction: `chunks()` sits on
    /// the executors' and predictors' hot paths, where a fresh `Vec` per
    /// call showed up in `bench_eval` profiles.
    chunks: Vec<ChunkAssignment>,
}

impl Schedule {
    /// Validates and wraps a stage → class assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Empty`] for zero stages, or
    /// [`ScheduleError::NotContiguous`] if a class reappears after another
    /// class intervened.
    pub fn new(assignment: Vec<PuClass>) -> Result<Schedule, ScheduleError> {
        if assignment.is_empty() {
            return Err(ScheduleError::Empty);
        }
        let mut closed = [false; PuClass::COUNT];
        let mut prev: Option<PuClass> = None;
        for (i, &c) in assignment.iter().enumerate() {
            if prev != Some(c) {
                if closed[c.index()] {
                    return Err(ScheduleError::NotContiguous { stage: i });
                }
                if let Some(p) = prev {
                    closed[p.index()] = true;
                }
                prev = Some(c);
            }
        }
        let chunks = Schedule::compute_chunks(&assignment);
        Ok(Schedule { assignment, chunks })
    }

    /// A schedule placing every stage on one PU (the paper's homogeneous
    /// baselines).
    pub fn homogeneous(stages: usize, pu: PuClass) -> Schedule {
        assert!(stages > 0, "a schedule needs at least one stage");
        Schedule {
            assignment: vec![pu; stages],
            chunks: vec![ChunkAssignment {
                pu,
                first_stage: 0,
                last_stage: stages - 1,
            }],
        }
    }

    fn compute_chunks(assignment: &[PuClass]) -> Vec<ChunkAssignment> {
        let mut chunks = Vec::new();
        let mut start = 0;
        for i in 1..=assignment.len() {
            if i == assignment.len() || assignment[i] != assignment[start] {
                chunks.push(ChunkAssignment {
                    pu: assignment[start],
                    first_stage: start,
                    last_stage: i - 1,
                });
                start = i;
            }
        }
        chunks
    }

    /// Builds a schedule from optimizer output: per-stage indices into a
    /// class palette.
    ///
    /// # Errors
    ///
    /// Propagates validation errors; panics if an index is out of range of
    /// `classes`.
    pub fn from_class_indices(
        indices: &[usize],
        classes: &[PuClass],
    ) -> Result<Schedule, ScheduleError> {
        Schedule::new(indices.iter().map(|&i| classes[i]).collect())
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.assignment.len()
    }

    /// The class of stage `i`.
    pub fn pu_of(&self, stage: usize) -> PuClass {
        self.assignment[stage]
    }

    /// The full assignment.
    pub fn assignment(&self) -> &[PuClass] {
        &self.assignment
    }

    /// The maximal chunks, in pipeline order (precomputed; this is a
    /// zero-cost accessor).
    pub fn chunks(&self) -> &[ChunkAssignment] {
        &self.chunks
    }

    /// The distinct PU classes used.
    pub fn classes_used(&self) -> Vec<PuClass> {
        self.chunks().iter().map(|c| c.pu).collect()
    }

    /// Whether every stage runs on the same PU.
    pub fn is_homogeneous(&self) -> bool {
        self.chunks().len() == 1
    }
}

// Hand-written serde keeps the wire format exactly what the derive on the
// pre-cache struct produced — `{"assignment":[...]}` — and re-validates
// (and re-derives the chunk cache) on the way in.
#[cfg(feature = "std")]
impl serde::Serialize for Schedule {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "assignment".to_string(),
            serde::Serialize::to_value(&self.assignment),
        )])
    }
}

#[cfg(feature = "std")]
impl serde::Deserialize for Schedule {
    fn from_value(v: &serde::Value) -> Result<Schedule, serde::Error> {
        let assignment = v
            .get("assignment")
            .ok_or_else(|| serde::Error::new("Schedule: missing field `assignment`"))?;
        let assignment: Vec<PuClass> = serde::Deserialize::from_value(assignment)?;
        Schedule::new(assignment).map_err(|e| serde::Error::new(e.to_string()))
    }
}

impl fmt::Display for Schedule {
    /// Compact form: one letter per stage (B/M/L/G).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &c in &self.assignment {
            let ch = match c {
                PuClass::BigCpu => 'B',
                PuClass::MediumCpu => 'M',
                PuClass::LittleCpu => 'L',
                PuClass::Gpu => 'G',
            };
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_decomposition() {
        let s = Schedule::new(vec![
            PuClass::BigCpu,
            PuClass::BigCpu,
            PuClass::Gpu,
            PuClass::LittleCpu,
        ])
        .unwrap();
        let chunks = s.chunks();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].pu, PuClass::BigCpu);
        assert_eq!((chunks[0].first_stage, chunks[0].last_stage), (0, 1));
        assert_eq!(chunks[0].stage_count(), 2);
        assert_eq!(chunks[2].pu, PuClass::LittleCpu);
    }

    #[test]
    fn contiguity_enforced() {
        let r = Schedule::new(vec![PuClass::BigCpu, PuClass::Gpu, PuClass::BigCpu]);
        assert_eq!(r, Err(ScheduleError::NotContiguous { stage: 2 }));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Schedule::new(vec![]), Err(ScheduleError::Empty));
    }

    #[test]
    fn homogeneous_is_single_chunk() {
        let s = Schedule::homogeneous(5, PuClass::Gpu);
        assert!(s.is_homogeneous());
        assert_eq!(s.chunks().len(), 1);
        assert_eq!(s.to_string(), "GGGGG");
    }

    #[test]
    fn from_class_indices_maps_palette() {
        let classes = [PuClass::BigCpu, PuClass::Gpu];
        let s = Schedule::from_class_indices(&[0, 0, 1], &classes).unwrap();
        assert_eq!(s.pu_of(2), PuClass::Gpu);
        assert_eq!(s.to_string(), "BBG");
    }

    #[cfg(feature = "std")]
    #[test]
    fn serde_round_trip_keeps_wire_format_and_revalidates() {
        let s = Schedule::new(vec![PuClass::BigCpu, PuClass::BigCpu, PuClass::Gpu]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            json.starts_with("{\"assignment\":"),
            "wire format must stay assignment-only: {json}"
        );
        assert!(!json.contains("chunks"), "cache must not leak: {json}");
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.chunks(), s.chunks());
        // Invalid assignments are rejected at deserialization too.
        let bad = "{\"assignment\":[\"BigCpu\",\"Gpu\",\"BigCpu\"]}";
        assert!(serde_json::from_str::<Schedule>(bad).is_err());
        assert!(serde_json::from_str::<Schedule>("{\"assignment\":[]}").is_err());
    }

    #[test]
    fn display_letters() {
        let s = Schedule::new(vec![
            PuClass::MediumCpu,
            PuClass::LittleCpu,
            PuClass::LittleCpu,
        ])
        .unwrap();
        assert_eq!(s.to_string(), "MLL");
    }
}
