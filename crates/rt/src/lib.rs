//! # bt-rt — the runtime substrate, `no_std + alloc` clean
//!
//! The portable core of the BetterTogether runtime, carved out of
//! `bt-pipeline`/`bt-soc` so the same substrate that drives the host
//! executor can run on MCU-class targets (Tock-style static allocation,
//! interrupt-driven dispatch) without the Rust standard library:
//!
//! - [`spsc`] — the lock-free single-producer single-consumer ring the
//!   dispatcher threads communicate through, in two shapes: the
//!   heap-capacity [`spsc::channel`] and the const-generic, statically
//!   allocatable [`StaticRing`].
//! - [`usm`] — [`UsmBuffer`] and [`TaskObject`] recycling: the fixed pool
//!   of task containers that circulates through pipeline chunks with zero
//!   steady-state allocation.
//! - [`schedule`] / [`dag`] / [`graph`] — the validated stage → PU-class
//!   mapping vocabulary ([`Schedule`], [`DagSchedule`], [`TaskGraph`])
//!   shared by the optimizer, the simulators, and the executors.
//! - [`run`] — the shared run model ([`RunConfig`], [`RunReport`],
//!   [`TimelineSpan`]) every execution engine takes and returns.
//! - [`time`] — the [`Clock`]/[`Park`] trait pair that abstracts
//!   `std::time::Instant` and `std::thread` out of the substrate; the
//!   blocking queue operations are generic over them, and the `std`
//!   feature provides [`StdClock`]/[`StdPark`] impls that preserve the
//!   host behavior exactly.
//!
//! # Features
//!
//! - `std` (default): serde impls for the schedule/run vocabulary,
//!   telemetry in [`RunConfig`]/[`RunReport`], and the std-clock
//!   convenience methods. Every workspace crate consumes `bt-rt` through
//!   this gate, so the extraction is source- and wire-compatible.
//! - `alloc`: the floor the substrate stands on (`Vec`, `Box`, `Arc`).
//!   Building `--no-default-features --features alloc` is the CI-gated
//!   proof that no `std::thread`/`std::time` hides in the substrate: under
//!   `no_std` those paths do not resolve at all.

#![cfg_attr(not(feature = "std"), no_std)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[cfg(not(feature = "alloc"))]
compile_error!(
    "bt-rt requires the `alloc` feature: build with `--features alloc` \
     (or the default `std` feature, which implies it)"
);

extern crate alloc;

pub mod affinity;
pub mod dag;
pub mod graph;
pub mod micros;
mod pad;
pub mod perclass;
pub mod pu;
pub mod run;
pub mod schedule;
pub mod spsc;
pub mod time;
pub mod usm;

pub use affinity::AffinityMap;
pub use dag::{DagChunk, DagSchedule, DagScheduleError};
pub use graph::{CyclicGraphError, TaskGraph};
pub use micros::Micros;
pub use perclass::PerClass;
pub use pu::PuClass;
pub use run::{DegradeReason, RunConfig, RunReport, RunStats, TimelineSpan};
pub use schedule::{ChunkAssignment, Schedule, ScheduleError};
pub use spsc::{
    Backoff, CapacityError, Consumer, Disconnected, PopError, Producer, StaticConsumer,
    StaticProducer, StaticRing,
};
pub use time::{Clock, Park, SpinPark};
#[cfg(feature = "std")]
pub use time::{StdClock, StdPark};
pub use usm::{TaskObject, UsmBuffer};
