//! The shared run model: one configuration, one report, and one timeline
//! type for every execution engine in the workspace.
//!
//! Before this module existed the runtime had three parallel type families
//! that had already drifted (`DesConfig` vs `HostRunConfig`,
//! `TimelineEvent` vs `HostTimelineEvent`, `DesReport` vs
//! `FaultedDesReport` vs `HostReport`). Every engine — the static DES
//! (`bt_soc::des::simulate`), the dynamic-scheduling DES
//! (`bt_soc::des_dynamic::simulate_dynamic`), and the host executor
//! (`bt_pipeline::run_host`) — now takes a [`RunConfig`] and returns a
//! [`RunReport`]. Fault injection and resilience ride alongside as explicit
//! mode parameters (`Option<&FaultSpec>`, an optional host
//! `ResilienceConfig`), so the fault-free hot path pays a single branch.
//!
//! Telemetry collection is host-tooling (`bt-telemetry` wraps files and
//! JSON), so the telemetry knob and payload only exist under the `std`
//! feature; the `no_std` substrate carries the rest of the model
//! unchanged.
//!
//! Accounting invariant shared by every engine:
//! `completed + dropped == submitted`.

use core::time::Duration;

use alloc::vec::Vec;

#[cfg(feature = "std")]
use bt_telemetry::{RunTelemetry, TelemetryConfig};

use crate::affinity::AffinityMap;
use crate::micros::Micros;

/// Configuration of one pipeline run, simulated or on the host.
///
/// Substrate-specific knobs are documented as such and ignored by engines
/// they do not apply to: `noise_sigma`/`service_cache` drive the simulator
/// only, `affinity`/`duration` the host executor only.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Measured tasks (the paper uses 30 per run).
    pub tasks: u32,
    /// Warmup tasks excluded from measurement.
    ///
    /// One default for every engine: 5. (Historically the simulator
    /// defaulted to 5 and the host executor to 3 — see DESIGN.md § The run
    /// model for why they disagreed and why 5 won.)
    pub warmup: u32,
    /// Circulating task objects (multi-buffering depth). `0` means the
    /// engine default: `chunks + 1` for pipelined engines, `PUs + 1` for
    /// the dynamic scheduler.
    pub buffers: u32,
    /// Seed for the simulator's measurement-noise stream.
    pub seed: u64,
    /// Log-scale sigma of multiplicative measurement noise (simulator
    /// only; the host measures real wall-clock noise).
    pub noise_sigma: f64,
    /// Record a per-(chunk, task) execution timeline
    /// ([`RunReport::timeline`]) for Gantt-style inspection.
    pub record_timeline: bool,
    /// What telemetry to collect (off by default; the disabled path costs
    /// one branch per instrumentation point). Host tooling only, hence
    /// `std`-gated.
    #[cfg(feature = "std")]
    pub telemetry: TelemetryConfig,
    /// Memoize noiseless base service times per (chunk, stage, busy-set)
    /// key (simulator only; bit-identical on or off).
    pub service_cache: bool,
    /// Optional device affinity map (host only): dispatchers pin
    /// themselves to their chunk's pinnable cores, best-effort.
    pub affinity: Option<AffinityMap>,
    /// When set (host only), the head keeps admitting tasks until this
    /// wall-clock duration elapses (the paper's autotuning protocol runs
    /// each candidate "for a fixed interval of 10 seconds to measure its
    /// throughput", §3.3); `tasks` then only sizes the warmup accounting
    /// and the reported count comes from how many tasks actually finished.
    pub duration: Option<Duration>,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            tasks: 30,
            warmup: 5,
            buffers: 0,
            seed: 0,
            noise_sigma: 0.02,
            record_timeline: false,
            #[cfg(feature = "std")]
            telemetry: TelemetryConfig::OFF,
            service_cache: true,
            affinity: None,
            duration: None,
        }
    }
}

/// One recorded execution span, shared by every engine's timeline and fed
/// to `bt-telemetry` span recording and `bt_soc::gantt` rendering.
///
/// The simulator records one span per *stage* execution (`stage` is
/// `Some`); the host executor records one span per *chunk* execution
/// (`stage` is `None` — kernels inside a chunk are dispatched back to back
/// and only the chunk boundary is observable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineSpan {
    /// Which chunk (or PU slot, for the dynamic scheduler) executed.
    pub chunk: usize,
    /// Stage index within the chunk, when per-stage resolution exists.
    pub stage: Option<usize>,
    /// Task sequence number.
    pub task: u64,
    /// Start offset in µs (virtual time, or wall-clock relative to the
    /// run's epoch).
    pub start_us: f64,
    /// End offset in µs.
    pub end_us: f64,
}

/// Steady-state measurement of the tasks that completed.
///
/// All engines share the same departure-to-departure window convention:
/// with warmup the window opens at the last warmup departure and covers
/// `tasks` inter-departure intervals; without warmup it opens at the first
/// measured departure (one fewer interval); a single completed task
/// degenerates to its entry→exit latency.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Time between the window anchor and the last task's departure
    /// (steady-state window, excluding pipeline fill).
    pub makespan: Micros,
    /// Mean per-task residence time (entry into the pipeline → exit from
    /// the last chunk) over measured tasks.
    pub mean_task_latency: Micros,
    /// Steady-state inverse throughput (mean inter-departure time over the
    /// measured window). This is the quantity the paper reports as
    /// pipeline latency and compares against the predicted bottleneck
    /// `T_max`.
    pub time_per_task: Micros,
    /// Tasks completed per second.
    pub throughput_hz: f64,
    /// Fraction of the measured window each chunk spent busy (busy time
    /// clipped to the window, so warmup and fill work cannot inflate it).
    pub chunk_utilization: Vec<f64>,
    /// Index of the chunk with the highest utilization.
    pub bottleneck_chunk: usize,
    /// Number of measured tasks.
    pub tasks: u32,
}

/// Why a host run degraded instead of completing cleanly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradeReason {
    /// `chunk` exhausted its per-chunk failure budget
    /// (`ResilienceConfig::max_task_failures`); the head stopped admitting
    /// and the pipeline drained its in-flight tasks.
    KernelFailures {
        /// The chunk whose kernels kept failing.
        chunk: usize,
    },
    /// `chunk`'s dispatcher starved past the watchdog deadline with its
    /// producer still alive — an upstream kernel is presumed hung, so the
    /// pipeline unwound without a full drain.
    WatchdogTimeout {
        /// The dispatcher that starved (not necessarily the hung one).
        chunk: usize,
    },
}

/// Result of one pipeline run — simulated or host, fault-free or not.
///
/// The accounting triple (`submitted`, `completed`, `dropped`) always
/// conserves tasks; `stats` is `None` only when *nothing* completed.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Tasks admitted at the pipeline head.
    pub submitted: u64,
    /// Tasks that exited the pipeline tail.
    pub completed: u64,
    /// `submitted - completed`: dropped by fault injection, tombstoned by
    /// retries-exhausted kernels, or discarded by a watchdog unwind.
    pub dropped: u64,
    /// Fault activations observed (injected-fault firings in the
    /// simulator; tombstoned tasks on the host).
    pub faults_fired: u32,
    /// Steady-state measurement over the tasks that completed, if any.
    pub stats: Option<RunStats>,
    /// Recorded execution spans (empty unless
    /// [`RunConfig::record_timeline`] was set).
    pub timeline: Vec<TimelineSpan>,
    /// Collected telemetry (`None` unless [`RunConfig::telemetry`] enables
    /// something).
    #[cfg(feature = "std")]
    pub telemetry: Option<RunTelemetry>,
    /// Host-executor degradation verdict (`None` for clean runs and for
    /// the simulator, whose degradations are visible as `dropped > 0`).
    pub degraded: Option<DegradeReason>,
}

impl RunReport {
    /// Whether the run lost tasks or degraded.
    pub fn is_degraded(&self) -> bool {
        self.dropped > 0 || self.stats.is_none() || self.degraded.is_some()
    }

    /// The steady-state stats of a run expected to be clean.
    ///
    /// # Panics
    ///
    /// Panics if nothing completed (`stats` is `None`).
    pub fn expect_stats(&self) -> &RunStats {
        self.stats
            .as_ref()
            .expect("run completed no tasks; check is_degraded() first")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::vec;

    fn clean_report() -> RunReport {
        RunReport {
            submitted: 35,
            completed: 35,
            dropped: 0,
            faults_fired: 0,
            stats: Some(RunStats {
                makespan: Micros::new(3_000.0),
                mean_task_latency: Micros::new(250.0),
                time_per_task: Micros::new(100.0),
                throughput_hz: 10_000.0,
                chunk_utilization: vec![0.9, 0.4],
                bottleneck_chunk: 0,
                tasks: 30,
            }),
            timeline: Vec::new(),
            #[cfg(feature = "std")]
            telemetry: None,
            degraded: None,
        }
    }

    #[test]
    fn clean_run_is_not_degraded() {
        let r = clean_report();
        assert!(!r.is_degraded());
        assert_eq!(r.expect_stats().tasks, 30);
    }

    #[test]
    fn dropped_tasks_mark_degradation() {
        let mut r = clean_report();
        r.completed = 33;
        r.dropped = 2;
        assert!(r.is_degraded());
    }

    #[test]
    fn default_config_matches_paper_protocol() {
        let c = RunConfig::default();
        assert_eq!((c.tasks, c.warmup, c.buffers), (30, 5, 0));
        assert!(c.service_cache);
        assert!(c.affinity.is_none());
        assert!(c.duration.is_none());
    }
}
