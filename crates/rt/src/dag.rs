//! DAG schedules: the fork/join generalization of [`Schedule`].
//!
//! A [`DagSchedule`] maps every stage of a fork/join application onto a PU
//! class, generalizing the paper's contiguity constraint (C2) from "one
//! contiguous index range per class" to *path-convexity*: on every
//! dependency path, the stages mapped to one class must be consecutive.
//! All stages of one class still form a single chunk served by one PU;
//! stages on parallel branches may share a class (the chunk serializes
//! them) or map to different classes (the branches run concurrently and
//! price interference against each other).
//!
//! One *bottleneck* stage may additionally be declared **replicated**
//! across two classes: both PUs serve the full stage, round-robin over the
//! task sequence (`seq % 2`), and the downstream join restores order. The
//! two replica classes are exclusive to that stage.
//!
//! Construction validates the whole structure — path-convexity, chunk-
//! quotient acyclicity, unique entry/exit chunks, replica well-formedness
//! — so every `DagSchedule` held by an executor or predictor is executable
//! as-is. Chain-shaped schedules convert losslessly to [`Schedule`] via
//! [`DagSchedule::as_linear`], which is how the executors keep the
//! linear-chain fast path bit-identical.

use core::fmt;

use alloc::format;
use alloc::string::String;
#[cfg(feature = "std")]
use alloc::string::ToString;
use alloc::vec;
use alloc::vec::Vec;

use crate::graph::{CyclicGraphError, TaskGraph};
use crate::pu::PuClass;
use crate::schedule::Schedule;

/// Error constructing a [`DagSchedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagScheduleError {
    /// No stages.
    Empty,
    /// Assignment length disagrees with the task graph.
    LengthMismatch {
        /// Stages in the task graph.
        stages: usize,
        /// Entries in the assignment.
        assignment: usize,
    },
    /// The task graph is not acyclic.
    Cyclic(CyclicGraphError),
    /// A class's stages are not consecutive along some dependency path
    /// (the DAG generalization of C2).
    NotPathConvex {
        /// The violating class.
        class: PuClass,
        /// A stage of another class sitting on a path between two stages
        /// of `class`.
        via: usize,
    },
    /// The chunk quotient graph contains a cycle: two classes would each
    /// have to wait on the other within a single task.
    ChunkCycle,
    /// Token routing needs exactly one entry and one exit chunk.
    NotSinglePort {
        /// Number of chunks with no predecessors.
        sources: usize,
        /// Number of chunks with no successors.
        sinks: usize,
    },
    /// The replicated-stage declaration is malformed.
    BadReplica {
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for DagScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagScheduleError::Empty => f.write_str("a schedule needs at least one stage"),
            DagScheduleError::LengthMismatch { stages, assignment } => write!(
                f,
                "assignment has {assignment} entries but the task graph has {stages} stages"
            ),
            DagScheduleError::Cyclic(e) => write!(f, "{e}"),
            DagScheduleError::NotPathConvex { class, via } => write!(
                f,
                "stages on {class:?} must be consecutive along every dependency path \
                 (stage {via} interrupts one)"
            ),
            DagScheduleError::ChunkCycle => {
                f.write_str("chunk graph contains a cycle: classes wait on each other")
            }
            DagScheduleError::NotSinglePort { sources, sinks } => write!(
                f,
                "token routing needs exactly one entry and one exit chunk \
                 (found {sources} entries, {sinks} exits)"
            ),
            DagScheduleError::BadReplica { reason } => write!(f, "bad replica: {reason}"),
        }
    }
}

impl core::error::Error for DagScheduleError {
    fn source(&self) -> Option<&(dyn core::error::Error + 'static)> {
        match self {
            DagScheduleError::Cyclic(e) => Some(e),
            _ => None,
        }
    }
}

/// One chunk of a DAG schedule: a PU class and the stages it serves, in
/// topological order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DagChunk {
    /// The serving PU class.
    pub pu: PuClass,
    /// The stage indices this chunk executes, in dependency order.
    pub stages: Vec<usize>,
}

/// A validated fork/join schedule: for each stage of a task graph, the PU
/// class it runs on, with path-convexity (the DAG form of C2), chunk-graph
/// acyclicity, and single-entry/single-exit routing enforced at
/// construction. At most one stage may be replicated across two otherwise
/// unused classes.
///
/// ```
/// use bt_rt::{DagSchedule, TaskGraph};
/// use bt_rt::PuClass::*;
///
/// // Diamond: 0 forks to 1 and 2, which join at 3.
/// let mut g = TaskGraph::new(4);
/// g.add_dep(0, 1).add_dep(0, 2).add_dep(1, 3).add_dep(2, 3);
/// let s = DagSchedule::new(vec![LittleCpu, Gpu, BigCpu, MediumCpu], &g)?;
/// assert_eq!(s.chunks().len(), 4);
/// assert!(!s.is_chain());
/// # Ok::<(), bt_rt::DagScheduleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagSchedule {
    assignment: Vec<PuClass>,
    graph: TaskGraph,
    replicated: Option<(usize, (PuClass, PuClass))>,
    chunks: Vec<DagChunk>,
    chunk_edges: Vec<(usize, usize)>,
    replica_chunks: Option<(usize, usize)>,
}

impl DagSchedule {
    /// Validates and wraps a stage → class assignment over `graph`.
    ///
    /// # Errors
    ///
    /// Returns a [`DagScheduleError`] describing the first violated
    /// structural constraint.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 64 stages (the reachability
    /// representation's limit, far above any pipeline this framework
    /// schedules).
    pub fn new(
        assignment: Vec<PuClass>,
        graph: &TaskGraph,
    ) -> Result<DagSchedule, DagScheduleError> {
        DagSchedule::build(assignment, graph.clone(), None)
    }

    /// Like [`DagSchedule::new`], but stage `stage` is *replicated*: both
    /// classes in `classes` serve the full stage, alternating over the
    /// task sequence (`seq % 2`). The entry in `assignment[stage]` must
    /// name one of the two replica classes; both classes are exclusive to
    /// the replicated stage.
    ///
    /// # Errors
    ///
    /// Returns a [`DagScheduleError`] as [`DagSchedule::new`] does, plus
    /// [`DagScheduleError::BadReplica`] for malformed replication (a
    /// source/sink stage, duplicate classes, or a replica class reused by
    /// another stage).
    pub fn replicated(
        assignment: Vec<PuClass>,
        graph: &TaskGraph,
        stage: usize,
        classes: (PuClass, PuClass),
    ) -> Result<DagSchedule, DagScheduleError> {
        DagSchedule::build(assignment, graph.clone(), Some((stage, classes)))
    }

    /// Lifts a linear-chain [`Schedule`] into the DAG model (the
    /// degenerate case: the graph is the chain over its stages).
    pub fn from_schedule(schedule: &Schedule) -> DagSchedule {
        let graph = TaskGraph::chain(schedule.stage_count());
        DagSchedule::build(schedule.assignment().to_vec(), graph, None)
            .expect("a valid chain schedule is a valid DAG schedule")
    }

    fn build(
        assignment: Vec<PuClass>,
        graph: TaskGraph,
        replicated: Option<(usize, (PuClass, PuClass))>,
    ) -> Result<DagSchedule, DagScheduleError> {
        let n = graph.len();
        if n == 0 {
            return Err(DagScheduleError::Empty);
        }
        if assignment.len() != n {
            return Err(DagScheduleError::LengthMismatch {
                stages: n,
                assignment: assignment.len(),
            });
        }
        let topo = graph.linearize().map_err(DagScheduleError::Cyclic)?;
        let reach = graph.reachability().map_err(DagScheduleError::Cyclic)?;

        let bad = |reason: String| DagScheduleError::BadReplica { reason };
        if let Some((r, (c1, c2))) = replicated {
            if r >= n {
                return Err(bad(format!("replicated stage {r} is out of range")));
            }
            if c1 == c2 {
                return Err(bad(format!(
                    "replica classes must differ (both are {c1:?})"
                )));
            }
            if assignment[r] != c1 && assignment[r] != c2 {
                return Err(bad(format!(
                    "assignment[{r}] must name one of the replica classes"
                )));
            }
            let preds = graph.pred_sets();
            let succs = graph.succ_sets();
            if preds[r].is_empty() || succs[r].is_empty() {
                return Err(bad(format!(
                    "stage {r} is a graph source or sink and cannot be replicated"
                )));
            }
            for (s, &c) in assignment.iter().enumerate() {
                if s != r && (c == c1 || c == c2) {
                    return Err(bad(format!(
                        "replica class {c:?} is also assigned to stage {s}"
                    )));
                }
            }
        }
        let replica_stage = replicated.map(|(r, _)| r);

        // Path-convexity (the DAG generalization of C2): for every two
        // stages of one class with a path between them, every stage on
        // that path maps to the same class. A replicated stage belongs to
        // no class and therefore acts as a barrier.
        let in_class = |s: usize, c: PuClass| assignment[s] == c && replica_stage != Some(s);
        for u in 0..n {
            let c = assignment[u];
            if replica_stage == Some(u) {
                continue;
            }
            for v in 0..n {
                if v == u || !in_class(v, c) || reach[u] >> v & 1 == 0 {
                    continue;
                }
                for w in 0..n {
                    if !in_class(w, c) && reach[u] >> w & 1 == 1 && reach[w] >> v & 1 == 1 {
                        return Err(DagScheduleError::NotPathConvex { class: c, via: w });
                    }
                }
            }
        }

        // Chunks, in first-topological-appearance order. All stages of a
        // class form one chunk; a replicated stage forms two adjacent
        // single-stage chunks, one per replica class.
        let mut chunks: Vec<DagChunk> = Vec::new();
        let mut replica_chunks = None;
        let mut stage_chunks: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &s in &topo {
            if replica_stage == Some(s) {
                let (_, (c1, c2)) = replicated.expect("replica_stage implies replicated");
                let i = chunks.len();
                chunks.push(DagChunk {
                    pu: c1,
                    stages: vec![s],
                });
                chunks.push(DagChunk {
                    pu: c2,
                    stages: vec![s],
                });
                stage_chunks[s] = vec![i, i + 1];
                replica_chunks = Some((i, i + 1));
            } else {
                // Replica classes are exclusive to the replicated stage
                // (validated above), so matching by class alone can never
                // hit a replica chunk.
                let c = assignment[s];
                match chunks.iter().position(|ch| ch.pu == c) {
                    Some(i) => {
                        chunks[i].stages.push(s);
                        stage_chunks[s] = vec![i];
                    }
                    None => {
                        stage_chunks[s] = vec![chunks.len()];
                        chunks.push(DagChunk {
                            pu: c,
                            stages: vec![s],
                        });
                    }
                }
            }
        }

        // Quotient token-flow edges between chunks.
        let mut chunk_edges: Vec<(usize, usize)> = Vec::new();
        for &(u, v) in graph.deps() {
            for &cu in &stage_chunks[u] {
                for &cv in &stage_chunks[v] {
                    if cu != cv {
                        chunk_edges.push((cu, cv));
                    }
                }
            }
        }
        chunk_edges.sort_unstable();
        chunk_edges.dedup();

        // The quotient must itself be a single-entry/single-exit DAG for
        // token routing to be well-defined.
        let k = chunks.len();
        let mut indeg = vec![0usize; k];
        let mut outdeg = vec![0usize; k];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &(u, v) in &chunk_edges {
            indeg[v] += 1;
            outdeg[u] += 1;
            succs[u].push(v);
        }
        let sources = indeg.iter().filter(|&&d| d == 0).count();
        let sinks = outdeg.iter().filter(|&&d| d == 0).count();
        if sources != 1 || sinks != 1 {
            return Err(DagScheduleError::NotSinglePort { sources, sinks });
        }
        let mut indeg_left = indeg;
        let mut ready: Vec<usize> = (0..k).filter(|&c| indeg_left[c] == 0).collect();
        let mut seen = 0;
        while let Some(c) = ready.pop() {
            seen += 1;
            for &s in &succs[c] {
                indeg_left[s] -= 1;
                if indeg_left[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if seen != k {
            return Err(DagScheduleError::ChunkCycle);
        }

        Ok(DagSchedule {
            assignment,
            graph,
            replicated,
            chunks,
            chunk_edges,
            replica_chunks,
        })
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.assignment.len()
    }

    /// The stage-dependency graph this schedule was validated against.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// The full stage → class assignment. For a replicated stage the entry
    /// names one of its two replica classes; see
    /// [`DagSchedule::replicated_stage`].
    pub fn assignment(&self) -> &[PuClass] {
        &self.assignment
    }

    /// The class of stage `i` (for a replicated stage, the declared one of
    /// its two classes).
    pub fn pu_of(&self, stage: usize) -> PuClass {
        self.assignment[stage]
    }

    /// The replicated stage and its class pair, if any.
    pub fn replicated_stage(&self) -> Option<(usize, (PuClass, PuClass))> {
        self.replicated
    }

    /// The chunks, in first-topological-appearance order. A replicated
    /// stage appears as two adjacent single-stage chunks.
    pub fn chunks(&self) -> &[DagChunk] {
        &self.chunks
    }

    /// Token-flow edges between chunk indices (sorted, deduplicated).
    pub fn chunk_edges(&self) -> &[(usize, usize)] {
        &self.chunk_edges
    }

    /// The chunk-index pair serving the replicated stage, if any.
    pub fn replica_pair(&self) -> Option<(usize, usize)> {
        self.replica_chunks
    }

    /// Whether this schedule is expressible in the linear-chain model:
    /// no replication and a chain-shaped graph. Such schedules take the
    /// chain fast paths end to end.
    pub fn is_chain(&self) -> bool {
        self.replicated.is_none() && self.graph.is_chain()
    }

    /// The equivalent linear [`Schedule`] when the graph is the canonical
    /// chain `0 → 1 → … → n-1` and nothing is replicated; `None` for
    /// genuine DAGs. Executors use this to delegate to the (bit-identical)
    /// chain engines.
    pub fn as_linear(&self) -> Option<Schedule> {
        if self.replicated.is_some() {
            return None;
        }
        let n = self.graph.len();
        let mut deps = self.graph.deps().to_vec();
        deps.sort_unstable();
        deps.dedup();
        let canonical = deps.len() == n.saturating_sub(1)
            && deps.iter().enumerate().all(|(i, &e)| e == (i, i + 1));
        if !canonical {
            return None;
        }
        Schedule::new(self.assignment.clone()).ok()
    }

    /// The distinct PU classes used, in chunk order (replica classes
    /// included).
    pub fn classes_used(&self) -> Vec<PuClass> {
        self.chunks.iter().map(|c| c.pu).collect()
    }
}

// Hand-written serde mirrors [`Schedule`]'s: only the declarative fields
// travel (assignment, graph, replication), and deserialization re-runs the
// full validation, re-deriving chunks and routing.
#[cfg(feature = "std")]
impl serde::Serialize for DagSchedule {
    fn to_value(&self) -> serde::Value {
        let replicated = match self.replicated {
            Some((stage, (c1, c2))) => serde::Value::Array(vec![
                serde::Value::U64(stage as u64),
                c1.to_value(),
                c2.to_value(),
            ]),
            None => serde::Value::Null,
        };
        serde::Value::Object(vec![
            ("assignment".to_string(), self.assignment.to_value()),
            ("graph".to_string(), self.graph.to_value()),
            ("replicated".to_string(), replicated),
        ])
    }
}

#[cfg(feature = "std")]
impl serde::Deserialize for DagSchedule {
    fn from_value(v: &serde::Value) -> Result<DagSchedule, serde::Error> {
        use serde::Deserialize;
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::new(format!("DagSchedule: missing field `{name}`")))
        };
        let assignment: Vec<PuClass> = Deserialize::from_value(field("assignment")?)?;
        let graph: TaskGraph = Deserialize::from_value(field("graph")?)?;
        let replicated = match field("replicated")? {
            serde::Value::Null => None,
            serde::Value::Array(parts) if parts.len() == 3 => {
                let stage: u64 = Deserialize::from_value(&parts[0])?;
                let c1: PuClass = Deserialize::from_value(&parts[1])?;
                let c2: PuClass = Deserialize::from_value(&parts[2])?;
                Some((stage as usize, (c1, c2)))
            }
            _ => {
                return Err(serde::Error::new(
                    "DagSchedule: `replicated` must be null or [stage, class, class]",
                ))
            }
        };
        DagSchedule::build(assignment, graph, replicated)
            .map_err(|e| serde::Error::new(e.to_string()))
    }
}

impl fmt::Display for DagSchedule {
    /// Compact form: one letter per stage (B/M/L/G), a replicated stage as
    /// its bracketed class pair, e.g. `L[BG]M`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let letter = |c: PuClass| match c {
            PuClass::BigCpu => 'B',
            PuClass::MediumCpu => 'M',
            PuClass::LittleCpu => 'L',
            PuClass::Gpu => 'G',
        };
        for (s, &c) in self.assignment.iter().enumerate() {
            match self.replicated {
                Some((r, (c1, c2))) if r == s => {
                    write!(f, "[{}{}]", letter(c1), letter(c2))?;
                }
                _ => write!(f, "{}", letter(c))?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PuClass::*;

    fn diamond() -> TaskGraph {
        let mut g = TaskGraph::new(4);
        g.add_dep(0, 1).add_dep(0, 2).add_dep(1, 3).add_dep(2, 3);
        g
    }

    #[test]
    fn diamond_chunks_and_edges() {
        let s = DagSchedule::new(vec![LittleCpu, Gpu, BigCpu, MediumCpu], &diamond()).unwrap();
        assert_eq!(s.chunks().len(), 4);
        assert_eq!(s.chunks()[0].stages, vec![0]);
        // Fork: chunk 0 feeds both branches; both feed the join.
        let edges = s.chunk_edges();
        assert_eq!(edges.len(), 4);
        assert!(!s.is_chain());
        assert!(s.as_linear().is_none());
        assert_eq!(s.to_string(), "LGBM");
    }

    #[test]
    fn parallel_branches_may_share_a_class() {
        // Stages 1 and 2 are incomparable, so one BigCpu chunk may serve
        // both (serializing the branches on one PU).
        let s = DagSchedule::new(vec![LittleCpu, BigCpu, BigCpu, MediumCpu], &diamond()).unwrap();
        assert_eq!(s.chunks().len(), 3);
        let big = &s.chunks()[1];
        assert_eq!(big.pu, BigCpu);
        assert_eq!(big.stages, vec![1, 2]);
    }

    #[test]
    fn path_convexity_enforced() {
        // 0 and 3 share a class with 1 (another class) on the 0 → 1 → 3 path.
        let r = DagSchedule::new(vec![BigCpu, Gpu, LittleCpu, BigCpu], &diamond());
        assert!(matches!(
            r,
            Err(DagScheduleError::NotPathConvex { class: BigCpu, .. })
        ));
    }

    #[test]
    fn cyclic_graph_reports_cycle() {
        let mut g = TaskGraph::new(3);
        g.add_dep(0, 1).add_dep(1, 2).add_dep(2, 0);
        let r = DagSchedule::new(vec![BigCpu, Gpu, LittleCpu], &g);
        assert!(matches!(r, Err(DagScheduleError::Cyclic(_))));
    }

    #[test]
    fn length_mismatch_and_empty_rejected() {
        assert_eq!(
            DagSchedule::new(vec![BigCpu], &diamond()),
            Err(DagScheduleError::LengthMismatch {
                stages: 4,
                assignment: 1
            })
        );
        assert_eq!(
            DagSchedule::new(vec![], &TaskGraph::new(0)),
            Err(DagScheduleError::Empty)
        );
    }

    #[test]
    fn chain_schedules_convert_to_linear() {
        let s = DagSchedule::new(vec![BigCpu, BigCpu, Gpu], &TaskGraph::chain(3)).unwrap();
        assert!(s.is_chain());
        let linear = s.as_linear().unwrap();
        assert_eq!(linear.to_string(), "BBG");
        let lifted = DagSchedule::from_schedule(&linear);
        assert_eq!(lifted.chunks().len(), 2);
        assert_eq!(lifted.as_linear().unwrap(), linear);
    }

    #[test]
    fn replication_builds_adjacent_chunk_pair() {
        // Chain 0 → 1 → 2 with the middle stage split across Big + Gpu.
        let g = TaskGraph::chain(3);
        let s = DagSchedule::replicated(vec![LittleCpu, BigCpu, MediumCpu], &g, 1, (BigCpu, Gpu))
            .unwrap();
        assert_eq!(s.chunks().len(), 4);
        let (a, b) = s.replica_pair().unwrap();
        assert_eq!(s.chunks()[a].pu, BigCpu);
        assert_eq!(s.chunks()[b].pu, Gpu);
        assert_eq!(s.chunks()[a].stages, vec![1]);
        assert_eq!(s.chunks()[b].stages, vec![1]);
        assert!(!s.is_chain());
        assert!(s.as_linear().is_none());
        assert_eq!(s.to_string(), "L[BG]M");
        // The pair diverges from the source and re-merges at the sink.
        assert_eq!(s.chunk_edges(), &[(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn bad_replicas_rejected() {
        let g = TaskGraph::chain(3);
        let dup = DagSchedule::replicated(vec![LittleCpu, BigCpu, MediumCpu], &g, 1, (Gpu, Gpu));
        assert!(matches!(dup, Err(DagScheduleError::BadReplica { .. })));
        let source =
            DagSchedule::replicated(vec![BigCpu, LittleCpu, MediumCpu], &g, 0, (BigCpu, Gpu));
        assert!(matches!(source, Err(DagScheduleError::BadReplica { .. })));
        let reused = DagSchedule::replicated(vec![LittleCpu, BigCpu, Gpu], &g, 1, (BigCpu, Gpu));
        assert!(matches!(reused, Err(DagScheduleError::BadReplica { .. })));
        let unnamed =
            DagSchedule::replicated(vec![LittleCpu, MediumCpu, MediumCpu], &g, 1, (BigCpu, Gpu));
        assert!(matches!(unnamed, Err(DagScheduleError::BadReplica { .. })));
    }

    #[cfg(feature = "std")]
    #[test]
    fn serde_round_trips_and_revalidates() {
        let g = TaskGraph::chain(3);
        let s = DagSchedule::replicated(vec![LittleCpu, BigCpu, MediumCpu], &g, 1, (BigCpu, Gpu))
            .unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            !json.contains("chunk"),
            "derived state must not leak: {json}"
        );
        let back: DagSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.replica_pair(), s.replica_pair());

        let plain = DagSchedule::new(vec![LittleCpu, Gpu, BigCpu, MediumCpu], &diamond()).unwrap();
        let back: DagSchedule =
            serde_json::from_str(&serde_json::to_string(&plain).unwrap()).unwrap();
        assert_eq!(back, plain);
    }
}
