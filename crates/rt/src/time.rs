//! The clock/park seam between the substrate and its platform.
//!
//! The blocking queue operations need exactly two services from the world:
//! a monotonic clock (for deadlines) and a way to stand down when a
//! busy-wait has gone on too long (yield, then sleep). On the host those
//! are `std::time::Instant` and `std::thread`; on an MCU they are a
//! hardware timer and `wfi`/`wfe` or a scheduler hook. [`Clock`] and
//! [`Park`] name that seam, the generic `*_with` methods on
//! [`crate::spsc::Consumer`] accept any implementation, and the `std`
//! feature supplies [`StdClock`]/[`StdPark`], which reproduce the
//! pre-extraction host behavior exactly.

use core::time::Duration;

/// A monotonic time source.
///
/// Instants are opaque and only ever compared through
/// [`Clock::duration_between`], so implementations may use raw cycle
/// counters, tick counts, or `std::time::Instant` alike.
pub trait Clock {
    /// An opaque point in time.
    type Instant: Copy;

    /// The current instant.
    fn now(&self) -> Self::Instant;

    /// Elapsed time from `earlier` to `later`; zero when `later` does not
    /// come after `earlier` (saturating, never panics).
    fn duration_between(&self, earlier: Self::Instant, later: Self::Instant) -> Duration;
}

/// How a starved busy-wait loop stands down.
///
/// [`crate::spsc::Backoff`] escalates spin → yield → sleep; the spin stage
/// is pure `core::hint::spin_loop`, and this trait supplies the other two.
pub trait Park {
    /// Gives the execution context up to a peer (e.g.
    /// `std::thread::yield_now`, or an RTOS yield).
    fn yield_now(&self);

    /// Blocks for approximately `d` (e.g. `std::thread::sleep`, or a
    /// timer-backed wait-for-interrupt).
    fn sleep(&self, d: Duration);
}

/// A [`Park`] that never leaves the CPU: both stages degrade to bounded
/// `spin_loop` bursts.
///
/// The fallback for bare-metal contexts with no scheduler — a
/// single-issue MCU core waiting on a DMA-fed ring has nothing to yield
/// *to*. Prefer a platform park that can `wfe`/`wfi` when one exists;
/// spinning burns the power budget the MCU deployment is there to save.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpinPark;

impl SpinPark {
    /// How many `spin_loop` hints one [`Park::sleep`] call issues.
    const SLEEP_SPINS: u32 = 1 << 10;
}

impl Park for SpinPark {
    fn yield_now(&self) {
        core::hint::spin_loop();
    }

    fn sleep(&self, _d: Duration) {
        // No clock to honor `d` with; a fixed burst keeps the caller's
        // escalation meaningful (sleep stays coarser than yield).
        for _ in 0..Self::SLEEP_SPINS {
            core::hint::spin_loop();
        }
    }
}

/// The host clock: `std::time::Instant`.
#[cfg(feature = "std")]
#[derive(Debug, Clone, Copy, Default)]
pub struct StdClock;

#[cfg(feature = "std")]
impl Clock for StdClock {
    type Instant = std::time::Instant;

    fn now(&self) -> Self::Instant {
        std::time::Instant::now()
    }

    fn duration_between(&self, earlier: Self::Instant, later: Self::Instant) -> Duration {
        later.saturating_duration_since(earlier)
    }
}

/// The host park: `std::thread::yield_now` / `std::thread::sleep` —
/// exactly what the pre-extraction `Backoff` called directly.
#[cfg(feature = "std")]
#[derive(Debug, Clone, Copy, Default)]
pub struct StdPark;

#[cfg(feature = "std")]
impl Park for StdPark {
    fn yield_now(&self) {
        std::thread::yield_now();
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[cfg(all(test, feature = "std"))]
mod tests {
    use super::*;

    #[test]
    fn std_clock_is_monotonic_and_saturating() {
        let clock = StdClock;
        let a = clock.now();
        let b = clock.now();
        // Forward elapses (possibly zero), backward saturates to zero.
        let _ = clock.duration_between(a, b);
        assert_eq!(clock.duration_between(b, a), Duration::ZERO);
    }

    #[test]
    fn spin_park_returns_promptly() {
        let park = SpinPark;
        park.yield_now();
        park.sleep(Duration::from_secs(3600)); // must not actually sleep
    }
}
