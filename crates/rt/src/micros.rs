//! Virtual time in microseconds — the unit every simulator and report
//! speaks.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration or point in virtual time, in microseconds.
///
/// The simulator works in microseconds because the paper's quantities span
/// three orders of magnitude (tens of µs for pool stages up to 150 ms for
/// CPU AlexNet); f64 microseconds keep every value comfortably precise.
///
/// ```
/// use bt_rt::Micros;
/// let a = Micros::from_millis(1.5);
/// let b = Micros::new(500.0);
/// assert_eq!((a + b).as_millis(), 2.0);
/// assert!(a > b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
#[cfg_attr(feature = "std", derive(serde::Serialize, serde::Deserialize))]
pub struct Micros(f64);

impl Micros {
    /// Zero duration.
    pub const ZERO: Micros = Micros(0.0);

    /// Creates a duration of `us` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is NaN.
    pub fn new(us: f64) -> Micros {
        assert!(!us.is_nan(), "virtual time must not be NaN");
        Micros(us)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: f64) -> Micros {
        Micros::new(ms * 1e3)
    }

    /// Creates a duration from seconds.
    pub fn from_secs(s: f64) -> Micros {
        Micros::new(s * 1e6)
    }

    /// The raw microsecond count.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// This duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1e3
    }

    /// This duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e6
    }

    /// Element-wise maximum.
    pub fn max(self, other: Micros) -> Micros {
        Micros(self.0.max(other.0))
    }

    /// Element-wise minimum.
    pub fn min(self, other: Micros) -> Micros {
        Micros(self.0.min(other.0))
    }
}

impl Add for Micros {
    type Output = Micros;
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl Mul<f64> for Micros {
    type Output = Micros;
    fn mul(self, rhs: f64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl Div<f64> for Micros {
    type Output = Micros;
    fn div(self, rhs: f64) -> Micros {
        Micros(self.0 / rhs)
    }
}

impl Div<Micros> for Micros {
    type Output = f64;
    fn div(self, rhs: Micros) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        iter.fold(Micros::ZERO, Add::add)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e3 {
            write!(f, "{:.3} ms", self.as_millis())
        } else {
            write!(f, "{:.1} µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alloc::string::ToString;
    use alloc::vec;

    #[test]
    fn micros_arithmetic() {
        let a = Micros::from_millis(2.0);
        let b = Micros::new(500.0);
        assert_eq!((a - b).as_f64(), 1500.0);
        assert_eq!((b * 2.0).as_f64(), 1000.0);
        assert_eq!((a / 2.0).as_f64(), 1000.0);
        assert!((a / b - 4.0).abs() < 1e-12);
        let total: Micros = vec![a, b, b].into_iter().sum();
        assert_eq!(total.as_f64(), 3000.0);
    }

    #[test]
    fn micros_display() {
        assert_eq!(Micros::new(12.34).to_string(), "12.3 µs");
        assert_eq!(Micros::from_millis(1.5).to_string(), "1.500 ms");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Micros::new(f64::NAN);
    }
}
