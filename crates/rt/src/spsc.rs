//! Lock-free single-producer single-consumer ring queue.
//!
//! The paper's dispatcher threads communicate through "lightweight,
//! lock-free single-producer, single-consumer (SPSC) queues, which pass
//! pointers to TaskObjects between pipeline chunks" (§3.4). This is that
//! queue: a fixed-capacity ring with acquire/release head/tail counters.
//! Boxes are passed, so queue traffic is pointer-sized regardless of
//! payload.
//!
//! Two shapes share one protocol:
//!
//! - [`channel`] — heap-capacity ring behind `Arc`, the host executor's
//!   workhorse.
//! - [`StaticRing`] — const-generic capacity, `const`-constructible, and
//!   borrow-split into endpoints: placeable in a `static` on an MCU where
//!   there is no allocator at channel-set-up time.
//!
//! Neither allocates on the push/pop hot path — the heap ring's only
//! allocation is the buffer itself at construction (pinned by the
//! workspace `substrate_alloc` test).

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use core::time::Duration;

use alloc::boxed::Box;
use alloc::sync::Arc;
use alloc::vec::Vec;

use crate::pad::CachePadded;
use crate::time::{Clock, Park};
#[cfg(feature = "std")]
use crate::time::{StdClock, StdPark};

struct Ring<T> {
    buf: Box<[UnsafeCell<Option<T>>]>,
    /// Next slot to read (owned by the consumer; read by the producer).
    head: CachePadded<AtomicUsize>,
    /// Next slot to write (owned by the producer; read by the consumer).
    tail: CachePadded<AtomicUsize>,
    /// Cleared when the `Producer` endpoint drops. Lets a blocked consumer
    /// distinguish "queue momentarily empty" from "no item will ever
    /// arrive" — without it, `pop_blocking` on a dead dispatcher spins
    /// forever.
    producer_alive: AtomicBool,
    /// Cleared when the `Consumer` endpoint drops (symmetric signal for
    /// blocked producers).
    consumer_alive: AtomicBool,
}

// SAFETY: the ring is shared between exactly one producer and one consumer
// (enforced by the non-cloneable endpoint types). A slot is written by the
// producer strictly before the tail increment that publishes it (release),
// and read by the consumer strictly after observing that increment
// (acquire); the converse holds for head. Therefore no slot is accessed
// concurrently.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// The sending endpoint of an SPSC channel. Not cloneable: single producer.
#[derive(Debug)]
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

/// The receiving endpoint of an SPSC channel. Not cloneable: single
/// consumer.
#[derive(Debug)]
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> core::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.buf.len())
            .finish()
    }
}

/// A channel was requested with capacity zero, which cannot hold even one
/// in-flight item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError;

impl core::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SPSC channel capacity must be positive")
    }
}

impl core::error::Error for CapacityError {}

/// Creates an SPSC channel of the given capacity.
///
/// # Errors
///
/// Returns [`CapacityError`] if `capacity == 0` — a zero-slot ring could
/// never accept a push, so the misconfiguration is reported where the
/// executor can map it into its own error type instead of panicking a
/// dispatcher thread.
///
/// ```
/// let (mut tx, mut rx) = bt_rt::spsc::channel(2).unwrap();
/// tx.push(1).unwrap();
/// tx.push(2).unwrap();
/// assert!(tx.push(3).is_err(), "full");
/// assert_eq!(rx.pop(), Some(1));
/// assert_eq!(rx.pop(), Some(2));
/// assert_eq!(rx.pop(), None);
/// assert!(bt_rt::spsc::channel::<u8>(0).is_err());
/// ```
pub fn channel<T>(capacity: usize) -> Result<(Producer<T>, Consumer<T>), CapacityError> {
    if capacity == 0 {
        return Err(CapacityError);
    }
    let buf: Vec<UnsafeCell<Option<T>>> = (0..capacity).map(|_| UnsafeCell::new(None)).collect();
    let ring = Arc::new(Ring {
        buf: buf.into_boxed_slice(),
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    Ok((
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    ))
}

/// The peer endpoint dropped: no further item will ever arrive (consumer
/// side) or be drained (producer side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl core::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("SPSC peer endpoint dropped")
    }
}

impl core::error::Error for Disconnected {}

/// Why a deadline-bounded blocking operation gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// The producer endpoint dropped and the queue is drained.
    Disconnected,
    /// The deadline elapsed with the producer still alive — what a
    /// watchdog reports as a stuck upstream stage.
    TimedOut,
}

impl core::fmt::Display for PopError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PopError::Disconnected => f.write_str("SPSC producer dropped, queue drained"),
            PopError::TimedOut => f.write_str("SPSC pop deadline elapsed"),
        }
    }
}

impl core::error::Error for PopError {}

/// Exponential backoff for busy-wait loops around [`Producer::push`] /
/// [`Consumer::pop`].
///
/// Escalates through three regimes as an operation keeps failing:
/// first busy-spin with `hint::spin_loop` (doubling the spin count each
/// round up to `2^SPIN_LIMIT`), then yield, and finally a short sleep.
/// Spinning wins when the peer is running on another core and will
/// publish within tens of nanoseconds; yielding and sleeping stop a
/// starved dispatcher from burning a whole core — which matters on small
/// phone SoCs where the spinner would steal cycles from the very peer it
/// is waiting on.
///
/// This is the one shared backoff policy for the whole substrate: the
/// [`SPIN_LIMIT`](Backoff::SPIN_LIMIT) / [`YIELD_LIMIT`](Backoff::YIELD_LIMIT)
/// / [`SLEEP`](Backoff::SLEEP) constants are public so executors and tests
/// reason about the same escalation schedule instead of duplicating the
/// numbers. The yield and sleep stages go through a [`Park`], so the same
/// policy runs on the host (`std::thread`) and on targets with no OS
/// scheduler; the spin stage is pure `core::hint::spin_loop`.
///
/// Miri-safe: only `spin_loop`, `yield_now`, and `sleep` — no clock
/// reads or OS parking primitives.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Last step of the busy-spin regime: step `s ≤ SPIN_LIMIT` spins
    /// `2^s` `spin_loop` hints.
    pub const SPIN_LIMIT: u32 = 6;
    /// Last step of the yield regime; beyond it every round sleeps.
    pub const YIELD_LIMIT: u32 = 10;
    /// Sleep quantum of the final regime.
    pub const SLEEP: Duration = Duration::from_micros(50);

    /// A fresh backoff at the spinning stage.
    pub fn new() -> Backoff {
        Backoff::default()
    }

    /// Waits one round and escalates, standing down through `park` once
    /// past the spin stage. Call after each failed push/pop attempt; drop
    /// (or [`reset`](Backoff::reset)) once it succeeds.
    pub fn snooze_with<P: Park>(&mut self, park: &P) {
        if self.step <= Self::SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                core::hint::spin_loop();
            }
        } else if self.step <= Self::YIELD_LIMIT {
            park.yield_now();
        } else {
            park.sleep(Self::SLEEP);
        }
        if self.step <= Self::YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// Like [`snooze_with`](Backoff::snooze_with), but the sleep stage
    /// never sleeps past `remaining`. This is the deadline-aware variant
    /// behind [`Consumer::pop_deadline`]: an uncapped 50 µs sleep issued
    /// just under the deadline would overshoot it by a full quantum,
    /// firing the executor's watchdog late.
    pub fn snooze_capped_with<P: Park>(&mut self, park: &P, remaining: Duration) {
        if self.step > Self::YIELD_LIMIT {
            park.sleep(Self::SLEEP.min(remaining));
        } else {
            self.snooze_with(park);
        }
    }

    /// [`snooze_with`](Backoff::snooze_with) through the host scheduler
    /// (`std::thread::yield_now` / `std::thread::sleep`).
    #[cfg(feature = "std")]
    pub fn snooze(&mut self) {
        self.snooze_with(&StdPark);
    }

    /// [`snooze_capped_with`](Backoff::snooze_capped_with) through the
    /// host scheduler.
    #[cfg(feature = "std")]
    pub fn snooze_capped(&mut self, remaining: Duration) {
        self.snooze_capped_with(&StdPark, remaining);
    }

    /// Returns to the spinning stage (e.g. after a successful operation
    /// when the same `Backoff` is reused across loop iterations).
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

impl<T> Producer<T> {
    /// Attempts to enqueue `value`; returns it back if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the ring is at capacity.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == ring.buf.len() {
            return Err(value);
        }
        let slot = &ring.buf[tail % ring.buf.len()];
        // SAFETY: see Ring's Send/Sync justification — this slot is not
        // visible to the consumer until the tail store below.
        unsafe { *slot.get() = Some(value) };
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of items currently queued.
    ///
    /// The producer owns `tail`, so a relaxed self-load is exact; `head`
    /// (the counter the consumer owns) is acquire-loaded so concurrent
    /// pops are observed promptly and in order. Guarantee: the result is
    /// an **upper bound** on the true occupancy — concurrent pops can
    /// only shrink the queue under the producer — so at least
    /// `capacity − len()` further pushes will succeed, and with no
    /// producer-side pushes in between, successive calls never increase.
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(ring.head.load(Ordering::Acquire))
    }

    /// Whether the queue is empty (same guarantee as [`Producer::len`]:
    /// `true` can only become stale through this endpoint's own pushes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the consumer endpoint has dropped. Once `true` it stays
    /// `true`, and nothing pushed afterwards will ever be drained.
    pub fn is_disconnected(&self) -> bool {
        !self.ring.consumer_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.producer_alive.store(false, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Attempts to dequeue; returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &ring.buf[head % ring.buf.len()];
        // SAFETY: the acquire load of tail above guarantees the producer's
        // write to this slot is visible, and the producer will not touch it
        // again until head advances past it.
        let value = unsafe { (*slot.get()).take() };
        debug_assert!(value.is_some(), "published slot must be occupied");
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    /// Blocking pop: waits with exponential [`Backoff`] (spin → yield →
    /// sleep, standing down through `park`) until an item arrives or the
    /// producer endpoint drops.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] once the producer has dropped *and* the
    /// queue is drained — items published before the drop are still
    /// delivered.
    pub fn pop_blocking_with<P: Park>(&mut self, park: &P) -> Result<T, Disconnected> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.pop() {
                return Ok(v);
            }
            // Check liveness only after an empty pop: a producer that
            // pushed and then dropped must still have its items drained,
            // so re-poll once after observing the death.
            if !self.ring.producer_alive.load(Ordering::Acquire) {
                return self.pop().ok_or(Disconnected);
            }
            backoff.snooze_with(park);
        }
    }

    /// Blocking pop with a deadline: like
    /// [`pop_blocking_with`](Consumer::pop_blocking_with), but gives up
    /// after `timeout` measured on `clock` — the primitive under the
    /// executor's per-chunk watchdog.
    ///
    /// # Errors
    ///
    /// [`PopError::Disconnected`] once the producer has dropped and the
    /// queue is drained; [`PopError::TimedOut`] when `timeout` elapses
    /// with the producer still alive.
    pub fn pop_deadline_with<C: Clock, P: Park>(
        &mut self,
        clock: &C,
        park: &P,
        timeout: Duration,
    ) -> Result<T, PopError> {
        let start = clock.now();
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.pop() {
                return Ok(v);
            }
            if !self.ring.producer_alive.load(Ordering::Acquire) {
                return self.pop().ok_or(PopError::Disconnected);
            }
            // Re-check the deadline immediately before waiting and cap the
            // wait to the time remaining: an uncapped sleep here used to
            // overshoot the deadline by up to a full 50 µs backoff round.
            let elapsed = clock.duration_between(start, clock.now());
            if elapsed >= timeout {
                return self.pop().ok_or(PopError::TimedOut);
            }
            backoff.snooze_capped_with(park, timeout - elapsed);
        }
    }

    /// [`pop_blocking_with`](Consumer::pop_blocking_with) through the host
    /// scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] once the producer has dropped and the
    /// queue is drained.
    #[cfg(feature = "std")]
    pub fn pop_blocking(&mut self) -> Result<T, Disconnected> {
        self.pop_blocking_with(&StdPark)
    }

    /// [`pop_deadline_with`](Consumer::pop_deadline_with) on the host
    /// clock and scheduler.
    ///
    /// # Errors
    ///
    /// [`PopError::Disconnected`] once the producer has dropped and the
    /// queue is drained; [`PopError::TimedOut`] when `timeout` elapses
    /// with the producer still alive.
    #[cfg(feature = "std")]
    pub fn pop_deadline(&mut self, timeout: Duration) -> Result<T, PopError> {
        self.pop_deadline_with(&StdClock, &StdPark, timeout)
    }

    /// Whether the producer endpoint has dropped. Once `true` it stays
    /// `true`; at most [`len`](Consumer::len) further pops can succeed.
    pub fn is_disconnected(&self) -> bool {
        !self.ring.producer_alive.load(Ordering::Acquire)
    }

    /// Number of items currently queued.
    ///
    /// The consumer owns `head`, so a relaxed self-load is exact; `tail`
    /// (the counter the producer owns) is acquire-loaded, which also
    /// publishes the slots behind it. Guarantee: the result is a **lower
    /// bound** on the true occupancy — concurrent pushes can only grow
    /// the queue under the consumer — so at least `len()` immediate
    /// [`pop`](Consumer::pop)s will succeed, and with no consumer-side
    /// pops in between, successive calls never decrease.
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail
            .load(Ordering::Acquire)
            .wrapping_sub(ring.head.load(Ordering::Relaxed))
    }

    /// Whether the queue is empty (same guarantee as [`Consumer::len`]:
    /// `false` is definitive, `true` can be stale by one in-flight push).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.ring.consumer_alive.store(false, Ordering::Release);
    }
}

/// A const-generic SPSC ring with inline storage: the [`channel`] protocol
/// without the allocator.
///
/// Where the heap channel is built at runtime and owned through `Arc`, a
/// `StaticRing` is `const`-constructible — it can live in a `static` on a
/// target whose channels must exist before (or without) any heap — and
/// the endpoints borrow it:
///
/// ```
/// static RING: bt_rt::StaticRing<u32, 4> = bt_rt::StaticRing::new();
/// let (mut tx, mut rx) = RING.split().expect("first split");
/// tx.push(7).unwrap();
/// assert_eq!(rx.pop(), Some(7));
/// assert!(RING.split().is_none(), "endpoints are claimed once");
/// ```
///
/// [`split`](StaticRing::split) hands out the single producer/consumer
/// pair once per ring lifetime; the memory protocol (acquire/release
/// head/tail, endpoint liveness flags) is identical to the heap ring's.
/// A zero-capacity `StaticRing<T, 0>` fails to compile.
pub struct StaticRing<T, const N: usize> {
    buf: [UnsafeCell<Option<T>>; N],
    head: CachePadded<AtomicUsize>,
    tail: CachePadded<AtomicUsize>,
    /// Set by the first (and only successful) `split`.
    claimed: AtomicBool,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// SAFETY: identical single-producer/single-consumer slot discipline as
// `Ring` — `split` hands out at most one producer and one consumer for
// the ring's lifetime, and slot accesses are ordered by the
// acquire/release head/tail counters.
unsafe impl<T: Send, const N: usize> Send for StaticRing<T, N> {}
unsafe impl<T: Send, const N: usize> Sync for StaticRing<T, N> {}

impl<T, const N: usize> StaticRing<T, N> {
    /// Post-monomorphization guard: referencing this constant makes
    /// `StaticRing<T, 0>` a compile error rather than a runtime panic.
    const CAPACITY_POSITIVE: () = assert!(N > 0, "StaticRing capacity must be positive");

    /// An empty, unclaimed ring. Usable in `const`/`static` position.
    pub const fn new() -> StaticRing<T, N> {
        #[allow(clippy::let_unit_value)]
        let () = Self::CAPACITY_POSITIVE;
        StaticRing {
            buf: [const { UnsafeCell::new(None) }; N],
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            claimed: AtomicBool::new(false),
            producer_alive: AtomicBool::new(true),
            consumer_alive: AtomicBool::new(true),
        }
    }

    /// The ring's fixed capacity, `N`.
    pub const fn capacity(&self) -> usize {
        N
    }

    /// Claims the producer/consumer endpoint pair.
    ///
    /// Succeeds exactly once per ring: subsequent calls return `None`,
    /// including after the endpoints drop — a ring whose dispatcher died
    /// holds an indeterminate head/tail state and must not be reissued.
    pub fn split(&self) -> Option<(StaticProducer<'_, T, N>, StaticConsumer<'_, T, N>)> {
        if self.claimed.swap(true, Ordering::AcqRel) {
            return None;
        }
        Some((StaticProducer { ring: self }, StaticConsumer { ring: self }))
    }
}

impl<T, const N: usize> Default for StaticRing<T, N> {
    fn default() -> StaticRing<T, N> {
        StaticRing::new()
    }
}

impl<T, const N: usize> core::fmt::Debug for StaticRing<T, N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StaticRing")
            .field("capacity", &N)
            .field("claimed", &self.claimed.load(Ordering::Relaxed))
            .finish()
    }
}

/// The sending endpoint of a [`StaticRing`]. Not cloneable: single
/// producer.
#[derive(Debug)]
pub struct StaticProducer<'a, T, const N: usize> {
    ring: &'a StaticRing<T, N>,
}

/// The receiving endpoint of a [`StaticRing`]. Not cloneable: single
/// consumer.
#[derive(Debug)]
pub struct StaticConsumer<'a, T, const N: usize> {
    ring: &'a StaticRing<T, N>,
}

impl<T, const N: usize> StaticProducer<'_, T, N> {
    /// Attempts to enqueue `value`; returns it back if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the ring is at capacity.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let ring = self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == N {
            return Err(value);
        }
        let slot = &ring.buf[tail % N];
        // SAFETY: same publication protocol as the heap ring — the slot is
        // invisible to the consumer until the tail store below.
        unsafe { *slot.get() = Some(value) };
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of items currently queued (upper bound; see
    /// [`Producer::len`] for the exact guarantee).
    pub fn len(&self) -> usize {
        let ring = self.ring;
        ring.tail
            .load(Ordering::Relaxed)
            .wrapping_sub(ring.head.load(Ordering::Acquire))
    }

    /// Whether the queue is empty (upper-bound semantics, as
    /// [`Producer::is_empty`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the consumer endpoint has dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.ring.consumer_alive.load(Ordering::Acquire)
    }
}

impl<T, const N: usize> Drop for StaticProducer<'_, T, N> {
    fn drop(&mut self) {
        self.ring.producer_alive.store(false, Ordering::Release);
    }
}

impl<T, const N: usize> StaticConsumer<'_, T, N> {
    /// Attempts to dequeue; returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<T> {
        let ring = self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &ring.buf[head % N];
        // SAFETY: the acquire load of tail above publishes the producer's
        // write to this slot; the producer will not touch it again until
        // head advances past it.
        let value = unsafe { (*slot.get()).take() };
        debug_assert!(value.is_some(), "published slot must be occupied");
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        value
    }

    /// Blocking pop through `park`; same contract as
    /// [`Consumer::pop_blocking_with`].
    ///
    /// # Errors
    ///
    /// Returns [`Disconnected`] once the producer has dropped and the
    /// queue is drained.
    pub fn pop_blocking_with<P: Park>(&mut self, park: &P) -> Result<T, Disconnected> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(v) = self.pop() {
                return Ok(v);
            }
            if !self.ring.producer_alive.load(Ordering::Acquire) {
                return self.pop().ok_or(Disconnected);
            }
            backoff.snooze_with(park);
        }
    }

    /// Whether the producer endpoint has dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.ring.producer_alive.load(Ordering::Acquire)
    }

    /// Number of items currently queued (lower bound; see
    /// [`Consumer::len`] for the exact guarantee).
    pub fn len(&self) -> usize {
        let ring = self.ring;
        ring.tail
            .load(Ordering::Acquire)
            .wrapping_sub(ring.head.load(Ordering::Relaxed))
    }

    /// Whether the queue is empty (lower-bound semantics, as
    /// [`Consumer::is_empty`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T, const N: usize> Drop for StaticConsumer<'_, T, N> {
    fn drop(&mut self) {
        self.ring.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(all(test, feature = "std"))]
mod tests {
    use super::*;
    use std::time::Instant;

    fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        super::channel(capacity).expect("test channels have positive capacity")
    }

    #[test]
    fn fifo_order() {
        let (mut tx, mut rx) = channel(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_queue_rejects() {
        let (mut tx, mut rx) = channel(1);
        tx.push("a").unwrap();
        assert_eq!(tx.push("b"), Err("b"));
        assert_eq!(rx.pop(), Some("a"));
        tx.push("b").unwrap();
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = channel(3);
        for round in 0..1000u64 {
            tx.push(round).unwrap();
            assert_eq!(rx.pop(), Some(round));
        }
    }

    #[test]
    fn boxed_payloads_move_without_copy() {
        let (mut tx, mut rx) = channel::<Box<Vec<u8>>>(2);
        let payload = Box::new(vec![7u8; 1024]);
        let addr = payload.as_ptr();
        tx.push(payload).unwrap();
        let got = rx.pop().unwrap();
        assert_eq!(got.as_ptr(), addr, "same allocation passed through");
    }

    #[test]
    fn concurrent_stress_no_loss_no_duplication() {
        // Miri interprets every memory access; keep its schedule bounded.
        const N: u64 = if cfg!(miri) { 1_000 } else { 200_000 };
        let (mut tx, mut rx) = channel(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let consumer = std::thread::spawn(move || {
            let mut expected = 0u64;
            let mut sum = 0u64;
            while expected < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expected, "strict FIFO");
                    sum = sum.wrapping_add(v);
                    expected += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            sum
        });
        producer.join().unwrap();
        let sum = consumer.join().unwrap();
        assert_eq!(sum, (N - 1) * N / 2);
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut tx, mut rx) = channel(4);
        assert!(tx.is_empty());
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        rx.pop();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn len_bounds_hold_across_threads() {
        const N: usize = if cfg!(miri) { 256 } else { 10_000 };

        // While only the producer mutates the queue, the consumer-side
        // len is a lower bound and never decreases, and every item it
        // counts is immediately poppable.
        let (mut tx, rx) = channel::<usize>(N);
        let watcher = std::thread::spawn(move || {
            let mut last = 0usize;
            while last < N {
                let cur = rx.len();
                assert!(cur >= last, "consumer len went backwards: {last} -> {cur}");
                last = cur;
            }
            rx
        });
        for i in 0..N {
            tx.push(i).unwrap();
        }
        let mut rx = watcher.join().unwrap();
        let counted = rx.len();
        for _ in 0..counted {
            assert!(rx.pop().is_some(), "counted item must be poppable");
        }

        // While only the consumer mutates the queue, the producer-side
        // len is an upper bound and never increases.
        let (mut tx, mut rx) = channel::<usize>(N);
        for i in 0..N {
            tx.push(i).unwrap();
        }
        let drainer = std::thread::spawn(move || while rx.pop().is_some() {});
        let mut last = N;
        while last > 0 {
            let cur = tx.len();
            assert!(
                cur <= last,
                "producer len grew without a push: {last} -> {cur}"
            );
            last = cur;
        }
        drainer.join().unwrap();
        assert!(tx.is_empty());
    }

    #[test]
    fn backoff_escalates_and_resets_without_panicking() {
        let mut b = Backoff::new();
        // Walk through all three regimes: spin (steps 0..=6), yield
        // (7..=10), sleep (capped at 11). Must stay callable forever.
        for _ in 0..16 {
            b.snooze();
        }
        assert_eq!(b.step, Backoff::YIELD_LIMIT + 1, "step caps at sleep");
        b.reset();
        assert_eq!(b.step, 0, "reset returns to the spin stage");
    }

    #[test]
    fn pop_blocking_waits_for_producer() {
        let (mut tx, mut rx) = channel(1);
        let h = std::thread::spawn(move || rx.pop_blocking());
        std::thread::sleep(Duration::from_millis(20));
        tx.push(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    fn pop_blocking_unblocks_when_producer_dies() {
        // The bug this guards against: a consumer blocked on a queue whose
        // producer dispatcher died used to spin forever.
        let (tx, mut rx) = channel::<u8>(4);
        let h = std::thread::spawn(move || rx.pop_blocking());
        std::thread::sleep(Duration::from_millis(10));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(Disconnected));
    }

    #[test]
    fn pop_blocking_drains_items_published_before_death() {
        let (mut tx, mut rx) = channel(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        drop(tx);
        assert_eq!(rx.pop_blocking(), Ok(1));
        assert_eq!(rx.pop_blocking(), Ok(2));
        assert_eq!(rx.pop_blocking(), Err(Disconnected));
        assert!(rx.is_disconnected());
    }

    #[test]
    fn snooze_capped_never_sleeps_past_the_cap() {
        let mut b = Backoff::new();
        // Escalate into the sleep regime.
        for _ in 0..16 {
            b.snooze();
        }
        assert_eq!(b.step, Backoff::YIELD_LIMIT + 1);
        // A zero cap must return without the 50 µs quantum; allow generous
        // scheduler noise but stay far under the uncapped sleep would be.
        let t0 = Instant::now();
        for _ in 0..20 {
            b.snooze_capped(Duration::ZERO);
        }
        assert!(
            t0.elapsed() < Backoff::SLEEP * 20,
            "capped sleeps took {:?}, an uncapped round is {:?}",
            t0.elapsed(),
            Backoff::SLEEP * 20
        );
        // Below the yield limit it behaves exactly like snooze (escalates).
        b.reset();
        b.snooze_capped(Duration::ZERO);
        assert_eq!(b.step, 1, "pre-sleep stages still escalate");
    }

    #[test]
    fn pop_deadline_overshoot_is_bounded() {
        // Regression: the deadline check used to precede an uncapped 50 µs
        // sleep, so a pop issued just under the deadline overshot it by a
        // full backoff round. The overshoot is now bounded by the time
        // remaining at the final check (plus scheduler noise), not by the
        // sleep quantum.
        let timeout = Duration::from_millis(5);
        let (_tx, mut rx) = channel::<u8>(1);
        let t0 = Instant::now();
        assert_eq!(rx.pop_deadline(timeout), Err(PopError::TimedOut));
        let elapsed = t0.elapsed();
        assert!(elapsed >= timeout, "returned early: {elapsed:?}");
        // Generous CI bound: well under the old worst case of whole extra
        // backoff rounds, strict enough to catch an uncapped sleep path
        // being reintroduced with a larger quantum.
        assert!(
            elapsed < timeout + Duration::from_millis(4),
            "overshoot {:?} exceeds bound",
            elapsed - timeout
        );
    }

    #[test]
    fn pop_deadline_times_out_then_succeeds() {
        let (mut tx, mut rx) = channel(1);
        assert_eq!(
            rx.pop_deadline(Duration::from_millis(5)),
            Err(PopError::TimedOut)
        );
        tx.push(7).unwrap();
        assert_eq!(rx.pop_deadline(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.pop_deadline(Duration::from_millis(5)),
            Err(PopError::Disconnected)
        );
    }

    #[test]
    fn producer_observes_consumer_death() {
        let (tx, rx) = channel::<u8>(1);
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
    }

    #[test]
    fn zero_capacity_errors() {
        let err = super::channel::<u8>(0).unwrap_err();
        assert_eq!(err, CapacityError);
        assert_eq!(err.to_string(), "SPSC channel capacity must be positive");
    }

    #[test]
    fn static_ring_fifo_and_wraparound() {
        let ring: StaticRing<u64, 3> = StaticRing::new();
        assert_eq!(ring.capacity(), 3);
        let (mut tx, mut rx) = ring.split().expect("first split succeeds");
        for round in 0..100u64 {
            tx.push(round).unwrap();
            assert_eq!(rx.pop(), Some(round));
        }
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        tx.push(3).unwrap();
        assert_eq!(tx.push(4), Err(4), "full at N");
        assert_eq!(tx.len(), 3);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.len(), 2);
    }

    #[test]
    fn static_ring_splits_exactly_once() {
        let ring: StaticRing<u8, 2> = StaticRing::new();
        let pair = ring.split();
        assert!(pair.is_some());
        assert!(ring.split().is_none(), "second split refused");
        drop(pair);
        assert!(
            ring.split().is_none(),
            "claim is per ring lifetime, not per endpoint lifetime"
        );
    }

    #[test]
    fn static_ring_endpoint_drop_signals_peer() {
        let ring: StaticRing<u8, 2> = StaticRing::new();
        let (mut tx, rx) = ring.split().unwrap();
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
        tx.push(1).unwrap(); // pushes after consumer death still succeed

        let ring2: StaticRing<u8, 2> = StaticRing::new();
        let (tx2, mut rx2) = ring2.split().unwrap();
        drop(tx2);
        assert!(rx2.is_disconnected());
        assert_eq!(rx2.pop(), None);
    }

    #[test]
    fn static_ring_drains_after_producer_death() {
        let ring: StaticRing<u8, 4> = StaticRing::new();
        let (mut tx, mut rx) = ring.split().unwrap();
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        drop(tx);
        assert_eq!(rx.pop_blocking_with(&crate::time::SpinPark), Ok(1));
        assert_eq!(rx.pop_blocking_with(&crate::time::SpinPark), Ok(2));
        assert_eq!(
            rx.pop_blocking_with(&crate::time::SpinPark),
            Err(Disconnected)
        );
    }

    #[test]
    fn static_ring_concurrent_stress_no_loss_no_duplication() {
        const N: u64 = if cfg!(miri) { 1_000 } else { 200_000 };
        let ring: StaticRing<u64, 64> = StaticRing::new();
        let (mut tx, mut rx) = ring.split().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            s.spawn(move || {
                let mut expected = 0u64;
                let mut sum = 0u64;
                while expected < N {
                    if let Some(v) = rx.pop() {
                        assert_eq!(v, expected, "strict FIFO");
                        sum = sum.wrapping_add(v);
                        expected += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                assert_eq!(sum, (N - 1) * N / 2);
            });
        });
    }

    #[test]
    fn generic_pop_deadline_honors_a_custom_clock() {
        use core::sync::atomic::AtomicU64;

        // A clock that advances 1 ms per `now()` call: the deadline path
        // must time out purely from clock arithmetic, no host time.
        struct TickClock(AtomicU64);
        impl Clock for TickClock {
            type Instant = u64;
            fn now(&self) -> u64 {
                self.0.fetch_add(1, Ordering::Relaxed)
            }
            fn duration_between(&self, earlier: u64, later: u64) -> Duration {
                Duration::from_millis(later.saturating_sub(earlier))
            }
        }

        let (_tx, mut rx) = channel::<u8>(1);
        let clock = TickClock(AtomicU64::new(0));
        let got = rx.pop_deadline_with(&clock, &crate::time::SpinPark, Duration::from_millis(5));
        assert_eq!(got, Err(PopError::TimedOut));
    }
}
