//! Cache-line padding for the ring's head/tail counters.
//!
//! A local stand-in for `crossbeam::utils::CachePadded`, so the substrate
//! carries no dependency: 128-byte alignment covers the spatial-prefetcher
//! pair on x86_64 and the 128-byte lines on modern aarch64 big cores —
//! the targets the counters must not false-share on.

/// Aligns `T` to 128 bytes so two adjacent values never share a cache
/// line (or a prefetched line pair).
#[derive(Debug, Default)]
#[repr(align(128))]
pub(crate) struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in its own cache line.
    pub(crate) const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}
