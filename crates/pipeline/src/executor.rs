//! The host pipeline executor: real dispatcher threads, one per chunk,
//! passing recycled TaskObjects through lock-free SPSC queues (§3.4 of the
//! paper).
//!
//! Each dispatcher repeatedly: pops a TaskObject pointer from its input
//! queue, dispatches its chunk's compute kernels in sequence (via the
//! OpenMP-stand-in [`ParCtx`] worker pool), and pushes the pointer to the
//! next queue. The head dispatcher doubles as the streaming source,
//! recycling returned objects for new inputs; the tail records completion
//! timestamps.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bt_kernels::{Application, ParCtx};
use bt_soc::{AffinityMap, PerClass, PuClass};

use crate::spsc;
use crate::{Schedule, TaskObject};

/// Worker-thread budget per PU class for host execution.
///
/// The host has no big.LITTLE clusters, so classes map to thread counts —
/// enough to exercise the real runtime (queues, dispatchers, recycling,
/// pinning) with genuine parallelism.
#[derive(Debug, Clone)]
pub struct PuThreads {
    map: PerClass<usize>,
    default: usize,
}

impl PuThreads {
    /// Every class gets `n` workers.
    pub fn uniform(n: usize) -> PuThreads {
        PuThreads {
            map: PerClass::empty(),
            default: n.max(1),
        }
    }

    /// Overrides one class's worker count.
    pub fn with_class(mut self, class: PuClass, n: usize) -> PuThreads {
        self.map.set(class, n.max(1));
        self
    }

    /// Workers for `class`.
    pub fn threads(&self, class: PuClass) -> usize {
        self.map.get(class).copied().unwrap_or(self.default)
    }
}

impl Default for PuThreads {
    fn default() -> PuThreads {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        PuThreads::uniform((cores / 2).max(1))
            .with_class(PuClass::LittleCpu, 1)
            .with_class(PuClass::MediumCpu, 2)
    }
}

/// Configuration of a host pipeline run.
#[derive(Debug, Clone)]
pub struct HostRunConfig {
    /// Measured tasks (the paper uses 30 per run).
    pub tasks: u32,
    /// Warmup tasks excluded from measurement.
    pub warmup: u32,
    /// Circulating TaskObjects; 0 means `chunks + 1`.
    pub buffers: usize,
    /// Optional device affinity map: dispatchers pin themselves to their
    /// chunk's pinnable cores (best-effort; ignored where unavailable).
    pub affinity: Option<AffinityMap>,
    /// Record per-(chunk, task) execution spans for Gantt-style inspection.
    pub record_timeline: bool,
    /// When set, the head keeps admitting tasks until this wall-clock
    /// duration elapses (the paper's autotuning protocol runs each
    /// candidate "for a fixed interval of 10 seconds to measure its
    /// throughput", §3.3); `tasks` then only sizes the warmup accounting
    /// and the reported count comes from how many tasks actually finished.
    pub duration: Option<Duration>,
}

impl Default for HostRunConfig {
    fn default() -> HostRunConfig {
        HostRunConfig {
            tasks: 30,
            warmup: 3,
            buffers: 0,
            affinity: None,
            record_timeline: false,
            duration: None,
        }
    }
}

/// One recorded chunk execution on the host (µs relative to run start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostTimelineEvent {
    /// Which chunk executed.
    pub chunk: usize,
    /// Task sequence number.
    pub task: u64,
    /// Start offset in µs.
    pub start_us: f64,
    /// End offset in µs.
    pub end_us: f64,
}

impl From<HostTimelineEvent> for bt_soc::gantt::GanttSpan {
    fn from(e: HostTimelineEvent) -> bt_soc::gantt::GanttSpan {
        bt_soc::gantt::GanttSpan {
            chunk: e.chunk,
            task: e.task,
            start: e.start_us,
            end: e.end_us,
        }
    }
}

/// Result of a host pipeline run.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Wall-clock between the first measured task's departure and the last
    /// task's departure (steady-state window).
    pub makespan: Duration,
    /// Steady-state inverse throughput (`makespan / tasks`).
    pub time_per_task: Duration,
    /// Mean per-task residence time.
    pub mean_task_latency: Duration,
    /// Tasks per second.
    pub throughput_hz: f64,
    /// Fraction of the run each chunk's dispatcher spent executing kernels
    /// (per chunk, pipeline order) — the utilization the paper's gapness
    /// objective maximizes.
    pub chunk_utilization: Vec<f64>,
    /// Number of measured tasks.
    pub tasks: u32,
    /// Recorded execution spans (empty unless
    /// [`HostRunConfig::record_timeline`] was set).
    pub timeline: Vec<HostTimelineEvent>,
}

/// Errors from the host executor.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Schedule and application disagree on stage count.
    StageMismatch {
        /// Stages in the application.
        app: usize,
        /// Stages in the schedule.
        schedule: usize,
    },
    /// `tasks` was zero.
    NoTasks,
    /// A stage kernel panicked; the pipeline was shut down cleanly.
    StagePanicked {
        /// Index of the chunk whose kernel panicked.
        chunk: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::StageMismatch { app, schedule } => write!(
                f,
                "schedule has {schedule} stages but the application has {app}"
            ),
            PipelineError::NoTasks => f.write_str("at least one task is required"),
            PipelineError::StagePanicked { chunk } => {
                write!(f, "a stage kernel panicked in chunk {chunk}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

enum Msg<P> {
    Task(Box<TaskObject<P>>),
    Stop,
}

/// Per-dispatcher results collected at join time.
#[derive(Default)]
struct ChunkOutput {
    /// Entry instants per seq (head dispatcher only).
    entries: Vec<Instant>,
    /// `(seq, residence, finished_at)` per task (tail dispatcher only).
    completions: Vec<(u64, Duration, Instant)>,
    /// Total time this dispatcher spent inside kernels.
    busy: Duration,
    /// Recorded (task, start, end) spans when timeline recording is on.
    events: Vec<(u64, Instant, Instant)>,
}

fn w_fallback(entries: &[Instant]) -> Instant {
    entries.first().copied().unwrap_or_else(Instant::now)
}

/// Blocking push that aborts (returning `false`) once the failure flag is
/// raised, so no dispatcher deadlocks on a dead neighbour's full queue.
fn push_until<T>(tx: &mut spsc::Producer<T>, mut value: T, failed: &AtomicBool) -> bool {
    loop {
        match tx.push(value) {
            Ok(()) => return true,
            Err(back) => {
                if failed.load(Ordering::Relaxed) {
                    return false;
                }
                value = back;
                std::thread::yield_now();
            }
        }
    }
}

/// Blocking pop that gives up (returning `None`) once the failure flag is
/// raised and the queue is empty.
fn pop_until<T>(rx: &mut spsc::Consumer<T>, failed: &AtomicBool) -> Option<T> {
    loop {
        if let Some(v) = rx.pop() {
            return Some(v);
        }
        if failed.load(Ordering::Relaxed) {
            return None;
        }
        std::thread::yield_now();
    }
}

/// Executes `schedule` over `app` on the host with real threads, streaming
/// `cfg.tasks + cfg.warmup` inputs through the pipeline.
///
/// # Errors
///
/// Returns [`PipelineError`] if the schedule length mismatches the
/// application or no tasks were requested.
pub fn run_host<P: Send + 'static>(
    app: &Application<P>,
    schedule: &Schedule,
    threads: &PuThreads,
    cfg: &HostRunConfig,
) -> Result<HostReport, PipelineError> {
    if schedule.stage_count() != app.stage_count() {
        return Err(PipelineError::StageMismatch {
            app: app.stage_count(),
            schedule: schedule.stage_count(),
        });
    }
    if cfg.tasks == 0 {
        return Err(PipelineError::NoTasks);
    }

    let chunks = schedule.chunks();
    let k = chunks.len();
    // In duration mode the head admits tasks until the deadline, bounded by
    // a generous cap so buffers can be preallocated deterministically.
    let duration_mode = cfg.duration.is_some();
    let total = if duration_mode {
        u64::MAX
    } else {
        (cfg.tasks + cfg.warmup) as u64
    };
    let deadline = cfg.duration.map(|d| Instant::now() + d);
    let buffers = if cfg.buffers == 0 { k + 1 } else { cfg.buffers };

    // Queues: inter-chunk channels 0..k-1 carry Msg; the recycle channel
    // carries bare boxes back to the head.
    let mut producers: Vec<Option<spsc::Producer<Msg<P>>>> = Vec::new();
    let mut consumers: Vec<Option<spsc::Consumer<Msg<P>>>> = Vec::new();
    for _ in 1..k {
        let (tx, rx) = spsc::channel(buffers.max(1));
        producers.push(Some(tx));
        consumers.push(Some(rx));
    }
    let (mut recycle_tx, recycle_rx) = spsc::channel::<Box<TaskObject<P>>>(buffers.max(1));
    for _ in 0..buffers {
        let obj = Box::new(TaskObject::new(app.new_payload()));
        recycle_tx
            .push(obj)
            .unwrap_or_else(|_| unreachable!("capacity equals the pool size"));
    }

    let failed = AtomicBool::new(false);
    let failed_chunk = AtomicUsize::new(usize::MAX);
    let outputs: Vec<ChunkOutput> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        let mut recycle_rx = Some(recycle_rx);
        let mut recycle_tx = Some(recycle_tx);

        for (ci, chunk) in chunks.iter().copied().enumerate() {
            let is_head = ci == 0;
            let is_tail = ci == k - 1;
            let input = if is_head {
                None
            } else {
                Some(consumers[ci - 1].take().expect("each consumer moved once"))
            };
            let output = if is_tail {
                None
            } else {
                Some(producers[ci].take().expect("each producer moved once"))
            };
            let head_rx = if is_head { recycle_rx.take() } else { None };
            let tail_tx = if is_tail { recycle_tx.take() } else { None };
            let ctx = ParCtx::new(threads.threads(chunk.pu));
            let pin_cores: Vec<usize> = cfg
                .affinity
                .as_ref()
                .map(|m| m.pinnable(chunk.pu).to_vec())
                .unwrap_or_default();

            let failed = &failed;
            let failed_chunk = &failed_chunk;
            handles.push(scope.spawn(move || {
                // Best-effort pinning; worker threads inherit the mask.
                crate::affinity::pin_current_thread(&pin_cores);

                let mut out = ChunkOutput::default();
                let mut input = input;
                let mut output = output;
                let mut head_rx = head_rx;
                let mut tail_tx = tail_tx;

                let mut busy = Duration::ZERO;
                let mut events: Vec<(u64, Instant, Instant)> = Vec::new();
                let record = cfg.record_timeline;
                let mut run_chunk = |obj: &mut TaskObject<P>, ctx: &ParCtx| -> bool {
                    let t0 = Instant::now();
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        for s in chunk.first_stage..=chunk.last_stage {
                            app.stages()[s].run(&mut obj.payload, ctx);
                        }
                    }));
                    let t1 = Instant::now();
                    busy += t1 - t0;
                    if record {
                        events.push((obj.seq, t0, t1));
                    }
                    if result.is_err() {
                        failed_chunk
                            .compare_exchange(usize::MAX, ci, Ordering::SeqCst, Ordering::SeqCst)
                            .ok();
                        failed.store(true, Ordering::SeqCst);
                        false
                    } else {
                        true
                    }
                };

                if is_head {
                    let rx = head_rx.as_mut().expect("head owns the recycle consumer");
                    for seq in 0..total {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                break;
                            }
                        }
                        let Some(mut obj) = pop_until(rx, failed) else { break };
                        obj.recycle(seq);
                        app.load_input(&mut obj.payload, seq);
                        out.entries.push(obj.entered.expect("stamped by recycle"));
                        if !run_chunk(&mut obj, &ctx) {
                            break;
                        }
                        if is_tail {
                            let entered = obj.entered.expect("stamped");
                            let now = Instant::now();
                            out.completions.push((seq, now - entered, now));
                            if !push_until(
                                tail_tx.as_mut().expect("tail owns the recycle producer"),
                                obj,
                                failed,
                            ) {
                                break;
                            }
                        } else if !push_until(
                            output.as_mut().expect("non-tail has an output queue"),
                            Msg::Task(obj),
                            failed,
                        ) {
                            break;
                        }
                    }
                    if !is_tail {
                        let _ = push_until(output.as_mut().expect("non-tail"), Msg::Stop, failed);
                    }
                } else {
                    let rx = input.as_mut().expect("non-head has an input queue");
                    loop {
                        match pop_until(rx, failed) {
                            None => break, // failure elsewhere: exit promptly
                            Some(Msg::Stop) => {
                                if let Some(tx) = output.as_mut() {
                                    let _ = push_until(tx, Msg::Stop, failed);
                                }
                                break;
                            }
                            Some(Msg::Task(mut obj)) => {
                                if failed.load(Ordering::Relaxed) {
                                    continue; // drain to unblock upstream
                                }
                                if !run_chunk(&mut obj, &ctx) {
                                    if let Some(tx) = output.as_mut() {
                                        let _ = push_until(tx, Msg::Stop, failed);
                                    }
                                    continue; // keep draining
                                }
                                if is_tail {
                                    let entered = obj.entered.expect("stamped by head");
                                    let now = Instant::now();
                                    out.completions.push((obj.seq, now - entered, now));
                                    if !push_until(
                                        tail_tx.as_mut().expect("tail recycles"),
                                        obj,
                                        failed,
                                    ) {
                                        break;
                                    }
                                } else if !push_until(
                                    output.as_mut().expect("middle chunk"),
                                    Msg::Task(obj),
                                    failed,
                                ) {
                                    break;
                                }
                            }
                        }
                    }
                }
                out.busy = busy;
                out.events = events;
                out
            }));
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("dispatcher threads do not panic"))
            .collect()
    });

    if failed.load(Ordering::SeqCst) {
        return Err(PipelineError::StagePanicked {
            chunk: failed_chunk.load(Ordering::SeqCst),
        });
    }

    // Head entries + tail completions.
    let entries = &outputs[0].entries;
    let completions = &outputs[k - 1].completions;
    let finished = completions.len();
    if !duration_mode {
        debug_assert_eq!(entries.len(), total as usize);
        debug_assert_eq!(finished, total as usize);
    }
    let measured_tasks = finished.saturating_sub(cfg.warmup as usize) as u32;
    if measured_tasks == 0 {
        return Err(PipelineError::NoTasks);
    }

    let measure_from = cfg.warmup as usize;
    // Steady-state window: departure-to-departure (see the DES simulator's
    // identical convention).
    let mut by_seq: Vec<Instant> = vec![w_fallback(entries); completions.len()];
    for &(seq, _, at) in completions {
        by_seq[seq as usize] = at;
    }
    let w_start = if measure_from > 0 {
        by_seq[measure_from - 1]
    } else {
        entries[0]
    };
    let w_end = *by_seq.last().expect("at least one completion");
    let makespan = w_end.saturating_duration_since(w_start);
    let measured: Vec<Duration> = completions
        .iter()
        .filter(|&&(seq, _, _)| seq >= measure_from as u64)
        .map(|&(_, lat, _)| lat)
        .collect();
    let mean_latency = measured.iter().sum::<Duration>() / measured.len().max(1) as u32;
    let tasks = measured_tasks;
    let span = makespan.as_secs_f64().max(1e-12);
    let chunk_utilization = outputs
        .iter()
        .map(|o| (o.busy.as_secs_f64() / span).min(1.0))
        .collect();
    // Timeline relative to the earliest recorded instant.
    let timeline = if cfg.record_timeline {
        let epoch = outputs
            .iter()
            .flat_map(|o| o.events.iter().map(|&(_, s, _)| s))
            .min()
            .unwrap_or_else(Instant::now);
        outputs
            .iter()
            .enumerate()
            .flat_map(|(ci, o)| {
                o.events.iter().map(move |&(task, s, e)| HostTimelineEvent {
                    chunk: ci,
                    task,
                    start_us: s.saturating_duration_since(epoch).as_secs_f64() * 1e6,
                    end_us: e.saturating_duration_since(epoch).as_secs_f64() * 1e6,
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    Ok(HostReport {
        makespan,
        time_per_task: makespan / tasks,
        mean_task_latency: mean_latency,
        throughput_hz: tasks as f64 / span,
        chunk_utilization,
        tasks,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use bt_kernels::Stage;

    // Helper application: payload is (seq, trace of stage visits).
    #[derive(Debug, Default)]
    struct Trace {
        seq: u64,
        visits: Vec<usize>,
    }

    fn trace_app(stages: usize, counter: Arc<AtomicU64>) -> Application<Trace> {
        let stage_list = (0..stages)
            .map(|i| {
                let counter = Arc::clone(&counter);
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        t.visits.push(i);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        Application::new(
            "trace",
            stage_list,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| {
                t.seq = seq;
                t.visits.clear();
            }),
        )
    }

    fn cfg(tasks: u32, warmup: u32) -> HostRunConfig {
        HostRunConfig {
            tasks,
            warmup,
            ..HostRunConfig::default()
        }
    }

    #[test]
    fn every_task_visits_every_stage_once() {
        use bt_soc::PuClass::*;
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(5, Arc::clone(&counter));
        let schedule = Schedule::new(vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu]).unwrap();
        let report = run_host(&app, &schedule, &PuThreads::uniform(2), &cfg(20, 2)).unwrap();
        assert_eq!(report.tasks, 20);
        // 22 tasks × 5 stages.
        assert_eq!(counter.load(Ordering::Relaxed), 22 * 5);
    }

    #[test]
    fn single_chunk_schedule_works() {
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(3, Arc::clone(&counter));
        let schedule = Schedule::homogeneous(3, bt_soc::PuClass::Gpu);
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(10, 0)).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 30);
        assert!(report.makespan > Duration::ZERO);
        assert!(report.throughput_hz > 0.0);
    }

    #[test]
    fn stage_mismatch_rejected() {
        let app = trace_app(3, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::homogeneous(4, bt_soc::PuClass::BigCpu);
        assert_eq!(
            run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(1, 0)).unwrap_err(),
            PipelineError::StageMismatch { app: 3, schedule: 4 }
        );
    }

    #[test]
    fn zero_tasks_rejected() {
        let app = trace_app(2, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::homogeneous(2, bt_soc::PuClass::BigCpu);
        assert_eq!(
            run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(0, 1)).unwrap_err(),
            PipelineError::NoTasks
        );
    }

    #[test]
    fn pu_threads_lookup() {
        let t = PuThreads::uniform(4).with_class(bt_soc::PuClass::LittleCpu, 1);
        assert_eq!(t.threads(bt_soc::PuClass::BigCpu), 4);
        assert_eq!(t.threads(bt_soc::PuClass::LittleCpu), 1);
    }
}
