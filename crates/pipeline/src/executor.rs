//! The host pipeline executor: real dispatcher threads, one per chunk,
//! passing recycled TaskObjects through lock-free SPSC queues (§3.4 of the
//! paper).
//!
//! Each dispatcher repeatedly: pops a TaskObject pointer from its input
//! queue, dispatches its chunk's compute kernels in sequence (via the
//! OpenMP-stand-in [`ParCtx`] worker pool), and pushes the pointer to the
//! next queue. The head dispatcher doubles as the streaming source,
//! recycling returned objects for new inputs; the tail records completion
//! timestamps.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bt_kernels::{Application, ParCtx};
use bt_soc::{AffinityMap, PerClass, PuClass};
use bt_telemetry::{DispatcherCounters, RunTelemetry, SpanRecorder, TelemetryConfig};

use crate::spsc;
use crate::{Schedule, TaskObject};

/// Worker-thread budget per PU class for host execution.
///
/// The host has no big.LITTLE clusters, so classes map to thread counts —
/// enough to exercise the real runtime (queues, dispatchers, recycling,
/// pinning) with genuine parallelism.
#[derive(Debug, Clone)]
pub struct PuThreads {
    map: PerClass<usize>,
    default: usize,
}

impl PuThreads {
    /// Every class gets `n` workers.
    pub fn uniform(n: usize) -> PuThreads {
        PuThreads {
            map: PerClass::empty(),
            default: n.max(1),
        }
    }

    /// Overrides one class's worker count.
    pub fn with_class(mut self, class: PuClass, n: usize) -> PuThreads {
        self.map.set(class, n.max(1));
        self
    }

    /// Workers for `class`.
    pub fn threads(&self, class: PuClass) -> usize {
        self.map.get(class).copied().unwrap_or(self.default)
    }
}

impl Default for PuThreads {
    fn default() -> PuThreads {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        PuThreads::uniform((cores / 2).max(1))
            .with_class(PuClass::LittleCpu, 1)
            .with_class(PuClass::MediumCpu, 2)
    }
}

/// Configuration of a host pipeline run.
#[derive(Debug, Clone)]
pub struct HostRunConfig {
    /// Measured tasks (the paper uses 30 per run).
    pub tasks: u32,
    /// Warmup tasks excluded from measurement.
    pub warmup: u32,
    /// Circulating TaskObjects; 0 means `chunks + 1`.
    pub buffers: usize,
    /// Optional device affinity map: dispatchers pin themselves to their
    /// chunk's pinnable cores (best-effort; ignored where unavailable).
    pub affinity: Option<AffinityMap>,
    /// Record per-(chunk, task) execution spans for Gantt-style inspection.
    pub record_timeline: bool,
    /// When set, the head keeps admitting tasks until this wall-clock
    /// duration elapses (the paper's autotuning protocol runs each
    /// candidate "for a fixed interval of 10 seconds to measure its
    /// throughput", §3.3); `tasks` then only sizes the warmup accounting
    /// and the reported count comes from how many tasks actually finished.
    pub duration: Option<Duration>,
    /// What telemetry to collect (off by default; the disabled path costs
    /// one branch per instrumentation point).
    pub telemetry: TelemetryConfig,
}

impl Default for HostRunConfig {
    fn default() -> HostRunConfig {
        HostRunConfig {
            tasks: 30,
            warmup: 3,
            buffers: 0,
            affinity: None,
            record_timeline: false,
            duration: None,
            telemetry: TelemetryConfig::OFF,
        }
    }
}

/// One recorded chunk execution on the host (µs relative to run start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostTimelineEvent {
    /// Which chunk executed.
    pub chunk: usize,
    /// Task sequence number.
    pub task: u64,
    /// Start offset in µs.
    pub start_us: f64,
    /// End offset in µs.
    pub end_us: f64,
}

impl From<HostTimelineEvent> for bt_soc::gantt::GanttSpan {
    fn from(e: HostTimelineEvent) -> bt_soc::gantt::GanttSpan {
        bt_soc::gantt::GanttSpan {
            chunk: e.chunk,
            task: e.task,
            start: e.start_us,
            end: e.end_us,
        }
    }
}

/// Result of a host pipeline run.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Wall-clock of the steady-state measurement window: departure of the
    /// task preceding the first measured one → departure of the last task
    /// (with `warmup == 0`, first measured departure → last departure).
    pub makespan: Duration,
    /// Steady-state inverse throughput: `makespan` divided by the number of
    /// inter-departure intervals it spans.
    pub time_per_task: Duration,
    /// Mean per-task residence time.
    pub mean_task_latency: Duration,
    /// Tasks per second.
    pub throughput_hz: f64,
    /// Fraction of the measured window each chunk's dispatcher spent
    /// executing kernels (per chunk, pipeline order) — the utilization the
    /// paper's gapness objective maximizes. Kernel time outside the window
    /// (warmup, pipeline fill) is excluded, so values are ≤ 1 by
    /// construction.
    pub chunk_utilization: Vec<f64>,
    /// Number of measured tasks.
    pub tasks: u32,
    /// Recorded execution spans (empty unless
    /// [`HostRunConfig::record_timeline`] was set).
    pub timeline: Vec<HostTimelineEvent>,
    /// Collected telemetry (`None` unless [`HostRunConfig::telemetry`]
    /// enables something).
    pub telemetry: Option<RunTelemetry>,
}

/// Errors from the pipeline executors (host threads or simulator bridge).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Schedule and application disagree on stage count.
    StageMismatch {
        /// Stages in the application.
        app: usize,
        /// Stages in the schedule.
        schedule: usize,
    },
    /// `tasks` was zero.
    NoTasks,
    /// A stage kernel panicked; the pipeline was shut down cleanly.
    StagePanicked {
        /// Index of the chunk whose kernel panicked.
        chunk: usize,
    },
    /// The simulated device rejected the run (missing PU, empty inputs).
    Soc(bt_soc::SocError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::StageMismatch { app, schedule } => write!(
                f,
                "schedule has {schedule} stages but the application has {app}"
            ),
            PipelineError::NoTasks => f.write_str("at least one task is required"),
            PipelineError::StagePanicked { chunk } => {
                write!(f, "a stage kernel panicked in chunk {chunk}")
            }
            PipelineError::Soc(e) => write!(f, "simulated device error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Soc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bt_soc::SocError> for PipelineError {
    fn from(e: bt_soc::SocError) -> PipelineError {
        PipelineError::Soc(e)
    }
}

enum Msg<P> {
    Task(Box<TaskObject<P>>),
    Stop,
}

/// Per-dispatcher results collected at join time.
#[derive(Default)]
struct ChunkOutput {
    /// Entry instants per seq (head dispatcher only).
    entries: Vec<Instant>,
    /// `(seq, residence, finished_at)` per task (tail dispatcher only).
    completions: Vec<(u64, Duration, Instant)>,
    /// `(task, start, end)` of every chunk execution. Always recorded: the
    /// measurement window is only known after the run, so computing
    /// in-window busy time (utilization) requires the raw spans.
    spans: Vec<(u64, Instant, Instant)>,
    /// Telemetry counters (zeroed unless counter collection is on).
    counters: DispatcherCounters,
}

fn w_fallback(entries: &[Instant]) -> Instant {
    entries.first().copied().unwrap_or_else(Instant::now)
}

/// Blocking push that aborts (returning `false`) once the failure flag is
/// raised, so no dispatcher deadlocks on a dead neighbour's full queue.
fn push_until<T>(tx: &mut spsc::Producer<T>, mut value: T, failed: &AtomicBool) -> bool {
    let mut backoff = spsc::Backoff::new();
    loop {
        match tx.push(value) {
            Ok(()) => return true,
            Err(back) => {
                if failed.load(Ordering::Relaxed) {
                    return false;
                }
                value = back;
                backoff.snooze();
            }
        }
    }
}

/// Blocking pop that gives up (returning `None`) once the failure flag is
/// raised and the queue is empty.
fn pop_until<T>(rx: &mut spsc::Consumer<T>, failed: &AtomicBool) -> Option<T> {
    let mut backoff = spsc::Backoff::new();
    loop {
        if let Some(v) = rx.pop() {
            return Some(v);
        }
        if failed.load(Ordering::Relaxed) {
            return None;
        }
        backoff.snooze();
    }
}

/// [`pop_until`] plus starvation accounting when counters are enabled.
fn pop_timed<T>(
    rx: &mut spsc::Consumer<T>,
    failed: &AtomicBool,
    count: bool,
    counters: &mut DispatcherCounters,
) -> Option<T> {
    if !count {
        return pop_until(rx, failed);
    }
    let t0 = Instant::now();
    let v = pop_until(rx, failed);
    counters.record_blocked_pop(t0.elapsed());
    v
}

/// [`push_until`] plus back-pressure accounting and a post-push occupancy
/// sample of the output queue when counters are enabled.
fn push_timed<T>(
    tx: &mut spsc::Producer<T>,
    value: T,
    failed: &AtomicBool,
    count: bool,
    counters: &mut DispatcherCounters,
) -> bool {
    if !count {
        return push_until(tx, value, failed);
    }
    let t0 = Instant::now();
    let ok = push_until(tx, value, failed);
    counters.record_blocked_push(t0.elapsed());
    if ok {
        counters.sample_queue_depth(tx.len());
    }
    ok
}

/// Executes `schedule` over `app` on the host with real threads, streaming
/// `cfg.tasks + cfg.warmup` inputs through the pipeline.
///
/// # Errors
///
/// Returns [`PipelineError`] if the schedule length mismatches the
/// application or no tasks were requested.
pub fn run_host<P: Send + 'static>(
    app: &Application<P>,
    schedule: &Schedule,
    threads: &PuThreads,
    cfg: &HostRunConfig,
) -> Result<HostReport, PipelineError> {
    if schedule.stage_count() != app.stage_count() {
        return Err(PipelineError::StageMismatch {
            app: app.stage_count(),
            schedule: schedule.stage_count(),
        });
    }
    if cfg.tasks == 0 {
        return Err(PipelineError::NoTasks);
    }

    let chunks = schedule.chunks();
    let k = chunks.len();
    // In duration mode the head admits tasks until the deadline, bounded by
    // a generous cap so buffers can be preallocated deterministically.
    let duration_mode = cfg.duration.is_some();
    let total = if duration_mode {
        u64::MAX
    } else {
        (cfg.tasks + cfg.warmup) as u64
    };
    let deadline = cfg.duration.map(|d| Instant::now() + d);
    let buffers = if cfg.buffers == 0 { k + 1 } else { cfg.buffers };

    // Queues: inter-chunk channels 0..k-1 carry Msg; the recycle channel
    // carries bare boxes back to the head.
    let mut producers: Vec<Option<spsc::Producer<Msg<P>>>> = Vec::new();
    let mut consumers: Vec<Option<spsc::Consumer<Msg<P>>>> = Vec::new();
    for _ in 1..k {
        let (tx, rx) = spsc::channel(buffers.max(1));
        producers.push(Some(tx));
        consumers.push(Some(rx));
    }
    let (mut recycle_tx, recycle_rx) = spsc::channel::<Box<TaskObject<P>>>(buffers.max(1));
    for _ in 0..buffers {
        let obj = Box::new(TaskObject::new(app.new_payload()));
        recycle_tx
            .push(obj)
            .unwrap_or_else(|_| unreachable!("capacity equals the pool size"));
    }

    let failed = AtomicBool::new(false);
    let failed_chunk = AtomicUsize::new(usize::MAX);
    let outputs: Vec<ChunkOutput> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        let mut recycle_rx = Some(recycle_rx);
        let mut recycle_tx = Some(recycle_tx);

        for (ci, chunk) in chunks.iter().copied().enumerate() {
            let is_head = ci == 0;
            let is_tail = ci == k - 1;
            let input = if is_head {
                None
            } else {
                Some(consumers[ci - 1].take().expect("each consumer moved once"))
            };
            let output = if is_tail {
                None
            } else {
                Some(producers[ci].take().expect("each producer moved once"))
            };
            let head_rx = if is_head { recycle_rx.take() } else { None };
            let tail_tx = if is_tail { recycle_tx.take() } else { None };
            let ctx = ParCtx::new(threads.threads(chunk.pu));
            let pin_cores: Vec<usize> = cfg
                .affinity
                .as_ref()
                .map(|m| m.pinnable(chunk.pu).to_vec())
                .unwrap_or_default();

            let failed = &failed;
            let failed_chunk = &failed_chunk;
            handles.push(scope.spawn(move || {
                // Best-effort pinning; worker threads inherit the mask.
                crate::affinity::pin_current_thread(&pin_cores);

                let mut out = ChunkOutput::default();
                let mut input = input;
                let mut output = output;
                let mut head_rx = head_rx;
                let mut tail_tx = tail_tx;

                let count = cfg.telemetry.counters;
                let mut counters = DispatcherCounters::new();
                let mut busy = Duration::ZERO;
                let mut spans: Vec<(u64, Instant, Instant)> = Vec::new();
                let mut run_chunk = |obj: &mut TaskObject<P>, ctx: &ParCtx| -> bool {
                    let t0 = Instant::now();
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        for s in chunk.first_stage..=chunk.last_stage {
                            app.stages()[s].run(&mut obj.payload, ctx);
                        }
                    }));
                    let t1 = Instant::now();
                    busy += t1 - t0;
                    spans.push((obj.seq, t0, t1));
                    if result.is_err() {
                        failed_chunk
                            .compare_exchange(usize::MAX, ci, Ordering::SeqCst, Ordering::SeqCst)
                            .ok();
                        failed.store(true, Ordering::SeqCst);
                        false
                    } else {
                        true
                    }
                };

                if is_head {
                    let rx = head_rx.as_mut().expect("head owns the recycle consumer");
                    for seq in 0..total {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                break;
                            }
                        }
                        let Some(mut obj) = pop_timed(rx, failed, count, &mut counters) else {
                            break;
                        };
                        obj.recycle(seq);
                        app.load_input(&mut obj.payload, seq);
                        out.entries.push(obj.entered.expect("stamped by recycle"));
                        if !run_chunk(&mut obj, &ctx) {
                            break;
                        }
                        if is_tail {
                            let entered = obj.entered.expect("stamped");
                            let now = Instant::now();
                            out.completions.push((seq, now - entered, now));
                            if !push_timed(
                                tail_tx.as_mut().expect("tail owns the recycle producer"),
                                obj,
                                failed,
                                count,
                                &mut counters,
                            ) {
                                break;
                            }
                        } else if !push_timed(
                            output.as_mut().expect("non-tail has an output queue"),
                            Msg::Task(obj),
                            failed,
                            count,
                            &mut counters,
                        ) {
                            break;
                        }
                    }
                    if !is_tail {
                        let _ = push_until(output.as_mut().expect("non-tail"), Msg::Stop, failed);
                    }
                } else {
                    let rx = input.as_mut().expect("non-head has an input queue");
                    loop {
                        match pop_timed(rx, failed, count, &mut counters) {
                            None => break, // failure elsewhere: exit promptly
                            Some(Msg::Stop) => {
                                if let Some(tx) = output.as_mut() {
                                    let _ = push_until(tx, Msg::Stop, failed);
                                }
                                break;
                            }
                            Some(Msg::Task(mut obj)) => {
                                if failed.load(Ordering::Relaxed) {
                                    continue; // drain to unblock upstream
                                }
                                if !run_chunk(&mut obj, &ctx) {
                                    if let Some(tx) = output.as_mut() {
                                        let _ = push_until(tx, Msg::Stop, failed);
                                    }
                                    continue; // keep draining
                                }
                                if is_tail {
                                    let entered = obj.entered.expect("stamped by head");
                                    let now = Instant::now();
                                    out.completions.push((obj.seq, now - entered, now));
                                    if !push_timed(
                                        tail_tx.as_mut().expect("tail recycles"),
                                        obj,
                                        failed,
                                        count,
                                        &mut counters,
                                    ) {
                                        break;
                                    }
                                } else if !push_timed(
                                    output.as_mut().expect("middle chunk"),
                                    Msg::Task(obj),
                                    failed,
                                    count,
                                    &mut counters,
                                ) {
                                    break;
                                }
                            }
                        }
                    }
                }
                if count {
                    counters.tasks = spans.len() as u64;
                    counters.busy = busy;
                }
                out.counters = counters;
                out.spans = spans;
                out
            }));
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("dispatcher threads do not panic"))
            .collect()
    });

    if failed.load(Ordering::SeqCst) {
        return Err(PipelineError::StagePanicked {
            chunk: failed_chunk.load(Ordering::SeqCst),
        });
    }

    // Head entries + tail completions.
    let entries = &outputs[0].entries;
    let completions = &outputs[k - 1].completions;
    let finished = completions.len();
    if !duration_mode {
        debug_assert_eq!(entries.len(), total as usize);
        debug_assert_eq!(finished, total as usize);
    }
    let measured_tasks = finished.saturating_sub(cfg.warmup as usize) as u32;
    if measured_tasks == 0 {
        return Err(PipelineError::NoTasks);
    }

    let measure_from = cfg.warmup as usize;
    // Steady-state window: departure-to-departure, the same convention as
    // the DES simulator. With warmup the window opens at the last warmup
    // task's departure and covers `measured_tasks` inter-departure
    // intervals. Without warmup there is no preceding departure, so it
    // opens at the *first measured departure* and covers
    // `measured_tasks - 1` intervals — never at the first entry, which
    // would charge the pipeline-fill transient to steady-state throughput.
    // A single task with no warmup degenerates to its entry→exit latency.
    let mut by_seq: Vec<Instant> = vec![w_fallback(entries); completions.len()];
    for &(seq, _, at) in completions {
        by_seq[seq as usize] = at;
    }
    let (w_start, intervals) = if measure_from > 0 {
        (by_seq[measure_from - 1], measured_tasks)
    } else if finished > 1 {
        (by_seq[0], measured_tasks - 1)
    } else {
        (entries[0], 1)
    };
    let w_end = *by_seq.last().expect("at least one completion");
    let makespan = w_end.saturating_duration_since(w_start);
    let measured: Vec<Duration> = completions
        .iter()
        .filter(|&&(seq, _, _)| seq >= measure_from as u64)
        .map(|&(_, lat, _)| lat)
        .collect();
    let mean_latency = measured.iter().sum::<Duration>() / measured.len().max(1) as u32;
    let tasks = measured_tasks;
    let span = makespan.as_secs_f64().max(1e-12);
    // Busy time clipped to [w_start, w_end]: warmup and fill work outside
    // the window cannot inflate utilization, which is ≤ 1 by construction
    // (a dispatcher's spans never overlap each other).
    let chunk_utilization = outputs
        .iter()
        .map(|o| {
            let in_window: Duration = o
                .spans
                .iter()
                .map(|&(_, t0, t1)| t1.min(w_end).saturating_duration_since(t0.max(w_start)))
                .sum();
            in_window.as_secs_f64() / span
        })
        .collect();
    // Timeline and telemetry spans share one epoch: the earliest recorded
    // instant across all dispatchers.
    let epoch = outputs
        .iter()
        .flat_map(|o| o.spans.iter().map(|&(_, s, _)| s))
        .min()
        .unwrap_or(w_start);
    let timeline = if cfg.record_timeline {
        outputs
            .iter()
            .enumerate()
            .flat_map(|(ci, o)| {
                o.spans.iter().map(move |&(task, s, e)| HostTimelineEvent {
                    chunk: ci,
                    task,
                    start_us: s.saturating_duration_since(epoch).as_secs_f64() * 1e6,
                    end_us: e.saturating_duration_since(epoch).as_secs_f64() * 1e6,
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    let telemetry = if cfg.telemetry.any() {
        let mut t = RunTelemetry::new("host");
        if cfg.telemetry.counters {
            t.dispatchers = outputs
                .iter()
                .enumerate()
                .map(|(ci, o)| o.counters.stats(format!("chunk{ci}")))
                .collect();
        }
        if cfg.telemetry.spans {
            let mut rec = SpanRecorder::new(true, epoch);
            for (ci, o) in outputs.iter().enumerate() {
                for &(task, s, e) in &o.spans {
                    rec.record(ci as u32, task, None, s, e);
                }
            }
            t.spans = rec.into_spans();
        }
        Some(t)
    } else {
        None
    };

    Ok(HostReport {
        makespan,
        time_per_task: makespan / intervals.max(1),
        mean_task_latency: mean_latency,
        throughput_hz: intervals.max(1) as f64 / span,
        chunk_utilization,
        tasks,
        timeline,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use bt_kernels::Stage;

    // Helper application: payload is (seq, trace of stage visits).
    #[derive(Debug, Default)]
    struct Trace {
        seq: u64,
        visits: Vec<usize>,
    }

    fn trace_app(stages: usize, counter: Arc<AtomicU64>) -> Application<Trace> {
        let stage_list = (0..stages)
            .map(|i| {
                let counter = Arc::clone(&counter);
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        t.visits.push(i);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        Application::new(
            "trace",
            stage_list,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| {
                t.seq = seq;
                t.visits.clear();
            }),
        )
    }

    fn cfg(tasks: u32, warmup: u32) -> HostRunConfig {
        HostRunConfig {
            tasks,
            warmup,
            ..HostRunConfig::default()
        }
    }

    #[test]
    fn every_task_visits_every_stage_once() {
        use bt_soc::PuClass::*;
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(5, Arc::clone(&counter));
        let schedule = Schedule::new(vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu]).unwrap();
        let report = run_host(&app, &schedule, &PuThreads::uniform(2), &cfg(20, 2)).unwrap();
        assert_eq!(report.tasks, 20);
        // 22 tasks × 5 stages.
        assert_eq!(counter.load(Ordering::Relaxed), 22 * 5);
    }

    #[test]
    fn single_chunk_schedule_works() {
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(3, Arc::clone(&counter));
        let schedule = Schedule::homogeneous(3, bt_soc::PuClass::Gpu);
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(10, 0)).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 30);
        assert!(report.makespan > Duration::ZERO);
        assert!(report.throughput_hz > 0.0);
    }

    #[test]
    fn stage_mismatch_rejected() {
        let app = trace_app(3, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::homogeneous(4, bt_soc::PuClass::BigCpu);
        assert_eq!(
            run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(1, 0)).unwrap_err(),
            PipelineError::StageMismatch {
                app: 3,
                schedule: 4
            }
        );
    }

    #[test]
    fn zero_tasks_rejected() {
        let app = trace_app(2, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::homogeneous(2, bt_soc::PuClass::BigCpu);
        assert_eq!(
            run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(0, 1)).unwrap_err(),
            PipelineError::NoTasks
        );
    }

    #[test]
    fn pu_threads_lookup() {
        let t = PuThreads::uniform(4).with_class(bt_soc::PuClass::LittleCpu, 1);
        assert_eq!(t.threads(bt_soc::PuClass::BigCpu), 4);
        assert_eq!(t.threads(bt_soc::PuClass::LittleCpu), 1);
    }

    /// Application whose stage kernels sleep for per-(stage, seq) durations
    /// chosen by `plan(stage, seq) -> millis`.
    fn sleep_app(stages: usize, plan: fn(usize, u64) -> u64) -> Application<Trace> {
        let stage_list = (0..stages)
            .map(|i| {
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        std::thread::sleep(Duration::from_millis(plan(i, t.seq)));
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        Application::new(
            "sleep",
            stage_list,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| t.seq = seq),
        )
    }

    /// Regression: warmup kernel time used to be counted in `busy` but
    /// divided by the steady-state window, pushing utilization past 1.0 and
    /// getting silently clamped. With a deliberately slow warmup stage the
    /// non-bottleneck chunk must now report its true (low) steady-state
    /// utilization instead of a saturated 1.0.
    #[test]
    fn slow_warmup_does_not_inflate_utilization() {
        use bt_soc::PuClass::*;
        // Stage 0: 20 ms during warmup (seq < 3), 1 ms after.
        // Stage 1: 5 ms always — the steady-state bottleneck.
        let app = sleep_app(2, |stage, seq| match (stage, seq) {
            (0, s) if s < 3 => 20,
            (0, _) => 1,
            _ => 5,
        });
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(10, 3)).unwrap();
        // Chunk 0 works ~1 ms per ~5 ms steady interval. Its total busy
        // time (3×20 ms warmup + 10×1 ms) exceeds the ~45 ms window, so the
        // pre-fix computation reported a clamped 1.0 here.
        assert!(
            report.chunk_utilization[0] < 0.6,
            "warmup work leaked into steady-state utilization: {:?}",
            report.chunk_utilization
        );
        // The bottleneck chunk runs nearly the whole window.
        assert!(
            report.chunk_utilization[1] > 0.6,
            "bottleneck should dominate the window: {:?}",
            report.chunk_utilization
        );
        for &u in &report.chunk_utilization {
            assert!((0.0..=1.0).contains(&u), "clipping bounds utilization");
        }
    }

    /// Regression: with `warmup == 0` the window used to start at the first
    /// task's *arrival* but end at a *departure*, charging the pipeline-fill
    /// transient to steady-state throughput. An expensive first task must
    /// not inflate `time_per_task` anymore.
    #[test]
    fn zero_warmup_window_excludes_fill_transient() {
        use bt_soc::PuClass::*;
        // Task 0 is 30× slower than steady state in stage 0.
        let app = sleep_app(2, |stage, seq| match (stage, seq) {
            (0, 0) => 60,
            (0, _) => 2,
            _ => 5,
        });
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(10, 0)).unwrap();
        // Steady-state inter-departure time is ~5 ms (the bottleneck). The
        // pre-fix window averaged the 60 ms fill in, reporting ~11 ms.
        assert!(
            report.time_per_task < Duration::from_millis(9),
            "fill transient leaked into time_per_task: {:?}",
            report.time_per_task
        );
        assert!(report.time_per_task > Duration::from_millis(3));
    }

    #[test]
    fn telemetry_disabled_reports_none() {
        let app = trace_app(3, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::homogeneous(3, bt_soc::PuClass::Gpu);
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(5, 1)).unwrap();
        assert!(report.telemetry.is_none());
    }

    #[test]
    fn telemetry_counters_and_spans_cover_every_task() {
        use bt_soc::PuClass::*;
        let app = trace_app(4, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::new(vec![BigCpu, BigCpu, Gpu, Gpu]).unwrap();
        let run = HostRunConfig {
            tasks: 12,
            warmup: 2,
            record_timeline: true,
            telemetry: bt_telemetry::TelemetryConfig::full(),
            ..HostRunConfig::default()
        };
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &run).unwrap();
        let telemetry = report.telemetry.expect("telemetry requested");
        assert_eq!(telemetry.source, "host");
        assert_eq!(telemetry.dispatchers.len(), 2, "one per chunk");
        for d in &telemetry.dispatchers {
            assert_eq!(d.tasks, 14, "every dispatcher executes all tasks");
            assert!(d.busy_us > 0.0);
            assert!(d.queue_samples > 0, "every push samples occupancy");
        }
        // Telemetry spans are the record_timeline events, unified: same
        // count, same offsets, same (track, task) identity.
        assert_eq!(telemetry.spans.len(), report.timeline.len());
        assert_eq!(telemetry.spans.len(), 2 * 14);
        for (s, e) in telemetry.spans.iter().zip(&report.timeline) {
            assert_eq!(s.track as usize, e.chunk);
            assert_eq!(s.task, e.task);
            assert!((s.start_us - e.start_us).abs() < 1e-6);
            assert!((s.end_us - e.end_us).abs() < 1e-6);
        }
        // And the Chrome export of a host run is valid trace JSON.
        let trace = telemetry.chrome_trace_json();
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .expect("traceEvents");
        assert_eq!(events.len(), 2 + 2 * 14, "metadata + spans");
    }
}
