//! The host pipeline executor: real dispatcher threads, one per chunk,
//! passing recycled TaskObjects through lock-free SPSC queues (§3.4 of the
//! paper).
//!
//! Each dispatcher repeatedly: pops a TaskObject pointer from its input
//! queue, dispatches its chunk's compute kernels in sequence (via the
//! OpenMP-stand-in [`ParCtx`] worker pool), and pushes the pointer to the
//! next queue. The head dispatcher doubles as the streaming source,
//! recycling returned objects for new inputs; the tail records completion
//! timestamps.
//!
//! There is **one** executor, [`run_host`], parameterized by an optional
//! [`ResilienceConfig`]:
//!
//! - `res == None` — *fail-fast*: a panicking stage kernel aborts the run
//!   with [`PipelineError::StagePanicked`] after a clean shutdown of every
//!   dispatcher.
//! - `res == Some(_)` — *resilient*: panics are retried with backoff,
//!   retries-exhausted tasks are tombstoned and counted as dropped, a
//!   failure-budget overrun drains the pipeline gracefully, and a watchdog
//!   unwinds a wedged pipeline. The run then *degrades* (see
//!   [`RunReport::degraded`]) instead of erroring.
//!
//! Both modes share one dispatcher loop, one accounting path, and one
//! report type — the unified [`RunReport`] also produced by the simulator.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bt_kernels::{Application, ParCtx};
use bt_soc::{
    DegradeReason, Micros, PerClass, PuClass, RunConfig, RunReport, RunStats, TimelineSpan,
};
use bt_telemetry::{DispatcherCounters, RunTelemetry, SpanRecorder};

use crate::spsc;
use crate::{DagSchedule, Schedule, TaskObject};

/// Worker-thread budget per PU class for host execution.
///
/// The host has no big.LITTLE clusters, so classes map to thread counts —
/// enough to exercise the real runtime (queues, dispatchers, recycling,
/// pinning) with genuine parallelism.
#[derive(Debug, Clone)]
pub struct PuThreads {
    map: PerClass<usize>,
    default: usize,
}

impl PuThreads {
    /// Every class gets `n` workers.
    pub fn uniform(n: usize) -> PuThreads {
        PuThreads {
            map: PerClass::empty(),
            default: n.max(1),
        }
    }

    /// Overrides one class's worker count.
    pub fn with_class(mut self, class: PuClass, n: usize) -> PuThreads {
        self.map.set(class, n.max(1));
        self
    }

    /// Workers for `class`.
    pub fn threads(&self, class: PuClass) -> usize {
        self.map.get(class).copied().unwrap_or(self.default)
    }
}

impl Default for PuThreads {
    fn default() -> PuThreads {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        PuThreads::uniform((cores / 2).max(1))
            .with_class(PuClass::LittleCpu, 1)
            .with_class(PuClass::MediumCpu, 2)
    }
}

/// Errors from the pipeline executors (host threads or simulator bridge).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// Schedule and application disagree on stage count.
    StageMismatch {
        /// Stages in the application.
        app: usize,
        /// Stages in the schedule.
        schedule: usize,
    },
    /// Schedule and application disagree on the stage-dependency graph —
    /// e.g. a cached DAG plan deserialized against a reshaped app.
    GraphMismatch,
    /// Resilient execution was requested for a genuinely fork/join
    /// schedule; the host executor's retry/tombstone machinery currently
    /// covers chain-shaped schedules only (the simulator prices DAG
    /// faults; see `simulate_dag_schedule`).
    ResilienceUnsupported,
    /// `tasks` was zero, or a run measured nothing.
    NoTasks,
    /// A stage kernel panicked in fail-fast mode; the pipeline was shut
    /// down cleanly. Resilient runs degrade instead of returning this.
    StagePanicked {
        /// Index of the chunk whose kernel panicked.
        chunk: usize,
    },
    /// The simulated device rejected the run (missing PU, empty inputs).
    Soc(bt_soc::SocError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::StageMismatch { app, schedule } => write!(
                f,
                "schedule has {schedule} stages but the application has {app}"
            ),
            PipelineError::GraphMismatch => {
                f.write_str("schedule and application disagree on the stage-dependency graph")
            }
            PipelineError::ResilienceUnsupported => f.write_str(
                "resilient host execution supports chain-shaped schedules only \
                 (use fail-fast, or the DAG simulator for fault studies)",
            ),
            PipelineError::NoTasks => f.write_str("at least one task is required"),
            PipelineError::StagePanicked { chunk } => {
                write!(f, "a stage kernel panicked in chunk {chunk}")
            }
            PipelineError::Soc(e) => write!(f, "simulated device error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Soc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bt_soc::SocError> for PipelineError {
    fn from(e: bt_soc::SocError) -> PipelineError {
        PipelineError::Soc(e)
    }
}

/// Resilience policy of [`run_host`]; `None` means fail-fast.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Per-dispatcher watchdog on blocking input pops. When a dispatcher
    /// starves this long while its producer is still alive, the run is
    /// declared wedged (an upstream kernel is presumed hung), every
    /// dispatcher unwinds, and the run degrades with
    /// [`DegradeReason::WatchdogTimeout`]. `None` disables the watchdog
    /// (pops still detect dead producers via the SPSC disconnect signal).
    pub watchdog: Option<Duration>,
    /// Retries per failed stage execution, beyond the first attempt.
    pub retries: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub retry_backoff: Duration,
    /// Tombstoned (retries-exhausted) tasks one chunk tolerates before the
    /// head stops admitting and the pipeline drains into
    /// [`DegradeReason::KernelFailures`].
    pub max_task_failures: u32,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            watchdog: Some(Duration::from_secs(2)),
            retries: 2,
            retry_backoff: Duration::from_millis(1),
            max_task_failures: 3,
        }
    }
}

enum Msg<P> {
    Task(Box<TaskObject<P>>),
    Stop,
}

/// Per-dispatcher results collected at join time.
#[derive(Default)]
struct ChunkOutput {
    /// Entry instants per seq (head dispatcher only).
    entries: Vec<Instant>,
    /// `(seq, residence, finished_at)` per task (tail dispatcher only).
    completions: Vec<(u64, Duration, Instant)>,
    /// `(task, start, end)` of every chunk execution. Always recorded: the
    /// measurement window is only known after the run, so computing
    /// in-window busy time (utilization) requires the raw spans.
    spans: Vec<(u64, Instant, Instant)>,
    /// Telemetry counters (zeroed unless counter collection is on).
    counters: DispatcherCounters,
}

fn w_fallback(entries: &[Instant]) -> Instant {
    entries.first().copied().unwrap_or_else(Instant::now)
}

/// Blocking push that aborts (returning `false`) once the halt flag is
/// raised, so no dispatcher deadlocks on a dead neighbour's full queue.
fn push_until<T>(tx: &mut spsc::Producer<T>, mut value: T, halt: &AtomicBool) -> bool {
    let mut backoff = spsc::Backoff::new();
    loop {
        match tx.push(value) {
            Ok(()) => return true,
            Err(back) => {
                if halt.load(Ordering::Relaxed) {
                    return false;
                }
                value = back;
                backoff.snooze();
            }
        }
    }
}

/// [`push_until`] plus back-pressure accounting and a post-push occupancy
/// sample of the output queue when counters are enabled.
fn push_timed<T>(
    tx: &mut spsc::Producer<T>,
    value: T,
    halt: &AtomicBool,
    count: bool,
    counters: &mut DispatcherCounters,
) -> bool {
    if !count {
        return push_until(tx, value, halt);
    }
    let t0 = Instant::now();
    let ok = push_until(tx, value, halt);
    counters.record_blocked_push(t0.elapsed());
    if ok {
        counters.sample_queue_depth(tx.len());
    }
    ok
}

/// Degradation signals shared by the dispatchers.
///
/// Fail-fast mode uses only `halt` (raised on the first kernel panic);
/// resilient mode additionally reports typed degradation reasons.
struct DegradeSignals {
    /// Graceful: the head stops admitting; in-flight tasks drain normally.
    degrade: AtomicBool,
    /// Hard: every blocking loop aborts promptly (wedged or failed
    /// pipeline).
    halt: AtomicBool,
    /// Encoded first-reported reason: 0 none, 1 kernel failures, 2
    /// watchdog; `reason_chunk` is only meaningful once `reason_kind != 0`.
    reason_kind: AtomicUsize,
    reason_chunk: AtomicUsize,
}

impl DegradeSignals {
    fn new() -> DegradeSignals {
        DegradeSignals {
            degrade: AtomicBool::new(false),
            halt: AtomicBool::new(false),
            reason_kind: AtomicUsize::new(0),
            reason_chunk: AtomicUsize::new(0),
        }
    }

    /// Records the first degradation reason; later reports are ignored.
    fn report(&self, kind: usize, chunk: usize) {
        if self
            .reason_kind
            .compare_exchange(0, kind, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.reason_chunk.store(chunk, Ordering::SeqCst);
        }
    }

    fn kernel_failures(&self, chunk: usize) {
        self.report(1, chunk);
        self.degrade.store(true, Ordering::SeqCst);
    }

    fn watchdog(&self, chunk: usize) {
        self.report(2, chunk);
        self.degrade.store(true, Ordering::SeqCst);
        self.halt.store(true, Ordering::SeqCst);
    }

    fn reason(&self) -> Option<DegradeReason> {
        let chunk = self.reason_chunk.load(Ordering::SeqCst);
        match self.reason_kind.load(Ordering::SeqCst) {
            1 => Some(DegradeReason::KernelFailures { chunk }),
            2 => Some(DegradeReason::WatchdogTimeout { chunk }),
            _ => None,
        }
    }
}

enum ResilientPop<T> {
    Got(T),
    /// Producer gone or halt raised: stop consuming.
    Stopped,
    /// Watchdog deadline elapsed with a live producer.
    Starved,
}

/// Watchdog-aware blocking pop: waits for an item, a dead producer, the
/// halt flag, or the watchdog deadline — whichever comes first. With no
/// watchdog it is still halt-aware and disconnect-aware, which is the
/// fail-fast pop as well.
fn pop_watchdog<T>(
    rx: &mut spsc::Consumer<T>,
    halt: &AtomicBool,
    watchdog: Option<Duration>,
) -> ResilientPop<T> {
    let Some(watchdog) = watchdog else {
        let mut backoff = spsc::Backoff::new();
        loop {
            if let Some(v) = rx.pop() {
                return ResilientPop::Got(v);
            }
            if halt.load(Ordering::Relaxed) || rx.is_disconnected() {
                return match rx.pop() {
                    Some(v) => ResilientPop::Got(v),
                    None => ResilientPop::Stopped,
                };
            }
            backoff.snooze();
        }
    };
    // Wait in short slices so a halt raised elsewhere is noticed well
    // before a long watchdog deadline expires.
    let deadline = Instant::now() + watchdog;
    loop {
        let slice = Duration::from_millis(5).min(watchdog);
        match rx.pop_deadline(slice) {
            Ok(v) => return ResilientPop::Got(v),
            Err(spsc::PopError::Disconnected) => return ResilientPop::Stopped,
            Err(spsc::PopError::TimedOut) => {
                if halt.load(Ordering::Relaxed) {
                    return match rx.pop() {
                        Some(v) => ResilientPop::Got(v),
                        None => ResilientPop::Stopped,
                    };
                }
                if Instant::now() >= deadline {
                    return ResilientPop::Starved;
                }
            }
        }
    }
}

/// Executes `schedule` over `app` on the host with real threads, streaming
/// `cfg.tasks + cfg.warmup` inputs through the pipeline (or admitting until
/// [`RunConfig::duration`] elapses).
///
/// `res` selects the failure policy:
///
/// - `None` — **fail-fast**: a panicking stage kernel shuts every
///   dispatcher down and the run errors with
///   [`PipelineError::StagePanicked`].
/// - `Some(res)` — **resilient**: never a hang, never a panic escaping the
///   executor. A panicking kernel is retried up to
///   [`ResilienceConfig::retries`] times (backoff doubling from
///   [`ResilienceConfig::retry_backoff`]); a task whose retries are
///   exhausted is tombstoned ([`TaskObject::dropped`]) and keeps flowing so
///   the object pool never shrinks; a chunk exceeding
///   [`ResilienceConfig::max_task_failures`] stops the head and the
///   pipeline drains; a dispatcher starving past
///   [`ResilienceConfig::watchdog`] on a live producer declares the
///   pipeline wedged and unwinds every thread promptly. The run then
///   reports a [`DegradeReason`] in [`RunReport::degraded`] and dropped
///   tasks in [`RunReport::dropped`].
///
/// The report upholds `completed + dropped == submitted`; tasks in flight
/// during a watchdog unwind count as dropped. [`RunReport::faults_fired`]
/// counts tombstoned tasks observed at the tail.
///
/// Simulator-only fields of [`RunConfig`] (`seed`, `noise_sigma`,
/// `service_cache`) are ignored: the host measures wall-clock reality.
///
/// # Errors
///
/// Returns [`PipelineError`] for configuration errors (stage mismatch,
/// zero tasks), a fail-fast kernel panic, or a run that measured nothing.
pub fn run_host<P: Send + 'static>(
    app: &Application<P>,
    schedule: &Schedule,
    threads: &PuThreads,
    cfg: &RunConfig,
    res: Option<&ResilienceConfig>,
) -> Result<RunReport, PipelineError> {
    if schedule.stage_count() != app.stage_count() {
        return Err(PipelineError::StageMismatch {
            app: app.stage_count(),
            schedule: schedule.stage_count(),
        });
    }
    if cfg.tasks == 0 {
        return Err(PipelineError::NoTasks);
    }

    let chunks = schedule.chunks();
    let k = chunks.len();
    // In duration mode the head admits tasks until the deadline.
    let duration_mode = cfg.duration.is_some();
    let total = if duration_mode {
        u64::MAX
    } else {
        (cfg.tasks + cfg.warmup) as u64
    };
    let deadline = cfg.duration.map(|d| Instant::now() + d);
    let buffers = if cfg.buffers == 0 {
        k + 1
    } else {
        cfg.buffers as usize
    };

    // Queues: inter-chunk channels 0..k-1 carry Msg; the recycle channel
    // carries bare boxes back to the head.
    let mut producers: Vec<Option<spsc::Producer<Msg<P>>>> = Vec::new();
    let mut consumers: Vec<Option<spsc::Consumer<Msg<P>>>> = Vec::new();
    for _ in 1..k {
        let (tx, rx) = spsc::channel(buffers.max(1)).expect("capacity is at least 1");
        producers.push(Some(tx));
        consumers.push(Some(rx));
    }
    let (mut recycle_tx, recycle_rx) =
        spsc::channel::<Box<TaskObject<P>>>(buffers.max(1)).expect("capacity is at least 1");
    for _ in 0..buffers {
        let obj = Box::new(TaskObject::new(app.new_payload()));
        recycle_tx
            .push(obj)
            .unwrap_or_else(|_| unreachable!("capacity equals the pool size"));
    }

    let signals = DegradeSignals::new();
    let failed_chunk = AtomicUsize::new(usize::MAX);
    let submitted = AtomicUsize::new(0);
    let tail_dropped = AtomicUsize::new(0);
    let outputs: Vec<ChunkOutput> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        let mut recycle_rx = Some(recycle_rx);
        let mut recycle_tx = Some(recycle_tx);

        for (ci, chunk) in chunks.iter().copied().enumerate() {
            let is_head = ci == 0;
            let is_tail = ci == k - 1;
            let input = if is_head {
                None
            } else {
                Some(consumers[ci - 1].take().expect("each consumer moved once"))
            };
            let output = if is_tail {
                None
            } else {
                Some(producers[ci].take().expect("each producer moved once"))
            };
            let head_rx = if is_head { recycle_rx.take() } else { None };
            let tail_tx = if is_tail { recycle_tx.take() } else { None };
            let ctx = ParCtx::new(threads.threads(chunk.pu));
            let pin_cores: Vec<usize> = cfg
                .affinity
                .as_ref()
                .map(|m| m.pinnable(chunk.pu).to_vec())
                .unwrap_or_default();

            let signals = &signals;
            let failed_chunk = &failed_chunk;
            let submitted = &submitted;
            let tail_dropped = &tail_dropped;
            handles.push(scope.spawn(move || {
                // Best-effort pinning; worker threads inherit the mask.
                crate::affinity::pin_current_thread(&pin_cores);

                let mut out = ChunkOutput::default();
                let mut input = input;
                let mut output = output;
                let mut head_rx = head_rx;
                let mut tail_tx = tail_tx;
                let halt = &signals.halt;
                let watchdog = res.and_then(|r| r.watchdog);

                let count = cfg.telemetry.counters;
                let mut counters = DispatcherCounters::new();
                let mut busy = Duration::ZERO;
                let mut spans: Vec<(u64, Instant, Instant)> = Vec::new();
                let mut failures = 0u32;

                // One task's chunk execution. Returns whether the object
                // should keep flowing downstream.
                //
                // Fail-fast (`res == None`): a single attempt; a panic
                // records the chunk, halts the pipeline, and returns
                // `false`. Resilient: retried with doubling backoff; a
                // task whose attempts are all spent is tombstoned rather
                // than aborting the pipeline (so it always returns
                // `true`), and a chunk burning through its failure budget
                // degrades the run gracefully (the head stops admitting).
                let mut run_chunk = |obj: &mut TaskObject<P>, ctx: &ParCtx| -> bool {
                    let retries = res.map_or(0, |r| r.retries);
                    let mut wait = res.map_or(Duration::ZERO, |r| r.retry_backoff);
                    for attempt in 0..=retries {
                        if attempt > 0 {
                            std::thread::sleep(wait);
                            wait *= 2;
                        }
                        let t0 = Instant::now();
                        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            for s in chunk.first_stage..=chunk.last_stage {
                                app.stages()[s].run(&mut obj.payload, ctx);
                            }
                        }));
                        let t1 = Instant::now();
                        busy += t1 - t0;
                        spans.push((obj.seq, t0, t1));
                        if result.is_ok() {
                            return true;
                        }
                    }
                    let Some(res) = res else {
                        // Fail-fast: first panic ends the run.
                        failed_chunk
                            .compare_exchange(usize::MAX, ci, Ordering::SeqCst, Ordering::SeqCst)
                            .ok();
                        halt.store(true, Ordering::SeqCst);
                        return false;
                    };
                    obj.dropped = true;
                    failures += 1;
                    // Any tombstone makes the run degraded; only a budget
                    // overrun additionally stops the head from admitting.
                    signals.report(1, ci);
                    if failures > res.max_task_failures {
                        signals.kernel_failures(ci);
                    }
                    true
                };

                let pop_in = |rx: &mut spsc::Consumer<Msg<P>>,
                              counters: &mut DispatcherCounters|
                 -> ResilientPop<Msg<P>> {
                    let t0 = count.then(Instant::now);
                    let r = pop_watchdog(rx, halt, watchdog);
                    if let Some(t0) = t0 {
                        counters.record_blocked_pop(t0.elapsed());
                    }
                    r
                };

                if is_head {
                    let rx = head_rx.as_mut().expect("head owns the recycle consumer");
                    for seq in 0..total {
                        if signals.degrade.load(Ordering::Relaxed) {
                            break;
                        }
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                break;
                            }
                        }
                        let t0 = count.then(Instant::now);
                        let popped = pop_watchdog(rx, halt, watchdog);
                        if let Some(t0) = t0 {
                            counters.record_blocked_pop(t0.elapsed());
                        }
                        let mut obj = match popped {
                            ResilientPop::Got(o) => o,
                            ResilientPop::Stopped => break,
                            ResilientPop::Starved => {
                                signals.watchdog(ci);
                                break;
                            }
                        };
                        obj.recycle(seq);
                        app.load_input(&mut obj.payload, seq);
                        out.entries.push(obj.entered.expect("stamped by recycle"));
                        submitted.fetch_add(1, Ordering::Relaxed);
                        if !run_chunk(&mut obj, &ctx) {
                            break;
                        }
                        if is_tail {
                            if obj.dropped {
                                tail_dropped.fetch_add(1, Ordering::Relaxed);
                            } else {
                                let entered = obj.entered.expect("stamped");
                                let now = Instant::now();
                                out.completions.push((seq, now - entered, now));
                            }
                            if !push_timed(
                                tail_tx.as_mut().expect("tail owns the recycle producer"),
                                obj,
                                halt,
                                count,
                                &mut counters,
                            ) {
                                break;
                            }
                        } else if !push_timed(
                            output.as_mut().expect("non-tail has an output queue"),
                            Msg::Task(obj),
                            halt,
                            count,
                            &mut counters,
                        ) {
                            break;
                        }
                    }
                    if !is_tail {
                        let _ = push_until(output.as_mut().expect("non-tail"), Msg::Stop, halt);
                    }
                } else {
                    let rx = input.as_mut().expect("non-head has an input queue");
                    loop {
                        match pop_in(rx, &mut counters) {
                            ResilientPop::Stopped => break,
                            ResilientPop::Starved => {
                                signals.watchdog(ci);
                                break;
                            }
                            ResilientPop::Got(Msg::Stop) => {
                                if let Some(tx) = output.as_mut() {
                                    let _ = push_until(tx, Msg::Stop, halt);
                                }
                                break;
                            }
                            ResilientPop::Got(Msg::Task(mut obj)) => {
                                if halt.load(Ordering::Relaxed) {
                                    continue; // drain to unblock upstream
                                }
                                if !obj.dropped && !run_chunk(&mut obj, &ctx) {
                                    // Fail-fast panic: tell downstream,
                                    // keep draining to unblock upstream.
                                    if let Some(tx) = output.as_mut() {
                                        let _ = push_until(tx, Msg::Stop, halt);
                                    }
                                    continue;
                                }
                                if is_tail {
                                    if obj.dropped {
                                        tail_dropped.fetch_add(1, Ordering::Relaxed);
                                    } else {
                                        let entered = obj.entered.expect("stamped by head");
                                        let now = Instant::now();
                                        out.completions.push((obj.seq, now - entered, now));
                                    }
                                    if !push_timed(
                                        tail_tx.as_mut().expect("tail recycles"),
                                        obj,
                                        halt,
                                        count,
                                        &mut counters,
                                    ) {
                                        break;
                                    }
                                } else if !push_timed(
                                    output.as_mut().expect("middle chunk"),
                                    Msg::Task(obj),
                                    halt,
                                    count,
                                    &mut counters,
                                ) {
                                    break;
                                }
                            }
                        }
                    }
                }
                if count {
                    counters.tasks = spans.len() as u64;
                    counters.busy = busy;
                }
                out.counters = counters;
                out.spans = spans;
                out
            }));
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("dispatcher threads do not panic"))
            .collect()
    });

    let panicked = failed_chunk.load(Ordering::SeqCst);
    if panicked != usize::MAX {
        return Err(PipelineError::StagePanicked { chunk: panicked });
    }

    let submitted = submitted.load(Ordering::SeqCst) as u64;
    let completed = outputs[k - 1].completions.len() as u64;
    let dropped = submitted - completed;
    debug_assert!(
        res.is_some() || dropped == 0,
        "fail-fast run lost tasks without erroring"
    );
    if !duration_mode && res.is_none() {
        debug_assert_eq!(completed, total);
    }

    // A fail-fast run that measured nothing (duration shorter than the
    // warmup) is an error, like the zero-task configuration; a clean
    // resilient run likewise has nothing to report without measurements.
    let finished = outputs[k - 1].completions.len();
    if res.is_none() && finished.saturating_sub(cfg.warmup as usize) == 0 {
        return Err(PipelineError::NoTasks);
    }
    let degraded = signals.reason();
    let (stats, timeline, telemetry) = assemble(&outputs, cfg, k);
    if res.is_some() && degraded.is_none() && dropped == 0 && stats.is_none() {
        return Err(PipelineError::NoTasks);
    }

    Ok(RunReport {
        submitted,
        completed,
        dropped,
        faults_fired: tail_dropped.load(Ordering::SeqCst) as u32,
        stats,
        timeline,
        telemetry,
        degraded,
    })
}

/// Executes a fork/join `schedule` over `app` on the host with real
/// threads — the DAG generalization of [`run_host`].
///
/// Chain-shaped schedules (no replication, canonical chain graph) delegate
/// to [`run_host`] outright, so everything expressible in the linear model
/// behaves bit-identically, resilience included. Genuine DAGs run as a
/// *relay*: the chunks are arranged in a topological order of the
/// schedule's chunk quotient graph and each task object visits them in
/// that order over the existing SPSC rings, so every stage runs exactly
/// once per task in dependency order while different chunks pipeline
/// different tasks concurrently. A replicated stage occupies one relay
/// slot with two dispatcher threads: the upstream chunk splits the task
/// stream round-robin (`seq % 2`, one ring per replica) and the
/// downstream chunk merges by popping the rings in alternation, restoring
/// sequence order deterministically.
///
/// [`RunStats::chunk_utilization`] and the timeline follow the relay
/// (topological) chunk order, with the replica pair adjacent.
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] / [`PipelineError::GraphMismatch`]
/// on schedule/application disagreement, [`PipelineError::ResilienceUnsupported`]
/// when `res` is `Some` for a genuinely fork/join schedule (the
/// retry/tombstone machinery covers chains only; DAG fault studies run in
/// the simulator), and otherwise errors as [`run_host`] does.
pub fn run_host_dag<P: Send + 'static>(
    app: &Application<P>,
    schedule: &DagSchedule,
    threads: &PuThreads,
    cfg: &RunConfig,
    res: Option<&ResilienceConfig>,
) -> Result<RunReport, PipelineError> {
    if schedule.stage_count() != app.stage_count() {
        return Err(PipelineError::StageMismatch {
            app: app.stage_count(),
            schedule: schedule.stage_count(),
        });
    }
    if !crate::sim::same_graph(schedule.graph(), app.graph()) {
        return Err(PipelineError::GraphMismatch);
    }
    if let Some(linear) = schedule.as_linear() {
        return run_host(app, &linear, threads, cfg, res);
    }
    if res.is_some() {
        return Err(PipelineError::ResilienceUnsupported);
    }
    if cfg.tasks == 0 {
        return Err(PipelineError::NoTasks);
    }

    let chunks = schedule.chunks();
    let k = chunks.len();

    // Relay slots: each chunk is its own slot except the replica pair,
    // which shares one. Slots are ordered topologically over the chunk
    // quotient graph (smallest-index-first for determinism), so the relay
    // respects every stage dependency.
    let (rep_a, rep_b) = schedule
        .replica_pair()
        .map_or((usize::MAX, usize::MAX), |(a, b)| (a, b));
    let mut slot_of = vec![0usize; k];
    let mut slots: Vec<Vec<usize>> = Vec::new();
    for c in 0..k {
        if c == rep_b {
            slot_of[c] = slot_of[rep_a];
            slots[slot_of[rep_a]].push(c);
        } else {
            slot_of[c] = slots.len();
            slots.push(vec![c]);
        }
    }
    let m = slots.len();
    let mut sedges: Vec<(usize, usize)> = schedule
        .chunk_edges()
        .iter()
        .map(|&(u, v)| (slot_of[u], slot_of[v]))
        .filter(|&(u, v)| u != v)
        .collect();
    sedges.sort_unstable();
    sedges.dedup();
    let mut indeg = vec![0usize; m];
    let mut slot_succs: Vec<Vec<usize>> = vec![Vec::new(); m];
    for &(u, v) in &sedges {
        indeg[v] += 1;
        slot_succs[u].push(v);
    }
    let mut ready: Vec<usize> = (0..m).filter(|&s| indeg[s] == 0).collect();
    let mut relay: Vec<Vec<usize>> = Vec::with_capacity(m);
    while !ready.is_empty() {
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let s = ready.pop().expect("non-empty");
        relay.push(slots[s].clone());
        for &t in &slot_succs[s] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                ready.push(t);
            }
        }
    }
    debug_assert_eq!(relay.len(), m, "schedule validation guarantees acyclicity");
    let chunk_order: Vec<usize> = relay.iter().flatten().copied().collect();

    let duration_mode = cfg.duration.is_some();
    let total = if duration_mode {
        u64::MAX
    } else {
        (cfg.tasks + cfg.warmup) as u64
    };
    let deadline = cfg.duration.map(|d| Instant::now() + d);
    let buffers = if cfg.buffers == 0 {
        k + 1
    } else {
        cfg.buffers as usize
    };

    // One ring per relay edge lane: consecutive slots are connected by one
    // ring, or by two when either side is the replica pair (lane `l`
    // carries the tasks with `seq % 2 == l`).
    let mut in_rx: Vec<Vec<spsc::Consumer<Msg<P>>>> = (0..k).map(|_| Vec::new()).collect();
    let mut out_tx: Vec<Vec<spsc::Producer<Msg<P>>>> = (0..k).map(|_| Vec::new()).collect();
    for w in relay.windows(2) {
        let (up, down) = (&w[0], &w[1]);
        if up.len() == 1 && down.len() == 2 {
            for &d in down {
                let (tx, rx) = spsc::channel(buffers.max(1)).expect("capacity is at least 1");
                out_tx[up[0]].push(tx);
                in_rx[d].push(rx);
            }
        } else if up.len() == 2 {
            for &u in up {
                let (tx, rx) = spsc::channel(buffers.max(1)).expect("capacity is at least 1");
                out_tx[u].push(tx);
                in_rx[down[0]].push(rx);
            }
        } else {
            let (tx, rx) = spsc::channel(buffers.max(1)).expect("capacity is at least 1");
            out_tx[up[0]].push(tx);
            in_rx[down[0]].push(rx);
        }
    }
    let (mut recycle_tx, recycle_rx) =
        spsc::channel::<Box<TaskObject<P>>>(buffers.max(1)).expect("capacity is at least 1");
    for _ in 0..buffers {
        let obj = Box::new(TaskObject::new(app.new_payload()));
        recycle_tx
            .push(obj)
            .unwrap_or_else(|_| unreachable!("capacity equals the pool size"));
    }

    let signals = DegradeSignals::new();
    let failed_chunk = AtomicUsize::new(usize::MAX);
    let submitted = AtomicUsize::new(0);
    let outputs: Vec<ChunkOutput> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(k);
        let mut recycle_rx = Some(recycle_rx);
        let mut recycle_tx = Some(recycle_tx);
        let mut in_rx = in_rx;
        let mut out_tx = out_tx;

        for (pos, &ci) in chunk_order.iter().enumerate() {
            let is_head = pos == 0;
            let is_tail = pos == k - 1;
            let mut inputs = std::mem::take(&mut in_rx[ci]);
            let mut output = std::mem::take(&mut out_tx[ci]);
            let mut head_rx = if is_head { recycle_rx.take() } else { None };
            let mut tail_tx = if is_tail { recycle_tx.take() } else { None };
            let stage_list = chunks[ci].stages.clone();
            let ctx = ParCtx::new(threads.threads(chunks[ci].pu));
            let pin_cores: Vec<usize> = cfg
                .affinity
                .as_ref()
                .map(|m| m.pinnable(chunks[ci].pu).to_vec())
                .unwrap_or_default();

            let signals = &signals;
            let failed_chunk = &failed_chunk;
            let submitted = &submitted;
            handles.push(scope.spawn(move || {
                crate::affinity::pin_current_thread(&pin_cores);

                let mut out = ChunkOutput::default();
                let halt = &signals.halt;
                let count = cfg.telemetry.counters;
                let mut counters = DispatcherCounters::new();
                let mut busy = Duration::ZERO;
                let mut spans: Vec<(u64, Instant, Instant)> = Vec::new();

                // Fail-fast single attempt (resilient DAG execution is
                // rejected up front): a panic records the chunk, halts the
                // pipeline, and returns `false`.
                let mut run_chunk = |obj: &mut TaskObject<P>, ctx: &ParCtx| -> bool {
                    let t0 = Instant::now();
                    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        for &s in &stage_list {
                            app.stages()[s].run(&mut obj.payload, ctx);
                        }
                    }));
                    let t1 = Instant::now();
                    busy += t1 - t0;
                    spans.push((obj.seq, t0, t1));
                    if result.is_err() {
                        failed_chunk
                            .compare_exchange(usize::MAX, ci, Ordering::SeqCst, Ordering::SeqCst)
                            .ok();
                        halt.store(true, Ordering::SeqCst);
                        return false;
                    }
                    true
                };
                let stop_all = |output: &mut Vec<spsc::Producer<Msg<P>>>| {
                    for tx in output.iter_mut() {
                        let _ = push_until(tx, Msg::Stop, halt);
                    }
                };

                if is_head {
                    let rx = head_rx.as_mut().expect("head owns the recycle consumer");
                    for seq in 0..total {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                break;
                            }
                        }
                        let t0 = count.then(Instant::now);
                        let popped = pop_watchdog(rx, halt, None);
                        if let Some(t0) = t0 {
                            counters.record_blocked_pop(t0.elapsed());
                        }
                        let mut obj = match popped {
                            ResilientPop::Got(o) => o,
                            _ => break,
                        };
                        obj.recycle(seq);
                        app.load_input(&mut obj.payload, seq);
                        out.entries.push(obj.entered.expect("stamped by recycle"));
                        submitted.fetch_add(1, Ordering::Relaxed);
                        if !run_chunk(&mut obj, &ctx) {
                            break;
                        }
                        if is_tail {
                            let entered = obj.entered.expect("stamped");
                            let now = Instant::now();
                            out.completions.push((seq, now - entered, now));
                            if !push_timed(
                                tail_tx.as_mut().expect("tail owns the recycle producer"),
                                obj,
                                halt,
                                count,
                                &mut counters,
                            ) {
                                break;
                            }
                        } else {
                            let lane = if output.len() == 2 {
                                (seq & 1) as usize
                            } else {
                                0
                            };
                            if !push_timed(
                                &mut output[lane],
                                Msg::Task(obj),
                                halt,
                                count,
                                &mut counters,
                            ) {
                                break;
                            }
                        }
                    }
                    stop_all(&mut output);
                } else {
                    let lanes = inputs.len();
                    let mut lane = 0usize;
                    let mut stopped = vec![false; lanes];
                    loop {
                        if stopped[lane] {
                            lane = (lane + 1) % lanes;
                            if stopped[lane] {
                                stop_all(&mut output);
                                break;
                            }
                        }
                        let t0 = count.then(Instant::now);
                        let popped = pop_watchdog(&mut inputs[lane], halt, None);
                        if let Some(t0) = t0 {
                            counters.record_blocked_pop(t0.elapsed());
                        }
                        match popped {
                            ResilientPop::Got(Msg::Stop) => {
                                stopped[lane] = true;
                                lane = (lane + 1) % lanes;
                            }
                            ResilientPop::Got(Msg::Task(mut obj)) => {
                                let seq = obj.seq;
                                lane = (lane + 1) % lanes;
                                if halt.load(Ordering::Relaxed) {
                                    continue; // drain to unblock upstream
                                }
                                if !run_chunk(&mut obj, &ctx) {
                                    stop_all(&mut output);
                                    continue; // keep draining
                                }
                                if is_tail {
                                    let entered = obj.entered.expect("stamped by head");
                                    let now = Instant::now();
                                    out.completions.push((seq, now - entered, now));
                                    if !push_timed(
                                        tail_tx.as_mut().expect("tail recycles"),
                                        obj,
                                        halt,
                                        count,
                                        &mut counters,
                                    ) {
                                        break;
                                    }
                                } else {
                                    let l = if output.len() == 2 {
                                        (seq & 1) as usize
                                    } else {
                                        0
                                    };
                                    if !push_timed(
                                        &mut output[l],
                                        Msg::Task(obj),
                                        halt,
                                        count,
                                        &mut counters,
                                    ) {
                                        break;
                                    }
                                }
                            }
                            _ => break,
                        }
                    }
                }
                if count {
                    counters.tasks = spans.len() as u64;
                    counters.busy = busy;
                }
                out.counters = counters;
                out.spans = spans;
                out
            }));
        }

        handles
            .into_iter()
            .map(|h| h.join().expect("dispatcher threads do not panic"))
            .collect()
    });

    let panicked = failed_chunk.load(Ordering::SeqCst);
    if panicked != usize::MAX {
        return Err(PipelineError::StagePanicked { chunk: panicked });
    }

    let submitted = submitted.load(Ordering::SeqCst) as u64;
    let completed = outputs[k - 1].completions.len() as u64;
    let dropped = submitted - completed;
    debug_assert_eq!(dropped, 0, "fail-fast run lost tasks without erroring");

    let finished = outputs[k - 1].completions.len();
    if finished.saturating_sub(cfg.warmup as usize) == 0 {
        return Err(PipelineError::NoTasks);
    }
    let (stats, timeline, telemetry) = assemble(&outputs, cfg, k);
    Ok(RunReport {
        submitted,
        completed,
        dropped,
        faults_fired: 0,
        stats,
        timeline,
        telemetry,
        degraded: signals.reason(),
    })
}

/// Builds the steady-state measurement of a (possibly degraded) run.
///
/// Task sequence numbers can be sparse — dropped tasks leave gaps — so the
/// window is anchored positionally: the first `warmup` *completions* are
/// excluded as the fill transient, and the window runs departure-to-
/// departure over the rest. With nothing dropped (every clean run) tail
/// completions arrive in sequence order, so this coincides with the
/// sequence-indexed convention of the simulator.
fn assemble(
    outputs: &[ChunkOutput],
    cfg: &RunConfig,
    k: usize,
) -> (Option<RunStats>, Vec<TimelineSpan>, Option<RunTelemetry>) {
    let entries = &outputs[0].entries;
    let completions = &outputs[k - 1].completions;
    let n = completions.len();
    if n == 0 {
        return (None, Vec::new(), None);
    }
    let warmup = cfg.warmup as usize;
    let (w_start, skip, intervals) = if warmup > 0 && n > warmup {
        (completions[warmup - 1].2, warmup, (n - warmup) as u32)
    } else if n > 1 {
        (completions[0].2, 0, (n - 1) as u32)
    } else {
        (w_fallback(entries), 0, 1)
    };
    let w_end = completions[n - 1].2;
    let makespan = w_end.saturating_duration_since(w_start);
    let measured = &completions[skip..];
    let mean_latency =
        measured.iter().map(|&(_, lat, _)| lat).sum::<Duration>() / measured.len().max(1) as u32;
    let span = makespan.as_secs_f64().max(1e-12);
    // Busy time clipped to [w_start, w_end]: warmup and fill work outside
    // the window cannot inflate utilization, which is ≤ 1 by construction
    // (a dispatcher's spans never overlap each other).
    let chunk_utilization: Vec<f64> = outputs
        .iter()
        .map(|o| {
            let in_window: Duration = o
                .spans
                .iter()
                .map(|&(_, t0, t1)| t1.min(w_end).saturating_duration_since(t0.max(w_start)))
                .sum();
            in_window.as_secs_f64() / span
        })
        .collect();
    let bottleneck_chunk = chunk_utilization
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    // Timeline and telemetry spans share one epoch: the earliest recorded
    // instant across all dispatchers.
    let epoch = outputs
        .iter()
        .flat_map(|o| o.spans.iter().map(|&(_, s, _)| s))
        .min()
        .unwrap_or(w_start);
    let us = |at: Instant| at.saturating_duration_since(epoch).as_secs_f64() * 1e6;
    let timeline = if cfg.record_timeline {
        outputs
            .iter()
            .enumerate()
            .flat_map(|(ci, o)| {
                o.spans.iter().map(move |&(task, s, e)| TimelineSpan {
                    chunk: ci,
                    stage: None,
                    task,
                    start_us: us(s),
                    end_us: us(e),
                })
            })
            .collect()
    } else {
        Vec::new()
    };
    let telemetry = if cfg.telemetry.any() {
        let mut t = RunTelemetry::new("host");
        if cfg.telemetry.counters {
            t.dispatchers = outputs
                .iter()
                .enumerate()
                .map(|(ci, o)| o.counters.stats(format!("chunk{ci}")))
                .collect();
        }
        if cfg.telemetry.spans {
            let mut rec = SpanRecorder::new(true, epoch);
            for (ci, o) in outputs.iter().enumerate() {
                for &(task, s, e) in &o.spans {
                    rec.record(ci as u32, task, None, s, e);
                }
            }
            t.spans = rec.into_spans();
        }
        Some(t)
    } else {
        None
    };

    let to_us = |d: Duration| Micros::new(d.as_secs_f64() * 1e6);
    let stats = RunStats {
        makespan: to_us(makespan),
        mean_task_latency: to_us(mean_latency),
        time_per_task: to_us(makespan / intervals.max(1)),
        throughput_hz: f64::from(intervals.max(1)) / span,
        chunk_utilization,
        bottleneck_chunk,
        tasks: (n - skip) as u32,
    };
    (Some(stats), timeline, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use bt_kernels::Stage;

    // Helper application: payload is (seq, trace of stage visits).
    #[derive(Debug, Default)]
    struct Trace {
        seq: u64,
        visits: Vec<usize>,
    }

    fn trace_app(stages: usize, counter: Arc<AtomicU64>) -> Application<Trace> {
        let stage_list = (0..stages)
            .map(|i| {
                let counter = Arc::clone(&counter);
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        t.visits.push(i);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        Application::new(
            "trace",
            stage_list,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| {
                t.seq = seq;
                t.visits.clear();
            }),
        )
    }

    fn cfg(tasks: u32, warmup: u32) -> RunConfig {
        RunConfig {
            tasks,
            warmup,
            ..RunConfig::default()
        }
    }

    #[test]
    fn every_task_visits_every_stage_once() {
        use bt_soc::PuClass::*;
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(5, Arc::clone(&counter));
        let schedule = Schedule::new(vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu]).unwrap();
        let report = run_host(&app, &schedule, &PuThreads::uniform(2), &cfg(20, 2), None).unwrap();
        assert_eq!(report.expect_stats().tasks, 20);
        assert_eq!(report.completed, report.submitted);
        assert!(!report.is_degraded());
        // 22 tasks × 5 stages.
        assert_eq!(counter.load(Ordering::Relaxed), 22 * 5);
    }

    #[test]
    fn single_chunk_schedule_works() {
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(3, Arc::clone(&counter));
        let schedule = Schedule::homogeneous(3, bt_soc::PuClass::Gpu);
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(10, 0), None).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 30);
        let stats = report.expect_stats();
        assert!(stats.makespan.as_f64() > 0.0);
        assert!(stats.throughput_hz > 0.0);
    }

    #[test]
    fn stage_mismatch_rejected() {
        let app = trace_app(3, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::homogeneous(4, bt_soc::PuClass::BigCpu);
        assert_eq!(
            run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(1, 0), None).unwrap_err(),
            PipelineError::StageMismatch {
                app: 3,
                schedule: 4
            }
        );
    }

    #[test]
    fn zero_tasks_rejected() {
        let app = trace_app(2, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::homogeneous(2, bt_soc::PuClass::BigCpu);
        assert_eq!(
            run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(0, 1), None).unwrap_err(),
            PipelineError::NoTasks
        );
    }

    #[test]
    fn pu_threads_lookup() {
        let t = PuThreads::uniform(4).with_class(bt_soc::PuClass::LittleCpu, 1);
        assert_eq!(t.threads(bt_soc::PuClass::BigCpu), 4);
        assert_eq!(t.threads(bt_soc::PuClass::LittleCpu), 1);
    }

    /// Application whose stage kernels sleep for per-(stage, seq) durations
    /// chosen by `plan(stage, seq) -> millis`.
    fn sleep_app(stages: usize, plan: fn(usize, u64) -> u64) -> Application<Trace> {
        let stage_list = (0..stages)
            .map(|i| {
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        std::thread::sleep(Duration::from_millis(plan(i, t.seq)));
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        Application::new(
            "sleep",
            stage_list,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| t.seq = seq),
        )
    }

    /// Regression: warmup kernel time used to be counted in `busy` but
    /// divided by the steady-state window, pushing utilization past 1.0 and
    /// getting silently clamped. With a deliberately slow warmup stage the
    /// non-bottleneck chunk must now report its true (low) steady-state
    /// utilization instead of a saturated 1.0.
    #[test]
    fn slow_warmup_does_not_inflate_utilization() {
        use bt_soc::PuClass::*;
        // Stage 0: 20 ms during warmup (seq < 3), 1 ms after.
        // Stage 1: 5 ms always — the steady-state bottleneck.
        let app = sleep_app(2, |stage, seq| match (stage, seq) {
            (0, s) if s < 3 => 20,
            (0, _) => 1,
            _ => 5,
        });
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(10, 3), None).unwrap();
        let stats = report.expect_stats();
        // Chunk 0 works ~1 ms per ~5 ms steady interval. Its total busy
        // time (3×20 ms warmup + 10×1 ms) exceeds the ~45 ms window, so the
        // pre-fix computation reported a clamped 1.0 here.
        assert!(
            stats.chunk_utilization[0] < 0.6,
            "warmup work leaked into steady-state utilization: {:?}",
            stats.chunk_utilization
        );
        // The bottleneck chunk runs nearly the whole window.
        assert!(
            stats.chunk_utilization[1] > 0.6,
            "bottleneck should dominate the window: {:?}",
            stats.chunk_utilization
        );
        assert_eq!(stats.bottleneck_chunk, 1);
        for &u in &stats.chunk_utilization {
            assert!((0.0..=1.0).contains(&u), "clipping bounds utilization");
        }
    }

    /// Regression: with `warmup == 0` the window used to start at the first
    /// task's *arrival* but end at a *departure*, charging the pipeline-fill
    /// transient to steady-state throughput. An expensive first task must
    /// not inflate `time_per_task` anymore.
    #[test]
    fn zero_warmup_window_excludes_fill_transient() {
        use bt_soc::PuClass::*;
        // Task 0 is 30× slower than steady state in stage 0.
        let app = sleep_app(2, |stage, seq| match (stage, seq) {
            (0, 0) => 60,
            (0, _) => 2,
            _ => 5,
        });
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(10, 0), None).unwrap();
        // Steady-state inter-departure time is ~5 ms (the bottleneck). The
        // pre-fix window averaged the 60 ms fill in, reporting ~11 ms.
        let tpt = report.expect_stats().time_per_task;
        assert!(
            tpt.as_millis() < 9.0,
            "fill transient leaked into time_per_task: {tpt:?}"
        );
        assert!(tpt.as_millis() > 3.0);
    }

    #[test]
    fn telemetry_disabled_reports_none() {
        let app = trace_app(3, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::homogeneous(3, bt_soc::PuClass::Gpu);
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(5, 1), None).unwrap();
        assert!(report.telemetry.is_none());
        assert!(report.timeline.is_empty());
    }

    #[test]
    fn telemetry_counters_and_spans_cover_every_task() {
        use bt_soc::PuClass::*;
        let app = trace_app(4, Arc::new(AtomicU64::new(0)));
        let schedule = Schedule::new(vec![BigCpu, BigCpu, Gpu, Gpu]).unwrap();
        let run = RunConfig {
            tasks: 12,
            warmup: 2,
            record_timeline: true,
            telemetry: bt_telemetry::TelemetryConfig::full(),
            ..RunConfig::default()
        };
        let report = run_host(&app, &schedule, &PuThreads::uniform(1), &run, None).unwrap();
        let telemetry = report.telemetry.expect("telemetry requested");
        assert_eq!(telemetry.source, "host");
        assert_eq!(telemetry.dispatchers.len(), 2, "one per chunk");
        for d in &telemetry.dispatchers {
            assert_eq!(d.tasks, 14, "every dispatcher executes all tasks");
            assert!(d.busy_us > 0.0);
            assert!(d.queue_samples > 0, "every push samples occupancy");
        }
        // Telemetry spans are the record_timeline events, unified: same
        // count, same offsets, same (track, task) identity.
        assert_eq!(telemetry.spans.len(), report.timeline.len());
        assert_eq!(telemetry.spans.len(), 2 * 14);
        for (s, e) in telemetry.spans.iter().zip(&report.timeline) {
            assert_eq!(s.track as usize, e.chunk);
            assert_eq!(s.task, e.task);
            assert_eq!(e.stage, None, "host spans cover whole chunks");
            assert!((s.start_us - e.start_us).abs() < 1e-6);
            assert!((s.end_us - e.end_us).abs() < 1e-6);
        }
        // And the Chrome export of a host run is valid trace JSON.
        let trace = telemetry.chrome_trace_json();
        let v: serde_json::Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(serde_json::Value::as_array)
            .expect("traceEvents");
        assert_eq!(events.len(), 2 + 2 * 14, "metadata + spans");
    }

    /// Application whose stage-0 kernel panics when `decide(seq, attempt)`
    /// says so; `attempt` counts calls for that seq (retries increment it).
    fn faulty_app(
        stages: usize,
        decide: fn(u64, u64) -> bool,
        attempts: Arc<AtomicU64>,
    ) -> Application<Trace> {
        let stage_list = (0..stages)
            .map(|i| {
                let attempts = Arc::clone(&attempts);
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        if i == 0 {
                            let n = attempts.fetch_add(1, Ordering::Relaxed);
                            // attempt index is per-run order; decide gets
                            // (seq, global attempt counter) — enough for
                            // "fail first time" and "always fail" plans.
                            if decide(t.seq, n) {
                                panic!("injected kernel fault");
                            }
                        }
                        t.visits.push(i);
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        Application::new(
            "faulty",
            stage_list,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| {
                t.seq = seq;
                t.visits.clear();
            }),
        )
    }

    fn quick_res() -> ResilienceConfig {
        ResilienceConfig {
            watchdog: Some(Duration::from_secs(5)),
            retries: 2,
            retry_backoff: Duration::from_micros(100),
            max_task_failures: 3,
        }
    }

    #[test]
    fn fail_fast_mode_surfaces_kernel_panic() {
        use bt_soc::PuClass::*;
        let attempts = Arc::new(AtomicU64::new(0));
        let app = faulty_app(2, |seq, _n| seq == 3, Arc::clone(&attempts));
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        assert_eq!(
            run_host(&app, &schedule, &PuThreads::uniform(1), &cfg(10, 0), None).unwrap_err(),
            PipelineError::StagePanicked { chunk: 0 }
        );
        // No retries in fail-fast mode: seq 3 was attempted exactly once.
        assert_eq!(attempts.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn resilient_clean_run_completes_like_fail_fast() {
        use bt_soc::PuClass::*;
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(4, Arc::clone(&counter));
        let schedule = Schedule::new(vec![BigCpu, BigCpu, Gpu, Gpu]).unwrap();
        let report = run_host(
            &app,
            &schedule,
            &PuThreads::uniform(1),
            &cfg(15, 2),
            Some(&quick_res()),
        )
        .unwrap();
        assert!(!report.is_degraded());
        assert_eq!(report.completed, report.submitted);
        assert_eq!(report.expect_stats().tasks, 15);
        assert!(report.expect_stats().makespan.as_f64() > 0.0);
        assert_eq!(counter.load(Ordering::Relaxed), 17 * 4);
    }

    #[test]
    fn flaky_kernel_is_retried_to_completion() {
        use bt_soc::PuClass::*;
        // Seq 4 panics on its first attempt only (the retry, a later
        // global attempt for the same seq, succeeds).
        static FAILED_ONCE: AtomicU64 = AtomicU64::new(0);
        FAILED_ONCE.store(0, Ordering::SeqCst);
        let attempts = Arc::new(AtomicU64::new(0));
        let app = faulty_app(
            2,
            |seq, _n| seq == 4 && FAILED_ONCE.swap(1, Ordering::SeqCst) == 0,
            Arc::clone(&attempts),
        );
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        let report = run_host(
            &app,
            &schedule,
            &PuThreads::uniform(1),
            &cfg(10, 0),
            Some(&quick_res()),
        )
        .unwrap();
        assert!(
            !report.is_degraded(),
            "retry should absorb a one-shot fault"
        );
        assert_eq!(report.expect_stats().tasks, 10);
        // 10 tasks + 1 retried attempt.
        assert_eq!(attempts.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn deterministic_failure_tombstones_and_degrades() {
        use bt_soc::PuClass::*;
        let attempts = Arc::new(AtomicU64::new(0));
        // Seq 5 fails every attempt: retries exhaust, the task tombstones.
        let app = faulty_app(2, |seq, _n| seq == 5, Arc::clone(&attempts));
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        let res = ResilienceConfig {
            retries: 1,
            ..quick_res()
        };
        let report = run_host(
            &app,
            &schedule,
            &PuThreads::uniform(1),
            &cfg(12, 0),
            Some(&res),
        )
        .unwrap();
        assert!(report.is_degraded(), "a tombstoned task must degrade");
        assert_eq!(report.dropped, 1);
        assert_eq!(report.completed + report.dropped, report.submitted);
        assert_eq!(report.faults_fired, 1, "one tombstone observed at tail");
        assert_eq!(
            report.degraded,
            Some(DegradeReason::KernelFailures { chunk: 0 })
        );
        let stats = report.stats.as_ref().expect("surviving tasks measured");
        assert_eq!(u64::from(stats.tasks), report.completed);
    }

    #[test]
    fn failure_budget_overrun_stops_admission() {
        use bt_soc::PuClass::*;
        let attempts = Arc::new(AtomicU64::new(0));
        // Every seq >= 3 fails all attempts.
        let app = faulty_app(2, |seq, _n| seq >= 3, Arc::clone(&attempts));
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        let res = ResilienceConfig {
            retries: 0,
            max_task_failures: 2,
            ..quick_res()
        };
        let report = run_host(
            &app,
            &schedule,
            &PuThreads::uniform(1),
            &cfg(1000, 0),
            Some(&res),
        )
        .unwrap();
        assert_eq!(
            report.degraded,
            Some(DegradeReason::KernelFailures { chunk: 0 })
        );
        // The head stopped admitting shortly after the third failure
        // instead of burning through all 1000 tasks.
        assert!(
            report.submitted < 1000,
            "head kept admitting: {}",
            report.submitted
        );
        assert_eq!(report.completed, 3, "seqs 0..3 complete");
        assert_eq!(report.completed + report.dropped, report.submitted);
    }

    #[test]
    fn hung_kernel_trips_watchdog_instead_of_hanging() {
        use bt_soc::PuClass::*;
        // Seq 2's stage-0 kernel "hangs" (sleeps far past the watchdog).
        let app = sleep_app(2, |stage, seq| match (stage, seq) {
            (0, 2) => 400,
            _ => 1,
        });
        let schedule = Schedule::new(vec![BigCpu, Gpu]).unwrap();
        let res = ResilienceConfig {
            watchdog: Some(Duration::from_millis(50)),
            retries: 0,
            ..quick_res()
        };
        let t0 = Instant::now();
        let report = run_host(
            &app,
            &schedule,
            &PuThreads::uniform(1),
            &cfg(50, 0),
            Some(&res),
        )
        .unwrap();
        let elapsed = t0.elapsed();
        assert!(report.is_degraded(), "a wedged pipeline must degrade");
        assert_eq!(
            report.degraded,
            Some(DegradeReason::WatchdogTimeout { chunk: 1 })
        );
        assert_eq!(report.completed + report.dropped, report.submitted);
        assert!(
            elapsed < Duration::from_secs(5),
            "watchdog unwind took {elapsed:?}"
        );
    }

    /// DAG trace app: every stage kernel asserts its dependencies already
    /// ran on this task, so any relay-ordering bug panics the pipeline
    /// (and surfaces as `StagePanicked`).
    fn dag_trace_app(graph: &bt_kernels::TaskGraph, counter: Arc<AtomicU64>) -> Application<Trace> {
        let preds = graph.pred_sets();
        let stage_list = (0..graph.len())
            .map(|i| {
                let counter = Arc::clone(&counter);
                let my_preds = preds[i].clone();
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        for &p in &my_preds {
                            assert!(
                                t.visits.contains(&p),
                                "stage {i} ran before its dependency {p}"
                            );
                        }
                        t.visits.push(i);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        Application::from_task_graph(
            "dag-trace",
            stage_list,
            graph,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| {
                t.seq = seq;
                t.visits.clear();
            }),
        )
        .unwrap()
    }

    fn diamond_graph() -> bt_kernels::TaskGraph {
        let mut g = bt_kernels::TaskGraph::new(4);
        g.add_dep(0, 1).add_dep(0, 2).add_dep(1, 3).add_dep(2, 3);
        g
    }

    #[test]
    fn dag_relay_runs_every_stage_once_in_dependency_order() {
        use bt_soc::PuClass::*;
        let counter = Arc::new(AtomicU64::new(0));
        let g = diamond_graph();
        let app = dag_trace_app(&g, Arc::clone(&counter));
        let schedule = DagSchedule::new(vec![LittleCpu, Gpu, BigCpu, MediumCpu], &g).unwrap();
        let report =
            run_host_dag(&app, &schedule, &PuThreads::uniform(1), &cfg(20, 2), None).unwrap();
        assert_eq!(report.completed, report.submitted);
        assert_eq!(report.expect_stats().tasks, 20);
        // 22 tasks × 4 stages, each stage exactly once per task.
        assert_eq!(counter.load(Ordering::Relaxed), 22 * 4);
    }

    #[test]
    fn replicated_stage_serves_each_task_exactly_once() {
        use bt_soc::PuClass::*;
        let g = bt_kernels::TaskGraph::chain(3);
        let preds = g.pred_sets();
        let served: Arc<std::sync::Mutex<Vec<u64>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
        let stage_list = (0..3)
            .map(|i| {
                let my_preds = preds[i].clone();
                let served = Arc::clone(&served);
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        for &p in &my_preds {
                            assert!(t.visits.contains(&p));
                        }
                        t.visits.push(i);
                        if i == 1 {
                            served.lock().unwrap().push(t.seq);
                        }
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        let app = Application::from_task_graph(
            "replica-trace",
            stage_list,
            &g,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| {
                t.seq = seq;
                t.visits.clear();
            }),
        )
        .unwrap();
        let schedule =
            DagSchedule::replicated(vec![LittleCpu, BigCpu, MediumCpu], &g, 1, (BigCpu, Gpu))
                .unwrap();
        let report =
            run_host_dag(&app, &schedule, &PuThreads::uniform(1), &cfg(30, 0), None).unwrap();
        assert_eq!(report.completed, 30);
        let mut seqs = served.lock().unwrap().clone();
        seqs.sort_unstable();
        // The replicated stage ran exactly once per task across both PUs.
        assert_eq!(seqs, (0..30u64).collect::<Vec<_>>());
    }

    #[test]
    fn chain_dag_schedules_delegate_with_resilience() {
        use bt_soc::PuClass::*;
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(3, Arc::clone(&counter));
        let linear = Schedule::new(vec![BigCpu, BigCpu, Gpu]).unwrap();
        let schedule = DagSchedule::from_schedule(&linear);
        let report = run_host_dag(
            &app,
            &schedule,
            &PuThreads::uniform(1),
            &cfg(10, 0),
            Some(&ResilienceConfig::default()),
        )
        .unwrap();
        assert_eq!(report.completed, 10);
        assert!(!report.is_degraded());
    }

    #[test]
    fn dag_resilience_and_graph_mismatch_are_typed_errors() {
        use bt_soc::PuClass::*;
        let g = diamond_graph();
        let app = dag_trace_app(&g, Arc::new(AtomicU64::new(0)));
        let schedule = DagSchedule::new(vec![LittleCpu, Gpu, BigCpu, MediumCpu], &g).unwrap();
        assert_eq!(
            run_host_dag(
                &app,
                &schedule,
                &PuThreads::uniform(1),
                &cfg(5, 0),
                Some(&ResilienceConfig::default()),
            )
            .unwrap_err(),
            PipelineError::ResilienceUnsupported
        );
        // Same stage count, different dependency structure.
        let chain_app = trace_app(4, Arc::new(AtomicU64::new(0)));
        assert_eq!(
            run_host_dag(
                &chain_app,
                &schedule,
                &PuThreads::uniform(1),
                &cfg(5, 0),
                None
            )
            .unwrap_err(),
            PipelineError::GraphMismatch
        );
    }

    #[test]
    fn dag_panic_fails_fast_without_hanging() {
        use bt_soc::PuClass::*;
        let g = diamond_graph();
        let preds = g.pred_sets();
        let stage_list = (0..4)
            .map(|i| {
                let my_preds = preds[i].clone();
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        let _ = &my_preds;
                        if i == 2 && t.seq == 3 {
                            panic!("injected");
                        }
                        t.visits.push(i);
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        let app = Application::from_task_graph(
            "panicky",
            stage_list,
            &g,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| {
                t.seq = seq;
                t.visits.clear();
            }),
        )
        .unwrap();
        let schedule = DagSchedule::new(vec![LittleCpu, Gpu, BigCpu, MediumCpu], &g).unwrap();
        let t0 = Instant::now();
        let err =
            run_host_dag(&app, &schedule, &PuThreads::uniform(1), &cfg(50, 0), None).unwrap_err();
        assert!(matches!(err, PipelineError::StagePanicked { .. }));
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
