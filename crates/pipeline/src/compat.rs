//! Deprecated pre-unification entry points and report types, kept for one
//! release so downstream code can migrate to the one-run-model API
//! ([`crate::run_host`] with an optional [`crate::ResilienceConfig`], and
//! [`crate::simulate_schedule`] with an optional
//! [`bt_soc::FaultSpec`]) at its own pace. Everything here is a thin
//! projection of the unified [`RunReport`].

#![allow(deprecated)]

use std::time::Duration;

use bt_kernels::{AppModel, Application};
use bt_soc::{
    DegradeReason, FaultSpec, FaultedDesReport, Micros, RunConfig, RunReport, SocSpec, TimelineSpan,
};
use bt_telemetry::RunTelemetry;

use crate::executor::{run_host, PipelineError, PuThreads, ResilienceConfig};
use crate::Schedule;

/// Former host-only run configuration, now the shared [`RunConfig`].
///
/// Note the historical drift fixed by the unification: the host default
/// `warmup` used to be 3 while the simulator's was 5; both now share the
/// documented default of 5 (see `DESIGN.md`, § The run model).
#[deprecated(since = "0.2.0", note = "use bt_soc::RunConfig")]
pub type HostRunConfig = RunConfig;

/// One recorded chunk execution on the host (µs relative to run start).
#[deprecated(since = "0.2.0", note = "use bt_soc::TimelineSpan")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostTimelineEvent {
    /// Which chunk executed.
    pub chunk: usize,
    /// Task sequence number.
    pub task: u64,
    /// Start offset in µs.
    pub start_us: f64,
    /// End offset in µs.
    pub end_us: f64,
}

impl From<TimelineSpan> for HostTimelineEvent {
    fn from(s: TimelineSpan) -> HostTimelineEvent {
        HostTimelineEvent {
            chunk: s.chunk,
            task: s.task,
            start_us: s.start_us,
            end_us: s.end_us,
        }
    }
}

impl From<HostTimelineEvent> for bt_soc::gantt::GanttSpan {
    fn from(e: HostTimelineEvent) -> bt_soc::gantt::GanttSpan {
        bt_soc::gantt::GanttSpan {
            chunk: e.chunk,
            task: e.task,
            start: e.start_us,
            end: e.end_us,
        }
    }
}

/// Result of a host pipeline run, in wall-clock [`Duration`]s.
#[deprecated(since = "0.2.0", note = "use bt_soc::RunReport (stats in µs)")]
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Wall-clock of the steady-state measurement window.
    pub makespan: Duration,
    /// Steady-state inverse throughput.
    pub time_per_task: Duration,
    /// Mean per-task residence time.
    pub mean_task_latency: Duration,
    /// Tasks per second.
    pub throughput_hz: f64,
    /// Fraction of the measured window each chunk spent executing kernels.
    pub chunk_utilization: Vec<f64>,
    /// Number of measured tasks.
    pub tasks: u32,
    /// Recorded execution spans (empty unless requested).
    pub timeline: Vec<HostTimelineEvent>,
    /// Collected telemetry, when enabled.
    pub telemetry: Option<RunTelemetry>,
}

/// Projects the measured window of a unified report; `None` when the run
/// completed no tasks.
fn host_report(r: &RunReport) -> Option<HostReport> {
    let s = r.stats.as_ref()?;
    let d = |m: Micros| Duration::from_secs_f64(m.as_f64() * 1e-6);
    Some(HostReport {
        makespan: d(s.makespan),
        time_per_task: d(s.time_per_task),
        mean_task_latency: d(s.mean_task_latency),
        throughput_hz: s.throughput_hz,
        chunk_utilization: s.chunk_utilization.clone(),
        tasks: s.tasks,
        timeline: r.timeline.iter().copied().map(Into::into).collect(),
        telemetry: r.telemetry.clone(),
    })
}

/// Outcome of [`run_host_resilient`]: either a clean run or a typed
/// degradation.
#[deprecated(
    since = "0.2.0",
    note = "use bt_soc::RunReport (degraded + dropped accounting)"
)]
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// Every submitted task completed.
    Completed(HostReport),
    /// Some tasks were lost. The report covers the tasks that did
    /// complete; `None` when nothing completed.
    Degraded {
        /// Steady-state measurement over completed tasks, if any.
        report: Option<HostReport>,
        /// Tasks admitted by the head dispatcher.
        submitted: u64,
        /// Tasks that exited the pipeline tail.
        completed: u64,
        /// `submitted - completed`.
        dropped: u64,
        /// What went wrong.
        reason: DegradeReason,
    },
}

impl RunOutcome {
    /// The steady-state report, if any tasks completed.
    pub fn report(&self) -> Option<&HostReport> {
        match self {
            RunOutcome::Completed(r) => Some(r),
            RunOutcome::Degraded { report, .. } => report.as_ref(),
        }
    }

    /// Whether the run degraded.
    pub fn is_degraded(&self) -> bool {
        matches!(self, RunOutcome::Degraded { .. })
    }
}

impl From<RunReport> for RunOutcome {
    fn from(r: RunReport) -> RunOutcome {
        if r.degraded.is_none() && r.dropped == 0 {
            RunOutcome::Completed(
                host_report(&r).expect("clean resilient runs measure at least one task"),
            )
        } else {
            RunOutcome::Degraded {
                report: host_report(&r),
                submitted: r.submitted,
                completed: r.completed,
                dropped: r.dropped,
                // A drop without a recorded signal cannot happen
                // (tombstones raise the failure path), but degrade
                // defensively if it does.
                reason: r
                    .degraded
                    .unwrap_or(DegradeReason::KernelFailures { chunk: usize::MAX }),
            }
        }
    }
}

/// Resilient host execution, now [`run_host`] with `Some(res)`.
///
/// # Errors
///
/// Returns [`PipelineError`] only for configuration errors (stage
/// mismatch, zero tasks); runtime faults degrade the [`RunOutcome`].
#[deprecated(
    since = "0.2.0",
    note = "use run_host(app, schedule, threads, cfg, Some(res))"
)]
pub fn run_host_resilient<P: Send + 'static>(
    app: &Application<P>,
    schedule: &Schedule,
    threads: &PuThreads,
    cfg: &RunConfig,
    res: &ResilienceConfig,
) -> Result<RunOutcome, PipelineError> {
    run_host(app, schedule, threads, cfg, Some(res)).map(Into::into)
}

/// Faulted schedule simulation, now [`crate::simulate_schedule`] with
/// `Some(faults)`.
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] on a schedule/application
/// stage disagreement, or [`PipelineError::Soc`] from the simulator.
#[deprecated(
    since = "0.2.0",
    note = "use simulate_schedule(soc, app, schedule, cfg, Some(faults))"
)]
pub fn simulate_schedule_faulted(
    soc: &SocSpec,
    app: &AppModel,
    schedule: &Schedule,
    cfg: &RunConfig,
    faults: &FaultSpec,
) -> Result<FaultedDesReport, PipelineError> {
    let chunks = crate::sim::to_chunk_specs(app, schedule)?;
    Ok(bt_soc::compat::simulate_faulted(soc, &chunks, cfg, faults)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_events_convert_from_spans() {
        let span = TimelineSpan {
            chunk: 2,
            stage: None,
            task: 7,
            start_us: 1.0,
            end_us: 3.5,
        };
        let e = HostTimelineEvent::from(span);
        assert_eq!(e.chunk, 2);
        assert_eq!(e.task, 7);
        let g = bt_soc::gantt::GanttSpan::from(e);
        assert_eq!(g.chunk, 2);
        assert!((g.end - 3.5).abs() < 1e-12);
    }

    #[test]
    fn outcome_projects_the_unified_report_faithfully() {
        use bt_soc::RunStats;
        let stats = RunStats {
            makespan: Micros::new(1000.0),
            mean_task_latency: Micros::new(120.0),
            time_per_task: Micros::new(100.0),
            throughput_hz: 10_000.0,
            chunk_utilization: vec![0.5, 0.9],
            bottleneck_chunk: 1,
            tasks: 10,
        };
        let clean = RunReport {
            submitted: 12,
            completed: 12,
            dropped: 0,
            faults_fired: 0,
            stats: Some(stats.clone()),
            timeline: Vec::new(),
            telemetry: None,
            degraded: None,
        };
        let RunOutcome::Completed(r) = RunOutcome::from(clean) else {
            panic!("clean report maps to Completed");
        };
        assert_eq!(r.tasks, 10);
        assert!((r.makespan.as_secs_f64() - 1e-3).abs() < 1e-12);

        let degraded = RunReport {
            submitted: 12,
            completed: 11,
            dropped: 1,
            faults_fired: 1,
            stats: Some(stats),
            timeline: Vec::new(),
            telemetry: None,
            degraded: Some(DegradeReason::KernelFailures { chunk: 0 }),
        };
        let RunOutcome::Degraded {
            submitted,
            completed,
            dropped,
            reason,
            report,
        } = RunOutcome::from(degraded)
        else {
            panic!("degraded report maps to Degraded");
        };
        assert_eq!((submitted, completed, dropped), (12, 11, 1));
        assert_eq!(reason, DegradeReason::KernelFailures { chunk: 0 });
        assert!(report.is_some());
    }
}
