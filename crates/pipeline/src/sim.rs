//! Bridge from pipeline schedules to the discrete-event simulator: the
//! virtual-device counterpart of [`crate::run_host`].

use bt_kernels::AppModel;
use bt_soc::des::{self, ChunkSpec, DesConfig, DesReport};
use bt_soc::{SocError, SocSpec};

use crate::Schedule;

/// Converts a schedule over `app` into the simulator's chunk list.
///
/// # Panics
///
/// Panics if the schedule length mismatches the application.
pub fn to_chunk_specs(app: &AppModel, schedule: &Schedule) -> Vec<ChunkSpec> {
    assert_eq!(
        schedule.stage_count(),
        app.stage_count(),
        "schedule/application stage mismatch"
    );
    schedule
        .chunks()
        .iter()
        .map(|c| {
            ChunkSpec::new(
                c.pu,
                app.stages[c.first_stage..=c.last_stage]
                    .iter()
                    .map(|s| s.work.clone())
                    .collect(),
            )
        })
        .collect()
}

/// Simulates pipelined execution of `schedule` over `app` on `soc` — the
/// "measured" latency of the reproduction's experiments.
///
/// # Errors
///
/// Propagates [`SocError`] from the simulator (missing PU, empty inputs).
pub fn simulate_schedule(
    soc: &SocSpec,
    app: &AppModel,
    schedule: &Schedule,
    cfg: &DesConfig,
) -> Result<DesReport, SocError> {
    let chunks = to_chunk_specs(app, schedule);
    des::simulate(soc, &chunks, cfg)
}

/// Simulates the paper's homogeneous baseline: every stage offloaded to a
/// single PU class, synchronizing after each stage (the accelerator-
/// oriented dispatch pattern, in contrast to BT-Implementer's
/// once-per-chunk synchronization).
///
/// # Errors
///
/// Propagates [`SocError`] from the simulator.
pub fn simulate_baseline(
    soc: &SocSpec,
    app: &AppModel,
    class: bt_soc::PuClass,
    cfg: &DesConfig,
) -> Result<DesReport, SocError> {
    let chunk = ChunkSpec::new(class, app.works()).with_per_stage_sync();
    des::simulate(soc, &[chunk], cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::{devices, PuClass};

    fn octree_model() -> AppModel {
        apps::octree_app(apps::OctreeConfig::default()).model()
    }

    fn noiseless() -> DesConfig {
        DesConfig {
            noise_sigma: 0.0,
            ..DesConfig::default()
        }
    }

    #[test]
    fn chunk_specs_cover_all_stages() {
        let app = octree_model();
        let schedule = Schedule::new(vec![
            PuClass::BigCpu,
            PuClass::BigCpu,
            PuClass::MediumCpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::LittleCpu,
        ])
        .unwrap();
        let chunks = to_chunk_specs(&app, &schedule);
        assert_eq!(chunks.len(), 4);
        let total: usize = chunks.iter().map(|c| c.stages.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn some_pipeline_beats_homogeneous_on_pixel_octree() {
        use PuClass::*;
        let app = octree_model();
        let soc = devices::pixel_7a();
        let homog = Schedule::homogeneous(7, BigCpu);
        let base = simulate_schedule(&soc, &app, &homog, &noiseless()).unwrap();

        let candidates = [
            vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu, LittleCpu, LittleCpu],
            vec![Gpu, Gpu, MediumCpu, BigCpu, BigCpu, LittleCpu, BigCpu],
            vec![MediumCpu, BigCpu, BigCpu, Gpu, Gpu, LittleCpu, BigCpu],
            vec![LittleCpu, BigCpu, MediumCpu, Gpu, Gpu, Gpu, BigCpu],
            vec![MediumCpu, BigCpu, LittleCpu, Gpu, Gpu, Gpu, BigCpu],
        ];
        let best = candidates
            .iter()
            .filter_map(|a| Schedule::new(a.clone()).ok())
            .map(|s| {
                simulate_schedule(&soc, &app, &s, &noiseless())
                    .unwrap()
                    .time_per_task
            })
            .fold(f64::MAX, |acc, t| acc.min(t.as_f64()));
        assert!(
            best < base.time_per_task.as_f64(),
            "some pipeline should beat homogeneous: best {} vs base {}",
            best,
            base.time_per_task.as_f64()
        );
    }

    #[test]
    fn missing_pu_propagates() {
        let app = octree_model();
        let soc = devices::jetson_orin_nano();
        let schedule = Schedule::new(vec![PuClass::LittleCpu; 7]).unwrap();
        assert!(simulate_schedule(&soc, &app, &schedule, &noiseless()).is_err());
    }
}
