//! Bridge from pipeline schedules to the discrete-event simulator: the
//! virtual-device counterpart of [`crate::run_host`].

use bt_kernels::AppModel;
use bt_soc::des::{self, ChunkSpec};
use bt_soc::{FaultSpec, RunConfig, RunReport, SocError, SocSpec};

use crate::{PipelineError, Schedule};

/// Converts a schedule over `app` into the simulator's chunk list.
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] if the schedule length
/// mismatches the application — e.g. a cached plan deserialized against a
/// differently-configured app.
pub fn to_chunk_specs(
    app: &AppModel,
    schedule: &Schedule,
) -> Result<Vec<ChunkSpec>, PipelineError> {
    if schedule.stage_count() != app.stage_count() {
        return Err(PipelineError::StageMismatch {
            app: app.stage_count(),
            schedule: schedule.stage_count(),
        });
    }
    Ok(schedule
        .chunks()
        .iter()
        .map(|c| {
            ChunkSpec::new(
                c.pu,
                app.stages[c.first_stage..=c.last_stage]
                    .iter()
                    .map(|s| s.work.clone())
                    .collect(),
            )
        })
        .collect())
}

/// Simulates pipelined execution of `schedule` over `app` on `soc` — the
/// "measured" latency of the reproduction's experiments. Pass
/// `Some(faults)` to inject runtime faults (the virtual-device counterpart
/// of resilient host execution); the returned [`RunReport`] carries the
/// completed/dropped accounting alongside the steady-state measurement
/// over surviving tasks.
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] on a schedule/application stage
/// disagreement, or [`PipelineError::Soc`] from the simulator (missing PU,
/// empty inputs).
pub fn simulate_schedule(
    soc: &SocSpec,
    app: &AppModel,
    schedule: &Schedule,
    cfg: &RunConfig,
    faults: Option<&FaultSpec>,
) -> Result<RunReport, PipelineError> {
    let chunks = to_chunk_specs(app, schedule)?;
    Ok(des::simulate(soc, &chunks, cfg, faults)?)
}

/// Simulates the paper's homogeneous baseline: every stage offloaded to a
/// single PU class, synchronizing after each stage (the accelerator-
/// oriented dispatch pattern, in contrast to BT-Implementer's
/// once-per-chunk synchronization).
///
/// # Errors
///
/// Propagates [`SocError`] from the simulator.
pub fn simulate_baseline(
    soc: &SocSpec,
    app: &AppModel,
    class: bt_soc::PuClass,
    cfg: &RunConfig,
) -> Result<RunReport, SocError> {
    let chunk = ChunkSpec::new(class, app.works()).with_per_stage_sync();
    des::simulate(soc, &[chunk], cfg, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::{devices, PuClass};

    fn octree_model() -> AppModel {
        apps::octree_app(apps::OctreeConfig::default()).model()
    }

    fn noiseless() -> RunConfig {
        RunConfig {
            noise_sigma: 0.0,
            ..RunConfig::default()
        }
    }

    fn tpt(soc: &SocSpec, app: &AppModel, schedule: &Schedule) -> f64 {
        simulate_schedule(soc, app, schedule, &noiseless(), None)
            .unwrap()
            .expect_stats()
            .time_per_task
            .as_f64()
    }

    #[test]
    fn chunk_specs_cover_all_stages() {
        let app = octree_model();
        let schedule = Schedule::new(vec![
            PuClass::BigCpu,
            PuClass::BigCpu,
            PuClass::MediumCpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::LittleCpu,
        ])
        .unwrap();
        let chunks = to_chunk_specs(&app, &schedule).unwrap();
        assert_eq!(chunks.len(), 4);
        let total: usize = chunks.iter().map(|c| c.stages.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn stage_mismatch_is_typed_error() {
        let app = octree_model();
        let schedule = Schedule::homogeneous(3, PuClass::BigCpu);
        assert_eq!(
            to_chunk_specs(&app, &schedule).unwrap_err(),
            crate::PipelineError::StageMismatch {
                app: app.stage_count(),
                schedule: 3
            }
        );
        let soc = devices::pixel_7a();
        assert!(matches!(
            simulate_schedule(&soc, &app, &schedule, &noiseless(), None).unwrap_err(),
            crate::PipelineError::StageMismatch { .. }
        ));
    }

    #[test]
    fn some_pipeline_beats_homogeneous_on_pixel_octree() {
        use PuClass::*;
        let app = octree_model();
        let soc = devices::pixel_7a();
        let homog = Schedule::homogeneous(7, BigCpu);
        let base = tpt(&soc, &app, &homog);

        let candidates = [
            vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu, LittleCpu, LittleCpu],
            vec![Gpu, Gpu, MediumCpu, BigCpu, BigCpu, LittleCpu, BigCpu],
            vec![MediumCpu, BigCpu, BigCpu, Gpu, Gpu, LittleCpu, BigCpu],
            vec![LittleCpu, BigCpu, MediumCpu, Gpu, Gpu, Gpu, BigCpu],
            vec![MediumCpu, BigCpu, LittleCpu, Gpu, Gpu, Gpu, BigCpu],
        ];
        let best = candidates
            .iter()
            .filter_map(|a| Schedule::new(a.clone()).ok())
            .map(|s| tpt(&soc, &app, &s))
            .fold(f64::MAX, f64::min);
        assert!(
            best < base,
            "some pipeline should beat homogeneous: best {best} vs base {base}"
        );
    }

    #[test]
    fn missing_pu_propagates() {
        let app = octree_model();
        let soc = devices::jetson_orin_nano();
        let schedule = Schedule::new(vec![PuClass::LittleCpu; 7]).unwrap();
        assert!(simulate_schedule(&soc, &app, &schedule, &noiseless(), None).is_err());
    }
}
