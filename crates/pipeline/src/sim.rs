//! Bridge from pipeline schedules to the discrete-event simulator: the
//! virtual-device counterpart of [`crate::run_host`].

use bt_kernels::AppModel;
use bt_soc::des::{self, ChunkSpec};
use bt_soc::{
    simulate_batch_parallel, simulate_dag, DagPipelineSpec, DesSeedSpec, FaultSpec, RunConfig,
    RunReport, SocError, SocSpec,
};

use crate::{DagSchedule, PipelineError, Schedule};

/// Converts a schedule over `app` into the simulator's chunk list.
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] if the schedule length
/// mismatches the application — e.g. a cached plan deserialized against a
/// differently-configured app.
pub fn to_chunk_specs(
    app: &AppModel,
    schedule: &Schedule,
) -> Result<Vec<ChunkSpec>, PipelineError> {
    if schedule.stage_count() != app.stage_count() {
        return Err(PipelineError::StageMismatch {
            app: app.stage_count(),
            schedule: schedule.stage_count(),
        });
    }
    Ok(schedule
        .chunks()
        .iter()
        .map(|c| {
            ChunkSpec::new(
                c.pu,
                app.stages[c.first_stage..=c.last_stage]
                    .iter()
                    .map(|s| s.work.clone())
                    .collect(),
            )
        })
        .collect())
}

/// Simulates pipelined execution of `schedule` over `app` on `soc` — the
/// "measured" latency of the reproduction's experiments. Pass
/// `Some(faults)` to inject runtime faults (the virtual-device counterpart
/// of resilient host execution); the returned [`RunReport`] carries the
/// completed/dropped accounting alongside the steady-state measurement
/// over surviving tasks.
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] on a schedule/application stage
/// disagreement, or [`PipelineError::Soc`] from the simulator (missing PU,
/// empty inputs).
pub fn simulate_schedule(
    soc: &SocSpec,
    app: &AppModel,
    schedule: &Schedule,
    cfg: &RunConfig,
    faults: Option<&FaultSpec>,
) -> Result<RunReport, PipelineError> {
    let chunks = to_chunk_specs(app, schedule)?;
    Ok(des::simulate(soc, &chunks, cfg, faults)?)
}

/// Batched counterpart of [`simulate_schedule`]: prices every lane in
/// `lanes` (a seed plus optional fault plan each) over the same schedule
/// in one structure-of-arrays pass, sharded across cores when more than
/// one is available. Each returned [`RunReport`] is bit-identical to the
/// scalar [`simulate_schedule`] run with that lane's seed and faults.
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] on a schedule/application
/// stage disagreement, or [`PipelineError::Soc`] from the simulator
/// (missing PU, empty inputs, empty batch).
pub fn simulate_schedule_batch(
    soc: &SocSpec,
    app: &AppModel,
    schedule: &Schedule,
    cfg: &RunConfig,
    lanes: &[DesSeedSpec],
) -> Result<Vec<RunReport>, PipelineError> {
    let chunks = to_chunk_specs(app, schedule)?;
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    Ok(simulate_batch_parallel(soc, &chunks, cfg, lanes, threads)?)
}

pub(crate) fn same_graph(a: &bt_kernels::TaskGraph, b: &bt_kernels::TaskGraph) -> bool {
    let normal = |g: &bt_kernels::TaskGraph| {
        let mut deps = g.deps().to_vec();
        deps.sort_unstable();
        deps.dedup();
        (g.len(), deps)
    };
    normal(a) == normal(b)
}

/// Converts a DAG schedule over `app` into the simulator's chunk-DAG
/// spec: one [`ChunkSpec`] per schedule chunk (stage works in dependency
/// order), the schedule's quotient edges, and — when a stage is
/// replicated — a two-member replica group whose chunks each carry the
/// full stage work (the engine serves alternating tasks per member, so
/// per-replica throughput halves without halving per-task service).
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] on a stage-count disagreement
/// and [`PipelineError::GraphMismatch`] when the schedule was validated
/// against a different dependency graph than the application declares.
pub fn to_dag_spec(
    app: &AppModel,
    schedule: &DagSchedule,
) -> Result<DagPipelineSpec, PipelineError> {
    if schedule.stage_count() != app.stage_count() {
        return Err(PipelineError::StageMismatch {
            app: app.stage_count(),
            schedule: schedule.stage_count(),
        });
    }
    if !same_graph(schedule.graph(), &app.task_graph()) {
        return Err(PipelineError::GraphMismatch);
    }
    let chunks = schedule
        .chunks()
        .iter()
        .map(|c| {
            ChunkSpec::new(
                c.pu,
                c.stages
                    .iter()
                    .map(|&s| app.stages[s].work.clone())
                    .collect(),
            )
        })
        .collect();
    let mut spec = DagPipelineSpec::new(chunks, schedule.chunk_edges().to_vec());
    if let Some((a, b)) = schedule.replica_pair() {
        spec = spec.with_replica_group(vec![a, b]);
    }
    Ok(spec)
}

/// Simulates pipelined execution of a fork/join `schedule` over `app` —
/// the DAG counterpart of [`simulate_schedule`]. Chain-shaped schedules
/// are priced bit-identically to the chain engine (the simulator
/// delegates); genuine DAGs get real branch concurrency, with sibling
/// branches charging each other interference.
///
/// # Errors
///
/// Returns [`PipelineError::StageMismatch`] /
/// [`PipelineError::GraphMismatch`] on schedule/application disagreement,
/// or [`PipelineError::Soc`] from the simulator.
pub fn simulate_dag_schedule(
    soc: &SocSpec,
    app: &AppModel,
    schedule: &DagSchedule,
    cfg: &RunConfig,
    faults: Option<&FaultSpec>,
) -> Result<RunReport, PipelineError> {
    let spec = to_dag_spec(app, schedule)?;
    Ok(simulate_dag(soc, &spec, cfg, faults)?)
}

/// Simulates the paper's homogeneous baseline: every stage offloaded to a
/// single PU class, synchronizing after each stage (the accelerator-
/// oriented dispatch pattern, in contrast to BT-Implementer's
/// once-per-chunk synchronization).
///
/// # Errors
///
/// Propagates [`SocError`] from the simulator.
pub fn simulate_baseline(
    soc: &SocSpec,
    app: &AppModel,
    class: bt_soc::PuClass,
    cfg: &RunConfig,
) -> Result<RunReport, SocError> {
    let chunk = ChunkSpec::new(class, app.works()).with_per_stage_sync();
    des::simulate(soc, &[chunk], cfg, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::{devices, PuClass};

    fn octree_model() -> AppModel {
        apps::octree_app(apps::OctreeConfig::default()).model()
    }

    fn noiseless() -> RunConfig {
        RunConfig {
            noise_sigma: 0.0,
            ..RunConfig::default()
        }
    }

    fn tpt(soc: &SocSpec, app: &AppModel, schedule: &Schedule) -> f64 {
        simulate_schedule(soc, app, schedule, &noiseless(), None)
            .unwrap()
            .expect_stats()
            .time_per_task
            .as_f64()
    }

    #[test]
    fn chunk_specs_cover_all_stages() {
        let app = octree_model();
        let schedule = Schedule::new(vec![
            PuClass::BigCpu,
            PuClass::BigCpu,
            PuClass::MediumCpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::LittleCpu,
        ])
        .unwrap();
        let chunks = to_chunk_specs(&app, &schedule).unwrap();
        assert_eq!(chunks.len(), 4);
        let total: usize = chunks.iter().map(|c| c.stages.len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn stage_mismatch_is_typed_error() {
        let app = octree_model();
        let schedule = Schedule::homogeneous(3, PuClass::BigCpu);
        assert_eq!(
            to_chunk_specs(&app, &schedule).unwrap_err(),
            crate::PipelineError::StageMismatch {
                app: app.stage_count(),
                schedule: 3
            }
        );
        let soc = devices::pixel_7a();
        assert!(matches!(
            simulate_schedule(&soc, &app, &schedule, &noiseless(), None).unwrap_err(),
            crate::PipelineError::StageMismatch { .. }
        ));
    }

    #[test]
    fn some_pipeline_beats_homogeneous_on_pixel_octree() {
        use PuClass::*;
        let app = octree_model();
        let soc = devices::pixel_7a();
        let homog = Schedule::homogeneous(7, BigCpu);
        let base = tpt(&soc, &app, &homog);

        let candidates = [
            vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu, LittleCpu, LittleCpu],
            vec![Gpu, Gpu, MediumCpu, BigCpu, BigCpu, LittleCpu, BigCpu],
            vec![MediumCpu, BigCpu, BigCpu, Gpu, Gpu, LittleCpu, BigCpu],
            vec![LittleCpu, BigCpu, MediumCpu, Gpu, Gpu, Gpu, BigCpu],
            vec![MediumCpu, BigCpu, LittleCpu, Gpu, Gpu, Gpu, BigCpu],
        ];
        let best = candidates
            .iter()
            .filter_map(|a| Schedule::new(a.clone()).ok())
            .map(|s| tpt(&soc, &app, &s))
            .fold(f64::MAX, f64::min);
        assert!(
            best < base,
            "some pipeline should beat homogeneous: best {best} vs base {base}"
        );
    }

    fn perception_model() -> AppModel {
        apps::perception_app(apps::PerceptionConfig::default()).model()
    }

    fn perception_dag_schedule(app: &AppModel) -> crate::DagSchedule {
        use PuClass::*;
        crate::DagSchedule::new(
            vec![LittleCpu, Gpu, Gpu, BigCpu, BigCpu, MediumCpu, MediumCpu],
            &app.task_graph(),
        )
        .unwrap()
    }

    #[test]
    fn dag_spec_mirrors_schedule_structure() {
        let app = perception_model();
        let s = perception_dag_schedule(&app);
        let spec = to_dag_spec(&app, &s).unwrap();
        assert_eq!(spec.chunks.len(), 4);
        assert!(!spec.is_chain());
        assert!(spec.replica_groups.is_empty());
        let total: usize = spec.chunks.iter().map(|c| c.stages.len()).sum();
        assert_eq!(total, 7);
        // The quotient of the perception graph under this assignment is a
        // diamond: preprocess forks to the two branch chunks, which join.
        assert_eq!(spec.edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn replicated_schedule_maps_to_replica_group() {
        use PuClass::*;
        let app = octree_model();
        let g = app.task_graph();
        let s = crate::DagSchedule::replicated(
            vec![
                MediumCpu, MediumCpu, MediumCpu, Gpu, LittleCpu, LittleCpu, LittleCpu,
            ],
            &g,
            3,
            (Gpu, BigCpu),
        )
        .unwrap();
        let spec = to_dag_spec(&app, &s).unwrap();
        assert_eq!(spec.chunks.len(), 4);
        assert_eq!(spec.replica_groups, vec![vec![1, 2]]);
        // Both replica chunks carry the full bottleneck-stage work.
        assert_eq!(spec.chunks[1].stages, spec.chunks[2].stages);
        let soc = devices::pixel_7a();
        let report = simulate_dag_schedule(&soc, &app, &s, &noiseless(), None).unwrap();
        assert!(report.expect_stats().time_per_task.as_f64() > 0.0);
    }

    #[test]
    fn chain_dag_schedule_prices_bit_identically() {
        use PuClass::*;
        let app = octree_model();
        let soc = devices::pixel_7a();
        let linear =
            Schedule::new(vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu, Gpu, LittleCpu]).unwrap();
        let dag = crate::DagSchedule::from_schedule(&linear);
        let cfg = RunConfig::default();
        let a = simulate_schedule(&soc, &app, &linear, &cfg, None).unwrap();
        let b = simulate_dag_schedule(&soc, &app, &dag, &cfg, None).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn batched_schedule_lanes_match_scalar_runs() {
        use PuClass::*;
        let app = octree_model();
        let soc = devices::pixel_7a();
        let schedule =
            Schedule::new(vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu, Gpu, LittleCpu]).unwrap();
        let cfg = RunConfig {
            tasks: 40,
            ..RunConfig::default()
        };
        let faults = FaultSpec {
            stragglers: vec![bt_soc::Straggler {
                chunk: 1,
                task: 3,
                factor: 2.5,
            }],
            ..FaultSpec::default()
        };
        let lanes = vec![
            DesSeedSpec::new(7),
            DesSeedSpec::with_faults(11, faults),
            DesSeedSpec::new(7),
        ];
        let batched = simulate_schedule_batch(&soc, &app, &schedule, &cfg, &lanes).unwrap();
        assert_eq!(batched.len(), 3);
        for (spec, got) in lanes.iter().zip(&batched) {
            let scalar_cfg = RunConfig {
                seed: spec.seed,
                ..cfg.clone()
            };
            let want = simulate_schedule(&soc, &app, &schedule, &scalar_cfg, spec.faults.as_ref())
                .unwrap();
            assert_eq!(format!("{want:?}"), format!("{got:?}"));
        }
    }

    #[test]
    fn batched_schedule_rejects_stage_mismatch() {
        let app = octree_model();
        let soc = devices::pixel_7a();
        let schedule = Schedule::homogeneous(3, PuClass::BigCpu);
        assert!(matches!(
            simulate_schedule_batch(
                &soc,
                &app,
                &schedule,
                &RunConfig::default(),
                &[DesSeedSpec::new(1)]
            )
            .unwrap_err(),
            crate::PipelineError::StageMismatch { .. }
        ));
    }

    #[test]
    fn dag_graph_mismatch_is_typed_error() {
        let perception = perception_model();
        let s = perception_dag_schedule(&perception);
        // Same stage count, chain-shaped dependency structure.
        let octree = octree_model();
        assert_eq!(octree.stage_count(), 7);
        assert!(matches!(
            to_dag_spec(&octree, &s).unwrap_err(),
            crate::PipelineError::GraphMismatch
        ));
    }

    #[test]
    fn missing_pu_propagates() {
        let app = octree_model();
        let soc = devices::jetson_orin_nano();
        let schedule = Schedule::new(vec![PuClass::LittleCpu; 7]).unwrap();
        assert!(simulate_schedule(&soc, &app, &schedule, &noiseless(), None).is_err());
    }
}
