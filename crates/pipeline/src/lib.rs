//! # bt-pipeline — the BT-Implementer runtime (§3.4 of the paper)
//!
//! Executes pipeline schedules: long-lived dispatcher threads (one per
//! chunk) pass recycled [`TaskObject`]s through lock-free SPSC queues,
//! with best-effort thread pinning to the chunk's CPU cluster.
//!
//! Two executors share the [`Schedule`] abstraction:
//!
//! - [`run_host`] — real threads on the development machine, running the
//!   actual kernels from `bt-kernels` (demonstrates the runtime substrate
//!   end to end).
//! - [`simulate_schedule`] — the discrete-event simulator of `bt-soc`,
//!   producing the "measured on device" numbers of the paper's
//!   experiments.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod affinity;
mod executor;
mod measure;
mod schedule;
mod sim;
pub mod spsc;
mod usm;

pub use affinity::{current_affinity, pin_current_thread};
pub use executor::{
    run_host, run_host_resilient, DegradeReason, HostReport, HostRunConfig, HostTimelineEvent,
    PipelineError, PuThreads, ResilienceConfig, RunOutcome,
};
pub use measure::Measurement;
pub use schedule::{ChunkAssignment, Schedule, ScheduleError};
pub use sim::{simulate_baseline, simulate_schedule, simulate_schedule_faulted, to_chunk_specs};
pub use usm::{TaskObject, UsmBuffer};
