//! # bt-pipeline — the BT-Implementer runtime (§3.4 of the paper)
//!
//! Executes pipeline schedules: long-lived dispatcher threads (one per
//! chunk) pass recycled [`TaskObject`]s through lock-free SPSC queues,
//! with best-effort thread pinning to the chunk's CPU cluster.
//!
//! Two executors share the [`Schedule`] abstraction, one [`RunConfig`],
//! and one [`RunReport`]:
//!
//! - [`run_host`] — real threads on the development machine, running the
//!   actual kernels from `bt-kernels` (demonstrates the runtime substrate
//!   end to end). Pass `Some(&ResilienceConfig)` for fault-tolerant
//!   execution, `None` for fail-fast.
//! - [`simulate_schedule`] — the discrete-event simulator of `bt-soc`,
//!   producing the "measured on device" numbers of the paper's
//!   experiments. Pass `Some(&FaultSpec)` to inject faults.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod affinity;
mod executor;
mod measure;
mod multi;
mod sim;

/// The lock-free SPSC channel, re-exported from the runtime substrate
/// (`bt-rt`) so `bt_pipeline::spsc::` paths keep working.
pub use bt_rt::spsc;

pub use affinity::{current_affinity, pin_current_thread};
pub use bt_rt::{ChunkAssignment, Schedule, ScheduleError};
pub use bt_rt::{DagChunk, DagSchedule, DagScheduleError};
pub use executor::{run_host, run_host_dag, PipelineError, PuThreads, ResilienceConfig};
pub use measure::Measurement;
pub use multi::{run_multi_host, Tenant, TenantSet, WorkerBudget};
pub use sim::{
    simulate_baseline, simulate_dag_schedule, simulate_schedule, simulate_schedule_batch,
    to_chunk_specs, to_dag_spec,
};
// The shared run vocabulary, re-exported so runtime consumers need not
// depend on bt-soc directly.
pub use bt_rt::{TaskObject, UsmBuffer};
pub use bt_soc::{DegradeReason, RunConfig, RunReport, RunStats, TimelineSpan};
