//! Best-effort thread pinning — the host counterpart of the paper's
//! `sched_setaffinity()` calls (§3.4).
//!
//! A dispatcher thread pins itself to its chunk's core set; worker threads
//! it spawns inherit the mask on Linux, which reproduces the
//! OpenMP-pool-bound-to-cluster behaviour. On non-Linux hosts (or when the
//! OS refuses, as on the OnePlus 11's little cores) pinning degrades to a
//! no-op and the runtime proceeds unpinned.

/// Attempts to pin the calling thread to the given core IDs. Returns
/// whether the OS accepted the mask.
///
/// An empty `cores` slice is a no-op returning `false`.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cores: &[usize]) -> bool {
    if cores.is_empty() {
        return false;
    }
    // SAFETY: cpu_set_t is plain-old-data; zeroed is a valid empty set.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        for &c in cores {
            if c < libc::CPU_SETSIZE as usize {
                libc::CPU_SET(c, &mut set);
            }
        }
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
}

/// Non-Linux fallback: pinning is unavailable; always returns `false`.
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cores: &[usize]) -> bool {
    false
}

/// The core IDs the calling thread is currently allowed to run on
/// (Linux only; `None` elsewhere or on error).
#[cfg(target_os = "linux")]
pub fn current_affinity() -> Option<Vec<usize>> {
    // SAFETY: as above.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        if libc::sched_getaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &mut set) != 0 {
            return None;
        }
        Some(
            (0..libc::CPU_SETSIZE as usize)
                .filter(|&c| libc::CPU_ISSET(c, &set))
                .collect(),
        )
    }
}

/// Non-Linux fallback.
#[cfg(not(target_os = "linux"))]
pub fn current_affinity() -> Option<Vec<usize>> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_mask_is_noop() {
        assert!(!pin_current_thread(&[]));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_and_restore() {
        let original = current_affinity().expect("linux exposes affinity");
        assert!(!original.is_empty());
        // Pin to the first allowed core, verify, restore.
        let first = original[0];
        let handle = std::thread::spawn(move || {
            if pin_current_thread(&[first]) {
                let now = current_affinity().expect("affinity readable");
                assert_eq!(now, vec![first]);
            }
        });
        handle.join().expect("pin thread exits cleanly");
        // The spawning thread's mask is untouched.
        assert_eq!(current_affinity().unwrap(), original);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn children_inherit_mask() {
        let original = current_affinity().expect("linux");
        let first = original[0];
        std::thread::spawn(move || {
            if !pin_current_thread(&[first]) {
                return; // sandboxed environments may refuse
            }
            let child = std::thread::spawn(|| current_affinity().unwrap());
            assert_eq!(child.join().unwrap(), vec![first]);
        })
        .join()
        .unwrap();
    }
}
