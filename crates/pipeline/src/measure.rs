//! The backend-neutral measurement vocabulary: one steady-state result
//! type shared by the discrete-event simulator ([`crate::simulate_schedule`])
//! and the real host runtime ([`crate::run_host`]), so framework layers can
//! autotune, compare baselines, and price energy without knowing which
//! substrate executed the schedule.

use bt_soc::{Micros, RunReport};
use bt_telemetry::RunTelemetry;

/// Steady-state measurement of one pipeline run, in the simulator's
/// microsecond vocabulary regardless of the executing substrate.
///
/// Produced from the unified [`RunReport`] via [`Measurement::from_run`]
/// (both executors emit µs there already); downstream consumers —
/// autotuning, baseline comparison, energy accounting — treat simulated
/// and host runs identically.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Steady-state inverse throughput (the paper's pipeline latency):
    /// mean inter-departure time over the measured window.
    pub latency: Micros,
    /// Span of the steady-state measurement window.
    pub makespan: Micros,
    /// Mean per-task residence time (pipeline entry → exit).
    pub mean_task_latency: Micros,
    /// Tasks completed per second.
    pub throughput_hz: f64,
    /// Fraction of the window each chunk spent executing kernels, in
    /// pipeline order.
    pub chunk_utilization: Vec<f64>,
    /// Number of measured tasks.
    pub tasks: u32,
    /// Telemetry collected during the run, when enabled.
    pub telemetry: Option<RunTelemetry>,
}

impl Measurement {
    /// Projects the steady-state window of a unified report, consuming it;
    /// `None` when the run completed no tasks (fully degraded).
    pub fn from_run(report: RunReport) -> Option<Measurement> {
        let s = report.stats?;
        Some(Measurement {
            latency: s.time_per_task,
            makespan: s.makespan,
            mean_task_latency: s.mean_task_latency,
            throughput_hz: s.throughput_hz,
            chunk_utilization: s.chunk_utilization,
            tasks: s.tasks,
            telemetry: report.telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_soc::RunStats;

    #[test]
    fn from_run_projects_stats_in_micros() {
        let report = RunReport {
            submitted: 7,
            completed: 7,
            dropped: 0,
            faults_fired: 0,
            stats: Some(RunStats {
                makespan: Micros::new(10_000.0),
                mean_task_latency: Micros::new(2500.0),
                time_per_task: Micros::new(2000.0),
                throughput_hz: 500.0,
                chunk_utilization: vec![0.9, 0.4],
                bottleneck_chunk: 0,
                tasks: 5,
            }),
            timeline: Vec::new(),
            telemetry: None,
            degraded: None,
        };
        let m = Measurement::from_run(report).expect("stats present");
        assert!((m.makespan.as_millis() - 10.0).abs() < 1e-9);
        assert!((m.latency.as_millis() - 2.0).abs() < 1e-9);
        assert!((m.mean_task_latency.as_f64() - 2500.0).abs() < 1e-9);
        assert_eq!(m.tasks, 5);
        assert_eq!(m.chunk_utilization, vec![0.9, 0.4]);
    }

    #[test]
    fn fully_degraded_run_measures_nothing() {
        let report = RunReport {
            submitted: 3,
            completed: 0,
            dropped: 3,
            faults_fired: 3,
            stats: None,
            timeline: Vec::new(),
            telemetry: None,
            degraded: Some(bt_soc::DegradeReason::KernelFailures { chunk: 0 }),
        };
        assert!(Measurement::from_run(report).is_none());
    }
}
