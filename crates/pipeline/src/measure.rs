//! The backend-neutral measurement vocabulary: one steady-state result
//! type shared by the discrete-event simulator ([`crate::simulate_schedule`])
//! and the real host runtime ([`crate::run_host`]), so framework layers can
//! autotune, compare baselines, and price energy without knowing which
//! substrate executed the schedule.

use std::time::Duration;

use bt_soc::des::DesReport;
use bt_soc::Micros;
use bt_telemetry::RunTelemetry;

use crate::HostReport;

/// Steady-state measurement of one pipeline run, in the simulator's
/// microsecond vocabulary regardless of the executing substrate.
///
/// Produced from a [`DesReport`] (virtual time) or a [`HostReport`]
/// (wall-clock time) via `From`; downstream consumers — autotuning,
/// baseline comparison, energy accounting — treat both identically.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Steady-state inverse throughput (the paper's pipeline latency):
    /// mean inter-departure time over the measured window.
    pub latency: Micros,
    /// Span of the steady-state measurement window.
    pub makespan: Micros,
    /// Mean per-task residence time (pipeline entry → exit).
    pub mean_task_latency: Micros,
    /// Tasks completed per second.
    pub throughput_hz: f64,
    /// Fraction of the window each chunk spent executing kernels, in
    /// pipeline order.
    pub chunk_utilization: Vec<f64>,
    /// Number of measured tasks.
    pub tasks: u32,
    /// Telemetry collected during the run, when enabled.
    pub telemetry: Option<RunTelemetry>,
}

fn duration_us(d: Duration) -> Micros {
    Micros::new(d.as_secs_f64() * 1e6)
}

impl From<DesReport> for Measurement {
    fn from(r: DesReport) -> Measurement {
        Measurement {
            latency: r.time_per_task,
            makespan: r.makespan,
            mean_task_latency: r.mean_task_latency,
            throughput_hz: r.throughput_hz,
            chunk_utilization: r.chunk_utilization,
            tasks: r.tasks,
            telemetry: r.telemetry,
        }
    }
}

impl From<HostReport> for Measurement {
    fn from(r: HostReport) -> Measurement {
        Measurement {
            latency: duration_us(r.time_per_task),
            makespan: duration_us(r.makespan),
            mean_task_latency: duration_us(r.mean_task_latency),
            throughput_hz: r.throughput_hz,
            chunk_utilization: r.chunk_utilization,
            tasks: r.tasks,
            telemetry: r.telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_report_converts_to_micros() {
        let m = Measurement::from(HostReport {
            makespan: Duration::from_millis(10),
            time_per_task: Duration::from_millis(2),
            mean_task_latency: Duration::from_micros(2500),
            throughput_hz: 500.0,
            chunk_utilization: vec![0.9, 0.4],
            tasks: 5,
            timeline: Vec::new(),
            telemetry: None,
        });
        assert!((m.makespan.as_millis() - 10.0).abs() < 1e-9);
        assert!((m.latency.as_millis() - 2.0).abs() < 1e-9);
        assert!((m.mean_task_latency.as_f64() - 2500.0).abs() < 1e-9);
        assert_eq!(m.tasks, 5);
        assert_eq!(m.chunk_utilization, vec![0.9, 0.4]);
    }
}
