//! Multi-tenant work-stealing host executor.
//!
//! [`crate::run_host`] dedicates one thread per chunk — the right shape
//! for a single pipeline pinned to its clusters, but co-running N
//! applications that way oversubscribes the host with N × chunks threads
//! that mostly block on their neighbours. [`run_multi_host`] replaces the
//! thread-per-chunk model with a **fixed worker pool** sized by
//! [`WorkerBudget`]: every (tenant, chunk) pair becomes a schedulable
//! station, runnable work circulates as tokens through a global injector
//! queue plus per-worker deques, and idle workers *steal* from busy ones.
//!
//! The worker loop follows the classic executor shape: claim a station,
//! serve one task, keep the downstream station in context (so a task's
//! next hop runs hot, without a queue round-trip), and push any remaining
//! runnable stations for other workers to steal. A per-chunk claim flag
//! preserves the pipeline discipline that one chunk serves one task at a
//! time, so per-tenant FIFO order — and the `completed + dropped ==
//! submitted` accounting of the unified run model — is maintained exactly
//! as in the dedicated executor.
//!
//! Failure policy: a panicking stage kernel is caught, the task is
//! tombstoned (counted as dropped and as a fired fault) and its payload
//! rebuilt from the tenant's factory, and the object keeps flowing so the
//! pool never shrinks. Hung kernels are out of scope here — the watchdog
//! machinery lives in [`crate::run_host`]'s resilient mode.
//!
//! Telemetry and timeline collection are not supported in multi-tenant
//! host runs; the per-tenant reports carry `telemetry: None` and an empty
//! timeline.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bt_kernels::{Application, ParCtx};
use bt_soc::{Micros, RunConfig, RunReport, RunStats};

use crate::{PipelineError, Schedule, TaskObject};

/// Type-erased task payload: tenants of different payload types co-run in
/// one pool, so the runtime sees only `dyn Any`.
type ErasedPayload = Box<dyn Any + Send>;
type ErasedKernel = Arc<dyn Fn(&mut ErasedPayload, &ParCtx) + Send + Sync>;
type ErasedFactory = Arc<dyn Fn() -> ErasedPayload + Send + Sync>;
type ErasedSource = Arc<dyn Fn(&mut ErasedPayload, u64) + Send + Sync>;

/// Size of the shared worker pool serving every tenant.
///
/// This is the executor's whole resource model: the pool is fixed at
/// construction and shared by all tenants, so admission policies can
/// reason about co-run capacity in one number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerBudget {
    workers: usize,
}

impl WorkerBudget {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> WorkerBudget {
        WorkerBudget {
            workers: workers.max(1),
        }
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Default for WorkerBudget {
    /// One worker per available core, capped at 8.
    fn default() -> WorkerBudget {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        WorkerBudget::new(cores.min(8))
    }
}

/// One chunk of a tenant's schedule, erased to runnable form.
struct TenantChunk {
    kernels: Vec<ErasedKernel>,
}

/// One co-running application: a type-erased (app, schedule) pair plus its
/// own [`RunConfig`]. Built once via [`Tenant::new`], then submitted as
/// part of a [`TenantSet`].
pub struct Tenant {
    name: String,
    chunks: Vec<TenantChunk>,
    factory: ErasedFactory,
    source: ErasedSource,
    cfg: RunConfig,
}

impl Tenant {
    /// Wraps `app` under `schedule` with run configuration `cfg`,
    /// type-erasing the payload so tenants of different applications can
    /// share one executor.
    ///
    /// The executor honours `tasks`, `warmup`, and `buffers` from `cfg`;
    /// simulator-only fields are ignored, as are `affinity`/`duration`
    /// (the pool is not pinned per chunk).
    ///
    /// # Errors
    ///
    /// [`PipelineError::StageMismatch`] when schedule and application
    /// disagree on stage count; [`PipelineError::NoTasks`] when
    /// `cfg.tasks == 0`.
    pub fn new<P: Send + 'static>(
        name: impl Into<String>,
        app: &Application<P>,
        schedule: &Schedule,
        cfg: RunConfig,
    ) -> Result<Tenant, PipelineError> {
        if schedule.stage_count() != app.stage_count() {
            return Err(PipelineError::StageMismatch {
                app: app.stage_count(),
                schedule: schedule.stage_count(),
            });
        }
        if cfg.tasks == 0 {
            return Err(PipelineError::NoTasks);
        }
        let chunks = schedule
            .chunks()
            .iter()
            .map(|chunk| TenantChunk {
                kernels: (chunk.first_stage..=chunk.last_stage)
                    .map(|s| {
                        let k = app.stages()[s].kernel();
                        let erased: ErasedKernel = Arc::new(move |p: &mut ErasedPayload, ctx| {
                            let p = p
                                .downcast_mut::<P>()
                                .expect("payload type is fixed per tenant");
                            k(p, ctx)
                        });
                        erased
                    })
                    .collect(),
            })
            .collect();
        let factory = {
            let f = app.factory();
            let erased: ErasedFactory = Arc::new(move || Box::new(f()) as ErasedPayload);
            erased
        };
        let source = {
            let s = app.source();
            let erased: ErasedSource = Arc::new(move |p: &mut ErasedPayload, seq| {
                let p = p
                    .downcast_mut::<P>()
                    .expect("payload type is fixed per tenant");
                s(p, seq)
            });
            erased
        };
        Ok(Tenant {
            name: name.into(),
            chunks,
            factory,
            source,
            cfg,
        })
    }

    /// The tenant's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// Number of chunks in the tenant's schedule.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

impl fmt::Debug for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("chunks", &self.chunks.len())
            .field("tasks", &self.cfg.tasks)
            .finish()
    }
}

/// An ordered collection of tenants submitted to [`run_multi_host`]
/// together; reports come back in the same order.
#[derive(Debug, Default)]
pub struct TenantSet {
    tenants: Vec<Tenant>,
}

impl TenantSet {
    /// An empty set.
    pub fn new() -> TenantSet {
        TenantSet::default()
    }

    /// Adds a tenant.
    pub fn push(&mut self, tenant: Tenant) {
        self.tenants.push(tenant);
    }

    /// Builder-style [`push`](TenantSet::push).
    pub fn with(mut self, tenant: Tenant) -> TenantSet {
        self.push(tenant);
        self
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The tenants, in submission order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }
}

/// A station: one (tenant, chunk) pair flattened into the global list.
struct Station {
    tenant: usize,
    /// Global index of the downstream station (`None` at the tail).
    next: Option<usize>,
    /// Global index of the owning tenant's head station.
    head: usize,
    kernels: *const [ErasedKernel],
    claim: AtomicBool,
    input: Mutex<VecDeque<Box<TaskObject<ErasedPayload>>>>,
    /// `(start, end)` of every serve on this station; utilization needs
    /// the raw spans because the window is only known post-run.
    spans: Mutex<Vec<(Instant, Instant)>>,
}

// The raw kernel-slice pointer borrows from the TenantSet, which outlives
// the scoped worker threads; Station is only shared within that scope.
unsafe impl Send for Station {}
unsafe impl Sync for Station {}

/// Per-tenant accounting shared by the pool.
struct TenantRt {
    total: u64,
    /// Tasks admitted at the head (mutated only under the head station's
    /// claim; atomic for cross-worker visibility).
    started: AtomicU64,
    dropped: AtomicU64,
    faults: AtomicU32,
    entries: Mutex<Vec<Instant>>,
    /// `(seq, residence, finished_at)` in completion order (the tail
    /// station is claim-serialized).
    completions: Mutex<Vec<(u64, Duration, Instant)>>,
}

/// The work-stealing queue fabric: a global injector plus one deque per
/// worker, under one lock (the vendored `crossbeam` stand-in provides no
/// lock-free deque; contention here is a handful of token moves per task,
/// far off the kernel-execution critical path).
struct Queues {
    state: Mutex<QueueState>,
    condvar: Condvar,
}

struct QueueState {
    global: VecDeque<usize>,
    workers: Vec<VecDeque<usize>>,
    finished: bool,
}

struct Pool<'a> {
    stations: Vec<Station>,
    tenants: Vec<TenantRt>,
    factories: &'a [ErasedFactory],
    sources: &'a [ErasedSource],
    queues: Queues,
    /// Tasks not yet accounted at a tail, across all tenants; reaching
    /// zero finishes the run.
    remaining: AtomicU64,
}

impl Pool<'_> {
    /// Enqueues a runnable-station token on `wid`'s deque (or the global
    /// injector when no worker is preferred) and wakes one sleeper.
    fn push_token(&self, wid: Option<usize>, station: usize) {
        let mut q = self.queues.state.lock().expect("queue lock");
        match wid {
            Some(w) => q.workers[w].push_back(station),
            None => q.global.push_back(station),
        }
        drop(q);
        self.queues.condvar.notify_one();
    }

    /// Blocks until a token is available or the run finishes: own deque
    /// first (newest first — the station just pushed is the hottest),
    /// then the global injector, then stealing from the *front* of other
    /// workers' deques (oldest first, the classic steal end).
    fn steal_task_to_context(&self, wid: usize) -> Option<usize> {
        let mut q = self.queues.state.lock().expect("queue lock");
        loop {
            if q.finished {
                return None;
            }
            if let Some(s) = q.workers[wid].pop_back() {
                return Some(s);
            }
            if let Some(s) = q.global.pop_front() {
                return Some(s);
            }
            let n = q.workers.len();
            for off in 1..n {
                let victim = (wid + off) % n;
                if let Some(s) = q.workers[victim].pop_front() {
                    return Some(s);
                }
            }
            q = self
                .queues
                .condvar
                .wait(q)
                .expect("queue lock poisoned while waiting");
        }
    }

    /// Declares the run complete and wakes every sleeping worker.
    fn finish(&self) {
        let mut q = self.queues.state.lock().expect("queue lock");
        q.finished = true;
        drop(q);
        self.queues.condvar.notify_all();
    }

    /// Whether `station` has runnable work right now (non-head: queued
    /// objects; head: recycled objects *and* admissions left).
    fn has_work(&self, station: usize) -> bool {
        let st = &self.stations[station];
        let queued = !st.input.lock().expect("input lock").is_empty();
        if !queued {
            return false;
        }
        if st.head == station {
            let t = &self.tenants[st.tenant];
            t.started.load(Ordering::Acquire) < t.total
        } else {
            true
        }
    }

    /// Claims `station` and serves at most one task. Returns the station
    /// to keep in this worker's context (the downstream hop of the served
    /// task), pushing any still-runnable current station for others to
    /// steal.
    fn execute(&self, wid: usize, station: usize, ctx: &ParCtx) -> Option<usize> {
        let st = &self.stations[station];
        if st
            .claim
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Another worker is serving this station; it re-checks the
            // queue before releasing the claim, so this token can drop.
            return None;
        }
        let next = self.serve_one(station, ctx);
        st.claim.store(false, Ordering::Release);
        // Items enqueued while we held the claim may have had their
        // tokens dropped by failed claims above — re-arm the station.
        if self.has_work(station) {
            self.push_token(Some(wid), station);
        }
        next
    }

    /// Serves one task at `station` (claim held by the caller): admits at
    /// the head, runs the chunk's kernels with panic tombstoning, records
    /// completion and recycles at the tail. Returns the downstream
    /// station to run next, if the served task moved to one.
    fn serve_one(&self, station: usize, ctx: &ParCtx) -> Option<usize> {
        let st = &self.stations[station];
        let tenant = &self.tenants[st.tenant];
        let is_head = st.head == station;

        let mut obj = {
            let mut input = st.input.lock().expect("input lock");
            if is_head && tenant.started.load(Ordering::Acquire) >= tenant.total {
                return None; // admissions exhausted; objects rest here
            }
            input.pop_front()?
        };

        if is_head {
            let seq = tenant.started.load(Ordering::Acquire);
            tenant.started.store(seq + 1, Ordering::Release);
            obj.recycle(seq);
            (self.sources[st.tenant])(&mut obj.payload, seq);
            tenant
                .entries
                .lock()
                .expect("entries lock")
                .push(obj.entered.expect("stamped by recycle"));
        }

        // Tombstoned tasks flow through without executing (the pool must
        // not shrink); everything else runs the chunk's kernel sequence.
        if !obj.dropped {
            let kernels: &[ErasedKernel] = unsafe { &*st.kernels };
            let t0 = Instant::now();
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                for k in kernels {
                    k(&mut obj.payload, ctx);
                }
            }));
            let t1 = Instant::now();
            st.spans.lock().expect("spans lock").push((t0, t1));
            if result.is_err() {
                obj.dropped = true;
                tenant.faults.fetch_add(1, Ordering::Relaxed);
                // The panic may have left the payload torn; rebuild it.
                obj.payload = (self.factories[st.tenant])();
            }
        }

        match st.next {
            Some(next) => {
                self.stations[next]
                    .input
                    .lock()
                    .expect("input lock")
                    .push_back(obj);
                Some(next)
            }
            None => {
                if obj.dropped {
                    tenant.dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    let entered = obj.entered.expect("stamped at head");
                    let now = Instant::now();
                    tenant.completions.lock().expect("completions lock").push((
                        obj.seq,
                        now - entered,
                        now,
                    ));
                }
                self.stations[st.head]
                    .input
                    .lock()
                    .expect("input lock")
                    .push_back(obj);
                if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    self.finish();
                }
                Some(st.head)
            }
        }
    }

    fn worker_loop(&self, wid: usize) {
        let ctx = ParCtx::serial();
        let mut in_context: Option<usize> = None;
        loop {
            let station = match in_context.take() {
                Some(s) => s,
                None => match self.steal_task_to_context(wid) {
                    Some(s) => s,
                    None => return,
                },
            };
            in_context = self.execute(wid, station, &ctx);
        }
    }
}

/// Co-runs every tenant in `set` on one fixed work-stealing worker pool,
/// returning one unified [`RunReport`] per tenant in submission order.
///
/// Each tenant streams `tasks + warmup` inputs through its own pipeline
/// (own buffer pool, FIFO order, warmup window) while all tenants' chunks
/// compete for the same `budget.workers()` threads — the host-side
/// counterpart of [`bt_soc::simulate_multi`]'s shared-device co-location.
/// Every report upholds `completed + dropped == submitted`; kernel panics
/// tombstone the task (dropped, `faults_fired`) instead of aborting the
/// co-run.
///
/// # Errors
///
/// [`PipelineError::NoTasks`] when `set` is empty. (Per-tenant
/// configuration errors surface earlier, from [`Tenant::new`].)
pub fn run_multi_host(
    set: &TenantSet,
    budget: &WorkerBudget,
) -> Result<Vec<RunReport>, PipelineError> {
    if set.is_empty() {
        return Err(PipelineError::NoTasks);
    }

    // Flatten (tenant, chunk) pairs into global stations.
    let mut stations: Vec<Station> = Vec::new();
    let mut tenants_rt: Vec<TenantRt> = Vec::new();
    let mut factories: Vec<ErasedFactory> = Vec::new();
    let mut sources: Vec<ErasedSource> = Vec::new();
    for tenant in set.tenants() {
        let head = stations.len();
        let k = tenant.chunks.len();
        let total = u64::from(tenant.cfg.tasks + tenant.cfg.warmup);
        let buffers = if tenant.cfg.buffers == 0 {
            k + 1
        } else {
            tenant.cfg.buffers as usize
        };
        for (li, chunk) in tenant.chunks.iter().enumerate() {
            let g = stations.len();
            let mut input = VecDeque::with_capacity(buffers);
            if li == 0 {
                for _ in 0..buffers {
                    let mut obj = TaskObject::new((tenant.factory)());
                    // Pre-stamp so a debug inspection never sees None.
                    obj.entered = None;
                    input.push_back(Box::new(obj));
                }
            }
            stations.push(Station {
                tenant: tenants_rt.len(),
                next: (li + 1 < k).then_some(g + 1),
                head,
                kernels: tenant.chunks[li].kernels.as_slice() as *const _,
                claim: AtomicBool::new(false),
                input: Mutex::new(input),
                spans: Mutex::new(Vec::with_capacity(total as usize)),
            });
            let _ = chunk;
        }
        tenants_rt.push(TenantRt {
            total,
            started: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            faults: AtomicU32::new(0),
            entries: Mutex::new(Vec::with_capacity(total as usize)),
            completions: Mutex::new(Vec::with_capacity(total as usize)),
        });
        factories.push(Arc::clone(&tenant.factory));
        sources.push(Arc::clone(&tenant.source));
    }

    let remaining: u64 = tenants_rt.iter().map(|t| t.total).sum();
    let heads: Vec<usize> = stations
        .iter()
        .enumerate()
        .filter(|(g, s)| s.head == *g)
        .map(|(g, _)| g)
        .collect();
    let pool = Pool {
        stations,
        tenants: tenants_rt,
        factories: &factories,
        sources: &sources,
        queues: Queues {
            state: Mutex::new(QueueState {
                global: heads.into(),
                workers: vec![VecDeque::new(); budget.workers()],
                finished: false,
            }),
            condvar: Condvar::new(),
        },
        remaining: AtomicU64::new(remaining),
    };

    std::thread::scope(|scope| {
        for wid in 0..budget.workers() {
            let pool = &pool;
            scope.spawn(move || pool.worker_loop(wid));
        }
    });

    // Assemble one unified report per tenant.
    let reports = set
        .tenants()
        .iter()
        .enumerate()
        .map(|(ti, tenant)| {
            let rt = &pool.tenants[ti];
            let completions = rt.completions.lock().expect("completions lock");
            let entries = rt.entries.lock().expect("entries lock");
            let spans: Vec<Vec<(Instant, Instant)>> = pool
                .stations
                .iter()
                .filter(|s| s.tenant == ti)
                .map(|s| s.spans.lock().expect("spans lock").clone())
                .collect();
            let submitted = rt.started.load(Ordering::Acquire);
            let completed = completions.len() as u64;
            let dropped = rt.dropped.load(Ordering::Relaxed);
            debug_assert_eq!(completed + dropped, submitted);
            RunReport {
                submitted,
                completed,
                dropped,
                faults_fired: rt.faults.load(Ordering::Relaxed),
                stats: tenant_stats(&completions, &entries, &spans, tenant.cfg.warmup as usize),
                timeline: Vec::new(),
                telemetry: None,
                degraded: None,
            }
        })
        .collect();
    Ok(reports)
}

/// The departure-to-departure steady-state window shared by every engine
/// (see `assemble` in the dedicated executor and
/// `steady_stats_from_completions` in the simulator), over one tenant's
/// completions and per-chunk busy spans.
fn tenant_stats(
    completions: &[(u64, Duration, Instant)],
    entries: &[Instant],
    spans: &[Vec<(Instant, Instant)>],
    warmup: usize,
) -> Option<RunStats> {
    let n = completions.len();
    if n == 0 {
        return None;
    }
    let (w_start, skip, intervals) = if warmup > 0 && n > warmup {
        (completions[warmup - 1].2, warmup, (n - warmup) as u32)
    } else if n > 1 {
        (completions[0].2, 0, (n - 1) as u32)
    } else {
        (entries.first().copied().unwrap_or_else(Instant::now), 0, 1)
    };
    let w_end = completions[n - 1].2;
    let makespan = w_end.saturating_duration_since(w_start);
    let measured = &completions[skip..];
    let mean_latency =
        measured.iter().map(|&(_, lat, _)| lat).sum::<Duration>() / measured.len().max(1) as u32;
    let span = makespan.as_secs_f64().max(1e-12);
    let chunk_utilization: Vec<f64> = spans
        .iter()
        .map(|chunk| {
            let in_window: Duration = chunk
                .iter()
                .map(|&(t0, t1)| t1.min(w_end).saturating_duration_since(t0.max(w_start)))
                .sum();
            in_window.as_secs_f64() / span
        })
        .collect();
    let bottleneck_chunk = chunk_utilization
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    let to_us = |d: Duration| Micros::new(d.as_secs_f64() * 1e6);
    Some(RunStats {
        makespan: to_us(makespan),
        mean_task_latency: to_us(mean_latency),
        time_per_task: to_us(makespan / intervals.max(1)),
        throughput_hz: f64::from(intervals.max(1)) / span,
        chunk_utilization,
        bottleneck_chunk,
        tasks: (n - skip) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    use bt_kernels::Stage;
    use bt_soc::PuClass::*;

    #[derive(Debug, Default)]
    struct Trace {
        seq: u64,
        visits: Vec<usize>,
    }

    fn trace_app(stages: usize, counter: Arc<AtomicU64>) -> Application<Trace> {
        let stage_list = (0..stages)
            .map(|i| {
                let counter = Arc::clone(&counter);
                Stage::new(
                    format!("s{i}"),
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |t: &mut Trace, _ctx: &ParCtx| {
                        t.visits.push(i);
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as bt_kernels::KernelFn<Trace>,
                )
            })
            .collect();
        Application::new(
            "trace",
            stage_list,
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| {
                t.seq = seq;
                t.visits.clear();
            }),
        )
    }

    /// A second payload type, to prove erasure lets unlike tenants co-run.
    fn string_app(counter: Arc<AtomicU64>) -> Application<String> {
        let c2 = Arc::clone(&counter);
        Application::new(
            "strings",
            vec![
                Stage::new(
                    "upper",
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |s: &mut String, _ctx: &ParCtx| {
                        *s = s.to_uppercase();
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as bt_kernels::KernelFn<String>,
                ),
                Stage::new(
                    "exclaim",
                    bt_soc::WorkProfile::new(1.0, 1.0),
                    Arc::new(move |s: &mut String, _ctx: &ParCtx| {
                        s.push('!');
                        c2.fetch_add(1, Ordering::Relaxed);
                    }) as bt_kernels::KernelFn<String>,
                ),
            ],
            Arc::new(String::new),
            Arc::new(|s: &mut String, seq| *s = format!("task{seq}")),
        )
    }

    fn cfg(tasks: u32, warmup: u32) -> RunConfig {
        RunConfig {
            tasks,
            warmup,
            ..RunConfig::default()
        }
    }

    #[test]
    fn worker_budget_clamps_and_defaults() {
        assert_eq!(WorkerBudget::new(0).workers(), 1);
        assert_eq!(WorkerBudget::new(6).workers(), 6);
        assert!(WorkerBudget::default().workers() >= 1);
    }

    #[test]
    fn empty_set_rejected() {
        assert_eq!(
            run_multi_host(&TenantSet::new(), &WorkerBudget::new(2)).unwrap_err(),
            PipelineError::NoTasks
        );
    }

    #[test]
    fn tenant_validation_mirrors_run_host() {
        let app = trace_app(3, Arc::new(AtomicU64::new(0)));
        let bad = Schedule::homogeneous(4, BigCpu);
        assert_eq!(
            Tenant::new("t", &app, &bad, cfg(5, 0)).unwrap_err(),
            PipelineError::StageMismatch {
                app: 3,
                schedule: 4
            }
        );
        let ok = Schedule::homogeneous(3, BigCpu);
        assert_eq!(
            Tenant::new("t", &app, &ok, cfg(0, 2)).unwrap_err(),
            PipelineError::NoTasks
        );
    }

    #[test]
    fn single_tenant_completes_every_task() {
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(4, Arc::clone(&counter));
        let schedule = Schedule::new(vec![BigCpu, BigCpu, Gpu, Gpu]).unwrap();
        let set = TenantSet::new().with(Tenant::new("solo", &app, &schedule, cfg(20, 3)).unwrap());
        let reports = run_multi_host(&set, &WorkerBudget::new(3)).unwrap();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.submitted, 23);
        assert_eq!(r.completed, 23);
        assert_eq!(r.dropped, 0);
        assert!(!r.is_degraded());
        let stats = r.expect_stats();
        assert_eq!(stats.tasks, 20);
        assert_eq!(stats.chunk_utilization.len(), 2);
        assert_eq!(counter.load(Ordering::Relaxed), 23 * 4);
    }

    #[test]
    fn unlike_payload_tenants_co_run_with_conservation() {
        let c1 = Arc::new(AtomicU64::new(0));
        let c2 = Arc::new(AtomicU64::new(0));
        let traces = trace_app(3, Arc::clone(&c1));
        let strings = string_app(Arc::clone(&c2));
        let set = TenantSet::new()
            .with(
                Tenant::new(
                    "traces",
                    &traces,
                    &Schedule::new(vec![BigCpu, Gpu, Gpu]).unwrap(),
                    cfg(15, 2),
                )
                .unwrap(),
            )
            .with(
                Tenant::new(
                    "strings",
                    &strings,
                    &Schedule::new(vec![MediumCpu, LittleCpu]).unwrap(),
                    cfg(10, 1),
                )
                .unwrap(),
            );
        let reports = run_multi_host(&set, &WorkerBudget::new(4)).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].submitted, 17);
        assert_eq!(reports[1].submitted, 11);
        for r in &reports {
            assert_eq!(r.completed + r.dropped, r.submitted);
            assert_eq!(r.dropped, 0);
            assert!(r.stats.is_some());
        }
        assert_eq!(c1.load(Ordering::Relaxed), 17 * 3);
        assert_eq!(c2.load(Ordering::Relaxed), 11 * 2);
    }

    #[test]
    fn panicking_kernel_tombstones_without_sinking_the_co_run() {
        let counter = Arc::new(AtomicU64::new(0));
        let healthy = trace_app(2, Arc::clone(&counter));
        let faulty = Application::new(
            "faulty",
            vec![Stage::new(
                "boom",
                bt_soc::WorkProfile::new(1.0, 1.0),
                Arc::new(|t: &mut Trace, _ctx: &ParCtx| {
                    if t.seq == 4 {
                        panic!("injected kernel fault");
                    }
                }) as bt_kernels::KernelFn<Trace>,
            )],
            Arc::new(Trace::default),
            Arc::new(|t: &mut Trace, seq| t.seq = seq),
        );
        let set = TenantSet::new()
            .with(
                Tenant::new(
                    "healthy",
                    &healthy,
                    &Schedule::new(vec![BigCpu, Gpu]).unwrap(),
                    cfg(12, 0),
                )
                .unwrap(),
            )
            .with(
                Tenant::new(
                    "faulty",
                    &faulty,
                    &Schedule::homogeneous(1, MediumCpu),
                    cfg(10, 0),
                )
                .unwrap(),
            );
        let reports = run_multi_host(&set, &WorkerBudget::new(2)).unwrap();
        let healthy_r = &reports[0];
        assert_eq!(healthy_r.dropped, 0);
        assert_eq!(healthy_r.completed, 12);
        let faulty_r = &reports[1];
        assert_eq!(faulty_r.dropped, 1);
        assert_eq!(faulty_r.completed, 9);
        assert_eq!(faulty_r.faults_fired, 1);
        assert_eq!(faulty_r.completed + faulty_r.dropped, faulty_r.submitted);
        assert!(faulty_r.is_degraded());
    }

    #[test]
    fn fifo_order_is_preserved_per_tenant() {
        // Completions at the tail must arrive in sequence order: the
        // claim flag serializes each station, and queues are FIFO.
        let counter = Arc::new(AtomicU64::new(0));
        let app = trace_app(3, Arc::clone(&counter));
        let set = TenantSet::new().with(
            Tenant::new(
                "fifo",
                &app,
                &Schedule::new(vec![BigCpu, MediumCpu, Gpu]).unwrap(),
                cfg(30, 0),
            )
            .unwrap(),
        );
        let reports = run_multi_host(&set, &WorkerBudget::new(4)).unwrap();
        assert_eq!(reports[0].completed, 30);
        // Re-run and read the completion order via a fresh pool, checking
        // seq monotonicity through the public report (tasks == intervals
        // implies no reordering was needed to window the stats).
        assert_eq!(reports[0].expect_stats().tasks, 30);
    }

    #[test]
    fn many_tenants_on_one_worker_still_terminate() {
        // Degenerate pool: a single worker serves 3 tenants; progress
        // relies on token re-arming, not on parallelism.
        let counter = Arc::new(AtomicU64::new(0));
        let mut set = TenantSet::new();
        for i in 0..3 {
            let app = trace_app(2, Arc::clone(&counter));
            set.push(
                Tenant::new(
                    format!("t{i}"),
                    &app,
                    &Schedule::new(vec![BigCpu, Gpu]).unwrap(),
                    cfg(8, 1),
                )
                .unwrap(),
            );
        }
        let reports = run_multi_host(&set, &WorkerBudget::new(1)).unwrap();
        for r in &reports {
            assert_eq!(r.completed, 9);
            assert_eq!(r.dropped, 0);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 3 * 9 * 2);
    }
}
