//! Deprecated pre-unification API surface, kept one release as thin shims.
//!
//! PR 5 collapsed the forked engine entry points
//! (`simulate`/`simulate_faulted`, `simulate_dynamic`/
//! `simulate_dynamic_faulted`) and their parallel type families
//! (`DesConfig`, `DesReport`, `TimelineEvent`, `FaultedDesReport`) into the
//! shared run model of [`crate::run`]. Everything here converts to or from
//! that model and will be removed in the release after next.

#![allow(deprecated)]

use bt_telemetry::RunTelemetry;

use crate::des::{self, ChunkSpec};
use crate::des_dynamic::{self, DynamicPolicy};
use crate::fault::FaultSpec;
use crate::run::{RunConfig, RunReport, TimelineSpan};
use crate::{Micros, SocError, SocSpec, WorkProfile};

/// Former simulator configuration, now the shared [`RunConfig`].
#[deprecated(since = "0.2.0", note = "use bt_soc::RunConfig")]
pub type DesConfig = RunConfig;

/// Former simulator timeline entry; superseded by [`TimelineSpan`].
#[deprecated(since = "0.2.0", note = "use bt_soc::TimelineSpan")]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Chunk index.
    pub chunk: usize,
    /// Stage index within the chunk.
    pub stage: usize,
    /// Task sequence number.
    pub task: usize,
    /// Start of the execution, µs of virtual time.
    pub start: f64,
    /// End of the execution, µs of virtual time.
    pub end: f64,
}

impl From<TimelineEvent> for crate::gantt::GanttSpan {
    fn from(e: TimelineEvent) -> crate::gantt::GanttSpan {
        crate::gantt::GanttSpan {
            chunk: e.chunk,
            task: e.task as u64,
            start: e.start,
            end: e.end,
        }
    }
}

impl From<TimelineSpan> for TimelineEvent {
    fn from(s: TimelineSpan) -> TimelineEvent {
        TimelineEvent {
            chunk: s.chunk,
            stage: s.stage.unwrap_or(0),
            task: s.task as usize,
            start: s.start_us,
            end: s.end_us,
        }
    }
}

/// Former clean-run simulator report; superseded by
/// [`RunReport`]/[`crate::run::RunStats`].
#[deprecated(since = "0.2.0", note = "use bt_soc::RunReport")]
#[derive(Debug, Clone)]
pub struct DesReport {
    /// Steady-state window length, µs.
    pub makespan: Micros,
    /// Mean per-task residence time, µs.
    pub mean_task_latency: Micros,
    /// Steady-state inverse throughput, µs.
    pub time_per_task: Micros,
    /// Tasks completed per second.
    pub throughput_hz: f64,
    /// Busy fraction of the window per chunk.
    pub chunk_utilization: Vec<f64>,
    /// Index of the busiest chunk.
    pub bottleneck_chunk: usize,
    /// Measured task count.
    pub tasks: u32,
    /// Recorded executions (empty unless requested).
    pub timeline: Vec<TimelineEvent>,
    /// Collected telemetry, if enabled.
    pub telemetry: Option<RunTelemetry>,
}

/// Projects a unified report onto the legacy clean-run shape
/// (`None` when nothing completed).
fn des_report(r: RunReport) -> Option<DesReport> {
    let stats = r.stats?;
    Some(DesReport {
        makespan: stats.makespan,
        mean_task_latency: stats.mean_task_latency,
        time_per_task: stats.time_per_task,
        throughput_hz: stats.throughput_hz,
        chunk_utilization: stats.chunk_utilization,
        bottleneck_chunk: stats.bottleneck_chunk,
        tasks: stats.tasks,
        timeline: r.timeline.into_iter().map(Into::into).collect(),
        telemetry: r.telemetry,
    })
}

/// Former faulted-simulation report; superseded by [`RunReport`], whose
/// accounting triple it mirrors.
#[deprecated(since = "0.2.0", note = "use bt_soc::RunReport")]
#[derive(Debug, Clone)]
pub struct FaultedDesReport {
    /// Steady-state measurement over completed tasks; `None` when nothing
    /// completed.
    pub report: Option<DesReport>,
    /// Tasks admitted at the pipeline head.
    pub submitted: u32,
    /// Tasks that exited the pipeline tail.
    pub completed: u32,
    /// Tasks dropped by kernel errors or PU loss.
    pub dropped: u32,
    /// Discrete fault activations observed.
    pub faults_fired: u32,
}

impl FaultedDesReport {
    /// Whether the run degraded (any task was dropped).
    pub fn degraded(&self) -> bool {
        self.dropped > 0
    }
}

impl From<RunReport> for FaultedDesReport {
    fn from(r: RunReport) -> FaultedDesReport {
        FaultedDesReport {
            submitted: r.submitted as u32,
            completed: r.completed as u32,
            dropped: r.dropped as u32,
            faults_fired: r.faults_fired,
            report: des_report(r),
        }
    }
}

/// Former faulted entry point of the static simulator.
#[deprecated(since = "0.2.0", note = "use bt_soc::des::simulate with Some(&faults)")]
pub fn simulate_faulted(
    soc: &SocSpec,
    chunks: &[ChunkSpec],
    cfg: &RunConfig,
    faults: &FaultSpec,
) -> Result<FaultedDesReport, SocError> {
    des::simulate(soc, chunks, cfg, Some(faults)).map(Into::into)
}

/// Former faulted entry point of the dynamic simulator.
#[deprecated(
    since = "0.2.0",
    note = "use bt_soc::des_dynamic::simulate_dynamic with Some(&faults)"
)]
pub fn simulate_dynamic_faulted(
    soc: &SocSpec,
    stages: &[WorkProfile],
    cfg: &RunConfig,
    policy: DynamicPolicy,
    faults: &FaultSpec,
) -> Result<FaultedDesReport, SocError> {
    des_dynamic::simulate_dynamic(soc, stages, cfg, policy, Some(faults)).map(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{StageFault, StageFaultKind};
    use crate::{devices, PuClass};

    #[test]
    fn shims_project_the_unified_report_faithfully() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![WorkProfile::new(1e7, 2e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![WorkProfile::new(8e6, 2e6)]),
        ];
        let cfg = RunConfig {
            noise_sigma: 0.0,
            ..RunConfig::default()
        };
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 9,
                stage: 0,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let unified = des::simulate(&soc, &chunks, &cfg, Some(&spec)).unwrap();
        let legacy = simulate_faulted(&soc, &chunks, &cfg, &spec).unwrap();
        assert_eq!(u64::from(legacy.submitted), unified.submitted);
        assert_eq!(u64::from(legacy.completed), unified.completed);
        assert_eq!(u64::from(legacy.dropped), unified.dropped);
        assert!(legacy.degraded());
        let (l, u) = (legacy.report.unwrap(), unified.expect_stats());
        assert_eq!(l.makespan.as_f64(), u.makespan.as_f64());
        assert_eq!(l.chunk_utilization, u.chunk_utilization);

        let dynamic =
            simulate_dynamic_faulted(&soc, &chunks[0].stages, &cfg, DynamicPolicy::Fifo, &spec)
                .unwrap();
        assert_eq!(dynamic.completed + dynamic.dropped, dynamic.submitted);
    }

    #[test]
    fn timeline_events_convert_from_spans() {
        let span = TimelineSpan {
            chunk: 2,
            stage: Some(1),
            task: 13,
            start_us: 1.0,
            end_us: 2.0,
        };
        let e = TimelineEvent::from(span);
        assert_eq!(e.chunk, 2);
        assert_eq!(e.stage, 1);
        assert_eq!(e.task, 13);
    }
}
