use serde::{Deserialize, Serialize};

use crate::{PerClass, PuClass};

/// A kernel currently executing on some other PU, as seen by the cost model.
///
/// Only two facts about a co-runner matter for contention: which cluster it
/// occupies (drives the DVFS/firmware response) and how much DRAM bandwidth
/// it demands (drives memory contention).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveKernel {
    /// The PU class the co-running kernel occupies.
    pub class: PuClass,
    /// Its DRAM bandwidth demand in GB/s (see [`crate::cost::bw_demand`]).
    pub bw_demand_gbs: f64,
}

impl ActiveKernel {
    /// Convenience constructor.
    pub fn new(class: PuClass, bw_demand_gbs: f64) -> ActiveKernel {
        ActiveKernel {
            class,
            bw_demand_gbs,
        }
    }
}

/// Per-device model of intra-application interference.
///
/// The paper (§5.3, Fig. 7) finds two distinct mechanisms on edge SoCs:
///
/// 1. **DVFS / firmware response** — opaque, per-device frequency-governor
///    behaviour triggered by system load: CPU clusters typically slow down
///    (thermal/power budget sharing), while mobile GPUs often *speed up*
///    (vendor firmware boosts GPU clocks under heavy CPU load), and the
///    OnePlus A510 cluster is boosted by a high-performance mode. This is
///    captured by a per-class latency multiplier applied whenever any other
///    PU is active. Multipliers are calibrated against Fig. 7 of the paper.
/// 2. **DRAM bandwidth contention** — the shared memory controller divides
///    bandwidth between concurrently active PUs; memory-bound stages suffer
///    more than compute-bound ones. This part is computed *dynamically* by
///    the cost model from the actual co-runner set, which is what makes
///    measured pipeline latencies deviate from any static table — the
///    effect BetterTogether's interference-aware profiling approximates and
///    its autotuning pass absorbs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    dvfs: PerClass<f64>,
    contention_strength: f64,
    /// Cross-tenant bandwidth-demand penalty, stored as the *excess* over
    /// parity (`penalty − 1`) so that payloads predating the field
    /// deserialize to parity via the plain zero default. See
    /// [`InterferenceModel::cross_tenant_penalty`] for semantics.
    #[serde(default)]
    cross_tenant_excess: f64,
}

impl InterferenceModel {
    /// A model with no interference at all: every multiplier is 1 and
    /// bandwidth contention is disabled. Useful for unit tests and for
    /// modeling idealized discrete-GPU systems.
    pub fn none() -> InterferenceModel {
        InterferenceModel {
            dvfs: PerClass::empty(),
            contention_strength: 0.0,
            cross_tenant_excess: 0.0,
        }
    }

    /// Builds a model from per-class DVFS multipliers and a bandwidth
    /// contention strength in `[0, 1]` (0 = PUs never contend for DRAM,
    /// 1 = full proportional-sharing contention).
    pub fn calibrated<const N: usize>(
        dvfs: [(PuClass, f64); N],
        contention_strength: f64,
    ) -> InterferenceModel {
        assert!(
            (0.0..=1.0).contains(&contention_strength),
            "contention strength must be in [0, 1]"
        );
        for (_, m) in &dvfs {
            assert!(*m > 0.0, "dvfs multipliers must be positive");
        }
        InterferenceModel {
            dvfs: dvfs.into_iter().collect(),
            contention_strength,
            cross_tenant_excess: 0.0,
        }
    }

    /// Sets the multiplier applied to the bandwidth demand a co-runner
    /// advertises when it belongs to a *different tenant* (co-running
    /// application). Independent apps share no working set, so their DRAM
    /// traffic can thrash each other harder (> 1) — or, for devices with
    /// effective cache partitioning, softer (< 1) — than chunks of one
    /// pipeline. Must be finite and positive.
    pub fn with_cross_tenant_penalty(mut self, penalty: f64) -> InterferenceModel {
        assert!(
            penalty.is_finite() && penalty > 0.0,
            "cross-tenant penalty must be finite and positive"
        );
        self.cross_tenant_excess = penalty - 1.0;
        self
    }

    /// The bandwidth-demand multiplier applied to co-runners from other
    /// tenants. `1.0` (the default) prices cross-tenant contention exactly
    /// like intra-app contention, preserving single-tenant behaviour bit
    /// for bit.
    pub fn cross_tenant_penalty(&self) -> f64 {
        1.0 + self.cross_tenant_excess
    }

    /// The DVFS latency multiplier for `class` when at least one other PU is
    /// busy. Returns 1.0 for classes without calibration data.
    pub fn dvfs_multiplier(&self, class: PuClass) -> f64 {
        self.dvfs.get(class).copied().unwrap_or(1.0)
    }

    /// Bandwidth contention strength in `[0, 1]`.
    pub fn contention_strength(&self) -> f64 {
        self.contention_strength
    }

    /// Computes the memory-time dilation factor for a kernel demanding
    /// `own_demand_gbs` of DRAM bandwidth while the kernels in `co_runners`
    /// are active, on a device with `dram_bw_gbs` of shared bandwidth.
    ///
    /// Under proportional sharing, when total demand exceeds capacity each
    /// client's memory phase dilates by `total / capacity`. The contention
    /// strength interpolates between no contention (1.0) and full
    /// proportional sharing.
    pub fn memory_dilation(
        &self,
        own_demand_gbs: f64,
        co_runners: &[ActiveKernel],
        dram_bw_gbs: f64,
    ) -> f64 {
        if self.contention_strength == 0.0 || co_runners.is_empty() {
            return 1.0;
        }
        let total: f64 = own_demand_gbs + co_runners.iter().map(|k| k.bw_demand_gbs).sum::<f64>();
        if total <= dram_bw_gbs {
            return 1.0;
        }
        let full = total / dram_bw_gbs;
        1.0 + self.contention_strength * (full - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let m = InterferenceModel::none();
        assert_eq!(m.dvfs_multiplier(PuClass::BigCpu), 1.0);
        let co = [ActiveKernel::new(PuClass::Gpu, 100.0)];
        assert_eq!(m.memory_dilation(100.0, &co, 10.0), 1.0);
    }

    #[test]
    fn dvfs_lookup() {
        let m = InterferenceModel::calibrated([(PuClass::Gpu, 0.86)], 0.5);
        assert_eq!(m.dvfs_multiplier(PuClass::Gpu), 0.86);
        assert_eq!(m.dvfs_multiplier(PuClass::BigCpu), 1.0);
    }

    #[test]
    fn no_dilation_when_under_capacity() {
        let m = InterferenceModel::calibrated([], 1.0);
        let co = [ActiveKernel::new(PuClass::Gpu, 4.0)];
        assert_eq!(m.memory_dilation(5.0, &co, 10.0), 1.0);
    }

    #[test]
    fn full_contention_is_proportional_sharing() {
        let m = InterferenceModel::calibrated([], 1.0);
        let co = [ActiveKernel::new(PuClass::Gpu, 15.0)];
        // total = 20, capacity = 10 -> 2x dilation
        assert!((m.memory_dilation(5.0, &co, 10.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_contention_interpolates() {
        let m = InterferenceModel::calibrated([], 0.5);
        let co = [ActiveKernel::new(PuClass::Gpu, 15.0)];
        assert!((m.memory_dilation(5.0, &co, 10.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn no_corunners_means_no_dilation() {
        let m = InterferenceModel::calibrated([], 1.0);
        assert_eq!(m.memory_dilation(50.0, &[], 10.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_multiplier_panics() {
        let _ = InterferenceModel::calibrated([(PuClass::Gpu, 0.0)], 0.5);
    }

    #[test]
    fn cross_tenant_penalty_defaults_to_parity() {
        assert_eq!(InterferenceModel::none().cross_tenant_penalty(), 1.0);
        assert_eq!(
            InterferenceModel::calibrated([], 0.5).cross_tenant_penalty(),
            1.0
        );
        let m = InterferenceModel::calibrated([], 0.5).with_cross_tenant_penalty(1.4);
        assert_eq!(m.cross_tenant_penalty(), 1.4);
        // Serde round-trip preserves it, and old payloads without the
        // field deserialize to parity.
        let json = serde_json::to_string(&m).unwrap();
        let back: InterferenceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        let legacy: InterferenceModel =
            serde_json::from_str(r#"{"dvfs":[null,null,null,null],"contention_strength":0.5}"#)
                .unwrap();
        assert_eq!(legacy.cross_tenant_penalty(), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_cross_tenant_penalty_panics() {
        let _ = InterferenceModel::calibrated([], 0.5).with_cross_tenant_penalty(0.0);
    }
}
