//! Dynamic (StarPU-style) scheduling in the simulator — the comparison
//! point of the paper's Related Work (§6): a greedy runtime that assigns
//! each ready (task, stage) to an idle PU at dispatch time instead of
//! fixing a static stage → PU map.
//!
//! Two honest costs distinguish it from BT-Implementer's static chunks:
//! every stage pays the PU's completion-synchronization cost (the runtime
//! must observe completion before making the next decision), and placement
//! uses at best *isolated* latency estimates — it cannot anticipate the
//! interference its own concurrent placements create.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::cost;
use crate::des::{steady_report_from_completions, DesConfig, DesReport};
use crate::fault::{FaultSpec, FaultedDesReport, StageFaultKind};
use crate::{ActiveKernel, Micros, NoiseModel, PuClass, PuSpec, SocError, SocSpec, WorkProfile};

/// Placement policy of the dynamic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicPolicy {
    /// Oldest ready stage goes to the first idle PU (work-conserving FIFO).
    Fifo,
    /// Oldest ready stage goes to the idle PU with the lowest *isolated*
    /// latency estimate for that stage — a HEFT-flavoured greedy heuristic.
    BestFit,
}

#[derive(Debug, PartialEq)]
struct Completion {
    time: f64,
    pu_idx: usize,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Completion) -> Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .expect("virtual time is never NaN")
            .then_with(|| other.pu_idx.cmp(&self.pu_idx))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Completion) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct Running {
    task: usize,
    stage: usize,
    demand: f64,
}

/// Simulates dynamic scheduling of `stages` (per-task, in order) over all
/// schedulable PUs of `soc`.
///
/// # Errors
///
/// Returns [`SocError::EmptySimulation`] for empty inputs.
pub fn simulate_dynamic(
    soc: &SocSpec,
    stages: &[WorkProfile],
    cfg: &DesConfig,
    policy: DynamicPolicy,
) -> Result<DesReport, SocError> {
    if stages.is_empty() || cfg.tasks == 0 {
        return Err(SocError::EmptySimulation);
    }
    let pus: Vec<PuClass> = soc.schedulable_classes();
    if pus.is_empty() {
        return Err(SocError::EmptyDevice);
    }

    let total = (cfg.tasks + cfg.warmup) as usize;
    let in_flight_cap = if cfg.buffers == 0 {
        pus.len() + 1
    } else {
        cfg.buffers as usize
    };
    let mut noise = NoiseModel::new(cfg.noise_sigma, cfg.seed);

    // (task, next stage) ready entries in FIFO (task-seq) order.
    let mut ready: std::collections::VecDeque<(usize, usize)> = std::collections::VecDeque::new();
    let mut running: Vec<Option<Running>> = vec![None; pus.len()];
    let mut busy_since = vec![0.0f64; pus.len()];
    // (start, end) busy intervals per PU, clipped to the measurement
    // window once it is known.
    let mut busy_spans: Vec<Vec<(f64, f64)>> = vec![Vec::new(); pus.len()];
    let mut entry_time = vec![0.0f64; total];
    let mut exit_time = vec![0.0f64; total];
    let mut admitted = 0usize;
    let mut completed = 0usize;
    let mut in_flight = 0usize;
    let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
    let mut now = 0.0f64;

    // Hoisted per-dispatch state: PU specs resolved once, the placement
    // heuristic's isolated estimates and the advertised bandwidth demands
    // precomputed as (stage × PU) tables (both are busy-set independent),
    // and one reusable co-runner scratch buffer.
    let pu_specs: Vec<&PuSpec> = pus
        .iter()
        .map(|&c| soc.pu(c).expect("schedulable class present"))
        .collect();
    let isolated: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| {
            pu_specs
                .iter()
                .map(|pu| cost::latency_under(w, pu, soc, &[]).as_f64())
                .collect()
        })
        .collect();
    let demands: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| pu_specs.iter().map(|pu| cost::bw_demand(w, pu)).collect())
        .collect();
    let mut co: Vec<ActiveKernel> = Vec::with_capacity(pus.len());

    loop {
        // Admit new tasks while the window allows.
        while admitted < total && in_flight < in_flight_cap {
            entry_time[admitted] = now;
            ready.push_back((admitted, 0));
            admitted += 1;
            in_flight += 1;
        }

        // Dispatch ready stages onto idle PUs.
        while let Some(&(task, stage)) = ready.front() {
            let mut idle = (0..pus.len()).filter(|&i| running[i].is_none());
            let pu_idx = match policy {
                DynamicPolicy::Fifo => idle.next(),
                DynamicPolicy::BestFit => idle.min_by(|&a, &b| {
                    isolated[stage][a]
                        .partial_cmp(&isolated[stage][b])
                        .expect("finite estimates")
                }),
            };
            let Some(pu_idx) = pu_idx else {
                break;
            };
            ready.pop_front();
            let pu = pu_specs[pu_idx];
            co.clear();
            co.extend(
                running
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|r| ActiveKernel::new(pus[i], r.demand))),
            );
            // Dynamic runtimes synchronize after every stage.
            let dt = cost::latency_under(&stages[stage], pu, soc, &co).as_f64() * noise.factor()
                + pu.sync_overhead_us();
            let demand = demands[stage][pu_idx];
            running[pu_idx] = Some(Running {
                task,
                stage,
                demand,
            });
            busy_since[pu_idx] = now;
            heap.push(Completion {
                time: now + dt,
                pu_idx,
            });
        }

        if completed >= total {
            break;
        }
        let Some(done) = heap.pop() else {
            debug_assert!(completed >= total, "no pending work but tasks remain");
            break;
        };
        now = done.time;
        let fin = running[done.pu_idx]
            .take()
            .expect("completion implies running");
        busy_spans[done.pu_idx].push((busy_since[done.pu_idx], now));
        if fin.stage + 1 < stages.len() {
            // Preserve FIFO order by task sequence.
            let pos = ready
                .iter()
                .position(|&(t, _)| t > fin.task)
                .unwrap_or(ready.len());
            ready.insert(pos, (fin.task, fin.stage + 1));
        } else {
            exit_time[fin.task] = now;
            completed += 1;
            in_flight -= 1;
        }
    }

    // Same departure-to-departure steady-state convention as the static
    // simulator and the host executor (see `des::simulate`).
    let measure_from = cfg.warmup as usize;
    let (w_start, departures) = if measure_from > 0 {
        (exit_time[measure_from - 1], cfg.tasks as f64)
    } else if total > 1 {
        (exit_time[0], (cfg.tasks - 1) as f64)
    } else {
        (entry_time[0], 1.0)
    };
    let w_end = exit_time[total - 1];
    let makespan = (w_end - w_start).max(1e-9);
    let mean_latency = exit_time[measure_from..]
        .iter()
        .zip(&entry_time[measure_from..])
        .map(|(x, e)| x - e)
        .sum::<f64>()
        / cfg.tasks as f64;
    let chunk_utilization: Vec<f64> = busy_spans
        .iter()
        .map(|spans| {
            let in_window: f64 = spans
                .iter()
                .map(|&(t0, t1)| (t1.min(w_end) - t0.max(w_start)).max(0.0))
                .sum();
            in_window / makespan
        })
        .collect();
    let bottleneck_chunk = chunk_utilization
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0);

    Ok(DesReport {
        makespan: Micros::new(makespan),
        mean_task_latency: Micros::new(mean_latency),
        time_per_task: Micros::new(makespan / departures.max(1.0)),
        throughput_hz: departures.max(1.0) / (makespan / 1e6),
        chunk_utilization,
        bottleneck_chunk,
        tasks: cfg.tasks,
        timeline: Vec::new(),
        telemetry: None,
    })
}

/// Simulates dynamic scheduling of `stages` under the perturbations in
/// `faults` — the faulted counterpart of [`simulate_dynamic`].
///
/// The dynamic runtime has no chunk identity, so stragglers match on
/// `task` alone and stage faults on `(task, stage)` (the `*_any_chunk`
/// lookups of [`FaultSpec`]). Where the static pipeline drains and
/// degrades on PU loss, the dynamic scheduler *routes around* it: lost PUs
/// leave the idle set, in-flight work on them dies at the loss instant,
/// and only work that no surviving PU can serve is dropped.
///
/// # Errors
///
/// Same validation as [`simulate_dynamic`].
pub fn simulate_dynamic_faulted(
    soc: &SocSpec,
    stages: &[WorkProfile],
    cfg: &DesConfig,
    policy: DynamicPolicy,
    faults: &FaultSpec,
) -> Result<FaultedDesReport, SocError> {
    if stages.is_empty() || cfg.tasks == 0 {
        return Err(SocError::EmptySimulation);
    }
    let pus: Vec<PuClass> = soc.schedulable_classes();
    if pus.is_empty() {
        return Err(SocError::EmptyDevice);
    }

    let total = (cfg.tasks + cfg.warmup) as usize;
    let in_flight_cap = if cfg.buffers == 0 {
        pus.len() + 1
    } else {
        cfg.buffers as usize
    };
    let mut noise = NoiseModel::new(cfg.noise_sigma, cfg.seed);

    let mut ready: std::collections::VecDeque<(usize, usize)> = std::collections::VecDeque::new();
    let mut running: Vec<Option<Running>> = vec![None; pus.len()];
    let mut doomed = vec![false; pus.len()];
    let mut busy_since = vec![0.0f64; pus.len()];
    let mut busy_spans: Vec<Vec<(f64, f64)>> = vec![Vec::new(); pus.len()];
    let mut entry_time = vec![0.0f64; total];
    // `(task, entry, exit)`; sorted by task before windowing, because the
    // dynamic runtime can complete tasks out of sequence order while the
    // steady-state convention (shared with `des::simulate`) anchors on
    // task-order departures.
    let mut completions: Vec<(usize, f64, f64)> = Vec::with_capacity(total);
    let mut admitted = 0usize;
    let mut completed = 0usize;
    let mut dropped = 0usize;
    let mut faults_fired = 0u32;
    let mut in_flight = 0usize;
    let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
    let mut now = 0.0f64;

    let pu_specs: Vec<&PuSpec> = pus
        .iter()
        .map(|&c| soc.pu(c).expect("schedulable class present"))
        .collect();
    let loss: Vec<Option<f64>> = pus.iter().map(|&c| faults.loss_at(c)).collect();
    let isolated: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| {
            pu_specs
                .iter()
                .map(|pu| cost::latency_under(w, pu, soc, &[]).as_f64())
                .collect()
        })
        .collect();
    let demands: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| pu_specs.iter().map(|pu| cost::bw_demand(w, pu)).collect())
        .collect();
    let mut co: Vec<ActiveKernel> = Vec::with_capacity(pus.len());

    loop {
        while admitted < total && in_flight < in_flight_cap {
            entry_time[admitted] = now;
            ready.push_back((admitted, 0));
            admitted += 1;
            in_flight += 1;
        }

        while let Some(&(task, stage)) = ready.front() {
            // Kernel errors kill the stage before it runs anywhere.
            if matches!(
                faults.stage_fault_any_chunk(task, stage),
                Some(StageFaultKind::Error)
            ) {
                ready.pop_front();
                faults_fired += 1;
                dropped += 1;
                in_flight -= 1;
                continue;
            }
            // Lost PUs leave the idle set: the scheduler routes around them.
            let mut idle = (0..pus.len())
                .filter(|&i| running[i].is_none() && !loss[i].is_some_and(|t| now >= t));
            let pu_idx = match policy {
                DynamicPolicy::Fifo => idle.next(),
                DynamicPolicy::BestFit => idle.min_by(|&a, &b| {
                    isolated[stage][a]
                        .partial_cmp(&isolated[stage][b])
                        .expect("finite estimates")
                }),
            };
            let Some(pu_idx) = pu_idx else {
                break;
            };
            ready.pop_front();
            let pu = pu_specs[pu_idx];
            co.clear();
            co.extend(
                running
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|r| ActiveKernel::new(pus[i], r.demand))),
            );
            let straggle = faults.straggler_factor_any_chunk(task);
            if stage == 0 && straggle != 1.0 {
                faults_fired += 1;
            }
            let mut dt = (cost::latency_under(&stages[stage], pu, soc, &co).as_f64()
                * noise.factor()
                + pu.sync_overhead_us())
                * faults.slowdown_factor(pus[pu_idx], now)
                * straggle;
            if let Some(StageFaultKind::Timeout { extra_us }) =
                faults.stage_fault_any_chunk(task, stage)
            {
                dt += extra_us;
                faults_fired += 1;
            }
            let mut end = now + dt;
            if let Some(t_loss) = loss[pu_idx] {
                if end > t_loss {
                    // The PU dies mid-service; the stage ends there, doomed.
                    end = t_loss;
                    doomed[pu_idx] = true;
                }
            }
            let demand = demands[stage][pu_idx];
            running[pu_idx] = Some(Running {
                task,
                stage,
                demand,
            });
            busy_since[pu_idx] = now;
            heap.push(Completion { time: end, pu_idx });
        }

        if completed + dropped >= total {
            break;
        }
        let Some(done) = heap.pop() else {
            // Nothing is running and nothing could be placed: every
            // surviving placement target is gone. Remaining work drops.
            let stranded = ready.len() + (total - admitted);
            dropped += stranded;
            faults_fired += stranded as u32;
            ready.clear();
            break;
        };
        now = done.time;
        let fin = running[done.pu_idx]
            .take()
            .expect("completion implies running");
        busy_spans[done.pu_idx].push((busy_since[done.pu_idx], now));
        if doomed[done.pu_idx] {
            // Died with the PU at its loss instant.
            doomed[done.pu_idx] = false;
            faults_fired += 1;
            dropped += 1;
            in_flight -= 1;
        } else if fin.stage + 1 < stages.len() {
            let pos = ready
                .iter()
                .position(|&(t, _)| t > fin.task)
                .unwrap_or(ready.len());
            ready.insert(pos, (fin.task, fin.stage + 1));
        } else {
            completions.push((fin.task, entry_time[fin.task], now));
            completed += 1;
            in_flight -= 1;
        }
    }

    debug_assert_eq!(completed + dropped, total);
    completions.sort_unstable_by_key(|&(task, _, _)| task);
    let ordered: Vec<(f64, f64)> = completions.iter().map(|&(_, e, x)| (e, x)).collect();
    let spans: Vec<&[(f64, f64)]> = busy_spans.iter().map(|s| s.as_slice()).collect();
    let report = steady_report_from_completions(&ordered, cfg.warmup as usize, &spans);
    Ok(FaultedDesReport {
        report,
        submitted: total as u32,
        completed: completed as u32,
        dropped: dropped as u32,
        faults_fired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    fn stages() -> Vec<WorkProfile> {
        vec![
            WorkProfile::new(1e7, 2e6),
            WorkProfile::new(2e7, 4e6),
            WorkProfile::new(5e6, 1e6),
        ]
    }

    fn cfg() -> DesConfig {
        DesConfig {
            noise_sigma: 0.0,
            ..DesConfig::default()
        }
    }

    #[test]
    fn both_policies_complete_all_tasks() {
        let soc = devices::pixel_7a();
        for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
            let r = simulate_dynamic(&soc, &stages(), &cfg(), policy).expect("simulates");
            assert_eq!(r.tasks, 30);
            assert!(r.time_per_task.as_f64() > 0.0);
            assert_eq!(r.chunk_utilization.len(), 4, "one entry per schedulable PU");
        }
    }

    #[test]
    fn best_fit_beats_fifo_on_heterogeneous_work() {
        // A stage mix with a strongly GPU-hostile stage: FIFO will sometimes
        // place it on the GPU, BestFit won't.
        let soc = devices::pixel_7a();
        let mixed = vec![
            WorkProfile::new(3e7, 5e6), // regular
            WorkProfile::new(1e7, 8e6)
                .with_divergence(0.9)
                .with_irregularity(0.8), // GPU-hostile
        ];
        let fifo = simulate_dynamic(&soc, &mixed, &cfg(), DynamicPolicy::Fifo).expect("simulates");
        let fit =
            simulate_dynamic(&soc, &mixed, &cfg(), DynamicPolicy::BestFit).expect("simulates");
        assert!(
            fit.time_per_task.as_f64() <= fifo.time_per_task.as_f64() * 1.05,
            "best-fit {} should not lose to fifo {}",
            fit.time_per_task,
            fifo.time_per_task
        );
    }

    #[test]
    fn oneplus_excludes_unpinnable_littles() {
        let soc = devices::oneplus_11();
        let r =
            simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::BestFit).expect("simulates");
        assert_eq!(r.chunk_utilization.len(), 3, "little cluster is unpinnable");
    }

    #[test]
    fn empty_inputs_rejected() {
        let soc = devices::pixel_7a();
        assert!(simulate_dynamic(&soc, &[], &cfg(), DynamicPolicy::Fifo).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let soc = devices::jetson_orin_nano();
        let a = simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::BestFit).unwrap();
        let b = simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::BestFit).unwrap();
        assert_eq!(a.makespan.as_f64(), b.makespan.as_f64());
    }

    // ------------------------- faulted variant -------------------------

    use crate::fault::{FaultSpec, PuLoss, StageFault, StageFaultKind};

    #[test]
    fn empty_spec_matches_simulate_dynamic() {
        let soc = devices::pixel_7a();
        let cfg = DesConfig {
            noise_sigma: 0.03,
            seed: 5,
            ..cfg()
        };
        for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
            let plain = simulate_dynamic(&soc, &stages(), &cfg, policy).unwrap();
            let faulted =
                simulate_dynamic_faulted(&soc, &stages(), &cfg, policy, &FaultSpec::none())
                    .unwrap();
            assert_eq!(faulted.dropped, 0);
            assert_eq!(faulted.completed, faulted.submitted);
            let r = faulted.report.expect("completes");
            assert_eq!(r.makespan.as_f64(), plain.makespan.as_f64());
            assert_eq!(r.time_per_task.as_f64(), plain.time_per_task.as_f64());
            assert_eq!(r.chunk_utilization, plain.chunk_utilization);
        }
    }

    #[test]
    fn dynamic_scheduler_routes_around_pu_loss() {
        let soc = devices::pixel_7a();
        let base = simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::BestFit).unwrap();
        // Lose the GPU halfway through the run: at most the in-flight
        // stage dies; everything else lands on surviving PUs.
        let spec = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::Gpu,
                at_us: base.makespan.as_f64() / 2.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_dynamic_faulted(&soc, &stages(), &cfg(), DynamicPolicy::BestFit, &spec)
            .unwrap();
        assert_eq!(r.completed + r.dropped, r.submitted);
        assert!(r.dropped <= 1, "only in-flight work may die: {}", r.dropped);
        assert!(r.report.is_some());
    }

    #[test]
    fn losing_every_pu_drops_everything() {
        let soc = devices::pixel_7a();
        let losses = soc
            .schedulable_classes()
            .into_iter()
            .map(|class| PuLoss { class, at_us: 0.0 })
            .collect();
        let spec = FaultSpec {
            losses,
            ..FaultSpec::default()
        };
        let r =
            simulate_dynamic_faulted(&soc, &stages(), &cfg(), DynamicPolicy::Fifo, &spec).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.dropped, r.submitted);
        assert!(r.report.is_none());
    }

    #[test]
    fn faulted_dynamic_runs_are_deterministic() {
        let soc = devices::jetson_orin_nano();
        let cfg = DesConfig {
            noise_sigma: 0.05,
            seed: 11,
            ..cfg()
        };
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 4,
                stage: 1,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let a =
            simulate_dynamic_faulted(&soc, &stages(), &cfg, DynamicPolicy::BestFit, &spec).unwrap();
        let b =
            simulate_dynamic_faulted(&soc, &stages(), &cfg, DynamicPolicy::BestFit, &spec).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.dropped, 1);
    }
}
