//! Dynamic (StarPU-style) scheduling in the simulator — the comparison
//! point of the paper's Related Work (§6): a greedy runtime that assigns
//! each ready (task, stage) to an idle PU at dispatch time instead of
//! fixing a static stage → PU map.
//!
//! Two honest costs distinguish it from BT-Implementer's static chunks:
//! every stage pays the PU's completion-synchronization cost (the runtime
//! must observe completion before making the next decision), and placement
//! uses at best *isolated* latency estimates — it cannot anticipate the
//! interference its own concurrent placements create.
//!
//! Like [`crate::des::simulate`], one engine serves both fault-free and
//! faulted runs via an `Option<&FaultSpec>` mode parameter. The dynamic
//! runtime has no chunk identity, so stragglers match on `task` alone and
//! stage faults on `(task, stage)` (the `*_any_chunk` lookups of
//! [`FaultSpec`]). Where the static pipeline drains and degrades on PU
//! loss, the dynamic scheduler *routes around* it: lost PUs leave the idle
//! set, in-flight work on them dies at the loss instant, and only work
//! that no surviving PU can serve is dropped.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::cost;
use crate::des::steady_stats_from_completions;
use crate::fault::{FaultSpec, StageFaultKind};
use crate::run::{RunConfig, RunReport};
use crate::{ActiveKernel, NoiseModel, PuClass, PuSpec, SocError, SocSpec, WorkProfile};

/// Placement policy of the dynamic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicPolicy {
    /// Oldest ready stage goes to the first idle PU (work-conserving FIFO).
    Fifo,
    /// Oldest ready stage goes to the idle PU with the lowest *isolated*
    /// latency estimate for that stage — a HEFT-flavoured greedy heuristic.
    BestFit,
}

#[derive(Debug, PartialEq)]
struct Completion {
    time: f64,
    pu_idx: usize,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Completion) -> Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .expect("virtual time is never NaN")
            .then_with(|| other.pu_idx.cmp(&self.pu_idx))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Completion) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct Running {
    task: usize,
    stage: usize,
    demand: f64,
}

/// Simulates dynamic scheduling of `stages` (per-task, in order) over all
/// schedulable PUs of `soc`, optionally under the perturbations in
/// `faults` (`None` skips every fault lookup and is bit-identical to an
/// empty spec).
///
/// # Errors
///
/// Returns [`SocError::EmptySimulation`] for empty inputs and
/// [`SocError::EmptyDevice`] when the device has no schedulable PU.
pub fn simulate_dynamic(
    soc: &SocSpec,
    stages: &[WorkProfile],
    cfg: &RunConfig,
    policy: DynamicPolicy,
    faults: Option<&FaultSpec>,
) -> Result<RunReport, SocError> {
    if stages.is_empty() || cfg.tasks == 0 {
        return Err(SocError::EmptySimulation);
    }
    let pus: Vec<PuClass> = soc.schedulable_classes();
    if pus.is_empty() {
        return Err(SocError::EmptyDevice);
    }

    let total = (cfg.tasks + cfg.warmup) as usize;
    let in_flight_cap = if cfg.buffers == 0 {
        pus.len() + 1
    } else {
        cfg.buffers as usize
    };
    let mut noise = NoiseModel::new(cfg.noise_sigma, cfg.seed);

    // (task, next stage) ready entries in FIFO (task-seq) order.
    let mut ready: std::collections::VecDeque<(usize, usize)> = std::collections::VecDeque::new();
    let mut running: Vec<Option<Running>> = vec![None; pus.len()];
    // The PU's in-flight stage dies at its (loss-clamped) completion.
    let mut doomed = vec![false; pus.len()];
    let mut busy_since = vec![0.0f64; pus.len()];
    // (start, end) busy intervals per PU, clipped to the measurement
    // window once it is known.
    let mut busy_spans: Vec<Vec<(f64, f64)>> = vec![Vec::new(); pus.len()];
    let mut entry_time = vec![0.0f64; total];
    // `(task, entry, exit)`; sorted by task before windowing, because the
    // dynamic runtime can complete tasks out of sequence order while the
    // steady-state convention (shared with `des::simulate`) anchors on
    // task-order departures.
    let mut completions: Vec<(usize, f64, f64)> = Vec::with_capacity(total);
    let mut admitted = 0usize;
    let mut completed = 0usize;
    let mut dropped = 0usize;
    let mut faults_fired = 0u32;
    let mut in_flight = 0usize;
    let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
    let mut now = 0.0f64;

    // Hoisted per-dispatch state: PU specs resolved once, the placement
    // heuristic's isolated estimates and the advertised bandwidth demands
    // precomputed as (stage × PU) tables (both are busy-set independent),
    // and one reusable co-runner scratch buffer.
    let pu_specs: Vec<&PuSpec> = pus
        .iter()
        .map(|&c| soc.pu(c).expect("schedulable class present"))
        .collect();
    let loss: Vec<Option<f64>> = match faults {
        Some(f) => pus.iter().map(|&c| f.loss_at(c)).collect(),
        None => vec![None; pus.len()],
    };
    let isolated: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| {
            pu_specs
                .iter()
                .map(|pu| cost::latency_under(w, pu, soc, &[]).as_f64())
                .collect()
        })
        .collect();
    let demands: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| pu_specs.iter().map(|pu| cost::bw_demand(w, pu)).collect())
        .collect();
    let mut co: Vec<ActiveKernel> = Vec::with_capacity(pus.len());

    loop {
        // Admit new tasks while the window allows.
        while admitted < total && in_flight < in_flight_cap {
            entry_time[admitted] = now;
            ready.push_back((admitted, 0));
            admitted += 1;
            in_flight += 1;
        }

        // Dispatch ready stages onto idle PUs.
        while let Some(&(task, stage)) = ready.front() {
            // Kernel errors kill the stage before it runs anywhere.
            if faults.is_some_and(|f| {
                matches!(
                    f.stage_fault_any_chunk(task, stage),
                    Some(StageFaultKind::Error)
                )
            }) {
                ready.pop_front();
                faults_fired += 1;
                dropped += 1;
                in_flight -= 1;
                continue;
            }
            // Lost PUs leave the idle set: the scheduler routes around them.
            let mut idle = (0..pus.len())
                .filter(|&i| running[i].is_none() && !loss[i].is_some_and(|t| now >= t));
            let pu_idx = match policy {
                DynamicPolicy::Fifo => idle.next(),
                DynamicPolicy::BestFit => {
                    idle.min_by(|&a, &b| isolated[stage][a].total_cmp(&isolated[stage][b]))
                }
            };
            let Some(pu_idx) = pu_idx else {
                break;
            };
            ready.pop_front();
            let pu = pu_specs[pu_idx];
            co.clear();
            co.extend(
                running
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|r| ActiveKernel::new(pus[i], r.demand))),
            );
            // Dynamic runtimes synchronize after every stage.
            let base = cost::latency_under(&stages[stage], pu, soc, &co).as_f64() * noise.factor()
                + pu.sync_overhead_us();
            let mut dt = base;
            if let Some(spec) = faults {
                let straggle = spec.straggler_factor_any_chunk(task);
                if stage == 0 && straggle != 1.0 {
                    faults_fired += 1;
                }
                dt = base * spec.slowdown_factor(pus[pu_idx], now) * straggle;
                if let Some(StageFaultKind::Timeout { extra_us }) =
                    spec.stage_fault_any_chunk(task, stage)
                {
                    dt += extra_us;
                    faults_fired += 1;
                }
            }
            let mut end = now + dt;
            if let Some(t_loss) = loss[pu_idx] {
                if end > t_loss {
                    // The PU dies mid-service; the stage ends there, doomed.
                    end = t_loss;
                    doomed[pu_idx] = true;
                }
            }
            let demand = demands[stage][pu_idx];
            running[pu_idx] = Some(Running {
                task,
                stage,
                demand,
            });
            busy_since[pu_idx] = now;
            heap.push(Completion { time: end, pu_idx });
        }

        if completed + dropped >= total {
            break;
        }
        let Some(done) = heap.pop() else {
            // Nothing is running and nothing could be placed: every
            // surviving placement target is gone (unreachable without
            // faults). Remaining work drops.
            let stranded = ready.len() + (total - admitted);
            debug_assert!(faults.is_some() || stranded == 0, "clean run stranded work");
            dropped += stranded;
            faults_fired += stranded as u32;
            ready.clear();
            break;
        };
        now = done.time;
        let fin = running[done.pu_idx]
            .take()
            .expect("completion implies running");
        busy_spans[done.pu_idx].push((busy_since[done.pu_idx], now));
        if doomed[done.pu_idx] {
            // Died with the PU at its loss instant.
            doomed[done.pu_idx] = false;
            faults_fired += 1;
            dropped += 1;
            in_flight -= 1;
        } else if fin.stage + 1 < stages.len() {
            // Preserve FIFO order by task sequence.
            let pos = ready
                .iter()
                .position(|&(t, _)| t > fin.task)
                .unwrap_or(ready.len());
            ready.insert(pos, (fin.task, fin.stage + 1));
        } else {
            completions.push((fin.task, entry_time[fin.task], now));
            completed += 1;
            in_flight -= 1;
        }
    }

    debug_assert_eq!(completed + dropped, total);
    completions.sort_unstable_by_key(|&(task, _, _)| task);
    let ordered: Vec<(f64, f64)> = completions.iter().map(|&(_, e, x)| (e, x)).collect();
    let spans: Vec<&[(f64, f64)]> = busy_spans.iter().map(|s| s.as_slice()).collect();
    // Same departure-to-departure steady-state convention as the static
    // simulator and the host executor (see `des::simulate`).
    let stats = steady_stats_from_completions(&ordered, cfg.warmup as usize, &spans);
    Ok(RunReport {
        submitted: total as u64,
        completed: completed as u64,
        dropped: dropped as u64,
        faults_fired,
        stats,
        timeline: Vec::new(),
        telemetry: None,
        degraded: None,
    })
}

/// Simulates dynamic scheduling where each task's stages form a DAG given
/// by `deps` (edges `(from, to)` over stage indices) instead of a linear
/// chain: a stage becomes ready once every predecessor stage of the *same
/// task* has completed, so sibling branches of one task can occupy
/// distinct PUs concurrently. A task completes when all of its stages
/// have; a kernel error or PU death on any stage kills the whole task
/// (its other in-flight stages finish but their results are discarded).
///
/// Chain-shaped `deps` — exactly the edges `(i, i + 1)` — delegate to
/// [`simulate_dynamic`] and are bit-identical to it.
///
/// # Errors
///
/// Returns [`SocError::BadDag`] for out-of-range or self-loop edges and
/// for cyclic dependencies, plus everything [`simulate_dynamic`] rejects.
pub fn simulate_dynamic_dag(
    soc: &SocSpec,
    stages: &[WorkProfile],
    deps: &[(usize, usize)],
    cfg: &RunConfig,
    policy: DynamicPolicy,
    faults: Option<&FaultSpec>,
) -> Result<RunReport, SocError> {
    if stages.is_empty() || cfg.tasks == 0 {
        return Err(SocError::EmptySimulation);
    }
    let n = stages.len();
    let mut edges: Vec<(usize, usize)> = deps.to_vec();
    edges.sort_unstable();
    edges.dedup();
    for &(from, to) in &edges {
        if from >= n || to >= n || from == to {
            return Err(SocError::BadDag {
                reason: format!("edge ({from}, {to}) is invalid for {n} stages"),
            });
        }
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in &edges {
        preds[to].push(from);
        succs[from].push(to);
    }
    {
        // Kahn pass purely for cycle detection.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&s| indeg[s] == 0).collect();
        let mut seen = 0usize;
        while let Some(s) = queue.pop() {
            seen += 1;
            for &t in &succs[s] {
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        if seen != n {
            return Err(SocError::BadDag {
                reason: "stage dependencies contain a cycle".into(),
            });
        }
    }
    let chain = edges.len() == n.saturating_sub(1)
        && edges
            .iter()
            .enumerate()
            .all(|(i, &(f, t))| f == i && t == i + 1);
    if chain {
        // The degenerate chain runs through the original engine verbatim.
        return simulate_dynamic(soc, stages, cfg, policy, faults);
    }

    let pus: Vec<PuClass> = soc.schedulable_classes();
    if pus.is_empty() {
        return Err(SocError::EmptyDevice);
    }
    let total = (cfg.tasks + cfg.warmup) as usize;
    let in_flight_cap = if cfg.buffers == 0 {
        pus.len() + 1
    } else {
        cfg.buffers as usize
    };
    let mut noise = NoiseModel::new(cfg.noise_sigma, cfg.seed);

    let sources: Vec<usize> = (0..n).filter(|&s| preds[s].is_empty()).collect();
    // Stragglers are a per-task phenomenon; charge the factor on every
    // stage but count the fault once, at the task's first source stage.
    let straggle_stage = sources[0];
    let pred_count: Vec<u32> = preds.iter().map(|p| p.len() as u32).collect();

    // `ready` stays sorted by (task, stage): admissions append increasing
    // task numbers and unblocked stages insert at their lexicographic slot,
    // so FIFO dispatch remains deterministic.
    let mut ready: std::collections::VecDeque<(usize, usize)> = std::collections::VecDeque::new();
    let mut running: Vec<Option<Running>> = vec![None; pus.len()];
    let mut doomed = vec![false; pus.len()];
    let mut busy_since = vec![0.0f64; pus.len()];
    let mut busy_spans: Vec<Vec<(f64, f64)>> = vec![Vec::new(); pus.len()];
    let mut entry_time = vec![0.0f64; total];
    let mut completions: Vec<(usize, f64, f64)> = Vec::with_capacity(total);
    // Per-task DAG bookkeeping: outstanding predecessor counts per stage,
    // stages left until the task is done, and a tombstone for killed tasks.
    let mut waiting: Vec<Vec<u32>> = vec![pred_count.clone(); total];
    let mut remaining: Vec<u32> = vec![n as u32; total];
    let mut dead = vec![false; total];
    let mut admitted = 0usize;
    let mut completed = 0usize;
    let mut dropped = 0usize;
    let mut faults_fired = 0u32;
    let mut in_flight = 0usize;
    let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
    let mut now = 0.0f64;

    let pu_specs: Vec<&PuSpec> = pus
        .iter()
        .map(|&c| soc.pu(c).expect("schedulable class present"))
        .collect();
    let loss: Vec<Option<f64>> = match faults {
        Some(f) => pus.iter().map(|&c| f.loss_at(c)).collect(),
        None => vec![None; pus.len()],
    };
    let isolated: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| {
            pu_specs
                .iter()
                .map(|pu| cost::latency_under(w, pu, soc, &[]).as_f64())
                .collect()
        })
        .collect();
    let demands: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| pu_specs.iter().map(|pu| cost::bw_demand(w, pu)).collect())
        .collect();
    let mut co: Vec<ActiveKernel> = Vec::with_capacity(pus.len());

    loop {
        while admitted < total && in_flight < in_flight_cap {
            entry_time[admitted] = now;
            for &s in &sources {
                ready.push_back((admitted, s));
            }
            admitted += 1;
            in_flight += 1;
        }

        while let Some(&(task, stage)) = ready.front() {
            if dead[task] {
                // A sibling stage already killed this task.
                ready.pop_front();
                continue;
            }
            if faults.is_some_and(|f| {
                matches!(
                    f.stage_fault_any_chunk(task, stage),
                    Some(StageFaultKind::Error)
                )
            }) {
                ready.pop_front();
                faults_fired += 1;
                dropped += 1;
                in_flight -= 1;
                dead[task] = true;
                continue;
            }
            let mut idle = (0..pus.len())
                .filter(|&i| running[i].is_none() && !loss[i].is_some_and(|t| now >= t));
            let pu_idx = match policy {
                DynamicPolicy::Fifo => idle.next(),
                DynamicPolicy::BestFit => {
                    idle.min_by(|&a, &b| isolated[stage][a].total_cmp(&isolated[stage][b]))
                }
            };
            let Some(pu_idx) = pu_idx else {
                break;
            };
            ready.pop_front();
            let pu = pu_specs[pu_idx];
            co.clear();
            co.extend(
                running
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|r| ActiveKernel::new(pus[i], r.demand))),
            );
            let base = cost::latency_under(&stages[stage], pu, soc, &co).as_f64() * noise.factor()
                + pu.sync_overhead_us();
            let mut dt = base;
            if let Some(spec) = faults {
                let straggle = spec.straggler_factor_any_chunk(task);
                if stage == straggle_stage && straggle != 1.0 {
                    faults_fired += 1;
                }
                dt = base * spec.slowdown_factor(pus[pu_idx], now) * straggle;
                if let Some(StageFaultKind::Timeout { extra_us }) =
                    spec.stage_fault_any_chunk(task, stage)
                {
                    dt += extra_us;
                    faults_fired += 1;
                }
            }
            let mut end = now + dt;
            if let Some(t_loss) = loss[pu_idx] {
                if end > t_loss {
                    end = t_loss;
                    doomed[pu_idx] = true;
                }
            }
            let demand = demands[stage][pu_idx];
            running[pu_idx] = Some(Running {
                task,
                stage,
                demand,
            });
            busy_since[pu_idx] = now;
            heap.push(Completion { time: end, pu_idx });
        }

        if completed + dropped >= total {
            break;
        }
        let Some(done) = heap.pop() else {
            // No surviving PU can serve the remaining work. Every admitted
            // task that is neither finished nor already tombstoned strands,
            // along with everything not yet admitted.
            let stranded = (0..admitted)
                .filter(|&t| !dead[t] && remaining[t] > 0)
                .count()
                + (total - admitted);
            debug_assert!(faults.is_some() || stranded == 0, "clean run stranded work");
            dropped += stranded;
            faults_fired += stranded as u32;
            ready.clear();
            break;
        };
        now = done.time;
        let fin = running[done.pu_idx]
            .take()
            .expect("completion implies running");
        busy_spans[done.pu_idx].push((busy_since[done.pu_idx], now));
        if doomed[done.pu_idx] {
            doomed[done.pu_idx] = false;
            faults_fired += 1;
            if !dead[fin.task] {
                dead[fin.task] = true;
                dropped += 1;
                in_flight -= 1;
            }
        } else if !dead[fin.task] {
            remaining[fin.task] -= 1;
            for &succ in &succs[fin.stage] {
                waiting[fin.task][succ] -= 1;
                if waiting[fin.task][succ] == 0 {
                    let pos = ready
                        .iter()
                        .position(|&e| e > (fin.task, succ))
                        .unwrap_or(ready.len());
                    ready.insert(pos, (fin.task, succ));
                }
            }
            if remaining[fin.task] == 0 {
                completions.push((fin.task, entry_time[fin.task], now));
                completed += 1;
                in_flight -= 1;
            }
        }
        // Completions of stages belonging to a tombstoned task are
        // discarded: the busy span is real, the result is not.
    }

    debug_assert_eq!(completed + dropped, total);
    completions.sort_unstable_by_key(|&(task, _, _)| task);
    let ordered: Vec<(f64, f64)> = completions.iter().map(|&(_, e, x)| (e, x)).collect();
    let spans: Vec<&[(f64, f64)]> = busy_spans.iter().map(|s| s.as_slice()).collect();
    let stats = steady_stats_from_completions(&ordered, cfg.warmup as usize, &spans);
    Ok(RunReport {
        submitted: total as u64,
        completed: completed as u64,
        dropped: dropped as u64,
        faults_fired,
        stats,
        timeline: Vec::new(),
        telemetry: None,
        degraded: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use crate::run::RunStats;

    fn stages() -> Vec<WorkProfile> {
        vec![
            WorkProfile::new(1e7, 2e6),
            WorkProfile::new(2e7, 4e6),
            WorkProfile::new(5e6, 1e6),
        ]
    }

    fn cfg() -> RunConfig {
        RunConfig {
            noise_sigma: 0.0,
            ..RunConfig::default()
        }
    }

    fn stats(
        soc: &SocSpec,
        work: &[WorkProfile],
        cfg: &RunConfig,
        policy: DynamicPolicy,
    ) -> RunStats {
        simulate_dynamic(soc, work, cfg, policy, None)
            .expect("simulates")
            .expect_stats()
            .clone()
    }

    #[test]
    fn both_policies_complete_all_tasks() {
        let soc = devices::pixel_7a();
        for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
            let r = stats(&soc, &stages(), &cfg(), policy);
            assert_eq!(r.tasks, 30);
            assert!(r.time_per_task.as_f64() > 0.0);
            assert_eq!(r.chunk_utilization.len(), 4, "one entry per schedulable PU");
        }
    }

    #[test]
    fn best_fit_beats_fifo_on_heterogeneous_work() {
        // A stage mix with a strongly GPU-hostile stage: FIFO will sometimes
        // place it on the GPU, BestFit won't.
        let soc = devices::pixel_7a();
        let mixed = vec![
            WorkProfile::new(3e7, 5e6), // regular
            WorkProfile::new(1e7, 8e6)
                .with_divergence(0.9)
                .with_irregularity(0.8), // GPU-hostile
        ];
        let fifo = stats(&soc, &mixed, &cfg(), DynamicPolicy::Fifo);
        let fit = stats(&soc, &mixed, &cfg(), DynamicPolicy::BestFit);
        assert!(
            fit.time_per_task.as_f64() <= fifo.time_per_task.as_f64() * 1.05,
            "best-fit {} should not lose to fifo {}",
            fit.time_per_task,
            fifo.time_per_task
        );
    }

    #[test]
    fn oneplus_excludes_unpinnable_littles() {
        let soc = devices::oneplus_11();
        let r = stats(&soc, &stages(), &cfg(), DynamicPolicy::BestFit);
        assert_eq!(r.chunk_utilization.len(), 3, "little cluster is unpinnable");
    }

    #[test]
    fn empty_inputs_rejected() {
        let soc = devices::pixel_7a();
        assert!(simulate_dynamic(&soc, &[], &cfg(), DynamicPolicy::Fifo, None).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let soc = devices::jetson_orin_nano();
        let a = stats(&soc, &stages(), &cfg(), DynamicPolicy::BestFit);
        let b = stats(&soc, &stages(), &cfg(), DynamicPolicy::BestFit);
        assert_eq!(a.makespan.as_f64(), b.makespan.as_f64());
    }

    // ------------------------- faulted mode -------------------------

    use crate::fault::{PuLoss, StageFault};

    #[test]
    fn none_faults_matches_empty_spec() {
        let soc = devices::pixel_7a();
        let cfg = RunConfig {
            noise_sigma: 0.03,
            seed: 5,
            ..cfg()
        };
        for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
            let plain = simulate_dynamic(&soc, &stages(), &cfg, policy, None).unwrap();
            let empty = FaultSpec::none();
            let faulted = simulate_dynamic(&soc, &stages(), &cfg, policy, Some(&empty)).unwrap();
            assert_eq!(faulted.dropped, 0);
            assert_eq!(faulted.completed, faulted.submitted);
            assert_eq!(faulted.faults_fired, 0);
            let (r, p) = (faulted.expect_stats(), plain.expect_stats());
            assert_eq!(r.makespan.as_f64(), p.makespan.as_f64());
            assert_eq!(r.time_per_task.as_f64(), p.time_per_task.as_f64());
            assert_eq!(r.chunk_utilization, p.chunk_utilization);
        }
    }

    #[test]
    fn dynamic_scheduler_routes_around_pu_loss() {
        let soc = devices::pixel_7a();
        let base = stats(&soc, &stages(), &cfg(), DynamicPolicy::BestFit);
        // Lose the GPU halfway through the run: at most the in-flight
        // stage dies; everything else lands on surviving PUs.
        let spec = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::Gpu,
                at_us: base.makespan.as_f64() / 2.0,
            }],
            ..FaultSpec::default()
        };
        let r =
            simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::BestFit, Some(&spec)).unwrap();
        assert_eq!(r.completed + r.dropped, r.submitted);
        assert!(r.dropped <= 1, "only in-flight work may die: {}", r.dropped);
        assert!(r.stats.is_some());
    }

    #[test]
    fn losing_every_pu_drops_everything() {
        let soc = devices::pixel_7a();
        let losses = soc
            .schedulable_classes()
            .into_iter()
            .map(|class| PuLoss { class, at_us: 0.0 })
            .collect();
        let spec = FaultSpec {
            losses,
            ..FaultSpec::default()
        };
        let r =
            simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::Fifo, Some(&spec)).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.dropped, r.submitted);
        assert!(r.stats.is_none());
        assert!(r.is_degraded());
    }

    #[test]
    fn faulted_dynamic_runs_are_deterministic() {
        let soc = devices::jetson_orin_nano();
        let cfg = RunConfig {
            noise_sigma: 0.05,
            seed: 11,
            ..cfg()
        };
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 4,
                stage: 1,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let a =
            simulate_dynamic(&soc, &stages(), &cfg, DynamicPolicy::BestFit, Some(&spec)).unwrap();
        let b =
            simulate_dynamic(&soc, &stages(), &cfg, DynamicPolicy::BestFit, Some(&spec)).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.dropped, 1);
    }

    // ------------------------- DAG-shaped stages -------------------------

    /// Diamond: 0 forks into {1, 2}, which join at 3.
    fn diamond_deps() -> Vec<(usize, usize)> {
        vec![(0, 1), (0, 2), (1, 3), (2, 3)]
    }

    /// Branch 1 is GPU-friendly, branch 2 GPU-hostile: on a pixel 7a their
    /// best-PU latencies are nearly equal (~240 us on Gpu vs BigCpu), so a
    /// fork genuinely overlaps them on different silicon.
    fn diamond_stages() -> Vec<WorkProfile> {
        vec![
            WorkProfile::new(1e6, 5e5),
            WorkProfile::new(2e7, 4e6),
            WorkProfile::new(3e6, 2e6)
                .with_divergence(0.9)
                .with_irregularity(0.8),
            WorkProfile::new(1e6, 5e5),
        ]
    }

    #[test]
    fn chain_deps_delegate_bit_identically() {
        let soc = devices::pixel_7a();
        let cfg = RunConfig {
            noise_sigma: 0.04,
            seed: 9,
            ..cfg()
        };
        let chain: Vec<(usize, usize)> = vec![(0, 1), (1, 2)];
        for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
            let direct = simulate_dynamic(&soc, &stages(), &cfg, policy, None).unwrap();
            let via_dag =
                simulate_dynamic_dag(&soc, &stages(), &chain, &cfg, policy, None).unwrap();
            assert_eq!(format!("{direct:?}"), format!("{via_dag:?}"));
        }
    }

    #[test]
    fn malformed_deps_rejected() {
        let soc = devices::pixel_7a();
        let work = diamond_stages();
        for bad in [
            vec![(0usize, 9usize)],       // out of range
            vec![(1, 1)],                 // self-loop
            vec![(0, 1), (1, 2), (2, 1)], // cycle
        ] {
            let err = simulate_dynamic_dag(&soc, &work, &bad, &cfg(), DynamicPolicy::Fifo, None)
                .unwrap_err();
            assert!(matches!(err, SocError::BadDag { .. }), "got {err:?}");
        }
    }

    #[test]
    fn diamond_completes_and_is_deterministic() {
        let soc = devices::pixel_7a();
        let run = |_: ()| {
            simulate_dynamic_dag(
                &soc,
                &diamond_stages(),
                &diamond_deps(),
                &cfg(),
                DynamicPolicy::BestFit,
                None,
            )
            .unwrap()
        };
        let a = run(());
        let b = run(());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.dropped, 0);
        assert_eq!(a.completed, a.submitted);
        assert_eq!(a.expect_stats().tasks, 30);
    }

    #[test]
    fn fork_shortens_a_single_task_versus_its_linearization() {
        // With one task in the system the chain must serialize all four
        // stages, while the diamond runs its two branches concurrently —
        // interference makes each branch slower than isolated, but far
        // less than 2x, so the critical path (and thus the makespan)
        // strictly shrinks.
        let soc = devices::pixel_7a();
        let cfg = RunConfig {
            tasks: 1,
            warmup: 0,
            noise_sigma: 0.0,
            ..RunConfig::default()
        };
        let chain: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (2, 3)];
        let lin = simulate_dynamic_dag(
            &soc,
            &diamond_stages(),
            &chain,
            &cfg,
            DynamicPolicy::BestFit,
            None,
        )
        .unwrap();
        let dag = simulate_dynamic_dag(
            &soc,
            &diamond_stages(),
            &diamond_deps(),
            &cfg,
            DynamicPolicy::BestFit,
            None,
        )
        .unwrap();
        let (lin_mk, dag_mk) = (
            lin.expect_stats().makespan.as_f64(),
            dag.expect_stats().makespan.as_f64(),
        );
        assert!(
            dag_mk < lin_mk,
            "diamond {dag_mk} must beat its linearization {lin_mk}"
        );
    }

    #[test]
    fn stage_error_kills_the_whole_task_with_conservation() {
        let soc = devices::pixel_7a();
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 6,
                stage: 2, // one branch of the fork
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_dynamic_dag(
            &soc,
            &diamond_stages(),
            &diamond_deps(),
            &cfg(),
            DynamicPolicy::Fifo,
            Some(&spec),
        )
        .unwrap();
        assert_eq!(r.dropped, 1, "exactly the faulted task dies");
        assert_eq!(r.completed + r.dropped, r.submitted);
        assert!(r.faults_fired >= 1);
    }

    #[test]
    fn losing_every_pu_strands_dag_work() {
        let soc = devices::pixel_7a();
        let losses = soc
            .schedulable_classes()
            .into_iter()
            .map(|class| PuLoss { class, at_us: 0.0 })
            .collect();
        let spec = FaultSpec {
            losses,
            ..FaultSpec::default()
        };
        let r = simulate_dynamic_dag(
            &soc,
            &diamond_stages(),
            &diamond_deps(),
            &cfg(),
            DynamicPolicy::Fifo,
            Some(&spec),
        )
        .unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.dropped, r.submitted);
        assert!(r.is_degraded());
    }
}
