//! Dynamic (StarPU-style) scheduling in the simulator — the comparison
//! point of the paper's Related Work (§6): a greedy runtime that assigns
//! each ready (task, stage) to an idle PU at dispatch time instead of
//! fixing a static stage → PU map.
//!
//! Two honest costs distinguish it from BT-Implementer's static chunks:
//! every stage pays the PU's completion-synchronization cost (the runtime
//! must observe completion before making the next decision), and placement
//! uses at best *isolated* latency estimates — it cannot anticipate the
//! interference its own concurrent placements create.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::cost;
use crate::des::{DesConfig, DesReport};
use crate::{ActiveKernel, Micros, NoiseModel, PuClass, PuSpec, SocError, SocSpec, WorkProfile};

/// Placement policy of the dynamic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicPolicy {
    /// Oldest ready stage goes to the first idle PU (work-conserving FIFO).
    Fifo,
    /// Oldest ready stage goes to the idle PU with the lowest *isolated*
    /// latency estimate for that stage — a HEFT-flavoured greedy heuristic.
    BestFit,
}

#[derive(Debug, PartialEq)]
struct Completion {
    time: f64,
    pu_idx: usize,
}

impl Eq for Completion {}

impl Ord for Completion {
    fn cmp(&self, other: &Completion) -> Ordering {
        other
            .time
            .partial_cmp(&self.time)
            .expect("virtual time is never NaN")
            .then_with(|| other.pu_idx.cmp(&self.pu_idx))
    }
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Completion) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct Running {
    task: usize,
    stage: usize,
    demand: f64,
}

/// Simulates dynamic scheduling of `stages` (per-task, in order) over all
/// schedulable PUs of `soc`.
///
/// # Errors
///
/// Returns [`SocError::EmptySimulation`] for empty inputs.
pub fn simulate_dynamic(
    soc: &SocSpec,
    stages: &[WorkProfile],
    cfg: &DesConfig,
    policy: DynamicPolicy,
) -> Result<DesReport, SocError> {
    if stages.is_empty() || cfg.tasks == 0 {
        return Err(SocError::EmptySimulation);
    }
    let pus: Vec<PuClass> = soc.schedulable_classes();
    if pus.is_empty() {
        return Err(SocError::EmptyDevice);
    }

    let total = (cfg.tasks + cfg.warmup) as usize;
    let in_flight_cap = if cfg.buffers == 0 {
        pus.len() + 1
    } else {
        cfg.buffers as usize
    };
    let mut noise = NoiseModel::new(cfg.noise_sigma, cfg.seed);

    // (task, next stage) ready entries in FIFO (task-seq) order.
    let mut ready: std::collections::VecDeque<(usize, usize)> = std::collections::VecDeque::new();
    let mut running: Vec<Option<Running>> = vec![None; pus.len()];
    let mut busy_since = vec![0.0f64; pus.len()];
    // (start, end) busy intervals per PU, clipped to the measurement
    // window once it is known.
    let mut busy_spans: Vec<Vec<(f64, f64)>> = vec![Vec::new(); pus.len()];
    let mut entry_time = vec![0.0f64; total];
    let mut exit_time = vec![0.0f64; total];
    let mut admitted = 0usize;
    let mut completed = 0usize;
    let mut in_flight = 0usize;
    let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
    let mut now = 0.0f64;

    // Hoisted per-dispatch state: PU specs resolved once, the placement
    // heuristic's isolated estimates and the advertised bandwidth demands
    // precomputed as (stage × PU) tables (both are busy-set independent),
    // and one reusable co-runner scratch buffer.
    let pu_specs: Vec<&PuSpec> = pus
        .iter()
        .map(|&c| soc.pu(c).expect("schedulable class present"))
        .collect();
    let isolated: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| {
            pu_specs
                .iter()
                .map(|pu| cost::latency_under(w, pu, soc, &[]).as_f64())
                .collect()
        })
        .collect();
    let demands: Vec<Vec<f64>> = stages
        .iter()
        .map(|w| pu_specs.iter().map(|pu| cost::bw_demand(w, pu)).collect())
        .collect();
    let mut co: Vec<ActiveKernel> = Vec::with_capacity(pus.len());

    loop {
        // Admit new tasks while the window allows.
        while admitted < total && in_flight < in_flight_cap {
            entry_time[admitted] = now;
            ready.push_back((admitted, 0));
            admitted += 1;
            in_flight += 1;
        }

        // Dispatch ready stages onto idle PUs.
        while let Some(&(task, stage)) = ready.front() {
            let mut idle = (0..pus.len()).filter(|&i| running[i].is_none());
            let pu_idx = match policy {
                DynamicPolicy::Fifo => idle.next(),
                DynamicPolicy::BestFit => idle.min_by(|&a, &b| {
                    isolated[stage][a]
                        .partial_cmp(&isolated[stage][b])
                        .expect("finite estimates")
                }),
            };
            let Some(pu_idx) = pu_idx else {
                break;
            };
            ready.pop_front();
            let pu = pu_specs[pu_idx];
            co.clear();
            co.extend(
                running
                    .iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.map(|r| ActiveKernel::new(pus[i], r.demand))),
            );
            // Dynamic runtimes synchronize after every stage.
            let dt = cost::latency_under(&stages[stage], pu, soc, &co).as_f64() * noise.factor()
                + pu.sync_overhead_us();
            let demand = demands[stage][pu_idx];
            running[pu_idx] = Some(Running {
                task,
                stage,
                demand,
            });
            busy_since[pu_idx] = now;
            heap.push(Completion {
                time: now + dt,
                pu_idx,
            });
        }

        if completed >= total {
            break;
        }
        let Some(done) = heap.pop() else {
            debug_assert!(completed >= total, "no pending work but tasks remain");
            break;
        };
        now = done.time;
        let fin = running[done.pu_idx]
            .take()
            .expect("completion implies running");
        busy_spans[done.pu_idx].push((busy_since[done.pu_idx], now));
        if fin.stage + 1 < stages.len() {
            // Preserve FIFO order by task sequence.
            let pos = ready
                .iter()
                .position(|&(t, _)| t > fin.task)
                .unwrap_or(ready.len());
            ready.insert(pos, (fin.task, fin.stage + 1));
        } else {
            exit_time[fin.task] = now;
            completed += 1;
            in_flight -= 1;
        }
    }

    // Same departure-to-departure steady-state convention as the static
    // simulator and the host executor (see `des::simulate`).
    let measure_from = cfg.warmup as usize;
    let (w_start, departures) = if measure_from > 0 {
        (exit_time[measure_from - 1], cfg.tasks as f64)
    } else if total > 1 {
        (exit_time[0], (cfg.tasks - 1) as f64)
    } else {
        (entry_time[0], 1.0)
    };
    let w_end = exit_time[total - 1];
    let makespan = (w_end - w_start).max(1e-9);
    let mean_latency = exit_time[measure_from..]
        .iter()
        .zip(&entry_time[measure_from..])
        .map(|(x, e)| x - e)
        .sum::<f64>()
        / cfg.tasks as f64;
    let chunk_utilization: Vec<f64> = busy_spans
        .iter()
        .map(|spans| {
            let in_window: f64 = spans
                .iter()
                .map(|&(t0, t1)| (t1.min(w_end) - t0.max(w_start)).max(0.0))
                .sum();
            in_window / makespan
        })
        .collect();
    let bottleneck_chunk = chunk_utilization
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .unwrap_or(0);

    Ok(DesReport {
        makespan: Micros::new(makespan),
        mean_task_latency: Micros::new(mean_latency),
        time_per_task: Micros::new(makespan / departures.max(1.0)),
        throughput_hz: departures.max(1.0) / (makespan / 1e6),
        chunk_utilization,
        bottleneck_chunk,
        tasks: cfg.tasks,
        timeline: Vec::new(),
        telemetry: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    fn stages() -> Vec<WorkProfile> {
        vec![
            WorkProfile::new(1e7, 2e6),
            WorkProfile::new(2e7, 4e6),
            WorkProfile::new(5e6, 1e6),
        ]
    }

    fn cfg() -> DesConfig {
        DesConfig {
            noise_sigma: 0.0,
            ..DesConfig::default()
        }
    }

    #[test]
    fn both_policies_complete_all_tasks() {
        let soc = devices::pixel_7a();
        for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
            let r = simulate_dynamic(&soc, &stages(), &cfg(), policy).expect("simulates");
            assert_eq!(r.tasks, 30);
            assert!(r.time_per_task.as_f64() > 0.0);
            assert_eq!(r.chunk_utilization.len(), 4, "one entry per schedulable PU");
        }
    }

    #[test]
    fn best_fit_beats_fifo_on_heterogeneous_work() {
        // A stage mix with a strongly GPU-hostile stage: FIFO will sometimes
        // place it on the GPU, BestFit won't.
        let soc = devices::pixel_7a();
        let mixed = vec![
            WorkProfile::new(3e7, 5e6), // regular
            WorkProfile::new(1e7, 8e6)
                .with_divergence(0.9)
                .with_irregularity(0.8), // GPU-hostile
        ];
        let fifo = simulate_dynamic(&soc, &mixed, &cfg(), DynamicPolicy::Fifo).expect("simulates");
        let fit =
            simulate_dynamic(&soc, &mixed, &cfg(), DynamicPolicy::BestFit).expect("simulates");
        assert!(
            fit.time_per_task.as_f64() <= fifo.time_per_task.as_f64() * 1.05,
            "best-fit {} should not lose to fifo {}",
            fit.time_per_task,
            fifo.time_per_task
        );
    }

    #[test]
    fn oneplus_excludes_unpinnable_littles() {
        let soc = devices::oneplus_11();
        let r =
            simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::BestFit).expect("simulates");
        assert_eq!(r.chunk_utilization.len(), 3, "little cluster is unpinnable");
    }

    #[test]
    fn empty_inputs_rejected() {
        let soc = devices::pixel_7a();
        assert!(simulate_dynamic(&soc, &[], &cfg(), DynamicPolicy::Fifo).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let soc = devices::jetson_orin_nano();
        let a = simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::BestFit).unwrap();
        let b = simulate_dynamic(&soc, &stages(), &cfg(), DynamicPolicy::BestFit).unwrap();
        assert_eq!(a.makespan.as_f64(), b.makespan.as_f64());
    }
}
