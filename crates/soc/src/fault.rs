//! Fault-injection vocabulary for the simulators: deterministic, data-driven
//! perturbations of a pipeline run.
//!
//! BetterTogether's static schedules assume the interference-heavy profile
//! stays representative. Real SoCs drift: DVFS throttles a cluster, a task
//! straggles behind a page-fault storm, a kernel times out, a PU drops off
//! the bus. A [`FaultSpec`] describes such perturbations as plain data —
//! every activation is a pure function of `(chunk, task, stage, class,
//! virtual time)`, so a faulted simulation is exactly as deterministic as a
//! fault-free one: same spec + same seed ⇒ bit-identical run.
//!
//! The spec is the *mechanism*; seedable random fault *policy* (generating
//! specs) lives upstream in `bt-faults`, which lowers its `FaultPlan` onto
//! this vocabulary.

use serde::{Deserialize, Serialize};

use crate::PuClass;

/// A DVFS-style slowdown ramp on one PU class: service times of chunks
/// hosted on `class` are multiplied by a factor that interpolates linearly
/// from 1 at `start_us` to `factor` at `start_us + ramp_us`, then holds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowdownRamp {
    /// The throttled PU class.
    pub class: PuClass,
    /// Virtual time (µs) the throttle begins.
    pub start_us: f64,
    /// Ramp length (µs); `0` is a step change.
    pub ramp_us: f64,
    /// Steady-state service-time multiplier (`> 1` slows the class down).
    pub factor: f64,
}

impl SlowdownRamp {
    /// The multiplier in effect at virtual time `now` (µs).
    pub fn factor_at(&self, now: f64) -> f64 {
        if now <= self.start_us {
            1.0
        } else if self.ramp_us <= 0.0 || now >= self.start_us + self.ramp_us {
            self.factor
        } else {
            1.0 + (self.factor - 1.0) * (now - self.start_us) / self.ramp_us
        }
    }
}

/// A transient straggler: one task served `factor`× slower by one chunk
/// (cache-cold object, page-fault storm, background interrupt burst).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    /// The straggling chunk (the dynamic scheduler, which has no chunk
    /// identity, matches on `task` alone).
    pub chunk: usize,
    /// The affected task sequence number.
    pub task: usize,
    /// Service-time multiplier for that (chunk, task) pair.
    pub factor: f64,
}

/// What happens when a stage iteration faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StageFaultKind {
    /// The kernel fails: the task is dropped and its object recycled to
    /// the pipeline head.
    Error,
    /// The kernel hangs for `extra_us` before completing — what a runtime
    /// watchdog would observe as a timeout.
    Timeout {
        /// Extra service time in µs.
        extra_us: f64,
    },
}

/// A fault pinned to one `(chunk, task, stage)` iteration (`stage` is the
/// index *within* the chunk). The dynamic scheduler matches on
/// `(task, stage)` only.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFault {
    /// Chunk index in pipeline order.
    pub chunk: usize,
    /// Task sequence number.
    pub task: usize,
    /// Stage index within the chunk.
    pub stage: usize,
    /// Error (drop) or timeout (delay).
    pub kind: StageFaultKind,
}

/// Permanent loss of a PU class at a virtual instant: chunks hosted on it
/// stop serving, in-flight work dies at `at_us`, and every task reaching a
/// lost chunk is dropped (the static pipeline drains and degrades; the
/// dynamic scheduler routes around the loss).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PuLoss {
    /// The lost PU class.
    pub class: PuClass,
    /// Virtual time of the loss (µs).
    pub at_us: f64,
}

/// A deterministic set of perturbations applied to one simulated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Per-class DVFS throttle ramps (multipliers compose).
    pub slowdowns: Vec<SlowdownRamp>,
    /// Per-(chunk, task) transient stragglers.
    pub stragglers: Vec<Straggler>,
    /// Kernel errors / timeouts on exact stage iterations.
    pub stage_faults: Vec<StageFault>,
    /// Permanent PU losses.
    pub losses: Vec<PuLoss>,
}

impl FaultSpec {
    /// A spec with no perturbations.
    pub fn none() -> FaultSpec {
        FaultSpec::default()
    }

    /// Whether the spec perturbs anything at all.
    pub fn is_empty(&self) -> bool {
        self.slowdowns.is_empty()
            && self.stragglers.is_empty()
            && self.stage_faults.is_empty()
            && self.losses.is_empty()
    }

    /// Product of all slowdown-ramp multipliers on `class` at `now`.
    pub fn slowdown_factor(&self, class: PuClass, now: f64) -> f64 {
        self.slowdowns
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.factor_at(now))
            .product()
    }

    /// Product of straggler multipliers for `(chunk, task)`.
    pub fn straggler_factor(&self, chunk: usize, task: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.chunk == chunk && s.task == task)
            .map(|s| s.factor)
            .product()
    }

    /// Product of straggler multipliers matching `task` on any chunk (the
    /// dynamic scheduler's lookup).
    pub fn straggler_factor_any_chunk(&self, task: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.task == task)
            .map(|s| s.factor)
            .product()
    }

    /// The fault pinned to `(chunk, task, stage)`, if any. An `Error`
    /// entry wins over a `Timeout` when both match the same iteration.
    pub fn stage_fault(&self, chunk: usize, task: usize, stage: usize) -> Option<StageFaultKind> {
        let mut found = None;
        for f in &self.stage_faults {
            if f.chunk == chunk && f.task == task && f.stage == stage {
                if matches!(f.kind, StageFaultKind::Error) {
                    return Some(f.kind);
                }
                found = Some(f.kind);
            }
        }
        found
    }

    /// The fault matching `(task, stage)` on any chunk (the dynamic
    /// scheduler's lookup).
    pub fn stage_fault_any_chunk(&self, task: usize, stage: usize) -> Option<StageFaultKind> {
        let mut found = None;
        for f in &self.stage_faults {
            if f.task == task && f.stage == stage {
                if matches!(f.kind, StageFaultKind::Error) {
                    return Some(f.kind);
                }
                found = Some(f.kind);
            }
        }
        found
    }

    /// The earliest loss instant of `class`, if it is lost at all.
    pub fn loss_at(&self, class: PuClass) -> Option<f64> {
        self.losses
            .iter()
            .filter(|l| l.class == class)
            .map(|l| l.at_us)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_interpolates_linearly() {
        let r = SlowdownRamp {
            class: PuClass::BigCpu,
            start_us: 100.0,
            ramp_us: 100.0,
            factor: 3.0,
        };
        assert_eq!(r.factor_at(0.0), 1.0);
        assert_eq!(r.factor_at(100.0), 1.0);
        assert!((r.factor_at(150.0) - 2.0).abs() < 1e-12);
        assert_eq!(r.factor_at(200.0), 3.0);
        assert_eq!(r.factor_at(1e9), 3.0);
    }

    #[test]
    fn step_ramp_switches_instantly() {
        let r = SlowdownRamp {
            class: PuClass::Gpu,
            start_us: 50.0,
            ramp_us: 0.0,
            factor: 2.0,
        };
        assert_eq!(r.factor_at(50.0), 1.0);
        assert_eq!(r.factor_at(50.0 + 1e-9), 2.0);
    }

    #[test]
    fn slowdown_factors_compose_multiplicatively() {
        let spec = FaultSpec {
            slowdowns: vec![
                SlowdownRamp {
                    class: PuClass::BigCpu,
                    start_us: 0.0,
                    ramp_us: 0.0,
                    factor: 2.0,
                },
                SlowdownRamp {
                    class: PuClass::BigCpu,
                    start_us: 0.0,
                    ramp_us: 0.0,
                    factor: 1.5,
                },
            ],
            ..FaultSpec::default()
        };
        assert!((spec.slowdown_factor(PuClass::BigCpu, 1.0) - 3.0).abs() < 1e-12);
        assert_eq!(spec.slowdown_factor(PuClass::Gpu, 1.0), 1.0);
    }

    #[test]
    fn error_wins_over_timeout_on_same_iteration() {
        let spec = FaultSpec {
            stage_faults: vec![
                StageFault {
                    chunk: 1,
                    task: 3,
                    stage: 0,
                    kind: StageFaultKind::Timeout { extra_us: 10.0 },
                },
                StageFault {
                    chunk: 1,
                    task: 3,
                    stage: 0,
                    kind: StageFaultKind::Error,
                },
            ],
            ..FaultSpec::default()
        };
        assert_eq!(spec.stage_fault(1, 3, 0), Some(StageFaultKind::Error));
        assert_eq!(spec.stage_fault(1, 3, 1), None);
        assert_eq!(
            spec.stage_fault_any_chunk(3, 0),
            Some(StageFaultKind::Error)
        );
    }

    #[test]
    fn earliest_loss_wins() {
        let spec = FaultSpec {
            losses: vec![
                PuLoss {
                    class: PuClass::Gpu,
                    at_us: 500.0,
                },
                PuLoss {
                    class: PuClass::Gpu,
                    at_us: 200.0,
                },
            ],
            ..FaultSpec::default()
        };
        assert_eq!(spec.loss_at(PuClass::Gpu), Some(200.0));
        assert_eq!(spec.loss_at(PuClass::BigCpu), None);
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = FaultSpec {
            slowdowns: vec![SlowdownRamp {
                class: PuClass::BigCpu,
                start_us: 10.0,
                ramp_us: 5.0,
                factor: 2.0,
            }],
            stragglers: vec![Straggler {
                chunk: 0,
                task: 7,
                factor: 4.0,
            }],
            stage_faults: vec![StageFault {
                chunk: 2,
                task: 11,
                stage: 1,
                kind: StageFaultKind::Timeout { extra_us: 100.0 },
            }],
            losses: vec![PuLoss {
                class: PuClass::LittleCpu,
                at_us: 1e4,
            }],
        };
        let json = serde_json::to_string(&spec).expect("serializes");
        let back: FaultSpec = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, spec);
        assert!(!back.is_empty());
        assert!(FaultSpec::none().is_empty());
    }
}
