use serde::{Deserialize, Serialize};

use crate::{AffinityMap, GpuBackend, InterferenceModel, PuClass, PuSpec, SocError};

pub use bt_rt::PerClass;

/// Complete model of one heterogeneous SoC: its PU clusters, shared DRAM,
/// interference behaviour, and thread-affinity constraints.
///
/// Build with [`SocBuilder`] or use one of the paper's evaluation platforms
/// from [`devices`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocSpec {
    name: String,
    pus: PerClass<PuSpec>,
    dram_bw_gbs: f64,
    interference: InterferenceModel,
    affinity: AffinityMap,
}

impl SocSpec {
    /// Human-readable device name, e.g. `"Google Pixel 7a"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stable content hash of the full device model (clusters, bandwidth,
    /// interference, affinity) — the device component of a content-addressed
    /// plan-cache key. Two specs hash equal iff every parameter a solve
    /// depends on is equal; see [`crate::hash`] for stability guarantees.
    pub fn content_hash(&self) -> u64 {
        crate::hash::json_hash(self)
    }

    /// The cluster specification for `class`, if the device has one.
    pub fn pu(&self, class: PuClass) -> Option<&PuSpec> {
        self.pus.get(class)
    }

    /// The cluster specification for `class`.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::MissingPu`] if the device has no such cluster.
    pub fn try_pu(&self, class: PuClass) -> Result<&PuSpec, SocError> {
        self.pus.get(class).ok_or(SocError::MissingPu(class))
    }

    /// All PU classes present on the device, in canonical order.
    pub fn classes(&self) -> Vec<PuClass> {
        self.pus.iter().map(|(c, _)| c).collect()
    }

    /// PU classes that can host pipeline chunks (see
    /// [`PuSpec::schedulable`]; e.g. the OnePlus 11 little cluster is
    /// profiled but not schedulable because its cores cannot be pinned).
    pub fn schedulable_classes(&self) -> Vec<PuClass> {
        self.pus
            .iter()
            .filter(|(_, spec)| spec.schedulable())
            .map(|(c, _)| c)
            .collect()
    }

    /// Iterates over all clusters.
    pub fn pus(&self) -> impl Iterator<Item = (PuClass, &PuSpec)> {
        self.pus.iter()
    }

    /// Total DRAM bandwidth shared by all PUs, in GB/s (UMA assumption).
    pub fn dram_bw_gbs(&self) -> f64 {
        self.dram_bw_gbs
    }

    /// The device's interference model.
    pub fn interference(&self) -> &InterferenceModel {
        &self.interference
    }

    /// Returns a copy of this device with a different interference model —
    /// the lever the interference-ablation experiments use.
    pub fn with_interference(mut self, model: InterferenceModel) -> SocSpec {
        self.interference = model;
        self
    }

    /// The device's thread-affinity map.
    pub fn affinity(&self) -> &AffinityMap {
        &self.affinity
    }
}

/// Builder for [`SocSpec`].
///
/// ```
/// use bt_soc::{SocBuilder, PuSpec, PuClass, InterferenceModel};
///
/// let soc = SocBuilder::new("MyBoard")
///     .pu(PuSpec::new(PuClass::BigCpu, "A78", 4, 2.0))
///     .pu(PuSpec::new(PuClass::Gpu, "iGPU", 8, 0.9))
///     .dram_bw_gbs(30.0)
///     .build()
///     .expect("valid device");
/// assert_eq!(soc.classes().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SocBuilder {
    name: String,
    pus: PerClass<PuSpec>,
    dram_bw_gbs: f64,
    interference: InterferenceModel,
    affinity: Option<AffinityMap>,
}

impl SocBuilder {
    /// Starts building a device model with the given name.
    pub fn new(name: impl Into<String>) -> SocBuilder {
        SocBuilder {
            name: name.into(),
            pus: PerClass::empty(),
            dram_bw_gbs: 20.0,
            interference: InterferenceModel::none(),
            affinity: None,
        }
    }

    /// Adds (or replaces) the cluster of the spec's class.
    pub fn pu(mut self, spec: PuSpec) -> SocBuilder {
        self.pus.set(spec.class(), spec);
        self
    }

    /// Sets the total shared DRAM bandwidth in GB/s.
    pub fn dram_bw_gbs(mut self, bw: f64) -> SocBuilder {
        self.dram_bw_gbs = bw;
        self
    }

    /// Sets the interference model (defaults to no interference).
    pub fn interference(mut self, model: InterferenceModel) -> SocBuilder {
        self.interference = model;
        self
    }

    /// Sets the affinity map (defaults to a map derived from the clusters:
    /// cores numbered little → medium → big, all pinnable cores exposed).
    pub fn affinity(mut self, map: AffinityMap) -> SocBuilder {
        self.affinity = Some(map);
        self
    }

    /// Finalizes the device model.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::EmptyDevice`] if no cluster was added, or
    /// [`SocError::InvalidSpec`] if a parameter is non-positive.
    pub fn build(self) -> Result<SocSpec, SocError> {
        if self.pus.is_empty() {
            return Err(SocError::EmptyDevice);
        }
        if self.dram_bw_gbs <= 0.0 {
            return Err(SocError::InvalidSpec {
                param: "dram_bw_gbs",
                value: self.dram_bw_gbs,
            });
        }
        for (_, spec) in self.pus.iter() {
            spec.validate()?;
        }
        let affinity = match self.affinity {
            Some(map) => map,
            None => crate::affinity::derive_affinity(&self.pus),
        };
        Ok(SocSpec {
            name: self.name,
            pus: self.pus,
            dram_bw_gbs: self.dram_bw_gbs,
            interference: self.interference,
            affinity,
        })
    }
}

/// Models of the paper's four evaluation platforms (Table 2).
///
/// All architectural parameters (core counts, frequencies) come from the
/// paper; micro-architectural parameters (IPC, SIMD widths, efficiencies,
/// overheads) and the interference multipliers are calibrated so the
/// simulator reproduces the paper's Table 3 baselines and Fig. 7 ratios.
pub mod devices {
    use super::*;

    /// Google Pixel 7a — Tensor G2: 2× Cortex-X1 @ 2.85 GHz, 2× Cortex-A78
    /// @ 2.35 GHz, 4× Cortex-A55 @ 1.80 GHz, Arm Mali-G710 MP7 (Vulkan).
    ///
    /// All eight CPU cores are pinnable (full affinity control, §5.1).
    pub fn pixel_7a() -> SocSpec {
        SocBuilder::new("Google Pixel 7a")
            .pu(PuSpec::new(PuClass::BigCpu, "Cortex-X1", 2, 2.85)
                .with_ipc(3.2)
                .with_simd_lanes(4)
                .with_arith_eff(0.30)
                .with_divergence_penalty(0.15)
                .with_irregular_penalty(0.45)
                .with_mem_bw_gbs(14.0)
                .with_dispatch_overhead_us(14.0)
                .with_l2_kib(1024))
            .pu(PuSpec::new(PuClass::MediumCpu, "Cortex-A78", 2, 2.35)
                .with_ipc(2.6)
                .with_simd_lanes(4)
                .with_arith_eff(0.30)
                .with_divergence_penalty(0.18)
                .with_irregular_penalty(0.50)
                .with_mem_bw_gbs(10.0)
                .with_dispatch_overhead_us(14.0)
                .with_l2_kib(256))
            .pu(PuSpec::new(PuClass::LittleCpu, "Cortex-A55", 4, 1.80)
                .with_ipc(1.1)
                .with_simd_lanes(2)
                .with_arith_eff(0.28)
                .with_divergence_penalty(0.25)
                .with_irregular_penalty(0.60)
                .with_mem_bw_gbs(7.0)
                .with_dispatch_overhead_us(18.0)
                .with_l2_kib(128))
            .pu(PuSpec::new(PuClass::Gpu, "Mali-G710 MP7", 7, 0.85)
                .with_backend(GpuBackend::Vulkan)
                .with_ipc(2.0)
                .with_simd_lanes(32)
                .with_arith_eff(0.40)
                .with_divergence_penalty(0.92)
                .with_irregular_penalty(0.85)
                .with_mem_bw_gbs(18.0)
                .with_dispatch_overhead_us(25.0)
                .with_sync_overhead_us(130.0)
                .with_l2_kib(1024))
            .dram_bw_gbs(20.0)
            .interference(InterferenceModel::calibrated(
                [
                    (PuClass::BigCpu, 1.34),
                    (PuClass::MediumCpu, 1.15),
                    (PuClass::LittleCpu, 1.33),
                    (PuClass::Gpu, 0.74),
                ],
                0.3,
            ))
            .build()
            .expect("pixel 7a model is valid")
    }

    /// OnePlus 11 — Snapdragon 8 Gen 2: 1× Cortex-X3 @ 3.2 GHz, 2× A715 +
    /// 2× A710 @ 2.8 GHz (modeled as one 4-core medium cluster), 3× A510 @
    /// 2.0 GHz, Qualcomm Adreno 740 (Vulkan).
    ///
    /// Only 5 of 8 cores may be pinned (§5.1): the A510 cluster is profiled
    /// but excluded from schedules.
    pub fn oneplus_11() -> SocSpec {
        SocBuilder::new("OnePlus 11")
            .pu(PuSpec::new(PuClass::BigCpu, "Cortex-X3", 1, 3.2)
                .with_ipc(4.2)
                .with_simd_lanes(4)
                .with_arith_eff(0.42)
                .with_divergence_penalty(0.12)
                .with_irregular_penalty(0.42)
                .with_mem_bw_gbs(16.0)
                .with_dispatch_overhead_us(12.0)
                .with_l2_kib(1024))
            .pu(PuSpec::new(PuClass::MediumCpu, "Cortex-A715/A710", 4, 2.8)
                .with_ipc(2.8)
                .with_simd_lanes(4)
                .with_arith_eff(0.29)
                .with_divergence_penalty(0.16)
                .with_irregular_penalty(0.48)
                .with_mem_bw_gbs(13.0)
                .with_dispatch_overhead_us(13.0)
                .with_l2_kib(512))
            .pu(PuSpec::new(PuClass::LittleCpu, "Cortex-A510", 3, 2.0)
                .with_ipc(1.3)
                .with_simd_lanes(2)
                .with_arith_eff(0.28)
                .with_divergence_penalty(0.25)
                .with_irregular_penalty(0.60)
                .with_mem_bw_gbs(6.0)
                .with_dispatch_overhead_us(18.0)
                .with_l2_kib(256)
                .with_pinnable_cores(0))
            .pu(PuSpec::new(PuClass::Gpu, "Adreno 740", 12, 0.68)
                .with_backend(GpuBackend::Vulkan)
                .with_ipc(2.0)
                .with_simd_lanes(48)
                .with_arith_eff(0.38)
                .with_divergence_penalty(0.88)
                .with_irregular_penalty(0.80)
                .with_mem_bw_gbs(26.0)
                .with_dispatch_overhead_us(20.0)
                .with_sync_overhead_us(110.0)
                .with_l2_kib(2048))
            .dram_bw_gbs(28.0)
            .interference(InterferenceModel::calibrated(
                [
                    (PuClass::BigCpu, 1.33),
                    (PuClass::MediumCpu, 0.97),
                    (PuClass::LittleCpu, 0.62),
                    (PuClass::Gpu, 0.62),
                ],
                0.25,
            ))
            .build()
            .expect("oneplus 11 model is valid")
    }

    /// NVIDIA Jetson Orin Nano 8 GB — 6× Cortex-A78AE @ 1.7 GHz, Ampere GPU
    /// (1024 CUDA cores @ 0.625 GHz, CUDA backend).
    ///
    /// Homogeneous CPU complex: only two PU classes, so pipelines have at
    /// most two chunks (this is why the paper sees the smallest gains here).
    pub fn jetson_orin_nano() -> SocSpec {
        SocBuilder::new("Jetson Orin Nano")
            .pu(PuSpec::new(PuClass::BigCpu, "Cortex-A78AE", 6, 1.7)
                .with_ipc(2.6)
                .with_simd_lanes(4)
                .with_arith_eff(0.38)
                .with_divergence_penalty(0.15)
                .with_irregular_penalty(0.42)
                .with_mem_bw_gbs(34.0)
                .with_dispatch_overhead_us(10.0)
                .with_l2_kib(256))
            .pu(PuSpec::new(PuClass::Gpu, "Ampere iGPU", 8, 0.625)
                .with_backend(GpuBackend::Cuda)
                .with_ipc(2.0)
                .with_simd_lanes(128)
                .with_arith_eff(0.42)
                .with_divergence_penalty(0.55)
                .with_irregular_penalty(0.55)
                .with_mem_bw_gbs(45.0)
                .with_dispatch_overhead_us(6.0)
                .with_sync_overhead_us(9.0)
                .with_l2_kib(4096))
            .dram_bw_gbs(55.0)
            .interference(InterferenceModel::calibrated(
                [(PuClass::BigCpu, 1.36), (PuClass::Gpu, 1.13)],
                0.4,
            ))
            .build()
            .expect("jetson orin nano model is valid")
    }

    /// Jetson Orin Nano in its 7 W low-power mode: two CPU cores are shut
    /// off and frequencies are halved (4× A78AE @ 0.85 GHz; GPU clocked
    /// down ~35%).
    pub fn jetson_orin_nano_lp() -> SocSpec {
        SocBuilder::new("Jetson Orin Nano (LP)")
            .pu(PuSpec::new(PuClass::BigCpu, "Cortex-A78AE", 4, 0.85)
                .with_ipc(2.6)
                .with_simd_lanes(4)
                .with_arith_eff(0.38)
                .with_divergence_penalty(0.15)
                .with_irregular_penalty(0.42)
                .with_mem_bw_gbs(26.0)
                .with_dispatch_overhead_us(10.0)
                .with_l2_kib(256))
            .pu(PuSpec::new(PuClass::Gpu, "Ampere iGPU (LP)", 8, 0.42)
                .with_backend(GpuBackend::Cuda)
                .with_ipc(2.0)
                .with_simd_lanes(128)
                .with_arith_eff(0.42)
                .with_divergence_penalty(0.55)
                .with_irregular_penalty(0.55)
                .with_mem_bw_gbs(34.0)
                .with_dispatch_overhead_us(6.0)
                .with_sync_overhead_us(9.0)
                .with_l2_kib(4096))
            .dram_bw_gbs(42.0)
            .interference(InterferenceModel::calibrated(
                [(PuClass::BigCpu, 1.24), (PuClass::Gpu, 1.65)],
                0.4,
            ))
            .build()
            .expect("jetson orin nano lp model is valid")
    }

    /// STM32H745-class dual-core microcontroller — the MCU-class edge
    /// platform exercising the `no_std` runtime substrate (`bt-rt`).
    ///
    /// Mapping of the paper's SoC taxonomy onto an MCU:
    ///
    /// - **big** = Cortex-M7 @ 480 MHz: single-issue-dominant in-order
    ///   core with DSP/FPU dual-issue opportunities (`ipc` 1.6,
    ///   two-lane SIMD via the DSP extensions), fed by tightly-coupled
    ///   SRAM over a narrow AXI bus.
    /// - **little** = Cortex-M4 @ 240 MHz: the companion core, scalar
    ///   only and roughly 7× weaker — useful for light post-processing
    ///   stages, exactly the role little clusters play on phones.
    /// - **GPU slot** = the MDMA/GPDMA engine: an asynchronous engine
    ///   class with real burst bandwidth but almost no arithmetic
    ///   throughput (`arith_eff` 0.1), so only copy/acquisition-shaped
    ///   stages land on it. It has no GPGPU backend (`gpu_backend`
    ///   stays `None`): kernels price at their default efficiency.
    /// - **shared DRAM** = the flash/AXI backbone: at ~1 GB/s it is the
    ///   contended resource, playing the role DRAM bandwidth plays on
    ///   the phone SoCs (tiny SRAM vs slow flash).
    ///
    /// Interference is calibrated aggressively relative to the phones:
    /// on an MCU every bus master shares one AXI matrix, so co-running
    /// the M4 or the DMA engine visibly dilates M7 service times.
    pub fn mcu_m7() -> SocSpec {
        SocBuilder::new("STM32H745-class MCU")
            .pu(PuSpec::new(PuClass::BigCpu, "Cortex-M7", 1, 0.48)
                .with_ipc(1.6)
                .with_simd_lanes(2)
                .with_arith_eff(0.50)
                .with_divergence_penalty(0.05)
                .with_irregular_penalty(0.30)
                .with_mem_bw_gbs(0.64)
                .with_dispatch_overhead_us(2.0)
                .with_sync_overhead_us(1.0)
                .with_l2_kib(16))
            .pu(PuSpec::new(PuClass::LittleCpu, "Cortex-M4", 1, 0.24)
                .with_ipc(1.0)
                .with_simd_lanes(1)
                .with_arith_eff(0.45)
                .with_divergence_penalty(0.08)
                .with_irregular_penalty(0.35)
                .with_mem_bw_gbs(0.25)
                .with_dispatch_overhead_us(3.0)
                .with_sync_overhead_us(1.0)
                .with_l2_kib(0))
            .pu(PuSpec::new(PuClass::Gpu, "MDMA engine", 1, 0.24)
                .with_ipc(1.0)
                .with_simd_lanes(4)
                .with_arith_eff(0.10)
                .with_divergence_penalty(0.95)
                .with_irregular_penalty(0.90)
                .with_mem_bw_gbs(1.0)
                .with_dispatch_overhead_us(1.0)
                .with_sync_overhead_us(3.0)
                .with_l2_kib(0))
            .dram_bw_gbs(1.1)
            .interference(InterferenceModel::calibrated(
                [
                    (PuClass::BigCpu, 1.18),
                    (PuClass::LittleCpu, 1.25),
                    (PuClass::Gpu, 1.05),
                ],
                0.35,
            ))
            .build()
            .expect("mcu model is valid")
    }

    /// All four evaluation platforms, in the paper's order. (The MCU-class
    /// platform [`mcu_m7`] is an extension, not one of the paper's
    /// devices, so it is deliberately not part of this set.)
    pub fn all() -> Vec<SocSpec> {
        vec![
            pixel_7a(),
            oneplus_11(),
            jetson_orin_nano(),
            jetson_orin_nano_lp(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_empty_device() {
        assert!(matches!(
            SocBuilder::new("x").build(),
            Err(SocError::EmptyDevice)
        ));
    }

    #[test]
    fn builder_rejects_bad_bandwidth() {
        let r = SocBuilder::new("x")
            .pu(PuSpec::new(PuClass::BigCpu, "c", 1, 1.0))
            .dram_bw_gbs(0.0)
            .build();
        assert!(matches!(
            r,
            Err(SocError::InvalidSpec {
                param: "dram_bw_gbs",
                ..
            })
        ));
    }

    #[test]
    fn pixel_has_four_classes_all_schedulable() {
        let soc = devices::pixel_7a();
        assert_eq!(soc.classes().len(), 4);
        assert_eq!(soc.schedulable_classes().len(), 4);
        assert_eq!(soc.try_pu(PuClass::BigCpu).unwrap().cores(), 2);
    }

    #[test]
    fn oneplus_little_cluster_not_schedulable() {
        let soc = devices::oneplus_11();
        assert_eq!(soc.classes().len(), 4);
        let sched = soc.schedulable_classes();
        assert_eq!(sched.len(), 3);
        assert!(!sched.contains(&PuClass::LittleCpu));
    }

    #[test]
    fn jetson_has_two_classes() {
        for soc in [devices::jetson_orin_nano(), devices::jetson_orin_nano_lp()] {
            assert_eq!(soc.classes(), vec![PuClass::BigCpu, PuClass::Gpu]);
        }
    }

    #[test]
    fn lp_mode_is_slower_on_cpu() {
        let normal = devices::jetson_orin_nano();
        let lp = devices::jetson_orin_nano_lp();
        let n = normal.try_pu(PuClass::BigCpu).unwrap();
        let l = lp.try_pu(PuClass::BigCpu).unwrap();
        assert!(l.peak_gflops() < n.peak_gflops());
        assert!(l.cores() < n.cores());
    }

    #[test]
    fn missing_pu_error() {
        let soc = devices::jetson_orin_nano();
        assert_eq!(
            soc.try_pu(PuClass::LittleCpu),
            Err(SocError::MissingPu(PuClass::LittleCpu))
        );
        assert!(soc.pu(PuClass::MediumCpu).is_none());
    }
}
