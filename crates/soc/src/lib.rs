//! # bt-soc — heterogeneous SoC modeling substrate
//!
//! This crate is the hardware substrate of the BetterTogether reproduction.
//! The paper evaluates on four physical edge platforms (Google Pixel 7a,
//! OnePlus 11, NVIDIA Jetson Orin Nano in normal and low-power modes); this
//! crate replaces them with calibrated analytic device models plus a
//! discrete-event simulator, so every scheduling experiment in the paper can
//! run on a development machine.
//!
//! The crate provides:
//!
//! - [`PuClass`] / [`PuSpec`] — processing-unit taxonomy (big/medium/little
//!   CPU clusters and integrated GPUs) with architectural parameters.
//! - [`SocSpec`] and the [`devices`] module — complete models of the paper's
//!   four evaluation platforms (Table 2 of the paper).
//! - [`WorkProfile`] — a black-box description of one pipeline stage's
//!   resource demands (flops, DRAM traffic, parallel fraction, control-flow
//!   divergence, memory irregularity).
//! - [`cost`] — a roofline-style latency model mapping a `WorkProfile` onto a
//!   PU under a given concurrency context.
//! - [`InterferenceModel`] — per-device DVFS/firmware multipliers plus
//!   dynamic DRAM bandwidth contention, calibrated against Fig. 7 of the
//!   paper.
//! - [`des`] — a discrete-event simulator that executes a pipelined chunk
//!   schedule in virtual time, re-sampling interference against the set of
//!   concurrently busy PUs.
//!
//! # Example
//!
//! ```
//! use bt_soc::{devices, PuClass, WorkProfile, cost::{self, LoadContext}};
//!
//! let soc = devices::pixel_7a();
//! let work = WorkProfile::new(1.0e6, 4.0e5).with_parallel_fraction(0.95);
//! let gpu = soc.pu(PuClass::Gpu).expect("pixel has a GPU");
//! let t = cost::latency(&work, gpu, &soc, &LoadContext::isolated());
//! assert!(t.as_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affinity;
mod clock;
pub mod cost;
pub mod des;
pub mod des_batch;
pub mod des_dag;
pub mod des_dynamic;
pub mod des_multi;
mod device;
mod error;
pub mod fault;
pub mod gantt;
pub mod hash;
mod interference;
pub mod power;
mod pu;
mod work;

/// The shared run model, re-exported from the runtime substrate (`bt-rt`)
/// so `bt_soc::run::` paths keep working.
pub use bt_rt::run;

pub use affinity::derive_affinity;
pub use bt_rt::{AffinityMap, Micros};
pub use clock::{seed_from_labels, NoiseModel, SimClock};
pub use des_batch::{simulate_batch, simulate_batch_parallel, DesSeedSpec};
pub use des_dag::{simulate_dag, DagPipelineSpec};
pub use des_multi::{simulate_multi, MultiRunReport, TenantSpec};
pub use device::{devices, PerClass, SocBuilder, SocSpec};
pub use error::SocError;
pub use fault::{FaultSpec, PuLoss, SlowdownRamp, StageFault, StageFaultKind, Straggler};
pub use hash::{fnv1a64, json_hash};
pub use interference::{ActiveKernel, InterferenceModel};
pub use pu::{GpuBackend, PuClass, PuId, PuSpec};
pub use run::{DegradeReason, RunConfig, RunReport, RunStats, TimelineSpan};
pub use work::WorkProfile;
