use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

use bt_rt::Micros;

/// The virtual clock driving a discrete-event simulation.
///
/// Monotonic by construction: [`SimClock::advance_to`] refuses to move
/// backwards, mirroring the paper's use of monotonic hardware timers
/// (`cntvct_el0` on ARM64).
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Micros,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> SimClock {
        SimClock { now: Micros::ZERO }
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Advances the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: Micros) {
        assert!(t >= self.now, "virtual clock must be monotonic");
        self.now = t;
    }
}

/// Multiplicative measurement-noise model for simulated timings.
///
/// Real measurements on edge devices jitter even after the paper's
/// mitigations (30-rep averaging, warmup, affinity pinning). We model the
/// residual as log-normal multiplicative noise with median 1, which keeps
/// simulated timings positive and mildly right-skewed like real latency
/// distributions. Deterministic per seed.
///
/// ```
/// use bt_soc::NoiseModel;
/// let mut n = NoiseModel::new(0.03, 42);
/// let f = n.factor();
/// assert!(f > 0.8 && f < 1.2);
/// ```
#[derive(Debug, Clone)]
pub struct NoiseModel {
    dist: Option<LogNormal<f64>>,
    rng: StdRng,
}

impl NoiseModel {
    /// Creates a noise model with log-scale standard deviation `sigma`,
    /// seeded deterministically. `sigma == 0` disables noise.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64, seed: u64) -> NoiseModel {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        NoiseModel {
            dist: if sigma > 0.0 {
                Some(LogNormal::new(0.0, sigma).expect("validated sigma"))
            } else {
                None
            },
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A noiseless model (every factor is exactly 1.0).
    pub fn disabled() -> NoiseModel {
        NoiseModel::new(0.0, 0)
    }

    /// Draws the next multiplicative noise factor.
    pub fn factor(&mut self) -> f64 {
        match &self.dist {
            Some(d) => d.sample(&mut self.rng),
            None => 1.0,
        }
    }

    /// Fills `out` with the next `out.len()` factors of this stream —
    /// exactly the values that many successive [`NoiseModel::factor`]
    /// calls would return, consumed from the same RNG state. Bulk
    /// generation keeps the sampler's tables and the RNG block pipeline
    /// hot, which is what the batched simulator's per-lane prefill
    /// buffers rely on.
    pub fn fill_factors(&mut self, out: &mut [f64]) {
        match &self.dist {
            Some(d) => {
                for v in out.iter_mut() {
                    *v = d.sample(&mut self.rng);
                }
            }
            None => out.fill(1.0),
        }
    }

    /// Applies noise to a duration.
    pub fn perturb(&mut self, t: Micros) -> Micros {
        t * self.factor()
    }

    /// Draws a uniform value in `[0, 1)` from the same stream (used for
    /// tie-breaking decisions that should be reproducible).
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

/// Derives a stable 64-bit seed from a list of labels and a salt, so every
/// (device, application, schedule) combination gets its own reproducible
/// noise stream. FNV-1a; stability across runs is all that matters here.
pub fn seed_from_labels(labels: &[&str], salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for label in labels {
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut c = SimClock::new();
        c.advance_to(Micros::new(5.0));
        assert_eq!(c.now().as_f64(), 5.0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn clock_rejects_backwards() {
        let mut c = SimClock::new();
        c.advance_to(Micros::new(5.0));
        c.advance_to(Micros::new(4.0));
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = NoiseModel::new(0.05, 7);
        let mut b = NoiseModel::new(0.05, 7);
        for _ in 0..10 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn noise_differs_across_seeds() {
        let mut a = NoiseModel::new(0.05, 7);
        let mut b = NoiseModel::new(0.05, 8);
        let va: Vec<f64> = (0..4).map(|_| a.factor()).collect();
        let vb: Vec<f64> = (0..4).map(|_| b.factor()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn disabled_noise_is_identity() {
        let mut n = NoiseModel::disabled();
        let t = Micros::new(123.0);
        assert_eq!(n.perturb(t), t);
        assert_eq!(n.factor(), 1.0);
    }

    #[test]
    fn noise_centered_near_one() {
        let mut n = NoiseModel::new(0.03, 99);
        let mean: f64 = (0..2000).map(|_| n.factor()).sum::<f64>() / 2000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn seed_from_labels_is_stable_and_sensitive() {
        let a = seed_from_labels(&["pixel", "octree"], 1);
        let b = seed_from_labels(&["pixel", "octree"], 1);
        let c = seed_from_labels(&["pixel", "alexnet"], 1);
        let d = seed_from_labels(&["pixel", "octree"], 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
