use std::error::Error;
use std::fmt;

use crate::PuClass;

/// Errors produced while constructing or querying SoC models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SocError {
    /// The device model does not contain the requested PU class.
    MissingPu(PuClass),
    /// A device model was constructed with no processing units.
    EmptyDevice,
    /// A numeric specification parameter was zero or negative.
    InvalidSpec {
        /// Name of the offending parameter.
        param: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A simulation was configured with no chunks or no tasks.
    EmptySimulation,
    /// A DAG pipeline specification is structurally invalid (cyclic,
    /// disconnected join, malformed replica group, …).
    BadDag {
        /// Human-readable description of the structural violation.
        reason: String,
    },
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::MissingPu(class) => {
                write!(f, "device model has no processing unit of class {class}")
            }
            SocError::EmptyDevice => write!(f, "device model has no processing units"),
            SocError::InvalidSpec { param, value } => {
                write!(
                    f,
                    "invalid specification: {param} = {value} must be positive"
                )
            }
            SocError::EmptySimulation => {
                write!(f, "simulation requires at least one chunk and one task")
            }
            SocError::BadDag { reason } => {
                write!(f, "invalid DAG pipeline: {reason}")
            }
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = SocError::MissingPu(PuClass::Gpu);
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SocError>();
    }
}
