//! Roofline-style latency model mapping a [`WorkProfile`] onto a PU.
//!
//! The model combines four effects, each anchored to an architectural
//! parameter of the [`PuSpec`]:
//!
//! 1. **Compute roofline** — parallel arithmetic runs at
//!    `cores × freq × ipc × effective_lanes × arith_eff`, where divergent
//!    control flow collapses SIMD/SIMT lanes according to the PU's
//!    divergence penalty (severe on lockstep mobile GPUs, mild on CPUs).
//! 2. **Memory roofline** — parallel memory traffic runs at the PU's
//!    achievable DRAM bandwidth, derated by access irregularity, and dilated
//!    by DRAM contention with concurrently active PUs.
//! 3. **Amdahl serial fraction** — the serial residue executes on a single
//!    scalar lane.
//! 4. **Dispatch overhead** — a fixed cost per kernel launch (OpenMP
//!    fork/join on CPUs; stream/queue submission on GPUs), which is why
//!    offloading many tiny stages to a mobile GPU loses even when the GPU's
//!    throughput is higher.
//!
//! On top of the rooflines sits the device's [`crate::InterferenceModel`]: a
//! DVFS/firmware multiplier whenever any co-runner is active, and dynamic
//! bandwidth sharing (§5.3 of the paper).

use crate::{ActiveKernel, Micros, PuSpec, SocSpec, WorkProfile};

/// The concurrency context a kernel executes under.
///
/// `isolated()` models the paper's isolated profiling mode; a non-empty
/// co-runner list models interference-heavy profiling or actual pipelined
/// execution.
#[derive(Debug, Clone, Default)]
pub struct LoadContext {
    co_runners: Vec<ActiveKernel>,
}

impl LoadContext {
    /// No other PU is active (isolated profiling mode, §3.2).
    pub fn isolated() -> LoadContext {
        LoadContext {
            co_runners: Vec::new(),
        }
    }

    /// The given kernels are active on other PUs.
    pub fn with_co_runners(co_runners: Vec<ActiveKernel>) -> LoadContext {
        LoadContext { co_runners }
    }

    /// The co-running kernels.
    pub fn co_runners(&self) -> &[ActiveKernel] {
        &self.co_runners
    }

    /// Whether any other PU is active.
    pub fn is_contended(&self) -> bool {
        !self.co_runners.is_empty()
    }
}

/// Total achieved-efficiency multiplier: the per-class calibration times
/// the per-backend kernel quality (for GPUs with a declared backend).
fn achieved_eff(work: &WorkProfile, pu: &PuSpec) -> f64 {
    let backend = pu
        .gpu_backend()
        .map(|b| work.backend_efficiency(b))
        .unwrap_or(1.0);
    work.efficiency(pu.class()) * backend
}

/// Effective SIMD/SIMT lane count for `work` on `pu`: divergence collapses
/// lanes in proportion to the PU's divergence penalty, never below 1.
fn effective_lanes(work: &WorkProfile, pu: &PuSpec) -> f64 {
    let lanes = pu.simd_lanes() as f64;
    (lanes * (1.0 - pu.divergence_penalty() * work.divergence())).max(1.0)
}

/// Parallel arithmetic throughput in FLOP/µs for `work` on `pu`.
fn compute_throughput(work: &WorkProfile, pu: &PuSpec) -> f64 {
    let gflops = pu.cores() as f64
        * pu.freq_ghz()
        * pu.ipc()
        * effective_lanes(work, pu)
        * pu.arith_eff()
        * achieved_eff(work, pu);
    gflops * 1e3 // GFLOP/s → FLOP/µs
}

/// Achievable memory bandwidth in bytes/µs for `work` on `pu`, before DRAM
/// contention: the PU's solo bandwidth derated by access irregularity.
fn memory_throughput(work: &WorkProfile, pu: &PuSpec) -> f64 {
    let gbs = pu.mem_bw_gbs()
        * (1.0 - pu.irregular_penalty() * work.irregularity())
        * achieved_eff(work, pu);
    (gbs * 1e3).max(1e-9) // GB/s → bytes/µs
}

/// DRAM bandwidth demand of `work` running on `pu`, in GB/s.
///
/// Used to describe this kernel as an [`ActiveKernel`] co-runner: a fully
/// memory-bound kernel demands its whole achievable bandwidth; a
/// compute-bound kernel only the fraction of time it spends in its memory
/// phase.
pub fn bw_demand(work: &WorkProfile, pu: &PuSpec) -> f64 {
    let t_comp = work.flops() / compute_throughput(work, pu);
    let t_mem = work.bytes() / memory_throughput(work, pu);
    let total = t_comp + t_mem;
    if total <= 0.0 {
        return 0.0;
    }
    let mem_fraction = t_mem / total.max(1e-12);
    memory_throughput(work, pu) / 1e3 * mem_fraction
}

/// Latency of one execution of `work` on `pu` of `soc` under `ctx`.
///
/// This is the central primitive of the substrate: the profiler, the
/// discrete-event simulator, and the baselines all call it. Deterministic —
/// measurement noise is applied by callers via [`crate::NoiseModel`].
///
/// ```
/// use bt_soc::{devices, PuClass, WorkProfile, cost::{latency, LoadContext}};
/// let soc = devices::jetson_orin_nano();
/// let w = WorkProfile::new(50.0e6, 8.0e6);
/// let cpu = latency(&w, soc.pu(PuClass::BigCpu).unwrap(), &soc, &LoadContext::isolated());
/// let gpu = latency(&w, soc.pu(PuClass::Gpu).unwrap(), &soc, &LoadContext::isolated());
/// // dense, regular work favours the Ampere GPU
/// assert!(gpu < cpu);
/// ```
pub fn latency(work: &WorkProfile, pu: &PuSpec, soc: &SocSpec, ctx: &LoadContext) -> Micros {
    latency_under(work, pu, soc, ctx.co_runners())
}

/// [`latency`] against a borrowed co-runner slice instead of a
/// [`LoadContext`] — the allocation-free form hot loops (the discrete-event
/// simulator's per-dispatch service computation) call with a reused scratch
/// buffer. Bit-identical to [`latency`] with the same co-runners.
pub fn latency_under(
    work: &WorkProfile,
    pu: &PuSpec,
    soc: &SocSpec,
    co_runners: &[ActiveKernel],
) -> Micros {
    let pf = work.parallel_fraction();

    // Parallel phase: roofline of compute and memory.
    let t_comp = work.flops() * pf / compute_throughput(work, pu);
    let mut t_mem = work.bytes() * pf / memory_throughput(work, pu);

    // DRAM contention dilates the memory phase.
    let dilation =
        soc.interference()
            .memory_dilation(bw_demand(work, pu), co_runners, soc.dram_bw_gbs());
    t_mem *= dilation;

    let t_parallel = t_comp.max(t_mem);

    // Serial residue on one scalar lane.
    let scalar_thr = pu.freq_ghz() * pu.ipc() * pu.arith_eff() * 1e3;
    let t_serial = work.flops() * (1.0 - pf) / scalar_thr;

    // DVFS / firmware response when any co-runner is active.
    let dvfs = if co_runners.is_empty() {
        1.0
    } else {
        soc.interference().dvfs_multiplier(pu.class())
    };

    let t_dispatch = work.launches() as f64 * pu.dispatch_overhead_us();
    Micros::new((t_parallel + t_serial) * dvfs + t_dispatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{devices, InterferenceModel, PuClass, SocBuilder};

    fn test_soc(contention: f64, dvfs: &[(PuClass, f64)]) -> SocSpec {
        let mut pairs = [(PuClass::BigCpu, 1.0); 4];
        for (i, &(c, m)) in dvfs.iter().enumerate() {
            pairs[i] = (c, m);
        }
        let model = match dvfs.len() {
            0 => InterferenceModel::calibrated::<0>([], contention),
            1 => InterferenceModel::calibrated([pairs[0]], contention),
            2 => InterferenceModel::calibrated([pairs[0], pairs[1]], contention),
            _ => panic!("test helper supports up to 2 entries"),
        };
        SocBuilder::new("test")
            .pu(PuSpec::new(PuClass::BigCpu, "big", 2, 2.0).with_mem_bw_gbs(10.0))
            .pu(PuSpec::new(PuClass::Gpu, "gpu", 8, 1.0).with_mem_bw_gbs(15.0))
            .dram_bw_gbs(16.0)
            .interference(model)
            .build()
            .unwrap()
    }

    #[test]
    fn latency_is_positive_and_finite() {
        let soc = devices::pixel_7a();
        let w = WorkProfile::new(1e6, 1e5);
        for (_, pu) in soc.pus() {
            let t = latency(&w, pu, &soc, &LoadContext::isolated());
            assert!(t.as_f64() > 0.0 && t.as_f64().is_finite());
        }
    }

    #[test]
    fn more_flops_takes_longer() {
        let soc = test_soc(0.0, &[]);
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let a = latency(
            &WorkProfile::new(1e6, 1e4),
            pu,
            &soc,
            &LoadContext::isolated(),
        );
        let b = latency(
            &WorkProfile::new(1e8, 1e4),
            pu,
            &soc,
            &LoadContext::isolated(),
        );
        assert!(b > a);
    }

    #[test]
    fn divergence_hurts_gpu_more_than_cpu() {
        let soc = devices::pixel_7a();
        let regular = WorkProfile::new(5e7, 1e6);
        let divergent = WorkProfile::new(5e7, 1e6).with_divergence(1.0);
        let cpu = soc.pu(PuClass::BigCpu).unwrap();
        let gpu = soc.pu(PuClass::Gpu).unwrap();
        let ctx = LoadContext::isolated();
        let cpu_ratio = latency(&divergent, cpu, &soc, &ctx) / latency(&regular, cpu, &soc, &ctx);
        let gpu_ratio = latency(&divergent, gpu, &soc, &ctx) / latency(&regular, gpu, &soc, &ctx);
        assert!(
            gpu_ratio > 2.0 * cpu_ratio,
            "gpu {gpu_ratio} vs cpu {cpu_ratio}"
        );
    }

    #[test]
    fn launch_overhead_dominates_tiny_gpu_kernels() {
        let soc = devices::pixel_7a();
        let tiny = WorkProfile::new(1e3, 1e3).with_launches(4);
        let gpu = soc.pu(PuClass::Gpu).unwrap();
        let t = latency(&tiny, gpu, &soc, &LoadContext::isolated());
        // 4 launches at 25 µs each dwarf the sub-µs compute.
        assert!(t.as_f64() > 4.0 * 20.0);
    }

    #[test]
    fn dvfs_multiplier_applies_only_under_contention() {
        let soc = test_soc(0.0, &[(PuClass::BigCpu, 1.5)]);
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let w = WorkProfile::new(1e7, 1e3); // compute-bound: no bw effect
        let iso = latency(&w, pu, &soc, &LoadContext::isolated());
        let ctx = LoadContext::with_co_runners(vec![ActiveKernel::new(PuClass::Gpu, 0.0)]);
        let heavy = latency(&w, pu, &soc, &ctx);
        let ratio = heavy / iso;
        assert!(ratio > 1.3 && ratio < 1.55, "ratio was {ratio}");
    }

    #[test]
    fn gpu_boost_speeds_up_under_load() {
        let soc = test_soc(0.0, &[(PuClass::Gpu, 0.7)]);
        let pu = soc.pu(PuClass::Gpu).unwrap();
        let w = WorkProfile::new(1e8, 1e3);
        let iso = latency(&w, pu, &soc, &LoadContext::isolated());
        let ctx = LoadContext::with_co_runners(vec![ActiveKernel::new(PuClass::BigCpu, 0.0)]);
        let heavy = latency(&w, pu, &soc, &ctx);
        assert!(heavy < iso);
    }

    #[test]
    fn bandwidth_contention_slows_memory_bound_work() {
        let soc = test_soc(1.0, &[]);
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let membound = WorkProfile::new(1e3, 5e7);
        let iso = latency(&membound, pu, &soc, &LoadContext::isolated());
        // A co-runner demanding the full DRAM bandwidth.
        let ctx = LoadContext::with_co_runners(vec![ActiveKernel::new(PuClass::Gpu, 16.0)]);
        let heavy = latency(&membound, pu, &soc, &ctx);
        assert!(heavy.as_f64() > 1.2 * iso.as_f64());
    }

    #[test]
    fn compute_bound_work_is_insensitive_to_bandwidth_contention() {
        let soc = test_soc(1.0, &[]);
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let compbound = WorkProfile::new(1e8, 1e3);
        let iso = latency(&compbound, pu, &soc, &LoadContext::isolated());
        let ctx = LoadContext::with_co_runners(vec![ActiveKernel::new(PuClass::Gpu, 16.0)]);
        let heavy = latency(&compbound, pu, &soc, &ctx);
        let ratio = heavy / iso;
        assert!(ratio < 1.02, "ratio was {ratio}");
    }

    #[test]
    fn bw_demand_tracks_memory_boundedness() {
        let soc = test_soc(0.0, &[]);
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let membound = bw_demand(&WorkProfile::new(1e3, 1e8), pu);
        let compbound = bw_demand(&WorkProfile::new(1e9, 1e3), pu);
        assert!(membound > 5.0, "memory-bound demand was {membound} GB/s");
        assert!(compbound < 0.5, "compute-bound demand was {compbound} GB/s");
    }

    #[test]
    fn serial_fraction_penalizes_gpu() {
        let soc = devices::jetson_orin_nano();
        let gpu = soc.pu(PuClass::Gpu).unwrap();
        let par = WorkProfile::new(5e7, 1e5).with_parallel_fraction(1.0);
        let half = WorkProfile::new(5e7, 1e5).with_parallel_fraction(0.5);
        let ctx = LoadContext::isolated();
        let ratio = latency(&half, gpu, &soc, &ctx) / latency(&par, gpu, &soc, &ctx);
        assert!(
            ratio > 5.0,
            "serial residue should dominate on GPU, ratio {ratio}"
        );
    }

    #[test]
    fn efficiency_override_scales_latency() {
        let soc = test_soc(0.0, &[]);
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let base = WorkProfile::new(1e8, 1e3).with_parallel_fraction(1.0);
        let slow = base.clone().with_efficiency(PuClass::BigCpu, 0.5);
        let ctx = LoadContext::isolated();
        let r = latency(&slow, pu, &soc, &ctx) / latency(&base, pu, &soc, &ctx);
        assert!((r - 2.0).abs() < 0.1, "ratio was {r}");
    }
}
