//! Multi-tenant discrete-event simulation: several independent pipelined
//! applications ("tenants") co-running on one SoC in shared virtual time.
//!
//! [`crate::des::simulate`] executes one chunk chain; [`simulate_multi`]
//! executes a *forest* of them. Every tenant keeps its own task stream,
//! buffer pool, warmup accounting, and noise stream (seeded from its own
//! [`RunConfig::seed`]), but all chunks share one event clock and one
//! interference busy-set: when any chunk starts a stage, its service time
//! is priced against every PU busy at that instant — in its own pipeline
//! *or any other tenant's*. Cross-tenant co-runners additionally have
//! their advertised bandwidth demand scaled by
//! [`crate::InterferenceModel::cross_tenant_penalty`], which at its
//! default of 1.0 prices them exactly like intra-app co-runners.
//!
//! Determinism: the event loop is a pure argmin over per-chunk completion
//! times with the same (time, lowest global chunk) tie-break as the
//! single-tenant engine, and every noise draw is attributed to exactly one
//! tenant's stream, so a tenant mix replays bit-identically per seed
//! vector. With a single tenant the engine reduces to the uncached path of
//! [`crate::des::simulate`] and reproduces it bit for bit.

use std::collections::VecDeque;

use crate::cost;
use crate::des::{steady_stats_from_completions, ChunkSpec};
use crate::fault::{FaultSpec, StageFaultKind};
use crate::run::{RunConfig, RunReport, TimelineSpan};
use crate::{ActiveKernel, NoiseModel, PuSpec, SocError, SocSpec};

/// One co-running application: a name, its chunk schedule, and its own
/// run configuration.
///
/// The simulator honours `tasks`, `warmup`, `buffers`, `seed`,
/// `noise_sigma`, and `record_timeline` per tenant; telemetry collection
/// is not supported in multi-tenant runs (the per-tenant reports carry
/// `telemetry: None`).
///
/// By default the chunks form a linear pipeline in vector order. A
/// tenant whose chunks form a fork/join DAG instead declares its edges
/// with [`TenantSpec::with_edges`]; sibling branches then genuinely
/// overlap in time (and in every co-runner's interference busy-set).
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name of the tenant (application identifier).
    pub name: String,
    /// The tenant's pipeline: chunks in pipeline order.
    pub chunks: Vec<ChunkSpec>,
    /// The tenant's run configuration.
    pub cfg: RunConfig,
    /// Dataflow edges `(from, to)` over local chunk indices. `None` (the
    /// default) means the linear chain `0 → 1 → … → n-1`. When set, the
    /// edges must form an acyclic graph with a unique source and a unique
    /// sink; chain-shaped edge sets behave identically to `None`.
    pub edges: Option<Vec<(usize, usize)>>,
}

impl TenantSpec {
    /// Convenience constructor for a linear-chain tenant.
    pub fn new(name: impl Into<String>, chunks: Vec<ChunkSpec>, cfg: RunConfig) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            chunks,
            cfg,
            edges: None,
        }
    }

    /// Declares explicit dataflow edges over this tenant's chunks,
    /// turning it into a fork/join DAG pipeline.
    #[must_use]
    pub fn with_edges(mut self, edges: Vec<(usize, usize)>) -> TenantSpec {
        self.edges = Some(edges);
        self
    }
}

/// Per-tenant routing structure derived from its (optional) edge set.
#[derive(Debug)]
struct TenantShape {
    /// True when the tenant needs DAG routing; chain-shaped tenants
    /// (explicit or implicit) take the original linear path verbatim.
    dag: bool,
    /// Local successor lists per chunk.
    nexts: Vec<Vec<usize>>,
    /// Number of predecessors per chunk (join fan-in).
    required: Vec<u32>,
    /// Local index of the unique source chunk (admission point).
    source: usize,
}

impl TenantShape {
    fn derive(t: &TenantSpec) -> Result<TenantShape, SocError> {
        let n = t.chunks.len();
        let Some(raw) = &t.edges else {
            return Ok(TenantShape::chain(n));
        };
        let mut edges = raw.clone();
        edges.sort_unstable();
        edges.dedup();
        for &(from, to) in &edges {
            if from >= n || to >= n || from == to {
                return Err(SocError::BadDag {
                    reason: format!(
                        "tenant '{}': edge ({from}, {to}) is invalid for {n} chunks",
                        t.name
                    ),
                });
            }
        }
        let mut nexts: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut required: Vec<u32> = vec![0; n];
        for &(from, to) in &edges {
            nexts[from].push(to);
            required[to] += 1;
        }
        // Kahn pass for acyclicity.
        let mut indeg = required.clone();
        let mut queue: Vec<usize> = (0..n).filter(|&c| indeg[c] == 0).collect();
        let mut seen = 0usize;
        while let Some(c) = queue.pop() {
            seen += 1;
            for &d in &nexts[c] {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    queue.push(d);
                }
            }
        }
        if seen != n {
            return Err(SocError::BadDag {
                reason: format!("tenant '{}': chunk edges contain a cycle", t.name),
            });
        }
        let sources: Vec<usize> = (0..n).filter(|&c| required[c] == 0).collect();
        let sinks: Vec<usize> = (0..n).filter(|&c| nexts[c].is_empty()).collect();
        let (&[source], &[_]) = (sources.as_slice(), sinks.as_slice()) else {
            return Err(SocError::BadDag {
                reason: format!(
                    "tenant '{}': needs exactly one source and one sink chunk \
                     (got {} and {})",
                    t.name,
                    sources.len(),
                    sinks.len()
                ),
            });
        };
        let chain_shaped = edges.len() == n.saturating_sub(1)
            && edges
                .iter()
                .enumerate()
                .all(|(i, &(f, to))| f == i && to == i + 1);
        if chain_shaped {
            return Ok(TenantShape::chain(n));
        }
        Ok(TenantShape {
            dag: true,
            nexts,
            required,
            source,
        })
    }

    fn chain(n: usize) -> TenantShape {
        TenantShape {
            dag: false,
            nexts: (0..n)
                .map(|c| if c + 1 < n { vec![c + 1] } else { Vec::new() })
                .collect(),
            required: (0..n).map(|c| u32::from(c > 0)).collect(),
            source: 0,
        }
    }
}

/// Result of one multi-tenant co-run.
#[derive(Debug, Clone)]
pub struct MultiRunReport {
    /// One unified report per tenant, in input order. Each upholds the
    /// engine invariant `completed + dropped == submitted` and windows its
    /// stats with its own warmup (timeline chunk indices are
    /// tenant-local).
    pub tenants: Vec<RunReport>,
    /// Virtual time of the last task completion across all tenants, µs
    /// from the co-run start (0 when nothing completed).
    pub makespan_us: f64,
    /// Aggregate completed tasks per second over the co-run makespan
    /// (0 when nothing completed).
    pub throughput_hz: f64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    task: usize,
    stage: usize,
    /// Intra-tenant bandwidth demand advertised while this stage runs;
    /// cross-tenant observers scale it by the model's penalty.
    demand: f64,
}

/// Global chunk bookkeeping: which tenant owns it and where it sits in
/// that tenant's chain.
#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    tenant: usize,
    local: usize,
    /// Global index of the downstream chunk (`None` at the tail).
    next: Option<usize>,
    head: usize,
}

#[derive(Debug)]
struct ChunkState {
    input: VecDeque<usize>,
    busy: Option<InFlight>,
    busy_since: f64,
    busy_spans: Vec<(f64, f64)>,
    /// Join fan-in bookkeeping (DAG tenants only): arrivals so far per
    /// task; a task enters `input` once every predecessor has delivered.
    pending: std::collections::HashMap<usize, u32>,
}

#[derive(Debug)]
struct TenantState {
    started: usize,
    total: usize,
    warmup: usize,
    completed: usize,
    dropped: usize,
    faults_fired: u32,
    entry_time: Vec<f64>,
    completions: Vec<(f64, f64)>,
    noise: NoiseModel,
    /// A drop recycled an object to this tenant's head outside the normal
    /// completion flow since its last head pump.
    recycled: bool,
    timeline: Vec<TimelineSpan>,
    collect_timeline: bool,
    /// True when this tenant routes through the DAG paths; chain tenants
    /// run the original linear code verbatim.
    dag: bool,
    /// Tombstoned tasks of a DAG tenant: killed (and counted dropped) at
    /// their death site, but still flowing onward at zero cost so joins
    /// never starve waiting for a dead sibling branch.
    dead: std::collections::HashSet<usize>,
}

/// The forest engine: the single-tenant event loop of `des.rs`
/// generalized over a flattened global chunk list. Service times are
/// computed uncached — the single-tenant memo key cannot express foreign
/// tenants, and co-run busy-sets are far more varied than one pipeline's.
struct Engine<'a> {
    soc: &'a SocSpec,
    chunks: Vec<&'a ChunkSpec>,
    meta: Vec<ChunkMeta>,
    pus: Vec<&'a PuSpec>,
    /// `demand[chunk][stage]`, busy-set independent (see `ServiceModel`).
    demand: Vec<Vec<f64>>,
    /// `sync[chunk][stage]` completion-synchronization cost.
    sync: Vec<Vec<f64>>,
    faults: Option<&'a FaultSpec>,
    loss: Vec<Option<f64>>,
    states: Vec<ChunkState>,
    doomed: Vec<bool>,
    /// Global successor lists (DAG tenants; chain tenants route through
    /// `ChunkMeta::next` exactly as before).
    nexts: Vec<Vec<usize>>,
    /// Predecessor counts per global chunk (join fan-in; DAG tenants).
    required: Vec<u32>,
    /// Completion time per chunk; `INFINITY` marks an idle chunk (the
    /// fixed-slot event set of `des.rs`, argmin with strict `<`).
    next_done: Vec<f64>,
    tenants: Vec<TenantState>,
    scratch: Vec<ActiveKernel>,
    xt_penalty: f64,
    remaining: usize,
    last_completion: f64,
}

impl Engine<'_> {
    fn pop_event(&mut self) -> (f64, usize) {
        let mut best = (f64::INFINITY, usize::MAX);
        for (chunk, &t) in self.next_done.iter().enumerate() {
            if t < best.0 {
                best = (t, chunk);
            }
        }
        assert!(
            best.1 != usize::MAX,
            "tenant pipelines cannot deadlock with buffered queues"
        );
        self.next_done[best.1] = f64::INFINITY;
        best
    }

    fn lost(&self, c: usize, now: f64) -> bool {
        self.loss[c].is_some_and(|t| now >= t)
    }

    /// Drops the task just popped from a non-head chunk of tenant `t`:
    /// its object recycles to that tenant's head pool.
    fn drop_and_recycle(&mut self, c: usize) {
        let t = self.meta[c].tenant;
        let head = self.meta[c].head;
        self.tenants[t].dropped += 1;
        self.remaining -= 1;
        self.states[head].input.push_back(usize::MAX);
        self.tenants[t].recycled = true;
    }

    fn finish_span(&mut self, c: usize, now: f64) {
        let since = self.states[c].busy_since;
        self.states[c].busy_spans.push((since, now));
        self.states[c].busy = None;
    }

    /// DAG tenants only: a task token (live or tombstoned) leaves chunk
    /// `c` — deliver it to every successor, or complete/recycle at the
    /// sink. Join successors admit the task once all predecessors have
    /// delivered; arrivals at any chunk are monotone in task order (each
    /// branch serves in order, and a max of monotone arrival times is
    /// monotone), so sorted insertion keeps service deterministic.
    fn forward_dag(&mut self, c: usize, task: usize, now: f64) {
        let tenant = self.meta[c].tenant;
        let head = self.meta[c].head;
        if self.nexts[c].is_empty() {
            // Sink. Tombstoned tasks were counted dropped at their death
            // site; either way the object returns to the head pool.
            if !self.tenants[tenant].dead.remove(&task) {
                let entry = self.tenants[tenant].entry_time[task];
                self.tenants[tenant].completions.push((entry, now));
                self.tenants[tenant].completed += 1;
                self.remaining -= 1;
                self.last_completion = self.last_completion.max(now);
            }
            self.states[head].input.push_back(usize::MAX);
            self.pump(head, now);
            return;
        }
        for i in 0..self.nexts[c].len() {
            let next = self.nexts[c][i];
            let ready = if self.required[next] <= 1 {
                true
            } else {
                let cnt = self.states[next].pending.entry(task).or_insert(0);
                *cnt += 1;
                if *cnt == self.required[next] {
                    self.states[next].pending.remove(&task);
                    true
                } else {
                    false
                }
            };
            if ready {
                let pos = self.states[next]
                    .input
                    .iter()
                    .position(|&t| t > task)
                    .unwrap_or(self.states[next].input.len());
                self.states[next].input.insert(pos, task);
                self.pump(next, now);
            }
        }
    }

    /// DAG tenants only: kill `task` at chunk `c` — count the drop once
    /// and tombstone it so the token still flows through forks and joins
    /// at zero cost.
    fn kill_and_forward(&mut self, c: usize, task: usize, now: f64) {
        let tenant = self.meta[c].tenant;
        if self.tenants[tenant].dead.insert(task) {
            self.tenants[tenant].dropped += 1;
            self.remaining -= 1;
        }
        self.forward_dag(c, task, now);
    }

    /// The task's fault at global chunk `c`, if a spec is active. Fault
    /// chunk indices address the *global* (flattened) chunk list; task
    /// indices are tenant-local sequence numbers.
    fn stage_fault(&self, c: usize, task: usize, stage: usize) -> Option<StageFaultKind> {
        self.faults.and_then(|f| f.stage_fault(c, task, stage))
    }

    /// Samples the service time of `(c, stage)` against the instantaneous
    /// cross-tenant busy set and schedules its completion, clamped to the
    /// chunk's loss instant.
    fn start_stage(&mut self, c: usize, task: usize, stage: usize, now: f64) {
        let tenant = self.meta[c].tenant;
        self.scratch.clear();
        for (i, s) in self.states.iter().enumerate() {
            if i == c {
                continue;
            }
            if let Some(inflight) = s.busy {
                let mut d = inflight.demand;
                if self.meta[i].tenant != tenant {
                    d *= self.xt_penalty;
                }
                self.scratch.push(ActiveKernel::new(self.chunks[i].pu, d));
            }
        }
        let work = &self.chunks[c].stages[stage];
        let base = cost::latency_under(work, self.pus[c], self.soc, &self.scratch).as_f64();
        let noisy = base * self.tenants[tenant].noise.factor() + self.sync[c][stage];

        let mut dt = noisy;
        if let Some(spec) = self.faults {
            let straggle = spec.straggler_factor(c, task);
            if stage == 0 && straggle != 1.0 {
                self.tenants[tenant].faults_fired += 1;
            }
            dt = noisy * spec.slowdown_factor(self.chunks[c].pu, now) * straggle;
            if let Some(StageFaultKind::Timeout { extra_us }) = spec.stage_fault(c, task, stage) {
                dt += extra_us;
                self.tenants[tenant].faults_fired += 1;
            }
        }
        let mut end = now + dt;
        if let Some(t_loss) = self.loss[c] {
            if end > t_loss {
                end = t_loss;
                self.doomed[c] = true;
            }
        }
        self.states[c].busy = Some(InFlight {
            task,
            stage,
            demand: self.demand[c][stage],
        });
        if stage == 0 {
            self.states[c].busy_since = now;
        }
        debug_assert!(self.next_done[c].is_infinite(), "one event per chunk");
        self.next_done[c] = end;
        if self.tenants[tenant].collect_timeline {
            let local = self.meta[c].local;
            self.tenants[tenant].timeline.push(TimelineSpan {
                chunk: local,
                stage: Some(stage),
                task: task as u64,
                start_us: now,
                end_us: end,
            });
        }
    }

    /// Starts work on idle global chunk `c`: admits new tasks at the
    /// tenant's head, drains fault-induced drops without advancing virtual
    /// time, and dispatches the first unfaulted arrival.
    fn pump(&mut self, c: usize, now: f64) {
        let tenant = self.meta[c].tenant;
        let is_head = self.meta[c].head == c;
        loop {
            if self.states[c].busy.is_some() {
                return;
            }
            let task = if is_head {
                if self.tenants[tenant].started >= self.tenants[tenant].total
                    || self.states[c].input.is_empty()
                {
                    return;
                }
                // A lost head consumes the task stream but keeps its
                // objects: every remaining admission drops immediately.
                if self.lost(c, now) {
                    let t = &mut self.tenants[tenant];
                    let seq = t.started;
                    t.entry_time[seq] = now;
                    t.started += 1;
                    t.dropped += 1;
                    t.faults_fired += 1;
                    self.remaining -= 1;
                    continue;
                }
                self.states[c].input.pop_front();
                let t = &mut self.tenants[tenant];
                let seq = t.started;
                t.started += 1;
                t.entry_time[seq] = now;
                seq
            } else {
                match self.states[c].input.pop_front() {
                    Some(t) => t,
                    None => return,
                }
            };
            // Tombstones of a DAG tenant flow onward at zero cost: no
            // service, no faults, just routing.
            if !is_head && self.tenants[tenant].dag && self.tenants[tenant].dead.contains(&task) {
                self.forward_dag(c, task, now);
                continue;
            }
            if !is_head && self.lost(c, now) {
                self.tenants[tenant].faults_fired += 1;
                if self.tenants[tenant].dag {
                    self.kill_and_forward(c, task, now);
                } else {
                    self.drop_and_recycle(c);
                }
                continue;
            }
            if matches!(self.stage_fault(c, task, 0), Some(StageFaultKind::Error)) {
                self.tenants[tenant].faults_fired += 1;
                if self.tenants[tenant].dag {
                    self.kill_and_forward(c, task, now);
                    continue;
                }
                let head = self.meta[c].head;
                self.tenants[tenant].dropped += 1;
                self.remaining -= 1;
                self.states[head].input.push_back(usize::MAX);
                if !is_head {
                    self.tenants[tenant].recycled = true;
                }
                continue;
            }
            self.start_stage(c, task, 0, now);
            return;
        }
    }

    /// Objects recycled by drops re-arm the tenant's head outside the
    /// normal completion flow; give it a chance to admit with them.
    fn flush_recycled(&mut self, tenant: usize, head: usize, now: f64) {
        while self.tenants[tenant].recycled {
            self.tenants[tenant].recycled = false;
            self.pump(head, now);
        }
    }

    fn run(&mut self) {
        // Prime every tenant's head at t = 0, in tenant order.
        let heads: Vec<usize> = self
            .meta
            .iter()
            .enumerate()
            .filter(|(c, m)| m.head == *c)
            .map(|(c, _)| c)
            .collect();
        for &h in &heads {
            self.pump(h, 0.0);
        }
        while self.remaining > 0 {
            let (now, c) = self.pop_event();
            let tenant = self.meta[c].tenant;
            let head = self.meta[c].head;
            let inflight = self.states[c].busy.expect("event implies busy chunk");

            if self.doomed[c] {
                // The PU died mid-service at `now` (its loss instant).
                self.doomed[c] = false;
                self.finish_span(c, now);
                self.tenants[tenant].faults_fired += 1;
                if self.tenants[tenant].dag {
                    self.kill_and_forward(c, inflight.task, now);
                } else {
                    self.drop_and_recycle(c);
                }
                self.pump(c, now); // drains the queued input as drops
                self.flush_recycled(tenant, head, now);
                continue;
            }

            if inflight.stage + 1 < self.chunks[c].stages.len() {
                if matches!(
                    self.stage_fault(c, inflight.task, inflight.stage + 1),
                    Some(StageFaultKind::Error)
                ) {
                    self.tenants[tenant].faults_fired += 1;
                    self.finish_span(c, now);
                    if self.tenants[tenant].dag {
                        self.kill_and_forward(c, inflight.task, now);
                    } else {
                        self.drop_and_recycle(c);
                    }
                    self.pump(c, now);
                    self.flush_recycled(tenant, head, now);
                } else {
                    // Next stage of the same chunk; re-sample interference.
                    self.start_stage(c, inflight.task, inflight.stage + 1, now);
                }
                continue;
            }

            // Chunk finished its last stage for this task.
            self.finish_span(c, now);
            let task = inflight.task;
            if self.tenants[tenant].dag {
                self.forward_dag(c, task, now);
            } else {
                match self.meta[c].next {
                    None => {
                        let entry = self.tenants[tenant].entry_time[task];
                        self.tenants[tenant].completions.push((entry, now));
                        self.tenants[tenant].completed += 1;
                        self.remaining -= 1;
                        self.last_completion = self.last_completion.max(now);
                        self.states[head].input.push_back(usize::MAX);
                        self.pump(head, now);
                    }
                    Some(next) => {
                        self.states[next].input.push_back(task);
                        self.pump(next, now);
                    }
                }
            }
            self.pump(c, now);
            self.flush_recycled(tenant, head, now);
        }
    }
}

/// Simulates `tenants` co-running on `soc` in one shared virtual
/// timeline, optionally under the perturbations in `faults`.
///
/// Every tenant runs its own pipeline (own task stream, buffers, warmup
/// window, and noise stream seeded from its `cfg.seed`), while service
/// times are priced against the union busy-set of *all* tenants' chunks —
/// this is the co-location interference the admission policies in
/// `bt-faults` reason about. Fault specs address chunks by their index in
/// the flattened global chunk list (tenant 0's chunks first, then tenant
/// 1's, …); task indices are tenant-local.
///
/// Determinism: bit-replayable per (tenant set, seed vector) — two calls
/// with identical inputs produce identical reports, and a single-tenant
/// call is bit-identical to [`crate::des::simulate`].
///
/// # Errors
///
/// Returns [`SocError::EmptySimulation`] if `tenants` is empty or any
/// tenant has no chunks, a stageless chunk, or `cfg.tasks == 0`;
/// [`SocError::MissingPu`] if any chunk names a PU class the device
/// lacks; [`SocError::BadDag`] if a tenant's explicit edge set is
/// malformed (out of range, cyclic, or without a unique source/sink).
pub fn simulate_multi(
    soc: &SocSpec,
    tenants: &[TenantSpec],
    faults: Option<&FaultSpec>,
) -> Result<MultiRunReport, SocError> {
    if tenants.is_empty() {
        return Err(SocError::EmptySimulation);
    }
    for t in tenants {
        if t.chunks.is_empty() || t.cfg.tasks == 0 || t.chunks.iter().any(|c| c.stages.is_empty()) {
            return Err(SocError::EmptySimulation);
        }
        for chunk in &t.chunks {
            soc.try_pu(chunk.pu)?;
        }
    }

    // Flatten the forest: tenant 0's chunks first, then tenant 1's, …
    let mut chunks: Vec<&ChunkSpec> = Vec::new();
    let mut meta: Vec<ChunkMeta> = Vec::new();
    let mut tenant_states: Vec<TenantState> = Vec::with_capacity(tenants.len());
    let mut states: Vec<ChunkState> = Vec::new();
    let mut nexts: Vec<Vec<usize>> = Vec::new();
    let mut required: Vec<u32> = Vec::new();
    for (ti, t) in tenants.iter().enumerate() {
        let shape = TenantShape::derive(t)?;
        let base = chunks.len();
        // The "head" is the admission point: local chunk 0 for chains,
        // the unique source for DAG tenants.
        let head = base + shape.source;
        let n = t.chunks.len();
        let total = (t.cfg.tasks + t.cfg.warmup) as usize;
        let buffers = if t.cfg.buffers == 0 {
            n + 1
        } else {
            t.cfg.buffers as usize
        };
        for (li, c) in t.chunks.iter().enumerate() {
            let g = chunks.len();
            chunks.push(c);
            meta.push(ChunkMeta {
                tenant: ti,
                local: li,
                next: (!shape.dag && li + 1 < n).then_some(g + 1),
                head,
            });
            nexts.push(shape.nexts[li].iter().map(|&d| base + d).collect());
            required.push(shape.required[li]);
            let mut input = VecDeque::with_capacity(buffers);
            if g == head {
                // All task objects begin recycled at the tenant's head.
                for _ in 0..buffers {
                    input.push_back(usize::MAX);
                }
            }
            states.push(ChunkState {
                input,
                busy: None,
                busy_since: 0.0,
                busy_spans: Vec::with_capacity(total),
                pending: std::collections::HashMap::new(),
            });
        }
        tenant_states.push(TenantState {
            started: 0,
            total,
            warmup: t.cfg.warmup as usize,
            completed: 0,
            dropped: 0,
            faults_fired: 0,
            entry_time: vec![0.0f64; total],
            completions: Vec::with_capacity(total),
            noise: NoiseModel::new(t.cfg.noise_sigma, t.cfg.seed),
            recycled: false,
            timeline: Vec::new(),
            collect_timeline: t.cfg.record_timeline,
            dag: shape.dag,
            dead: std::collections::HashSet::new(),
        });
    }

    let n_chunks = chunks.len();
    let pus: Vec<&PuSpec> = chunks
        .iter()
        .map(|c| soc.pu(c.pu).expect("chunk PUs validated above"))
        .collect();
    let demand: Vec<Vec<f64>> = chunks
        .iter()
        .zip(&pus)
        .map(|(c, pu)| c.stages.iter().map(|w| cost::bw_demand(w, pu)).collect())
        .collect();
    let sync: Vec<Vec<f64>> = chunks
        .iter()
        .zip(&pus)
        .map(|(c, pu)| {
            (0..c.stages.len())
                .map(|s| {
                    if c.sync_per_stage || s + 1 == c.stages.len() {
                        pu.sync_overhead_us()
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    let remaining = tenant_states.iter().map(|t| t.total).sum();
    let mut eng = Engine {
        soc,
        meta,
        pus,
        demand,
        sync,
        faults,
        loss: match faults {
            Some(f) => chunks.iter().map(|c| f.loss_at(c.pu)).collect(),
            None => vec![None; n_chunks],
        },
        chunks,
        states,
        doomed: vec![false; n_chunks],
        nexts,
        required,
        next_done: vec![f64::INFINITY; n_chunks],
        tenants: tenant_states,
        scratch: Vec::with_capacity(n_chunks.saturating_sub(1)),
        xt_penalty: soc.interference().cross_tenant_penalty(),
        remaining,
        last_completion: 0.0,
    };
    eng.run();

    let mut reports = Vec::with_capacity(tenants.len());
    let mut total_completed = 0u64;
    for (ti, t) in eng.tenants.iter_mut().enumerate() {
        debug_assert_eq!(t.completed + t.dropped, t.started);
        let spans: Vec<&[(f64, f64)]> = eng
            .meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.tenant == ti)
            .map(|(g, _)| eng.states[g].busy_spans.as_slice())
            .collect();
        let stats = steady_stats_from_completions(&t.completions, t.warmup, &spans);
        total_completed += t.completed as u64;
        reports.push(RunReport {
            submitted: t.started as u64,
            completed: t.completed as u64,
            dropped: t.dropped as u64,
            faults_fired: t.faults_fired,
            stats,
            timeline: std::mem::take(&mut t.timeline),
            telemetry: None,
            degraded: None,
        });
    }

    let makespan_us = if total_completed > 0 {
        eng.last_completion
    } else {
        0.0
    };
    let throughput_hz = if makespan_us > 0.0 {
        total_completed as f64 / (makespan_us / 1e6)
    } else {
        0.0
    };
    Ok(MultiRunReport {
        tenants: reports,
        makespan_us,
        throughput_hz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate;
    use crate::fault::{PuLoss, StageFault, Straggler};
    use crate::{devices, InterferenceModel, PuClass, SocBuilder, WorkProfile};

    fn stage(flops: f64) -> WorkProfile {
        WorkProfile::new(flops, flops / 4.0)
    }

    fn cfg(seed: u64) -> RunConfig {
        RunConfig {
            tasks: 20,
            warmup: 4,
            seed,
            ..RunConfig::default()
        }
    }

    fn chain_a() -> Vec<ChunkSpec> {
        vec![
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ]
    }

    fn chain_b() -> Vec<ChunkSpec> {
        vec![
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(7e6)]),
            ChunkSpec::new(PuClass::LittleCpu, vec![stage(2e6)]),
        ]
    }

    #[test]
    fn empty_inputs_rejected() {
        let soc = devices::pixel_7a();
        assert!(matches!(
            simulate_multi(&soc, &[], None),
            Err(SocError::EmptySimulation)
        ));
        let t = TenantSpec::new("empty", vec![], cfg(1));
        assert!(matches!(
            simulate_multi(&soc, &[t], None),
            Err(SocError::EmptySimulation)
        ));
        let t = TenantSpec::new("zero-tasks", chain_a(), RunConfig { tasks: 0, ..cfg(1) });
        assert!(matches!(
            simulate_multi(&soc, &[t], None),
            Err(SocError::EmptySimulation)
        ));
    }

    #[test]
    fn missing_pu_rejected() {
        let soc = devices::jetson_orin_nano();
        let t = TenantSpec::new(
            "little",
            vec![ChunkSpec::new(PuClass::LittleCpu, vec![stage(1e6)])],
            cfg(1),
        );
        assert!(matches!(
            simulate_multi(&soc, &[t], None),
            Err(SocError::MissingPu(PuClass::LittleCpu))
        ));
    }

    #[test]
    fn single_tenant_is_bit_identical_to_simulate() {
        let soc = devices::pixel_7a();
        let run = RunConfig {
            record_timeline: true,
            ..cfg(42)
        };
        let solo = simulate(&soc, &chain_a(), &run, None).unwrap();
        let multi = simulate_multi(
            &soc,
            &[TenantSpec::new("solo", chain_a(), run.clone())],
            None,
        )
        .unwrap();
        assert_eq!(multi.tenants.len(), 1);
        let m = &multi.tenants[0];
        assert_eq!(m.submitted, solo.submitted);
        assert_eq!(m.completed, solo.completed);
        assert_eq!(m.dropped, solo.dropped);
        // Float bit-identity via exact debug formatting of both reports.
        assert_eq!(
            format!("{:?}", m.stats),
            format!("{:?}", solo.stats),
            "single-tenant stats must replay the single-tenant engine"
        );
        assert_eq!(m.timeline, solo.timeline);
    }

    #[test]
    fn conservation_holds_per_tenant() {
        let soc = devices::pixel_7a();
        let tenants = [
            TenantSpec::new("a", chain_a(), cfg(7)),
            TenantSpec::new(
                "b",
                chain_b(),
                RunConfig {
                    tasks: 13,
                    warmup: 2,
                    ..cfg(8)
                },
            ),
        ];
        let r = simulate_multi(&soc, &tenants, None).unwrap();
        for (t, spec) in r.tenants.iter().zip(&tenants) {
            assert_eq!(t.completed + t.dropped, t.submitted);
            assert_eq!(t.submitted, u64::from(spec.cfg.tasks + spec.cfg.warmup));
            assert_eq!(t.dropped, 0);
            assert!(t.stats.is_some());
        }
        assert!(r.makespan_us > 0.0);
        assert!(r.throughput_hz > 0.0);
    }

    #[test]
    fn co_runs_replay_bit_identically_per_seed() {
        let soc = devices::pixel_7a();
        let tenants = [
            TenantSpec::new("a", chain_a(), cfg(11)),
            TenantSpec::new("b", chain_b(), cfg(12)),
        ];
        let x = simulate_multi(&soc, &tenants, None).unwrap();
        let y = simulate_multi(&soc, &tenants, None).unwrap();
        assert_eq!(format!("{x:?}"), format!("{y:?}"));

        let mut reseeded = tenants.clone();
        reseeded[1].cfg.seed = 99;
        let z = simulate_multi(&soc, &reseeded, None).unwrap();
        assert_ne!(
            x.tenants[1].expect_stats().makespan.as_f64(),
            z.tenants[1].expect_stats().makespan.as_f64()
        );
    }

    #[test]
    fn co_running_tenant_slows_the_other_down() {
        let soc = devices::pixel_7a();
        let run = RunConfig {
            noise_sigma: 0.0,
            ..cfg(1)
        };
        let solo = simulate(&soc, &chain_a(), &run, None).unwrap();
        let co = simulate_multi(
            &soc,
            &[
                TenantSpec::new("a", chain_a(), run.clone()),
                TenantSpec::new("b", chain_b(), run.clone()),
            ],
            None,
        )
        .unwrap();
        let solo_tpt = solo.expect_stats().time_per_task.as_f64();
        let co_tpt = co.tenants[0].expect_stats().time_per_task.as_f64();
        assert!(
            co_tpt > solo_tpt,
            "co-location must cost throughput: {co_tpt} vs solo {solo_tpt}"
        );
    }

    #[test]
    fn cross_tenant_penalty_amplifies_co_run_cost() {
        // Memory-heavy stages on a low-bandwidth device so DRAM contention
        // dominates; the penalty scales only the cross-tenant demand.
        let model = InterferenceModel::calibrated([], 1.0);
        let build = |m: InterferenceModel| {
            SocBuilder::new("xt-test")
                .pu(crate::PuSpec::new(PuClass::BigCpu, "big", 4, 2.0).with_mem_bw_gbs(8.0))
                .pu(crate::PuSpec::new(PuClass::Gpu, "gpu", 8, 1.0).with_mem_bw_gbs(8.0))
                .dram_bw_gbs(10.0)
                .interference(m)
                .build()
                .unwrap()
        };
        let parity = build(model.clone());
        let hostile = build(model.with_cross_tenant_penalty(2.0));
        let mem_stage = || vec![WorkProfile::new(1e6, 4e6)];
        let tenants = [
            TenantSpec::new(
                "a",
                vec![ChunkSpec::new(PuClass::BigCpu, mem_stage())],
                RunConfig {
                    noise_sigma: 0.0,
                    ..cfg(1)
                },
            ),
            TenantSpec::new(
                "b",
                vec![ChunkSpec::new(PuClass::Gpu, mem_stage())],
                RunConfig {
                    noise_sigma: 0.0,
                    ..cfg(2)
                },
            ),
        ];
        let base = simulate_multi(&parity, &tenants, None).unwrap();
        let worse = simulate_multi(&hostile, &tenants, None).unwrap();
        assert!(
            worse.makespan_us > base.makespan_us,
            "penalty 2.0 must stretch the co-run: {} vs {}",
            worse.makespan_us,
            base.makespan_us
        );
    }

    #[test]
    fn faults_use_global_chunk_indices() {
        let soc = devices::pixel_7a();
        let tenants = [
            TenantSpec::new("a", chain_a(), cfg(3)), // global chunks 0, 1
            TenantSpec::new("b", chain_b(), cfg(4)), // global chunks 2, 3
        ];
        // Straggle tenant b's first chunk (global index 2) and error one
        // task on tenant a's second chunk (global index 1).
        let spec = FaultSpec {
            stragglers: vec![Straggler {
                chunk: 2,
                task: 5,
                factor: 10.0,
            }],
            stage_faults: vec![StageFault {
                chunk: 1,
                task: 8,
                stage: 0,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_multi(&soc, &tenants, Some(&spec)).unwrap();
        assert_eq!(r.tenants[0].dropped, 1);
        assert_eq!(r.tenants[0].faults_fired, 1);
        assert_eq!(r.tenants[1].dropped, 0);
        assert_eq!(r.tenants[1].faults_fired, 1);
        for t in &r.tenants {
            assert_eq!(t.completed + t.dropped, t.submitted);
        }
    }

    // ------------------------- DAG tenants -------------------------

    /// Diamond over four chunks: 0 forks into {1, 2}, joining at 3.
    /// Branch 1 is GPU-friendly and branch 2 GPU-hostile so they prefer
    /// different silicon.
    fn diamond_chunks() -> Vec<ChunkSpec> {
        vec![
            ChunkSpec::new(PuClass::LittleCpu, vec![WorkProfile::new(1e6, 5e5)]),
            ChunkSpec::new(PuClass::Gpu, vec![WorkProfile::new(2e7, 4e6)]),
            ChunkSpec::new(
                PuClass::BigCpu,
                vec![WorkProfile::new(3e6, 2e6)
                    .with_divergence(0.9)
                    .with_irregularity(0.8)],
            ),
            ChunkSpec::new(PuClass::MediumCpu, vec![WorkProfile::new(1e6, 5e5)]),
        ]
    }

    fn diamond_edges() -> Vec<(usize, usize)> {
        vec![(0, 1), (0, 2), (1, 3), (2, 3)]
    }

    #[test]
    fn chain_edges_behave_like_no_edges() {
        let soc = devices::pixel_7a();
        let run = RunConfig {
            noise_sigma: 0.02,
            record_timeline: true,
            ..cfg(17)
        };
        let implicit =
            simulate_multi(&soc, &[TenantSpec::new("t", chain_a(), run.clone())], None).unwrap();
        let explicit = simulate_multi(
            &soc,
            &[TenantSpec::new("t", chain_a(), run.clone()).with_edges(vec![(0, 1)])],
            None,
        )
        .unwrap();
        assert_eq!(format!("{implicit:?}"), format!("{explicit:?}"));
    }

    #[test]
    fn malformed_tenant_edges_rejected() {
        let soc = devices::pixel_7a();
        for bad in [
            vec![(0usize, 9usize)],       // out of range
            vec![(1, 1)],                 // self-loop
            vec![(0, 1), (1, 2), (2, 0)], // cycle
            vec![(0, 3), (1, 3), (2, 3)], // three sources
        ] {
            let t = TenantSpec::new("bad", diamond_chunks(), cfg(1)).with_edges(bad);
            let err = simulate_multi(&soc, &[t], None).unwrap_err();
            assert!(matches!(err, SocError::BadDag { .. }), "got {err:?}");
        }
    }

    #[test]
    fn dag_tenant_completes_and_replays_deterministically() {
        let soc = devices::pixel_7a();
        let t = TenantSpec::new("diamond", diamond_chunks(), cfg(23)).with_edges(diamond_edges());
        let x = simulate_multi(&soc, std::slice::from_ref(&t), None).unwrap();
        let y = simulate_multi(&soc, std::slice::from_ref(&t), None).unwrap();
        assert_eq!(format!("{x:?}"), format!("{y:?}"));
        let r = &x.tenants[0];
        assert_eq!(r.completed, r.submitted);
        assert_eq!(r.dropped, 0);
        assert!(r.expect_stats().makespan.as_f64() > 0.0);
    }

    #[test]
    fn fork_beats_its_linearization_on_critical_path() {
        // One object in flight (buffers: 1) makes the makespan a pure
        // critical-path measure: the chain serializes both branches,
        // the fork overlaps them on different PUs.
        let soc = devices::pixel_7a();
        let run = RunConfig {
            noise_sigma: 0.0,
            buffers: 1,
            ..cfg(1)
        };
        let lin = simulate_multi(
            &soc,
            &[TenantSpec::new("lin", diamond_chunks(), run.clone())],
            None,
        )
        .unwrap();
        let dag = simulate_multi(
            &soc,
            &[TenantSpec::new("dag", diamond_chunks(), run.clone()).with_edges(diamond_edges())],
            None,
        )
        .unwrap();
        assert!(
            dag.makespan_us < lin.makespan_us,
            "fork {} must beat chain {}",
            dag.makespan_us,
            lin.makespan_us
        );
    }

    #[test]
    fn dag_branches_interfere_with_co_tenants() {
        // The forked tenant's sibling branches occupy two PUs at once, so
        // a co-runner sees more interference than next to the chain
        // version of the same tenant.
        let soc = devices::pixel_7a();
        let run = RunConfig {
            noise_sigma: 0.0,
            ..cfg(2)
        };
        let victim = || TenantSpec::new("victim", chain_b(), run.clone());
        let next_to_chain = simulate_multi(
            &soc,
            &[
                TenantSpec::new("t", diamond_chunks(), run.clone()),
                victim(),
            ],
            None,
        )
        .unwrap();
        let next_to_dag = simulate_multi(
            &soc,
            &[
                TenantSpec::new("t", diamond_chunks(), run.clone()).with_edges(diamond_edges()),
                victim(),
            ],
            None,
        )
        .unwrap();
        let chain_tpt = next_to_chain.tenants[1]
            .expect_stats()
            .time_per_task
            .as_f64();
        let dag_tpt = next_to_dag.tenants[1].expect_stats().time_per_task.as_f64();
        assert!(
            dag_tpt > chain_tpt * 0.99,
            "branch concurrency should not make the co-runner faster: {dag_tpt} vs {chain_tpt}"
        );
    }

    #[test]
    fn branch_error_tombstones_through_the_join() {
        let soc = devices::pixel_7a();
        // Error on the GPU branch (global chunk 1) for task 4: the task
        // dies there, its sibling token still crosses the join, and the
        // object recycles — conservation holds.
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 1,
                task: 4,
                stage: 0,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let t = TenantSpec::new("diamond", diamond_chunks(), cfg(9)).with_edges(diamond_edges());
        let r = simulate_multi(&soc, &[t], Some(&spec)).unwrap();
        let rep = &r.tenants[0];
        assert_eq!(rep.dropped, 1);
        assert_eq!(rep.completed + rep.dropped, rep.submitted);
        assert!(rep.faults_fired >= 1);
    }

    #[test]
    fn dag_branch_pu_loss_drains_with_conservation() {
        let soc = devices::pixel_7a();
        let spec = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::Gpu,
                at_us: 500.0,
            }],
            ..FaultSpec::default()
        };
        let t = TenantSpec::new("diamond", diamond_chunks(), cfg(13)).with_edges(diamond_edges());
        let r = simulate_multi(&soc, &[t], Some(&spec)).unwrap();
        let rep = &r.tenants[0];
        assert_eq!(rep.completed + rep.dropped, rep.submitted);
        assert!(rep.dropped > 0, "losing a branch PU must drop work");
    }

    #[test]
    fn pu_loss_hits_every_tenant_on_that_class() {
        let soc = devices::pixel_7a();
        let tenants = [
            TenantSpec::new(
                "a",
                vec![ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)])],
                cfg(5),
            ),
            TenantSpec::new(
                "b",
                vec![ChunkSpec::new(PuClass::BigCpu, vec![stage(9e6)])],
                cfg(6),
            ),
        ];
        let spec = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::BigCpu,
                at_us: 0.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_multi(&soc, &tenants, Some(&spec)).unwrap();
        for t in &r.tenants {
            assert_eq!(t.completed, 0);
            assert_eq!(t.dropped, t.submitted);
            assert!(t.stats.is_none());
        }
        assert_eq!(r.makespan_us, 0.0);
        assert_eq!(r.throughput_hz, 0.0);
    }
}
