//! ASCII Gantt rendering of pipeline timelines — works for both the
//! discrete-event simulator's virtual timelines and the host runtime's
//! wall-clock ones.

use crate::run::TimelineSpan;

/// One span of a Gantt chart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GanttSpan {
    /// Row (chunk) index.
    pub chunk: usize,
    /// Task id (drawn as its last digit).
    pub task: u64,
    /// Start offset in µs.
    pub start: f64,
    /// End offset in µs.
    pub end: f64,
}

impl From<TimelineSpan> for GanttSpan {
    fn from(s: TimelineSpan) -> GanttSpan {
        GanttSpan {
            chunk: s.chunk,
            task: s.task,
            start: s.start_us,
            end: s.end_us,
        }
    }
}

/// Renders a timeline as an ASCII Gantt chart: one row per chunk,
/// `columns` characters wide, each task's executions drawn with the task's
/// digit (mod 10). Idle time renders as `·`.
///
/// ```
/// use bt_soc::gantt::{render_gantt, GanttSpan};
/// let spans = [
///     GanttSpan { chunk: 0, task: 0, start: 0.0, end: 50.0 },
///     GanttSpan { chunk: 1, task: 0, start: 50.0, end: 100.0 },
/// ];
/// let chart = render_gantt(&spans, &["cpu".into(), "gpu".into()], 20);
/// assert!(chart.lines().count() == 3);
/// ```
///
/// # Panics
///
/// Panics if `columns < 10`.
pub fn render_gantt<S: Into<GanttSpan> + Copy>(
    timeline: &[S],
    chunk_labels: &[String],
    columns: usize,
) -> String {
    assert!(columns >= 10, "gantt needs at least 10 columns");
    let spans: Vec<GanttSpan> = timeline.iter().map(|&e| e.into()).collect();
    if spans.is_empty() {
        return String::from("(empty timeline)\n");
    }
    let t0 = spans.iter().map(|e| e.start).fold(f64::MAX, f64::min);
    let t1 = spans.iter().map(|e| e.end).fold(f64::MIN, f64::max);
    let span = (t1 - t0).max(1e-9);
    let label_w = chunk_labels.iter().map(|l| l.len()).max().unwrap_or(0);

    let mut rows: Vec<Vec<char>> = vec![vec!['·'; columns]; chunk_labels.len()];
    for e in &spans {
        if e.chunk >= rows.len() {
            continue;
        }
        let a = (((e.start - t0) / span) * columns as f64).floor() as usize;
        let b = (((e.end - t0) / span) * columns as f64).ceil() as usize;
        let glyph = char::from_digit((e.task % 10) as u32, 10).expect("digit");
        for cell in rows[e.chunk]
            .iter_mut()
            .take(b.min(columns))
            .skip(a.min(columns.saturating_sub(1)))
        {
            *cell = glyph;
        }
    }

    let mut out = String::new();
    for (label, row) in chunk_labels.iter().zip(rows) {
        out.push_str(&format!("{label:>label_w$} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>label_w$}  0{:>w$.1} ms\n",
        "",
        (t1 - t0) / 1e3,
        w = columns - 1
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_rows_and_scale() {
        let events = vec![
            GanttSpan {
                chunk: 0,
                task: 0,
                start: 0.0,
                end: 500.0,
            },
            GanttSpan {
                chunk: 1,
                task: 0,
                start: 500.0,
                end: 1000.0,
            },
            GanttSpan {
                chunk: 0,
                task: 1,
                start: 500.0,
                end: 1000.0,
            },
        ];
        let labels = vec!["cpu".to_string(), "gpu".to_string()];
        let chart = render_gantt(&events, &labels, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3, "two rows + axis");
        assert!(lines[0].contains('0') && lines[0].contains('1'));
        assert!(lines[1].starts_with("gpu |"));
        assert!(lines[1].contains('·'), "gpu row has idle time");
        assert!(lines[2].contains("1.0 ms"));
    }

    #[test]
    fn empty_timeline() {
        let spans: [GanttSpan; 0] = [];
        assert_eq!(
            render_gantt(&spans, &["x".into()], 20),
            "(empty timeline)\n"
        );
    }

    #[test]
    fn run_timeline_converts() {
        let e = TimelineSpan {
            chunk: 2,
            stage: Some(1),
            task: 13,
            start_us: 1.0,
            end_us: 2.0,
        };
        let s: GanttSpan = e.into();
        assert_eq!(s.chunk, 2);
        assert_eq!(s.task, 13);
    }
}
