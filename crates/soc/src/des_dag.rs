//! Discrete-event simulation of a fork/join (DAG) chunk pipeline.
//!
//! [`crate::des::simulate`] models a linear chain of chunks; this engine
//! generalizes the token flow to an arbitrary chunk DAG with optional
//! *replica groups*:
//!
//! - **Branch concurrency is genuine**: sibling branches are separate
//!   chunks with their own PUs, so the instantaneous busy set — and
//!   therefore every sampled service time — includes concurrently running
//!   siblings. Forks cost interference exactly as the roofline model
//!   prices any co-running pair.
//! - **Joins are deterministic**: a chunk dispatches task `t` only after
//!   every predecessor has delivered `t`, and chunks serve strictly in
//!   task-sequence order, so merge order never depends on branch timing.
//! - **Replica groups** split one logical chunk across several PUs
//!   round-robin: member `i` of an `L`-member group serves exactly the
//!   tasks with `seq % L == i`. Replicas overlap in time and charge each
//!   other interference like any other co-runners; the downstream join
//!   (which has all members as predecessors) restores sequence order.
//! - **Chain-shaped specs delegate** to [`crate::des::simulate`]
//!   unchanged, so anything expressible in the chain model is priced
//!   bit-identically by this entry point — the golden-replay suite keeps
//!   that equivalence pinned.
//!
//! Fault semantics mirror the chain engine (slowdown ramps, stragglers,
//! timeouts, stage errors, PU loss) with one structural difference: a
//! dropped task becomes a *tombstone* that still flows through the
//! remaining DAG (at zero service time) so joins never deadlock waiting
//! for a dead sibling; its object recycles at the sink. The engine
//! maintains `completed + dropped == submitted` exactly as the chain
//! engine does.

use std::collections::HashMap;

use bt_telemetry::{DispatcherCounters, RunTelemetry, SpanRecorder};

use crate::des::{simulate, ChunkSpec, ChunkState, EventSlots, InFlight, ServiceModel};
use crate::fault::{FaultSpec, StageFaultKind};
use crate::run::{RunConfig, RunReport, TimelineSpan};
use crate::{NoiseModel, SocError, SocSpec};

use std::time::Duration;

/// A chunk-level DAG pipeline: the chunks, the token-flow edges between
/// them, and any replica groups.
#[derive(Debug, Clone)]
pub struct DagPipelineSpec {
    /// The chunks; indices name them in `edges` and `replica_groups`.
    pub chunks: Vec<ChunkSpec>,
    /// Directed token-flow edges `(from, to)` between chunk indices.
    pub edges: Vec<(usize, usize)>,
    /// Replica groups: each is ≥ 2 chunk indices serving one logical
    /// chunk round-robin (member `i` of an `L`-group serves
    /// `seq % L == i`). Members must share identical predecessor and
    /// successor sets and may not be the source or the sink.
    pub replica_groups: Vec<Vec<usize>>,
}

impl DagPipelineSpec {
    /// A DAG pipeline with no replica groups.
    pub fn new(chunks: Vec<ChunkSpec>, edges: Vec<(usize, usize)>) -> DagPipelineSpec {
        DagPipelineSpec {
            chunks,
            edges,
            replica_groups: Vec::new(),
        }
    }

    /// A chain over `chunks`, the degenerate DAG.
    pub fn chain(chunks: Vec<ChunkSpec>) -> DagPipelineSpec {
        let edges = (1..chunks.len()).map(|i| (i - 1, i)).collect();
        DagPipelineSpec::new(chunks, edges)
    }

    /// Adds a replica group.
    pub fn with_replica_group(mut self, members: Vec<usize>) -> DagPipelineSpec {
        self.replica_groups.push(members);
        self
    }

    /// Whether the spec is chain-shaped (no replica groups, edges exactly
    /// `i → i+1`) and therefore delegates to the chain engine.
    pub fn is_chain(&self) -> bool {
        if !self.replica_groups.is_empty() {
            return false;
        }
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        edges.dedup();
        edges.len() + 1 == self.chunks.len().max(1)
            && edges.iter().enumerate().all(|(i, &e)| e == (i, i + 1))
    }
}

/// Validated routing structure derived from a [`DagPipelineSpec`].
struct Topology {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    source: usize,
    sink: usize,
    /// `replica[c] = Some((residue, group_len))` for group members.
    replica: Vec<Option<(usize, usize)>>,
}

impl Topology {
    fn build(spec: &DagPipelineSpec) -> Result<Topology, SocError> {
        let n = spec.chunks.len();
        let bad = |reason: String| SocError::BadDag { reason };
        let mut edges = spec.edges.clone();
        edges.sort_unstable();
        edges.dedup();
        for &(u, v) in &edges {
            if u >= n || v >= n {
                return Err(bad(format!("edge ({u}, {v}) references an unknown chunk")));
            }
            if u == v {
                return Err(bad(format!("chunk {u} feeds itself")));
            }
        }
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &(u, v) in &edges {
            succs[u].push(v);
            preds[v].push(u);
        }
        // Acyclicity (Kahn).
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&c| indeg[c] == 0).collect();
        let mut seen = 0;
        while let Some(c) = ready.pop() {
            seen += 1;
            for &s in &succs[c] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if seen != n {
            return Err(bad("chunk graph contains a cycle".to_string()));
        }
        let sources: Vec<usize> = (0..n).filter(|&c| preds[c].is_empty()).collect();
        let sinks: Vec<usize> = (0..n).filter(|&c| succs[c].is_empty()).collect();
        let (&[source], &[sink]) = (sources.as_slice(), sinks.as_slice()) else {
            return Err(bad(format!(
                "pipeline needs exactly one source and one sink chunk \
                 (found {} sources, {} sinks)",
                sources.len(),
                sinks.len()
            )));
        };
        let mut replica = vec![None; n];
        for group in &spec.replica_groups {
            if group.len() < 2 {
                return Err(bad("replica group needs at least 2 members".to_string()));
            }
            for (i, &m) in group.iter().enumerate() {
                if m >= n {
                    return Err(bad(format!("replica member {m} is not a chunk")));
                }
                if m == source || m == sink {
                    return Err(bad(format!(
                        "chunk {m} is the pipeline source or sink and cannot be replicated"
                    )));
                }
                if replica[m].is_some() {
                    return Err(bad(format!("chunk {m} appears in two replica groups")));
                }
                replica[m] = Some((i, group.len()));
            }
            // Round-robin split/merge is only well-defined when every
            // member sits between the same upstream and downstream chunks.
            let lead = group[0];
            for &m in &group[1..] {
                if preds[m] != preds[lead] || succs[m] != succs[lead] {
                    return Err(bad(format!(
                        "replica group members {lead} and {m} have different neighbours"
                    )));
                }
            }
            for &p in &preds[lead] {
                if spec.replica_groups.iter().any(|g| g.contains(&p)) {
                    return Err(bad(format!(
                        "chunk {p} is both a replica and a replica-group neighbour"
                    )));
                }
            }
            for &s in &succs[lead] {
                if spec.replica_groups.iter().any(|g| g.contains(&s)) {
                    return Err(bad(format!(
                        "chunk {s} is both a replica and a replica-group neighbour"
                    )));
                }
            }
        }
        Ok(Topology {
            preds,
            succs,
            source,
            sink,
            replica,
        })
    }

    /// Whether chunk `c` serves task `t` (replica residue filter).
    fn serves(&self, c: usize, t: usize) -> bool {
        match self.replica[c] {
            Some((r, len)) => t % len == r,
            None => true,
        }
    }

    /// Predecessor deliveries task `t` needs before chunk `c` may serve
    /// it: the preds that themselves serve `t`.
    fn required(&self, c: usize, t: usize) -> usize {
        self.preds[c].iter().filter(|&&p| self.serves(p, t)).count()
    }
}

/// The DAG event-loop engine; structure mirrors the chain `Engine`, with
/// token routing generalized from `c → c + 1` to the topology.
struct DagEngine<'a> {
    chunks: &'a [ChunkSpec],
    topo: &'a Topology,
    faults: Option<&'a FaultSpec>,
    loss: Vec<Option<f64>>,
    states: Vec<ChunkState>,
    doomed: Vec<bool>,
    events: EventSlots,
    model: ServiceModel<'a>,
    noise: NoiseModel,
    /// Tasks delivered by all required preds, keyed per chunk.
    arrived: Vec<HashMap<usize, usize>>,
    /// Remaining required deliveries per (chunk, task).
    pending: Vec<HashMap<usize, usize>>,
    /// The next task sequence each chunk serves (strict in-order).
    next_seq: Vec<usize>,
    /// Sequence stride: 1, or the group length for replicas.
    stride: Vec<usize>,
    /// Liveness per task; a dead task flows as a zero-cost tombstone.
    alive: Vec<bool>,
    started: usize,
    total_tasks: usize,
    completed: usize,
    dropped: usize,
    faults_fired: u32,
    /// Free task objects waiting at the source.
    pool: usize,
    entry_time: Vec<f64>,
    completions: Vec<(f64, f64)>,
    timeline: Vec<TimelineSpan>,
    collect_timeline: bool,
    counters: Vec<DispatcherCounters>,
    tele_counters: bool,
}

impl DagEngine<'_> {
    fn lost(&self, c: usize, now: f64) -> bool {
        self.loss[c].is_some_and(|t| now >= t)
    }

    fn stage_fault(&self, c: usize, task: usize, stage: usize) -> Option<StageFaultKind> {
        self.faults.and_then(|f| f.stage_fault(c, task, stage))
    }

    /// Closes the chunk's busy interval at `now` and frees it.
    fn finish_span(&mut self, c: usize, now: f64) {
        let since = self.states[c].busy_since;
        self.states[c].busy_spans.push((since, now));
        self.states[c].busy = None;
        if self.tele_counters {
            self.counters[c].record_task(Duration::from_secs_f64((now - since) * 1e-6));
        }
    }

    /// Kills task `t` at chunk `c` (counted once) and forwards its
    /// tombstone so downstream joins keep draining.
    fn kill_and_forward(&mut self, c: usize, t: usize, now: f64) {
        debug_assert!(self.alive[t], "a task drops at most once");
        self.alive[t] = false;
        self.dropped += 1;
        self.forward(c, t, now);
    }

    /// Delivers task `t` completed (or tombstoned) at chunk `c` to its
    /// successors; at the sink, retires the task and re-arms the source.
    fn forward(&mut self, c: usize, t: usize, now: f64) {
        if c == self.topo.sink {
            if self.alive[t] {
                self.completions.push((self.entry_time[t], now));
                self.completed += 1;
            }
            self.pool += 1;
            if self.tele_counters {
                self.counters[c].sample_queue_depth(self.pool);
            }
            self.pump(self.topo.source, now);
            return;
        }
        for i in 0..self.topo.succs[c].len() {
            let s = self.topo.succs[c][i];
            if !self.topo.serves(s, t) {
                continue;
            }
            let need = self.topo.required(s, t);
            let left = self
                .pending
                .get_mut(s)
                .expect("pending sized per chunk")
                .entry(t)
                .or_insert(need);
            *left -= 1;
            if *left == 0 {
                self.pending[s].remove(&t);
                self.arrived[s].insert(t, 0);
                if self.tele_counters {
                    self.counters[c].sample_queue_depth(self.arrived[s].len());
                }
                self.pump(s, now);
            }
        }
    }

    /// Samples the stage's service time against the instantaneous busy
    /// set and schedules its completion, clamped to the PU loss instant.
    fn start_stage(&mut self, c: usize, task: usize, stage: usize, now: f64) {
        let (base, demand) = self.model.service(c, stage, &self.states, &mut self.noise);
        let mut dt = base;
        if let Some(spec) = self.faults {
            let straggle = spec.straggler_factor(c, task);
            if stage == 0 && straggle != 1.0 {
                self.faults_fired += 1;
            }
            dt = base * spec.slowdown_factor(self.chunks[c].pu, now) * straggle;
            if let Some(StageFaultKind::Timeout { extra_us }) = spec.stage_fault(c, task, stage) {
                dt += extra_us;
                self.faults_fired += 1;
            }
        }
        let mut end = now + dt;
        if let Some(t_loss) = self.loss[c] {
            if end > t_loss {
                end = t_loss;
                self.doomed[c] = true;
            }
        }
        self.states[c].busy = Some(InFlight {
            task,
            stage,
            demand,
        });
        if stage == 0 {
            self.states[c].busy_since = now;
        }
        self.events.push(c, end);
        if self.collect_timeline {
            self.timeline.push(TimelineSpan {
                chunk: c,
                stage: Some(stage),
                task: task as u64,
                start_us: now,
                end_us: end,
            });
        }
    }

    /// Starts work on idle chunk `c`: the source admits new tasks from
    /// the object pool, every other chunk serves its next sequence number
    /// once all required predecessors have delivered it. Tombstones and
    /// fault-induced drops forward at zero cost without occupying the PU.
    fn pump(&mut self, c: usize, now: f64) {
        loop {
            if self.states[c].busy.is_some() {
                return;
            }
            let t = self.next_seq[c];
            if c == self.topo.source {
                if self.started >= self.total_tasks || self.pool == 0 {
                    return;
                }
                // A lost source consumes the task stream as immediate
                // drops without circulating objects (no downstream flow).
                if self.lost(c, now) {
                    self.entry_time[t] = now;
                    self.started += 1;
                    self.next_seq[c] = t + 1;
                    self.dropped += 1;
                    self.alive[t] = false;
                    self.faults_fired += 1;
                    continue;
                }
                self.pool -= 1;
                self.started += 1;
                self.entry_time[t] = now;
            } else {
                if self.arrived[c].remove(&t).is_none() {
                    return;
                }
            }
            self.next_seq[c] = t + self.stride[c];
            if !self.alive[t] {
                self.forward(c, t, now);
                continue;
            }
            if c != self.topo.source && self.lost(c, now) {
                self.faults_fired += 1;
                self.kill_and_forward(c, t, now);
                continue;
            }
            if matches!(self.stage_fault(c, t, 0), Some(StageFaultKind::Error)) {
                self.faults_fired += 1;
                self.kill_and_forward(c, t, now);
                continue;
            }
            self.start_stage(c, t, 0, now);
            return;
        }
    }

    fn run(&mut self) {
        self.pump(self.topo.source, 0.0);
        while self.completed + self.dropped < self.total_tasks {
            let (now, c) = self.events.pop();
            let inflight = self.states[c].busy.expect("event implies busy chunk");

            if self.doomed[c] {
                // The PU died mid-service at its loss instant.
                self.doomed[c] = false;
                self.finish_span(c, now);
                self.faults_fired += 1;
                self.kill_and_forward(c, inflight.task, now);
                self.pump(c, now); // drains queued arrivals as drops
                continue;
            }

            if inflight.stage + 1 < self.chunks[c].stages.len() {
                if matches!(
                    self.stage_fault(c, inflight.task, inflight.stage + 1),
                    Some(StageFaultKind::Error)
                ) {
                    self.faults_fired += 1;
                    self.finish_span(c, now);
                    self.kill_and_forward(c, inflight.task, now);
                    self.pump(c, now);
                } else {
                    // Next stage of the same chunk; re-sample interference.
                    self.start_stage(c, inflight.task, inflight.stage + 1, now);
                }
                continue;
            }

            // Chunk finished its last stage for this task.
            self.finish_span(c, now);
            self.forward(c, inflight.task, now);
            self.pump(c, now);
        }
    }
}

/// Simulates pipelined execution of a fork/join chunk DAG on `soc`,
/// optionally under the perturbations in `faults`.
///
/// Chain-shaped specs ([`DagPipelineSpec::is_chain`]) are delegated to
/// [`simulate`] verbatim, so linear pipelines are priced bit-identically
/// whichever entry point they use. General DAGs run the branch-aware
/// engine: sibling branches and replica chunks execute concurrently and
/// charge each other interference through the shared busy set; joins and
/// replica merges serve strictly in task order.
///
/// # Errors
///
/// Returns [`SocError::EmptySimulation`] for empty chunks/stages/tasks,
/// [`SocError::MissingPu`] for unknown PU classes, and
/// [`SocError::BadDag`] for structurally invalid graphs (cycles, multiple
/// sources or sinks, malformed replica groups).
pub fn simulate_dag(
    soc: &SocSpec,
    spec: &DagPipelineSpec,
    cfg: &RunConfig,
    faults: Option<&FaultSpec>,
) -> Result<RunReport, SocError> {
    if spec.chunks.is_empty() || cfg.tasks == 0 || spec.chunks.iter().any(|c| c.stages.is_empty()) {
        return Err(SocError::EmptySimulation);
    }
    for chunk in &spec.chunks {
        soc.try_pu(chunk.pu)?;
    }
    if spec.is_chain() {
        return simulate(soc, &spec.chunks, cfg, faults);
    }
    let topo = Topology::build(spec)?;

    let chunks = spec.chunks.as_slice();
    let n_chunks = chunks.len();
    let total_tasks = (cfg.tasks + cfg.warmup) as usize;
    let buffers = if cfg.buffers == 0 {
        n_chunks + 1
    } else {
        cfg.buffers as usize
    };
    let states: Vec<ChunkState> = (0..n_chunks)
        .map(|_| ChunkState {
            input: Default::default(),
            busy: None,
            busy_since: 0.0,
            busy_spans: Vec::with_capacity(total_tasks),
        })
        .collect();
    let collect_timeline = cfg.record_timeline || cfg.telemetry.spans;
    let tele_counters = cfg.telemetry.counters;

    let stride: Vec<usize> = (0..n_chunks)
        .map(|c| topo.replica[c].map_or(1, |(_, len)| len))
        .collect();
    let next_seq: Vec<usize> = (0..n_chunks)
        .map(|c| topo.replica[c].map_or(0, |(r, _)| r))
        .collect();

    let mut eng = DagEngine {
        chunks,
        topo: &topo,
        faults,
        loss: match faults {
            Some(f) => chunks.iter().map(|c| f.loss_at(c.pu)).collect(),
            None => vec![None; n_chunks],
        },
        states,
        doomed: vec![false; n_chunks],
        events: EventSlots::new(n_chunks),
        model: ServiceModel::new(soc, chunks, cfg.service_cache),
        noise: NoiseModel::new(cfg.noise_sigma, cfg.seed),
        arrived: vec![HashMap::new(); n_chunks],
        pending: vec![HashMap::new(); n_chunks],
        next_seq,
        stride,
        alive: vec![true; total_tasks],
        started: 0,
        total_tasks,
        completed: 0,
        dropped: 0,
        faults_fired: 0,
        pool: buffers,
        entry_time: vec![0.0f64; total_tasks],
        completions: Vec::with_capacity(total_tasks),
        timeline: if collect_timeline {
            let total_stages: usize = chunks.iter().map(|c| c.stages.len()).sum();
            Vec::with_capacity(total_tasks * total_stages)
        } else {
            Vec::new()
        },
        collect_timeline,
        counters: if tele_counters {
            vec![DispatcherCounters::new(); n_chunks]
        } else {
            Vec::new()
        },
        tele_counters,
    };
    eng.run();
    debug_assert_eq!(eng.completed + eng.dropped, eng.started);

    let spans: Vec<&[(f64, f64)]> = eng.states.iter().map(|s| s.busy_spans.as_slice()).collect();
    let stats =
        crate::des::steady_stats_from_completions(&eng.completions, cfg.warmup as usize, &spans);
    let telemetry = if cfg.telemetry.any() {
        let mut tele = RunTelemetry::new("des-dag");
        if eng.tele_counters {
            tele.dispatchers = eng
                .counters
                .iter()
                .enumerate()
                .map(|(i, c)| c.stats(format!("chunk{i}")))
                .collect();
        }
        if cfg.telemetry.spans {
            let mut rec = SpanRecorder::virtual_time(true);
            for ev in &eng.timeline {
                rec.record_virtual(
                    ev.chunk as u32,
                    ev.task,
                    ev.stage.map(|s| s as u32),
                    ev.start_us,
                    ev.end_us,
                );
            }
            tele.spans = rec.into_spans();
        }
        Some(tele)
    } else {
        None
    };

    Ok(RunReport {
        submitted: eng.started as u64,
        completed: eng.completed as u64,
        dropped: eng.dropped as u64,
        faults_fired: eng.faults_fired,
        stats,
        timeline: if cfg.record_timeline {
            std::mem::take(&mut eng.timeline)
        } else {
            Vec::new()
        },
        telemetry,
        degraded: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use crate::fault::{PuLoss, StageFault, Straggler};
    use crate::{PuClass, WorkProfile};

    fn noiseless() -> RunConfig {
        RunConfig {
            tasks: 30,
            warmup: 5,
            seed: 1,
            noise_sigma: 0.0,
            ..RunConfig::default()
        }
    }

    fn stage(flops: f64) -> WorkProfile {
        WorkProfile::new(flops, flops / 4.0)
    }

    /// Diamond: 0 → {1, 2} → 3.
    fn diamond(mid: f64) -> DagPipelineSpec {
        DagPipelineSpec::new(
            vec![
                ChunkSpec::new(PuClass::BigCpu, vec![stage(5e6)]),
                ChunkSpec::new(PuClass::MediumCpu, vec![stage(mid)]),
                ChunkSpec::new(PuClass::Gpu, vec![stage(mid)]),
                ChunkSpec::new(PuClass::LittleCpu, vec![stage(4e6)]),
            ],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
    }

    #[test]
    fn chain_spec_is_bit_identical_to_chain_engine() {
        let soc = devices::pixel_7a();
        let chunks = vec![
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(7e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ];
        let cfg = RunConfig {
            noise_sigma: 0.05,
            seed: 9,
            record_timeline: true,
            ..noiseless()
        };
        let spec = DagPipelineSpec::chain(chunks.clone());
        assert!(spec.is_chain());
        let a = simulate_dag(&soc, &spec, &cfg, None).unwrap();
        let b = simulate(&soc, &chunks, &cfg, None).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn structural_validation() {
        let soc = devices::pixel_7a();
        let cfg = noiseless();
        let two = || {
            vec![
                ChunkSpec::new(PuClass::BigCpu, vec![stage(1e6)]),
                ChunkSpec::new(PuClass::Gpu, vec![stage(1e6)]),
            ]
        };
        // Cycle.
        let spec = DagPipelineSpec::new(two(), vec![(0, 1), (1, 0)]);
        assert!(matches!(
            simulate_dag(&soc, &spec, &cfg, None),
            Err(SocError::BadDag { .. })
        ));
        // Two sources / two sinks (disconnected pair).
        let spec = DagPipelineSpec::new(two(), vec![]);
        assert!(matches!(
            simulate_dag(&soc, &spec, &cfg, None),
            Err(SocError::BadDag { .. })
        ));
        // Replica group containing the sink.
        let spec = diamond(1e6).with_replica_group(vec![2, 3]);
        assert!(matches!(
            simulate_dag(&soc, &spec, &cfg, None),
            Err(SocError::BadDag { .. })
        ));
        // Replica members with different neighbours.
        let spec = DagPipelineSpec::new(
            vec![
                ChunkSpec::new(PuClass::BigCpu, vec![stage(1e6)]),
                ChunkSpec::new(PuClass::MediumCpu, vec![stage(1e6)]),
                ChunkSpec::new(PuClass::Gpu, vec![stage(1e6)]),
                ChunkSpec::new(PuClass::LittleCpu, vec![stage(1e6)]),
            ],
            vec![(0, 1), (1, 2), (2, 3)],
        )
        .with_replica_group(vec![1, 2]);
        assert!(matches!(
            simulate_dag(&soc, &spec, &cfg, None),
            Err(SocError::BadDag { .. })
        ));
    }

    #[test]
    fn parallel_branches_cut_task_latency() {
        // The same four chunks, forked vs linearized. With a deep object
        // pool both are backpressure-bound (Little's law pins residence
        // time to pool / throughput), so run one task at a time: the
        // latency then *is* the critical path, which the fork shortens by
        // overlapping the branches.
        let soc = devices::pixel_7a();
        let fork = diamond(8e6);
        let line = DagPipelineSpec::chain(fork.chunks.clone());
        let cfg = RunConfig {
            buffers: 1,
            ..noiseless()
        };
        let f = simulate_dag(&soc, &fork, &cfg, None).unwrap();
        let l = simulate_dag(&soc, &line, &cfg, None).unwrap();
        let (fs, ls) = (f.expect_stats(), l.expect_stats());
        assert!(
            fs.mean_task_latency.as_f64() < ls.mean_task_latency.as_f64(),
            "forked latency {} should beat linearized {}",
            fs.mean_task_latency,
            ls.mean_task_latency
        );
    }

    #[test]
    fn branch_overlap_is_priced_as_interference() {
        // Run the diamond with a heavy CPU branch pair: the busy set at
        // dispatch contains the sibling, so per-stage service exceeds the
        // isolated latency. Detect it via the timeline: sibling spans
        // overlap in virtual time.
        let soc = devices::pixel_7a();
        let spec = diamond(2e7);
        let cfg = RunConfig {
            record_timeline: true,
            ..noiseless()
        };
        let r = simulate_dag(&soc, &spec, &cfg, None).unwrap();
        let spans = |c: usize| -> Vec<(f64, f64)> {
            r.timeline
                .iter()
                .filter(|e| e.chunk == c)
                .map(|e| (e.start_us, e.end_us))
                .collect()
        };
        let (b1, b2) = (spans(1), spans(2));
        let overlap = b1
            .iter()
            .any(|&(s1, e1)| b2.iter().any(|&(s2, e2)| s1.max(s2) < e1.min(e2) - 1e-9));
        assert!(overlap, "sibling branches must actually run concurrently");
    }

    #[test]
    fn replica_group_scales_the_bottleneck() {
        let soc = devices::pixel_7a();
        let heavy = 3e7;
        // 0 → 1 → 2 with a dominant middle chunk…
        let plain = DagPipelineSpec::chain(vec![
            ChunkSpec::new(PuClass::LittleCpu, vec![stage(1e6)]),
            ChunkSpec::new(PuClass::BigCpu, vec![stage(heavy)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(2e6)]),
        ]);
        // …vs the same pipeline with the middle chunk replicated on
        // (BigCpu, Gpu), each replica serving alternate tasks.
        let replicated = DagPipelineSpec::new(
            vec![
                ChunkSpec::new(PuClass::LittleCpu, vec![stage(1e6)]),
                ChunkSpec::new(PuClass::BigCpu, vec![stage(heavy)]),
                ChunkSpec::new(PuClass::Gpu, vec![stage(heavy)]),
                ChunkSpec::new(PuClass::MediumCpu, vec![stage(2e6)]),
            ],
            vec![(0, 1), (0, 2), (1, 3), (2, 3)],
        )
        .with_replica_group(vec![1, 2]);
        let cfg = noiseless();
        let p = simulate_dag(&soc, &plain, &cfg, None).unwrap();
        let r = simulate_dag(&soc, &replicated, &cfg, None).unwrap();
        assert_eq!(r.completed, r.submitted);
        let (ps, rs) = (p.expect_stats(), r.expect_stats());
        assert!(
            rs.time_per_task.as_f64() < 0.75 * ps.time_per_task.as_f64(),
            "replication should scale the bottleneck: {} vs {}",
            rs.time_per_task,
            ps.time_per_task
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let soc = devices::pixel_7a();
        let spec = diamond(8e6).with_replica_group(vec![1, 2]);
        let cfg = RunConfig {
            noise_sigma: 0.05,
            seed: 42,
            record_timeline: true,
            ..noiseless()
        };
        let a = simulate_dag(&soc, &spec, &cfg, None).unwrap();
        let b = simulate_dag(&soc, &spec, &cfg, None).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = simulate_dag(&soc, &spec, &RunConfig { seed: 43, ..cfg }, None).unwrap();
        assert_ne!(
            a.expect_stats().makespan.as_f64(),
            c.expect_stats().makespan.as_f64()
        );
    }

    #[test]
    fn stage_error_tombstones_through_the_join() {
        // Drop one task inside a branch: the join must not deadlock and
        // conservation must hold.
        let soc = devices::pixel_7a();
        let spec = diamond(8e6);
        let fault = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 1,
                task: 12,
                stage: 0,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_dag(&soc, &spec, &noiseless(), Some(&fault)).unwrap();
        assert_eq!(r.dropped, 1);
        assert_eq!(r.completed + r.dropped, r.submitted);
        assert!(r.is_degraded());
        assert!(r.stats.is_some());
    }

    #[test]
    fn straggler_and_timeout_fire_on_dag_chunks() {
        let soc = devices::pixel_7a();
        let spec = diamond(8e6);
        let base = simulate_dag(&soc, &spec, &noiseless(), None).unwrap();
        let fault = FaultSpec {
            stragglers: vec![Straggler {
                chunk: 2,
                task: 7,
                factor: 20.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_dag(&soc, &spec, &noiseless(), Some(&fault)).unwrap();
        assert_eq!(r.faults_fired, 1);
        assert_eq!(r.completed, r.submitted);
        assert!(
            r.expect_stats().makespan.as_f64() > base.expect_stats().makespan.as_f64(),
            "a stalled branch must stall the join"
        );
    }

    #[test]
    fn branch_pu_loss_drains_with_conservation() {
        let soc = devices::pixel_7a();
        let spec = diamond(8e6);
        let cfg = RunConfig {
            record_timeline: true,
            ..noiseless()
        };
        let base = simulate_dag(&soc, &spec, &cfg, None).unwrap();
        let t_end = base
            .timeline
            .iter()
            .map(|e| e.end_us)
            .fold(0.0f64, f64::max);
        let fault = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::Gpu,
                at_us: t_end / 2.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_dag(&soc, &spec, &noiseless(), Some(&fault)).unwrap();
        assert!(r.completed > 0, "tasks before the loss should complete");
        assert!(r.dropped > 0, "tasks after the loss should drop");
        assert_eq!(r.completed + r.dropped, r.submitted);
    }

    #[test]
    fn telemetry_reports_dag_source() {
        let soc = devices::pixel_7a();
        let spec = diamond(6e6);
        let cfg = RunConfig {
            telemetry: bt_telemetry::TelemetryConfig::full(),
            ..noiseless()
        };
        let r = simulate_dag(&soc, &spec, &cfg, None).unwrap();
        let tele = r.telemetry.expect("telemetry enabled");
        assert_eq!(tele.source, "des-dag");
        assert_eq!(tele.dispatchers.len(), 4);
        // One span per (chunk, stage, task).
        assert_eq!(
            tele.spans.len(),
            4 * (noiseless().tasks + noiseless().warmup) as usize
        );
    }
}
