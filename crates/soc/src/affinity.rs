//! Deriving a device's [`AffinityMap`] from its cluster specs.
//!
//! The map type itself lives in the runtime substrate (`bt-rt`); what is
//! device-model-specific — and therefore stays here — is the convention for
//! numbering cores from a [`PerClass`] of [`PuSpec`]s.

use bt_rt::AffinityMap;

use crate::{PerClass, PuClass, PuSpec};

/// Derives a conventional map from cluster specs: cores numbered in
/// little → medium → big order (the usual Android convention), with the
/// first `pinnable_cores` of each cluster exposed for pinning.
pub fn derive_affinity(pus: &PerClass<PuSpec>) -> AffinityMap {
    let mut map = AffinityMap::new();
    let mut next = 0usize;
    // Android numbers efficiency cores first.
    for class in [PuClass::LittleCpu, PuClass::MediumCpu, PuClass::BigCpu] {
        if let Some(spec) = pus.get(class) {
            let cores: Vec<usize> = (next..next + spec.cores() as usize).collect();
            let pinnable = cores[..spec.pinnable_cores() as usize].to_vec();
            next += spec.cores() as usize;
            map = map.with_cluster(class, cores, pinnable);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use crate::devices;
    use crate::PuClass;

    #[test]
    fn derive_numbers_little_first() {
        let soc = devices::pixel_7a();
        let map = soc.affinity();
        assert_eq!(map.cores(PuClass::LittleCpu), &[0, 1, 2, 3]);
        assert_eq!(map.cores(PuClass::MediumCpu), &[4, 5]);
        assert_eq!(map.cores(PuClass::BigCpu), &[6, 7]);
        assert_eq!(map.total_cores(), 8);
        assert_eq!(map.total_pinnable(), 8);
    }

    #[test]
    fn oneplus_exposes_five_of_eight() {
        let soc = devices::oneplus_11();
        let map = soc.affinity();
        assert_eq!(map.total_cores(), 8);
        assert_eq!(map.total_pinnable(), 5);
        assert!(map.pinnable(PuClass::LittleCpu).is_empty());
    }

    #[test]
    fn gpu_has_no_cores() {
        let soc = devices::pixel_7a();
        assert!(soc.affinity().cores(PuClass::Gpu).is_empty());
    }
}
