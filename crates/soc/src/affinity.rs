use serde::{Deserialize, Serialize};

use crate::{PerClass, PuClass, PuSpec};

/// Thread-affinity map of a device: which logical core IDs belong to each
/// CPU cluster, and which of them the OS allows user threads to pin to.
///
/// This is the "target system specification" input of the paper (Fig. 2,
/// step 2): BetterTogether needs it to bind OpenMP worker threads to the
/// cluster a chunk was scheduled on. The host execution backend consumes
/// the same map when pinning real threads with `sched_setaffinity`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityMap {
    cores: PerClass<Vec<usize>>,
    pinnable: PerClass<Vec<usize>>,
}

impl AffinityMap {
    /// Creates an empty map. Add clusters with [`AffinityMap::with_cluster`].
    pub fn new() -> AffinityMap {
        AffinityMap {
            cores: PerClass::empty(),
            pinnable: PerClass::empty(),
        }
    }

    /// Registers the core IDs of a cluster, along with the subset the OS
    /// permits pinning to.
    ///
    /// # Panics
    ///
    /// Panics if `pinnable` is not a subset of `cores`.
    pub fn with_cluster(
        mut self,
        class: PuClass,
        cores: Vec<usize>,
        pinnable: Vec<usize>,
    ) -> AffinityMap {
        assert!(
            pinnable.iter().all(|c| cores.contains(c)),
            "pinnable cores must be a subset of the cluster's cores"
        );
        self.cores.set(class, cores);
        self.pinnable.set(class, pinnable);
        self
    }

    /// Derives a conventional map from cluster specs: cores numbered in
    /// little → medium → big order (the usual Android convention), with the
    /// first `pinnable_cores` of each cluster exposed for pinning.
    pub fn derive(pus: &PerClass<PuSpec>) -> AffinityMap {
        let mut map = AffinityMap::new();
        let mut next = 0usize;
        // Android numbers efficiency cores first.
        for class in [PuClass::LittleCpu, PuClass::MediumCpu, PuClass::BigCpu] {
            if let Some(spec) = pus.get(class) {
                let cores: Vec<usize> = (next..next + spec.cores() as usize).collect();
                let pinnable = cores[..spec.pinnable_cores() as usize].to_vec();
                next += spec.cores() as usize;
                map = map.with_cluster(class, cores, pinnable);
            }
        }
        map
    }

    /// Logical core IDs of `class`, empty for absent clusters (and GPUs).
    pub fn cores(&self, class: PuClass) -> &[usize] {
        self.cores.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Core IDs of `class` that can be pinned.
    pub fn pinnable(&self, class: PuClass) -> &[usize] {
        self.pinnable.get(class).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of CPU cores in the map.
    pub fn total_cores(&self) -> usize {
        self.cores.iter().map(|(_, v)| v.len()).sum()
    }

    /// Total number of pinnable CPU cores (5 of 8 on the OnePlus 11).
    pub fn total_pinnable(&self) -> usize {
        self.pinnable.iter().map(|(_, v)| v.len()).sum()
    }
}

impl Default for AffinityMap {
    fn default() -> AffinityMap {
        AffinityMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    #[test]
    fn derive_numbers_little_first() {
        let soc = devices::pixel_7a();
        let map = soc.affinity();
        assert_eq!(map.cores(PuClass::LittleCpu), &[0, 1, 2, 3]);
        assert_eq!(map.cores(PuClass::MediumCpu), &[4, 5]);
        assert_eq!(map.cores(PuClass::BigCpu), &[6, 7]);
        assert_eq!(map.total_cores(), 8);
        assert_eq!(map.total_pinnable(), 8);
    }

    #[test]
    fn oneplus_exposes_five_of_eight() {
        let soc = devices::oneplus_11();
        let map = soc.affinity();
        assert_eq!(map.total_cores(), 8);
        assert_eq!(map.total_pinnable(), 5);
        assert!(map.pinnable(PuClass::LittleCpu).is_empty());
    }

    #[test]
    fn gpu_has_no_cores() {
        let soc = devices::pixel_7a();
        assert!(soc.affinity().cores(PuClass::Gpu).is_empty());
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn pinnable_must_be_subset() {
        let _ = AffinityMap::new().with_cluster(PuClass::BigCpu, vec![0, 1], vec![2]);
    }
}
