//! Discrete-event simulation of a pipelined chunk schedule.
//!
//! This is the virtual-time counterpart of the BT-Implementer runtime: the
//! same chunk/queue/recycled-TaskObject structure (§3.4 of the paper), but
//! executed against the analytic cost model instead of real silicon. Each
//! chunk is a station served by its PU; a fixed pool of task objects
//! circulates through the chunks and back to the head (multi-buffering with
//! recycling).
//!
//! Fidelity detail that matters for the paper's results: when a chunk starts
//! a *stage*, its service time is computed against the set of PUs busy **at
//! that instant** (their current stage's class and bandwidth demand). Real
//! pipelines therefore experience time-varying interference that no static
//! profiling table captures exactly — which is why the paper needs
//! interference-aware profiling to get *close* (Fig. 6) and autotuning to
//! close the residual gap (Table 4).

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use bt_telemetry::{DispatcherCounters, RunTelemetry, SpanRecorder, TelemetryConfig};

use crate::cost;
use crate::fault::{FaultSpec, FaultedDesReport, StageFaultKind};
use crate::{ActiveKernel, Micros, NoiseModel, PuClass, PuSpec, SocError, SocSpec, WorkProfile};

/// One pipeline chunk: a PU class plus the stages it executes in order.
#[derive(Debug, Clone)]
pub struct ChunkSpec {
    /// The PU class serving this chunk.
    pub pu: PuClass,
    /// Work profiles of the chunk's stages, in pipeline order.
    pub stages: Vec<WorkProfile>,
    /// Whether every stage pays the PU's completion-synchronization cost.
    ///
    /// BT-Implementer chunks submit kernels asynchronously and synchronize
    /// once per chunk per task (`false`, the default); accelerator-oriented
    /// baselines synchronize after every stage (`true`). On mobile Vulkan
    /// stacks this difference is a large part of the pipeline speedup.
    pub sync_per_stage: bool,
}

impl ChunkSpec {
    /// Creates a chunk of `stages` on `pu` with once-per-chunk
    /// synchronization (the BT-Implementer dispatch pattern).
    pub fn new(pu: PuClass, stages: Vec<WorkProfile>) -> ChunkSpec {
        ChunkSpec {
            pu,
            stages,
            sync_per_stage: false,
        }
    }

    /// Switches to per-stage synchronization (the baseline offload
    /// pattern).
    pub fn with_per_stage_sync(mut self) -> ChunkSpec {
        self.sync_per_stage = true;
        self
    }
}

/// Configuration of one simulated pipeline run.
#[derive(Debug, Clone)]
pub struct DesConfig {
    /// Measured tasks (the paper uses 30 per run).
    pub tasks: u32,
    /// Warmup tasks excluded from measurement.
    pub warmup: u32,
    /// Circulating task objects (multi-buffering depth). Defaults to
    /// `chunks + 1` when 0.
    pub buffers: u32,
    /// Seed for the measurement-noise stream.
    pub seed: u64,
    /// Log-scale sigma of multiplicative measurement noise.
    pub noise_sigma: f64,
    /// Record a per-stage execution timeline (for Gantt-style inspection).
    pub record_timeline: bool,
    /// What telemetry to collect (off by default; the disabled path costs
    /// one branch per instrumentation point).
    pub telemetry: TelemetryConfig,
    /// Memoize base service times per (chunk, stage, busy-set) key.
    ///
    /// The co-runner space is tiny — each chunk is either idle or on one of
    /// its stages — so steady-state pipelines revisit the same interference
    /// contexts thousands of times. The cache stores the *noiseless* roofline
    /// latency; per-event measurement noise is applied after lookup, so a
    /// cached run is bit-identical to an uncached one. On by default;
    /// disable to A/B-test the model directly.
    pub service_cache: bool,
}

impl Default for DesConfig {
    fn default() -> DesConfig {
        DesConfig {
            tasks: 30,
            warmup: 5,
            buffers: 0,
            seed: 0,
            noise_sigma: 0.02,
            record_timeline: false,
            telemetry: TelemetryConfig::OFF,
            service_cache: true,
        }
    }
}

/// One recorded stage execution (only when
/// [`DesConfig::record_timeline`] is set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Which chunk executed.
    pub chunk: usize,
    /// Stage index *within* the chunk.
    pub stage: usize,
    /// Task sequence number.
    pub task: usize,
    /// Virtual start time (µs).
    pub start: f64,
    /// Virtual end time (µs).
    pub end: f64,
}

/// Result of a simulated pipeline run.
#[derive(Debug, Clone)]
pub struct DesReport {
    /// Virtual time between the first measured task's departure and the
    /// last task's departure (steady-state window, excluding pipeline
    /// fill).
    pub makespan: Micros,
    /// Mean per-task residence time (entry into chunk 0 → exit from the
    /// last chunk) over measured tasks.
    pub mean_task_latency: Micros,
    /// Steady-state inverse throughput (mean inter-departure time over the
    /// measured window). This is the quantity the paper reports as
    /// pipeline latency and compares against the predicted bottleneck
    /// `T_max`.
    pub time_per_task: Micros,
    /// Tasks completed per second of virtual time.
    pub throughput_hz: f64,
    /// Fraction of the measured window each chunk spent busy (busy time
    /// clipped to the window, so warmup and fill work cannot inflate it).
    pub chunk_utilization: Vec<f64>,
    /// Index of the chunk with the highest utilization.
    pub bottleneck_chunk: usize,
    /// Number of measured tasks.
    pub tasks: u32,
    /// Per-stage execution records (empty unless
    /// [`DesConfig::record_timeline`] was set).
    pub timeline: Vec<TimelineEvent>,
    /// Collected telemetry (`None` unless [`DesConfig::telemetry`] enables
    /// something).
    pub telemetry: Option<RunTelemetry>,
}

/// The pending completion events, one slot per chunk.
///
/// A chunk serves at most one in-flight (task, stage) at a time, so the
/// event set never exceeds the chunk count and a fixed array of next
/// completion times replaces a binary heap: push is a store, pop is an
/// argmin scan over a handful of `f64`s. The ascending scan with a strict
/// `<` keeps the heap's exact (time, lowest chunk index) tie-break, so
/// traces are bit-identical to the heap-based engine it replaced.
#[derive(Debug)]
struct EventSlots {
    /// Completion time per chunk; `INFINITY` marks an idle chunk.
    next_done: Vec<f64>,
}

impl EventSlots {
    fn new(n_chunks: usize) -> EventSlots {
        EventSlots {
            next_done: vec![f64::INFINITY; n_chunks],
        }
    }

    /// Schedules chunk `chunk` to complete its in-flight stage at `time`.
    fn push(&mut self, chunk: usize, time: f64) {
        debug_assert!(self.next_done[chunk].is_infinite(), "one event per chunk");
        self.next_done[chunk] = time;
    }

    /// Removes and returns the earliest `(time, chunk)` event.
    ///
    /// # Panics
    ///
    /// Panics if no event is pending (the pipeline cannot deadlock with
    /// buffered queues, so this is unreachable from `simulate`).
    fn pop(&mut self) -> (f64, usize) {
        let mut best = (f64::INFINITY, usize::MAX);
        for (chunk, &t) in self.next_done.iter().enumerate() {
            if t < best.0 {
                best = (t, chunk);
            }
        }
        assert!(
            best.1 != usize::MAX,
            "pipeline cannot deadlock with buffered queues"
        );
        self.next_done[best.1] = f64::INFINITY;
        best
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    task: usize,
    stage: usize,
    /// (class, bw demand) advertised to co-runners while this stage runs.
    demand: f64,
}

/// Signature of the service-time sampler threaded through the event loop:
/// `(chunk, stage, states) → (service µs, bandwidth demand GB/s)`.
type ServiceFn<'a> = dyn FnMut(usize, usize, &[ChunkState]) -> (f64, f64) + 'a;

#[derive(Debug)]
struct ChunkState {
    input: VecDeque<usize>,
    busy: Option<InFlight>,
    busy_since: f64,
    /// Contiguous (start, end) busy intervals, one per completed task.
    /// Always collected: the measurement window is only known at the end,
    /// so in-window utilization needs the raw intervals.
    busy_spans: Vec<(f64, f64)>,
}

/// Multiplicative hasher for the memo cache's packed `u64` keys.
///
/// The key's fields already occupy disjoint bit ranges, so one Fibonacci
/// multiply spreads them adequately; routing 8 bytes through SipHash (the
/// `HashMap` default) costs a significant fraction of the roofline
/// evaluation the cache exists to avoid.
#[derive(Debug, Default, Clone, Copy)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// The noiseless base-latency memo keyed on (chunk, stage, busy set).
type ServiceCache = HashMap<u64, f64, std::hash::BuildHasherDefault<KeyHasher>>;

/// Allocation-lean service-time computation for the event loop.
///
/// Per dispatch the old path allocated a fresh `Vec<ActiveKernel>` of
/// co-runners and re-walked the roofline model. This struct instead keeps a
/// reusable scratch buffer, precomputes the per-(chunk, stage) bandwidth
/// demand and synchronization cost (both independent of the busy set), and
/// memoizes the noiseless base latency per (chunk, stage, busy-set) key.
///
/// Cache keying: each chunk's contribution to the busy set is `0` when idle
/// or `stage + 1` when busy, packed in [`ServiceModel::STAGE_BITS`] bits per
/// chunk; the dispatching chunk's own slot is forced to `0` (a chunk is
/// never its own co-runner) and its (chunk, stage) coordinates occupy the
/// high bits. That key determines the co-runner multiset exactly because a
/// co-runner's advertised bandwidth demand is a pure function of its
/// (chunk, stage). Pipelines too wide or too deep for the packing
/// (> [`ServiceModel::MAX_CACHED_CHUNKS`] chunks, or ≥ 63 stages in one
/// chunk) fall back to the uncached path.
struct ServiceModel<'a> {
    soc: &'a SocSpec,
    chunks: &'a [ChunkSpec],
    pus: Vec<&'a PuSpec>,
    /// `demand[chunk][stage]`: DRAM bandwidth advertised while that stage
    /// runs (busy-set independent).
    demand: Vec<Vec<f64>>,
    /// `sync[chunk][stage]`: completion-synchronization cost added to the
    /// sampled service time.
    sync: Vec<Vec<f64>>,
    /// Reused co-runner buffer (cleared per dispatch, never reallocated
    /// once it reaches `chunks - 1` capacity).
    scratch: Vec<ActiveKernel>,
    /// Noiseless base-latency memo, `None` when disabled or unkeyable.
    cache: Option<ServiceCache>,
}

impl<'a> ServiceModel<'a> {
    /// Bits per chunk in the busy-set key: stage index + 1, or 0 for idle.
    const STAGE_BITS: u32 = 6;
    /// Chunk-count limit for the packed key (6 bits × 8 chunks = 48 bits of
    /// busy set, leaving room for the dispatcher coordinates).
    const MAX_CACHED_CHUNKS: usize = 8;

    fn new(soc: &'a SocSpec, chunks: &'a [ChunkSpec], use_cache: bool) -> ServiceModel<'a> {
        let pus: Vec<&PuSpec> = chunks
            .iter()
            .map(|c| soc.pu(c.pu).expect("chunk PUs validated by simulate"))
            .collect();
        let demand: Vec<Vec<f64>> = chunks
            .iter()
            .zip(&pus)
            .map(|(c, pu)| c.stages.iter().map(|w| cost::bw_demand(w, pu)).collect())
            .collect();
        let sync: Vec<Vec<f64>> = chunks
            .iter()
            .zip(&pus)
            .map(|(c, pu)| {
                (0..c.stages.len())
                    .map(|s| {
                        if c.sync_per_stage || s + 1 == c.stages.len() {
                            pu.sync_overhead_us()
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let keyable = chunks.len() <= Self::MAX_CACHED_CHUNKS
            && chunks
                .iter()
                .all(|c| c.stages.len() < (1 << Self::STAGE_BITS) - 1);
        ServiceModel {
            soc,
            chunks,
            pus,
            demand,
            sync,
            scratch: Vec::with_capacity(chunks.len().saturating_sub(1)),
            // Pre-sized past the busy-set combinations short pipelines
            // reach, so steady-state runs never pay a rehash-and-grow.
            cache: (use_cache && keyable).then(|| {
                ServiceCache::with_capacity_and_hasher(
                    256,
                    std::hash::BuildHasherDefault::default(),
                )
            }),
        }
    }

    /// Service time (µs, noise applied) and bandwidth demand (GB/s) for
    /// `chunk_idx` starting `stage_idx` against the instantaneous busy set.
    fn service(
        &mut self,
        chunk_idx: usize,
        stage_idx: usize,
        states: &[ChunkState],
        noise: &mut NoiseModel,
    ) -> (f64, f64) {
        // Key first: a cache hit skips the co-runner scratch build and the
        // roofline walk entirely — the steady state of a converged pipeline
        // cycles through a handful of busy sets, so hits dominate.
        let key = self.cache.as_ref().map(|_| {
            let mut busy_key = 0u64;
            for (i, s) in states.iter().enumerate() {
                if i == chunk_idx {
                    continue;
                }
                if let Some(inflight) = s.busy {
                    busy_key |= (inflight.stage as u64 + 1) << (i as u32 * Self::STAGE_BITS);
                }
            }
            busy_key | (chunk_idx as u64) << 48 | (stage_idx as u64) << (48 + Self::STAGE_BITS)
        });
        let cached = key.and_then(|k| self.cache.as_ref().and_then(|c| c.get(&k).copied()));
        let base = match cached {
            Some(v) => v,
            None => {
                self.scratch.clear();
                for (i, s) in states.iter().enumerate() {
                    if i == chunk_idx {
                        continue;
                    }
                    if let Some(inflight) = s.busy {
                        self.scratch
                            .push(ActiveKernel::new(self.chunks[i].pu, inflight.demand));
                    }
                }
                let work = &self.chunks[chunk_idx].stages[stage_idx];
                let v = cost::latency_under(work, self.pus[chunk_idx], self.soc, &self.scratch)
                    .as_f64();
                if let (Some(cache), Some(k)) = (self.cache.as_mut(), key) {
                    cache.insert(k, v);
                }
                v
            }
        };
        let t = base * noise.factor() + self.sync[chunk_idx][stage_idx];
        (t, self.demand[chunk_idx][stage_idx])
    }
}

/// Simulates pipelined execution of `chunks` on `soc`.
///
/// # Errors
///
/// Returns [`SocError::EmptySimulation`] if `chunks` is empty, any chunk has
/// no stages, or `cfg.tasks == 0`; [`SocError::MissingPu`] if a chunk names
/// a PU class the device lacks.
pub fn simulate(
    soc: &SocSpec,
    chunks: &[ChunkSpec],
    cfg: &DesConfig,
) -> Result<DesReport, SocError> {
    if chunks.is_empty() || cfg.tasks == 0 || chunks.iter().any(|c| c.stages.is_empty()) {
        return Err(SocError::EmptySimulation);
    }
    for chunk in chunks {
        soc.try_pu(chunk.pu)?;
    }

    let n_chunks = chunks.len();
    let total_tasks = (cfg.tasks + cfg.warmup) as usize;
    let buffers = if cfg.buffers == 0 {
        n_chunks + 1
    } else {
        cfg.buffers as usize
    };
    let mut noise = NoiseModel::new(cfg.noise_sigma, cfg.seed);

    let mut states: Vec<ChunkState> = (0..n_chunks)
        .map(|_| ChunkState {
            input: VecDeque::with_capacity(buffers),
            busy: None,
            busy_since: 0.0,
            // One span per task served; sized up front so the event loop
            // never reallocates it.
            busy_spans: Vec::with_capacity(total_tasks),
        })
        .collect();
    // All task objects begin recycled at the head of the pipeline.
    for _ in 0..buffers {
        states[0].input.push_back(usize::MAX); // placeholder: object slot
    }

    let mut started = 0usize;
    let mut completed = 0usize;
    let mut entry_time = vec![0.0f64; total_tasks];
    let mut exit_time = vec![0.0f64; total_tasks];
    let mut events = EventSlots::new(n_chunks);
    let mut now = 0.0f64;
    // Per-stage events feed both the report timeline and telemetry spans;
    // both buffers stay unallocated when nothing consumes them.
    let collect_timeline = cfg.record_timeline || cfg.telemetry.spans;
    let mut timeline: Vec<TimelineEvent> = if collect_timeline {
        let total_stages: usize = chunks.iter().map(|c| c.stages.len()).sum();
        Vec::with_capacity(total_tasks * total_stages)
    } else {
        Vec::new()
    };
    let tele_counters = cfg.telemetry.counters;
    let mut counters: Vec<DispatcherCounters> = if tele_counters {
        vec![DispatcherCounters::new(); n_chunks]
    } else {
        Vec::new()
    };

    let measure_from = cfg.warmup as usize;

    // Service-time computation against the instantaneous busy set.
    let mut model = ServiceModel::new(soc, chunks, cfg.service_cache);

    // Try to start the next task/stage on an idle chunk.
    #[allow(clippy::too_many_arguments)]
    fn try_start(
        chunk_idx: usize,
        now: f64,
        states: &mut [ChunkState],
        events: &mut EventSlots,
        started: &mut usize,
        total_tasks: usize,
        entry_time: &mut [f64],
        service: &mut ServiceFn<'_>,
        timeline: Option<&mut Vec<TimelineEvent>>,
    ) {
        if states[chunk_idx].busy.is_some() || states[chunk_idx].input.is_empty() {
            return;
        }
        // The head chunk converts recycled objects into fresh tasks.
        let task = if chunk_idx == 0 {
            if *started >= total_tasks {
                return; // stream exhausted
            }
            states[chunk_idx].input.pop_front();
            let t = *started;
            *started += 1;
            entry_time[t] = now;
            t
        } else {
            states[chunk_idx]
                .input
                .pop_front()
                .expect("checked non-empty")
        };
        let (dt, demand) = service(chunk_idx, 0, states);
        states[chunk_idx].busy = Some(InFlight {
            task,
            stage: 0,
            demand,
        });
        states[chunk_idx].busy_since = now;
        events.push(chunk_idx, now + dt);
        if let Some(records) = timeline {
            records.push(TimelineEvent {
                chunk: chunk_idx,
                stage: 0,
                task,
                start: now,
                end: now + dt,
            });
        }
    }

    let mut service_fn =
        |c: usize, s: usize, st: &[ChunkState]| model.service(c, s, st, &mut noise);

    try_start(
        0,
        now,
        &mut states,
        &mut events,
        &mut started,
        total_tasks,
        &mut entry_time,
        &mut service_fn,
        collect_timeline.then_some(&mut timeline),
    );

    while completed < total_tasks {
        let (ev_time, chunk_idx) = events.pop();
        now = ev_time;
        let inflight = states[chunk_idx].busy.expect("event implies busy chunk");

        if inflight.stage + 1 < chunks[chunk_idx].stages.len() {
            // Next stage of the same chunk; re-sample interference now.
            let (dt, demand) = service_fn(chunk_idx, inflight.stage + 1, &states);
            states[chunk_idx].busy = Some(InFlight {
                task: inflight.task,
                stage: inflight.stage + 1,
                demand,
            });
            events.push(chunk_idx, now + dt);
            if collect_timeline {
                timeline.push(TimelineEvent {
                    chunk: chunk_idx,
                    stage: inflight.stage + 1,
                    task: inflight.task,
                    start: now,
                    end: now + dt,
                });
            }
            continue;
        }

        // Chunk finished its last stage for this task.
        let busy_since = states[chunk_idx].busy_since;
        states[chunk_idx].busy_spans.push((busy_since, now));
        states[chunk_idx].busy = None;
        let task = inflight.task;
        if tele_counters {
            counters[chunk_idx].record_task(Duration::from_secs_f64((now - busy_since) * 1e-6));
        }

        if chunk_idx + 1 == n_chunks {
            exit_time[task] = now;
            completed += 1;
            // Recycle the object to the head.
            states[0].input.push_back(usize::MAX);
            if tele_counters {
                counters[chunk_idx].sample_queue_depth(states[0].input.len());
            }
            try_start(
                0,
                now,
                &mut states,
                &mut events,
                &mut started,
                total_tasks,
                &mut entry_time,
                &mut service_fn,
                collect_timeline.then_some(&mut timeline),
            );
        } else {
            states[chunk_idx + 1].input.push_back(task);
            if tele_counters {
                counters[chunk_idx].sample_queue_depth(states[chunk_idx + 1].input.len());
            }
            try_start(
                chunk_idx + 1,
                now,
                &mut states,
                &mut events,
                &mut started,
                total_tasks,
                &mut entry_time,
                &mut service_fn,
                collect_timeline.then_some(&mut timeline),
            );
        }
        // The finishing chunk may have more input waiting.
        try_start(
            chunk_idx,
            now,
            &mut states,
            &mut events,
            &mut started,
            total_tasks,
            &mut entry_time,
            &mut service_fn,
            collect_timeline.then_some(&mut timeline),
        );
    }

    // Steady-state window: departure-to-departure over the measured tasks,
    // matching the host executor's convention. This excludes the
    // pipeline-fill transient that entry-based windows would charge to
    // deep multi-buffering. With warmup the window runs from the last
    // warmup departure; without warmup the first measured departure
    // anchors it (one fewer interval); a single task without warmup
    // degenerates to entry→exit latency.
    let (w_start, departures) = if measure_from > 0 {
        (exit_time[measure_from - 1], cfg.tasks as f64)
    } else if total_tasks > 1 {
        (exit_time[0], (cfg.tasks - 1) as f64)
    } else {
        (entry_time[0], 1.0)
    };
    let w_end = exit_time[total_tasks - 1];
    let makespan = (w_end - w_start).max(1e-9);

    let measured = &exit_time[measure_from..];
    let mean_latency = measured
        .iter()
        .zip(&entry_time[measure_from..])
        .map(|(x, e)| x - e)
        .sum::<f64>()
        / cfg.tasks as f64;

    // Utilization = busy time clipped to the measured window, over the
    // window. Clipping makes the ratio ≤ 1 by construction and keeps
    // warmup/fill work from inflating it.
    let chunk_utilization: Vec<f64> = states
        .iter()
        .map(|s| {
            let in_window: f64 = s
                .busy_spans
                .iter()
                .map(|&(t0, t1)| (t1.min(w_end) - t0.max(w_start)).max(0.0))
                .sum();
            in_window / makespan
        })
        .collect();
    let bottleneck_chunk = chunk_utilization
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("utilization is never NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0);

    let telemetry = if cfg.telemetry.any() {
        let mut tele = RunTelemetry::new("des");
        if tele_counters {
            tele.dispatchers = counters
                .iter()
                .enumerate()
                .map(|(i, c)| c.stats(format!("chunk{i}")))
                .collect();
        }
        if cfg.telemetry.spans {
            let mut rec = SpanRecorder::virtual_time(true);
            for ev in &timeline {
                rec.record_virtual(
                    ev.chunk as u32,
                    ev.task as u64,
                    Some(ev.stage as u32),
                    ev.start,
                    ev.end,
                );
            }
            tele.spans = rec.into_spans();
        }
        Some(tele)
    } else {
        None
    };

    Ok(DesReport {
        makespan: Micros::new(makespan),
        mean_task_latency: Micros::new(mean_latency),
        time_per_task: Micros::new(makespan / departures.max(1.0)),
        throughput_hz: departures.max(1.0) / (makespan / 1e6),
        chunk_utilization,
        bottleneck_chunk,
        tasks: cfg.tasks,
        timeline: if cfg.record_timeline {
            timeline
        } else {
            Vec::new()
        },
        telemetry,
    })
}

/// The faulted counterpart of the event loop in [`simulate`].
///
/// Kept as a separate engine so the fault checks cost the fault-free hot
/// path nothing; an equivalence test pins `simulate_faulted` with an empty
/// spec to `simulate` bit-for-bit.
struct FaultEngine<'a> {
    chunks: &'a [ChunkSpec],
    faults: &'a FaultSpec,
    /// Loss instant of each chunk's PU class, if it is lost at all.
    loss: Vec<Option<f64>>,
    states: Vec<ChunkState>,
    /// The chunk's in-flight stage dies at its (loss-clamped) completion.
    doomed: Vec<bool>,
    events: EventSlots,
    model: ServiceModel<'a>,
    noise: NoiseModel,
    started: usize,
    total_tasks: usize,
    completed: usize,
    dropped: usize,
    faults_fired: u32,
    entry_time: Vec<f64>,
    /// `(entry, exit)` per completed task, in completion order (which at
    /// the FIFO tail is also task order).
    completions: Vec<(f64, f64)>,
    timeline: Vec<TimelineEvent>,
    collect_timeline: bool,
    counters: Vec<DispatcherCounters>,
    tele_counters: bool,
    /// A drop recycled an object to the head outside the normal
    /// completion flow since the last head pump.
    recycled: bool,
}

impl FaultEngine<'_> {
    fn lost(&self, c: usize, now: f64) -> bool {
        self.loss[c].is_some_and(|t| now >= t)
    }

    /// Drops the task just popped from a non-head chunk: its object
    /// recycles to the head pool.
    fn drop_and_recycle(&mut self) {
        self.dropped += 1;
        self.states[0].input.push_back(usize::MAX);
        self.recycled = true;
    }

    /// Closes the chunk's busy interval at `now` and frees it.
    fn finish_span(&mut self, c: usize, now: f64) {
        let since = self.states[c].busy_since;
        self.states[c].busy_spans.push((since, now));
        self.states[c].busy = None;
        if self.tele_counters {
            self.counters[c].record_task(Duration::from_secs_f64((now - since) * 1e-6));
        }
    }

    /// Straggler multiplier for `(chunk, task)`; counted as one fault
    /// activation at the task's first stage on that chunk.
    fn straggler(&mut self, c: usize, task: usize, stage: usize) -> f64 {
        let f = self.faults.straggler_factor(c, task);
        if stage == 0 && f != 1.0 {
            self.faults_fired += 1;
        }
        f
    }

    /// Samples the (perturbed) service time of `(c, stage, task)` at `now`
    /// and schedules its completion, clamped to the chunk's loss instant.
    fn start_stage(&mut self, c: usize, task: usize, stage: usize, now: f64) {
        let (base, demand) = self.model.service(c, stage, &self.states, &mut self.noise);
        let mut dt = base
            * self.faults.slowdown_factor(self.chunks[c].pu, now)
            * self.straggler(c, task, stage);
        if let Some(StageFaultKind::Timeout { extra_us }) = self.faults.stage_fault(c, task, stage)
        {
            dt += extra_us;
            self.faults_fired += 1;
        }
        let mut end = now + dt;
        if let Some(t_loss) = self.loss[c] {
            if end > t_loss {
                // The PU dies mid-service; the stage "completes" at the
                // loss instant as a doomed event and the task drops there.
                end = t_loss;
                self.doomed[c] = true;
            }
        }
        self.states[c].busy = Some(InFlight {
            task,
            stage,
            demand,
        });
        if stage == 0 {
            self.states[c].busy_since = now;
        }
        self.events.push(c, end);
        if self.collect_timeline {
            self.timeline.push(TimelineEvent {
                chunk: c,
                stage,
                task,
                start: now,
                end,
            });
        }
    }

    /// Starts work on idle chunk `c`: admits new tasks at the head, drains
    /// fault-induced drops (lost PU, stage-0 `Error`) without advancing
    /// virtual time, and dispatches the first unfaulted arrival.
    fn pump(&mut self, c: usize, now: f64) {
        loop {
            if self.states[c].busy.is_some() {
                return;
            }
            let task = if c == 0 {
                if self.started >= self.total_tasks || self.states[0].input.is_empty() {
                    return;
                }
                // A lost head consumes the task stream but keeps its
                // objects: every remaining admission drops immediately.
                if self.lost(0, now) {
                    self.entry_time[self.started] = now;
                    self.started += 1;
                    self.dropped += 1;
                    self.faults_fired += 1;
                    continue;
                }
                self.states[0].input.pop_front();
                let t = self.started;
                self.started += 1;
                self.entry_time[t] = now;
                t
            } else {
                match self.states[c].input.pop_front() {
                    Some(t) => t,
                    None => return,
                }
            };
            if c != 0 && self.lost(c, now) {
                self.faults_fired += 1;
                self.drop_and_recycle();
                continue;
            }
            if matches!(
                self.faults.stage_fault(c, task, 0),
                Some(StageFaultKind::Error)
            ) {
                self.faults_fired += 1;
                self.dropped += 1;
                self.states[0].input.push_back(usize::MAX);
                if c != 0 {
                    self.recycled = true;
                }
                continue;
            }
            self.start_stage(c, task, 0, now);
            return;
        }
    }

    /// Objects recycled by drops re-arm the head outside the normal
    /// completion flow; give it a chance to admit with them.
    fn flush_recycled(&mut self, now: f64) {
        while self.recycled {
            self.recycled = false;
            self.pump(0, now);
        }
    }

    fn run(&mut self) {
        self.pump(0, 0.0);
        while self.completed + self.dropped < self.total_tasks {
            let (now, c) = self.events.pop();
            let inflight = self.states[c].busy.expect("event implies busy chunk");

            if self.doomed[c] {
                // The PU died mid-service at `now` (its loss instant).
                self.doomed[c] = false;
                self.finish_span(c, now);
                self.faults_fired += 1;
                self.drop_and_recycle();
                self.pump(c, now); // drains the queued input as drops
                self.flush_recycled(now);
                continue;
            }

            if inflight.stage + 1 < self.chunks[c].stages.len() {
                if matches!(
                    self.faults
                        .stage_fault(c, inflight.task, inflight.stage + 1),
                    Some(StageFaultKind::Error)
                ) {
                    self.faults_fired += 1;
                    self.finish_span(c, now);
                    self.drop_and_recycle();
                    self.pump(c, now);
                    self.flush_recycled(now);
                } else {
                    // Next stage of the same chunk; re-sample interference.
                    self.start_stage(c, inflight.task, inflight.stage + 1, now);
                }
                continue;
            }

            // Chunk finished its last stage for this task.
            self.finish_span(c, now);
            let task = inflight.task;
            if c + 1 == self.chunks.len() {
                self.completions.push((self.entry_time[task], now));
                self.completed += 1;
                self.states[0].input.push_back(usize::MAX);
                if self.tele_counters {
                    self.counters[c].sample_queue_depth(self.states[0].input.len());
                }
                self.pump(0, now);
            } else {
                self.states[c + 1].input.push_back(task);
                if self.tele_counters {
                    self.counters[c].sample_queue_depth(self.states[c + 1].input.len());
                }
                self.pump(c + 1, now);
            }
            self.pump(c, now);
            self.flush_recycled(now);
        }
    }
}

/// Simulates pipelined execution of `chunks` on `soc` under the
/// perturbations in `faults`.
///
/// Fault semantics — every activation is a pure function of
/// `(chunk, task, stage, class, virtual time)`, so faulted runs are exactly
/// as seed-deterministic as fault-free ones:
///
/// - **Slowdown ramps** multiply a stage's sampled service time by the
///   class factor in effect at dispatch time.
/// - **Stragglers** multiply every stage of one `(chunk, task)` pair.
/// - **Stage `Timeout` faults** add `extra_us` to that one iteration.
/// - **Stage `Error` faults** drop the task; its object recycles to the
///   pipeline head and the chunk moves on.
/// - **PU loss** kills the class at `at_us`: in-flight work on it dies at
///   the loss instant, queued and future arrivals at its chunks drop (their
///   objects recycle), and the rest of the pipeline drains. A lost *head*
///   consumes the remaining task stream as immediate drops.
///
/// The engine maintains `completed + dropped == submitted` and never
/// deadlocks; with `faults == FaultSpec::none()` the run is bit-identical
/// to [`simulate`].
///
/// # Errors
///
/// Same validation as [`simulate`].
pub fn simulate_faulted(
    soc: &SocSpec,
    chunks: &[ChunkSpec],
    cfg: &DesConfig,
    faults: &FaultSpec,
) -> Result<FaultedDesReport, SocError> {
    if chunks.is_empty() || cfg.tasks == 0 || chunks.iter().any(|c| c.stages.is_empty()) {
        return Err(SocError::EmptySimulation);
    }
    for chunk in chunks {
        soc.try_pu(chunk.pu)?;
    }

    let n_chunks = chunks.len();
    let total_tasks = (cfg.tasks + cfg.warmup) as usize;
    let buffers = if cfg.buffers == 0 {
        n_chunks + 1
    } else {
        cfg.buffers as usize
    };
    let mut states: Vec<ChunkState> = (0..n_chunks)
        .map(|_| ChunkState {
            input: VecDeque::with_capacity(buffers),
            busy: None,
            busy_since: 0.0,
            busy_spans: Vec::with_capacity(total_tasks),
        })
        .collect();
    for _ in 0..buffers {
        states[0].input.push_back(usize::MAX);
    }
    let collect_timeline = cfg.record_timeline || cfg.telemetry.spans;
    let tele_counters = cfg.telemetry.counters;

    let mut eng = FaultEngine {
        chunks,
        faults,
        loss: chunks.iter().map(|c| faults.loss_at(c.pu)).collect(),
        states,
        doomed: vec![false; n_chunks],
        events: EventSlots::new(n_chunks),
        model: ServiceModel::new(soc, chunks, cfg.service_cache),
        noise: NoiseModel::new(cfg.noise_sigma, cfg.seed),
        started: 0,
        total_tasks,
        completed: 0,
        dropped: 0,
        faults_fired: 0,
        entry_time: vec![0.0f64; total_tasks],
        completions: Vec::with_capacity(total_tasks),
        timeline: if collect_timeline {
            let total_stages: usize = chunks.iter().map(|c| c.stages.len()).sum();
            Vec::with_capacity(total_tasks * total_stages)
        } else {
            Vec::new()
        },
        collect_timeline,
        counters: if tele_counters {
            vec![DispatcherCounters::new(); n_chunks]
        } else {
            Vec::new()
        },
        tele_counters,
        recycled: false,
    };
    eng.run();
    debug_assert_eq!(eng.completed + eng.dropped, eng.started);

    let report = faulted_report(&mut eng, cfg);
    Ok(FaultedDesReport {
        report,
        submitted: eng.started as u32,
        completed: eng.completed as u32,
        dropped: eng.dropped as u32,
        faults_fired: eng.faults_fired,
    })
}

/// Builds a steady-state report over `completions` — `(entry, exit)` pairs
/// of the tasks that actually completed, in task-sequence order (at the
/// static pipeline's FIFO tail this is also completion order) — using the
/// same departure-to-departure convention as [`simulate`]. The first
/// `warmup` *completions* (whatever their sequence numbers) are excluded as
/// the pipeline-fill transient; dropped tasks contribute nothing. Shared by
/// both faulted engines; returns `None` when nothing completed.
pub(crate) fn steady_report_from_completions(
    completions: &[(f64, f64)],
    warmup: usize,
    busy_spans: &[&[(f64, f64)]],
) -> Option<DesReport> {
    let n = completions.len();
    if n == 0 {
        return None;
    }
    let (w_start, skip, intervals) = if warmup > 0 && n > warmup {
        (completions[warmup - 1].1, warmup, (n - warmup) as f64)
    } else if n > 1 {
        (completions[0].1, 0, (n - 1) as f64)
    } else {
        (completions[0].0, 0, 1.0)
    };
    let w_end = completions[n - 1].1;
    let makespan = (w_end - w_start).max(1e-9);
    let measured = &completions[skip..];
    let mean_latency = measured.iter().map(|(e, x)| x - e).sum::<f64>() / measured.len() as f64;

    let chunk_utilization: Vec<f64> = busy_spans
        .iter()
        .map(|spans| {
            let in_window: f64 = spans
                .iter()
                .map(|&(t0, t1)| (t1.min(w_end) - t0.max(w_start)).max(0.0))
                .sum();
            in_window / makespan
        })
        .collect();
    let bottleneck_chunk = chunk_utilization
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("utilization is never NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0);

    Some(DesReport {
        makespan: Micros::new(makespan),
        mean_task_latency: Micros::new(mean_latency),
        time_per_task: Micros::new(makespan / intervals.max(1.0)),
        throughput_hz: intervals.max(1.0) / (makespan / 1e6),
        chunk_utilization,
        bottleneck_chunk,
        tasks: (n - skip) as u32,
        timeline: Vec::new(),
        telemetry: None,
    })
}

/// Attaches the static engine's timeline/telemetry to the shared
/// completion-window report.
fn faulted_report(eng: &mut FaultEngine<'_>, cfg: &DesConfig) -> Option<DesReport> {
    let spans: Vec<&[(f64, f64)]> = eng.states.iter().map(|s| s.busy_spans.as_slice()).collect();
    let mut report = steady_report_from_completions(&eng.completions, cfg.warmup as usize, &spans)?;

    report.telemetry = if cfg.telemetry.any() {
        let mut tele = RunTelemetry::new("des");
        if eng.tele_counters {
            tele.dispatchers = eng
                .counters
                .iter()
                .enumerate()
                .map(|(i, c)| c.stats(format!("chunk{i}")))
                .collect();
        }
        if cfg.telemetry.spans {
            let mut rec = SpanRecorder::virtual_time(true);
            for ev in &eng.timeline {
                rec.record_virtual(
                    ev.chunk as u32,
                    ev.task as u64,
                    Some(ev.stage as u32),
                    ev.start,
                    ev.end,
                );
            }
            tele.spans = rec.into_spans();
        }
        Some(tele)
    } else {
        None
    };

    if cfg.record_timeline {
        report.timeline = std::mem::take(&mut eng.timeline);
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LoadContext;
    use crate::devices;

    fn noiseless() -> DesConfig {
        DesConfig {
            tasks: 30,
            warmup: 5,
            seed: 1,
            noise_sigma: 0.0,
            ..DesConfig::default()
        }
    }

    fn stage(flops: f64) -> WorkProfile {
        WorkProfile::new(flops, flops / 4.0)
    }

    #[test]
    fn empty_inputs_rejected() {
        let soc = devices::pixel_7a();
        assert!(matches!(
            simulate(&soc, &[], &noiseless()),
            Err(SocError::EmptySimulation)
        ));
        let chunks = [ChunkSpec::new(PuClass::BigCpu, vec![])];
        assert!(matches!(
            simulate(&soc, &chunks, &noiseless()),
            Err(SocError::EmptySimulation)
        ));
    }

    #[test]
    fn missing_pu_rejected() {
        let soc = devices::jetson_orin_nano();
        let chunks = [ChunkSpec::new(PuClass::LittleCpu, vec![stage(1e6)])];
        assert!(matches!(
            simulate(&soc, &chunks, &noiseless()),
            Err(SocError::MissingPu(PuClass::LittleCpu))
        ));
    }

    #[test]
    fn single_chunk_matches_serial_sum() {
        let soc = devices::jetson_orin_nano();
        let stages = vec![stage(1e7), stage(2e7), stage(5e6)];
        let chunks = [ChunkSpec::new(PuClass::BigCpu, stages.clone())];
        let report = simulate(&soc, &chunks, &noiseless()).unwrap();
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let serial: f64 = stages
            .iter()
            .map(|w| cost::latency(w, pu, &soc, &LoadContext::isolated()).as_f64())
            .sum();
        let per_task = report.time_per_task.as_f64();
        assert!(
            (per_task - serial).abs() / serial < 0.02,
            "per-task {per_task} vs serial {serial}"
        );
    }

    #[test]
    fn two_balanced_chunks_double_throughput() {
        let soc = devices::jetson_orin_nano();
        // Two equal compute-bound stages; no interference model coupling
        // beyond DVFS, which for Jetson slows CPUs ~1.33x under load.
        let one = [ChunkSpec::new(
            PuClass::BigCpu,
            vec![stage(2e7), stage(2e7)],
        )];
        let two = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(2e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(2e7)]),
        ];
        let serial = simulate(&soc, &one, &noiseless()).unwrap();
        let piped = simulate(&soc, &two, &noiseless()).unwrap();
        assert!(
            piped.time_per_task < serial.time_per_task,
            "pipelining should raise throughput: {} vs {}",
            piped.time_per_task,
            serial.time_per_task
        );
    }

    #[test]
    fn bottleneck_chunk_has_highest_utilization() {
        let soc = devices::jetson_orin_nano();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(5e7)]), // heavy
            ChunkSpec::new(PuClass::Gpu, vec![stage(1e6)]),    // light
        ];
        let report = simulate(&soc, &chunks, &noiseless()).unwrap();
        assert_eq!(report.bottleneck_chunk, 0);
        assert!(report.chunk_utilization[0] > report.chunk_utilization[1]);
    }

    #[test]
    fn throughput_consistent_with_time_per_task() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(1e7)]),
        ];
        let r = simulate(&soc, &chunks, &noiseless()).unwrap();
        let expect = 1e6 / r.time_per_task.as_f64();
        assert!((r.throughput_hz - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ];
        let cfg = DesConfig {
            noise_sigma: 0.05,
            seed: 42,
            ..noiseless()
        };
        let a = simulate(&soc, &chunks, &cfg).unwrap();
        let b = simulate(&soc, &chunks, &cfg).unwrap();
        assert_eq!(a.makespan.as_f64(), b.makespan.as_f64());
        let cfg2 = DesConfig { seed: 43, ..cfg };
        let c = simulate(&soc, &chunks, &cfg2).unwrap();
        assert_ne!(a.makespan.as_f64(), c.makespan.as_f64());
    }

    #[test]
    fn mean_task_latency_at_least_time_per_task() {
        // Residence time includes queueing, so it can't be below the
        // steady-state inter-departure time in a balanced pipeline.
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(9e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(1.1e7)]),
        ];
        let r = simulate(&soc, &chunks, &noiseless()).unwrap();
        assert!(r.mean_task_latency.as_f64() >= 0.9 * r.time_per_task.as_f64());
    }

    #[test]
    fn zero_warmup_agrees_with_warmed_measurement() {
        // Departure-to-departure windows make the steady-state estimate
        // independent of warmup in a noiseless simulation. Before the
        // window fix, warmup == 0 anchored at the first *entry* and
        // divided by `tasks`, charging the pipeline-fill transient to
        // every task.
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(9e6)]),
        ];
        let warm = simulate(&soc, &chunks, &noiseless()).unwrap();
        let cold_cfg = DesConfig {
            warmup: 0,
            ..noiseless()
        };
        let cold = simulate(&soc, &chunks, &cold_cfg).unwrap();
        let (a, b) = (warm.time_per_task.as_f64(), cold.time_per_task.as_f64());
        assert!(
            (a - b).abs() / a < 1e-6,
            "warmup=5 gives {a} µs/task but warmup=0 gives {b}"
        );
    }

    #[test]
    fn utilization_clipped_to_window_stays_bounded() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(3e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(1e6)]),
        ];
        for warmup in [0, 1, 5] {
            let cfg = DesConfig {
                warmup,
                ..noiseless()
            };
            let r = simulate(&soc, &chunks, &cfg).unwrap();
            for (i, u) in r.chunk_utilization.iter().enumerate() {
                assert!(
                    (0.0..=1.0).contains(u),
                    "warmup={warmup} chunk{i} utilization {u} out of bounds"
                );
            }
            // The heavy chunk saturates its window.
            assert!(r.chunk_utilization[0] > 0.9);
        }
    }

    #[test]
    fn telemetry_mirrors_run_structure() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ];
        let cfg = DesConfig {
            telemetry: TelemetryConfig::full(),
            ..noiseless()
        };
        let r = simulate(&soc, &chunks, &cfg).unwrap();
        let tele = r.telemetry.expect("telemetry enabled");
        assert_eq!(tele.source, "des");
        assert_eq!(tele.dispatchers.len(), 2);
        let total = (cfg.tasks + cfg.warmup) as u64;
        for d in &tele.dispatchers {
            assert_eq!(d.tasks, total);
            assert!(d.queue_samples > 0);
        }
        // Spans cover every stage execution: 2 stages + 1 stage per task.
        assert_eq!(tele.spans.len(), 3 * total as usize);
        // Timeline stays empty unless record_timeline was requested.
        assert!(r.timeline.is_empty());

        let off = simulate(&soc, &chunks, &noiseless()).unwrap();
        assert!(off.telemetry.is_none());
    }

    #[test]
    fn service_cache_is_bit_identical_to_uncached() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(7e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ];
        let cached = DesConfig {
            noise_sigma: 0.05,
            seed: 9,
            ..noiseless()
        };
        let uncached = DesConfig {
            service_cache: false,
            ..cached.clone()
        };
        let a = simulate(&soc, &chunks, &cached).unwrap();
        let b = simulate(&soc, &chunks, &uncached).unwrap();
        assert_eq!(a.makespan.as_f64(), b.makespan.as_f64());
        assert_eq!(a.mean_task_latency.as_f64(), b.mean_task_latency.as_f64());
        assert_eq!(a.time_per_task.as_f64(), b.time_per_task.as_f64());
        assert_eq!(a.chunk_utilization, b.chunk_utilization);
        assert_eq!(a.bottleneck_chunk, b.bottleneck_chunk);
    }

    #[test]
    fn interference_raises_pipeline_cost_vs_isolated_sum() {
        // On the Pixel, two concurrently busy CPU chunks slow each other
        // down (DVFS 1.3x), so the pipeline's bottleneck exceeds the
        // isolated latency of the heavier chunk.
        let soc = devices::pixel_7a();
        let heavy = stage(2e7);
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let iso = cost::latency(&heavy, pu, &soc, &LoadContext::isolated()).as_f64();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![heavy.clone()]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(1.9e7)]),
        ];
        let r = simulate(&soc, &chunks, &noiseless()).unwrap();
        assert!(
            r.time_per_task.as_f64() > iso * 1.1,
            "contended bottleneck {} should exceed isolated {}",
            r.time_per_task.as_f64(),
            iso
        );
    }

    // ------------------------- faulted engine --------------------------

    use crate::fault::{PuLoss, SlowdownRamp, StageFault, Straggler};

    fn fault_chunks() -> Vec<ChunkSpec> {
        vec![
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(7e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ]
    }

    #[test]
    fn empty_spec_is_bit_identical_to_simulate() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let cfg = DesConfig {
            noise_sigma: 0.05,
            seed: 9,
            record_timeline: true,
            telemetry: TelemetryConfig::full(),
            ..noiseless()
        };
        let plain = simulate(&soc, &chunks, &cfg).unwrap();
        let faulted = simulate_faulted(&soc, &chunks, &cfg, &FaultSpec::none()).unwrap();
        assert_eq!(faulted.submitted, cfg.tasks + cfg.warmup);
        assert_eq!(faulted.completed, cfg.tasks + cfg.warmup);
        assert_eq!(faulted.dropped, 0);
        assert_eq!(faulted.faults_fired, 0);
        assert!(!faulted.degraded());
        let r = faulted.report.expect("all tasks completed");
        assert_eq!(r.makespan.as_f64(), plain.makespan.as_f64());
        assert_eq!(
            r.mean_task_latency.as_f64(),
            plain.mean_task_latency.as_f64()
        );
        assert_eq!(r.time_per_task.as_f64(), plain.time_per_task.as_f64());
        assert_eq!(r.chunk_utilization, plain.chunk_utilization);
        assert_eq!(r.bottleneck_chunk, plain.bottleneck_chunk);
        assert_eq!(r.tasks, plain.tasks);
        assert_eq!(r.timeline, plain.timeline);
        let (a, b) = (r.telemetry.unwrap(), plain.telemetry.unwrap());
        assert_eq!(a.dispatchers.len(), b.dispatchers.len());
        assert_eq!(a.spans.len(), b.spans.len());
    }

    #[test]
    fn slowdown_ramp_inflates_time_per_task() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let base = simulate(&soc, &chunks, &noiseless()).unwrap();
        let spec = FaultSpec {
            slowdowns: vec![SlowdownRamp {
                class: PuClass::BigCpu,
                start_us: 0.0,
                ramp_us: 0.0,
                factor: 3.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_faulted(&soc, &chunks, &noiseless(), &spec)
            .unwrap()
            .report
            .expect("completes");
        assert!(
            r.time_per_task.as_f64() > base.time_per_task.as_f64() * 1.5,
            "throttled {} vs base {}",
            r.time_per_task,
            base.time_per_task
        );
    }

    #[test]
    fn straggler_fires_once_and_completes_everything() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let spec = FaultSpec {
            stragglers: vec![Straggler {
                chunk: 1,
                task: 7,
                factor: 20.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_faulted(&soc, &chunks, &noiseless(), &spec).unwrap();
        assert_eq!(r.faults_fired, 1);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.completed, r.submitted);
        let base = simulate(&soc, &chunks, &noiseless()).unwrap();
        let faulted = r.report.expect("completes");
        assert!(faulted.makespan.as_f64() > base.makespan.as_f64());
    }

    #[test]
    fn stage_error_drops_exactly_that_task() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        // Second stage of the first chunk, mid-stream task.
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 12,
                stage: 1,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_faulted(&soc, &chunks, &noiseless(), &spec).unwrap();
        assert_eq!(r.dropped, 1);
        assert_eq!(r.completed, r.submitted - 1);
        assert!(r.degraded());
        assert!(r.report.is_some());
    }

    #[test]
    fn stage_timeout_adds_its_delay() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let base = simulate(&soc, &chunks, &noiseless()).unwrap();
        let extra = 5e4;
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 2,
                task: 15,
                stage: 0,
                kind: StageFaultKind::Timeout { extra_us: extra },
            }],
            ..FaultSpec::default()
        };
        let r = simulate_faulted(&soc, &chunks, &noiseless(), &spec).unwrap();
        assert_eq!(r.dropped, 0);
        assert_eq!(r.faults_fired, 1);
        let faulted = r.report.expect("completes");
        // The stall lands inside the measured window of the tail chunk, so
        // the makespan grows by at least most of the injected delay.
        assert!(
            faulted.makespan.as_f64() > base.makespan.as_f64() + 0.5 * extra,
            "timeout did not stretch the window: {} vs {}",
            faulted.makespan,
            base.makespan
        );
    }

    #[test]
    fn head_loss_at_time_zero_drops_everything() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let spec = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::BigCpu,
                at_us: 0.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_faulted(&soc, &chunks, &noiseless(), &spec).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.dropped, r.submitted);
        assert!(r.report.is_none());
        assert!(r.degraded());
    }

    #[test]
    fn midrun_tail_loss_drains_and_degrades() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let cfg = DesConfig {
            record_timeline: true,
            ..noiseless()
        };
        let base = simulate(&soc, &chunks, &cfg).unwrap();
        let t_end = base.timeline.iter().map(|e| e.end).fold(0.0f64, f64::max);
        let spec = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::Gpu,
                at_us: t_end / 2.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate_faulted(&soc, &chunks, &noiseless(), &spec).unwrap();
        assert!(r.completed > 0, "tasks before the loss should complete");
        assert!(r.dropped > 0, "tasks after the loss should drop");
        assert_eq!(r.completed + r.dropped, r.submitted);
        assert!(r.report.is_some());
    }

    #[test]
    fn faulted_runs_are_seed_deterministic() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let cfg = DesConfig {
            noise_sigma: 0.05,
            seed: 77,
            ..noiseless()
        };
        let spec = FaultSpec {
            slowdowns: vec![SlowdownRamp {
                class: PuClass::MediumCpu,
                start_us: 500.0,
                ramp_us: 1000.0,
                factor: 2.0,
            }],
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 9,
                stage: 0,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let a = simulate_faulted(&soc, &chunks, &cfg, &spec).unwrap();
        let b = simulate_faulted(&soc, &chunks, &cfg, &spec).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let other = simulate_faulted(&soc, &chunks, &DesConfig { seed: 78, ..cfg }, &spec).unwrap();
        assert_ne!(
            a.report.unwrap().makespan.as_f64(),
            other.report.unwrap().makespan.as_f64()
        );
    }
}
