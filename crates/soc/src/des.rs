//! Discrete-event simulation of a pipelined chunk schedule.
//!
//! This is the virtual-time counterpart of the BT-Implementer runtime: the
//! same chunk/queue/recycled-TaskObject structure (§3.4 of the paper), but
//! executed against the analytic cost model instead of real silicon. Each
//! chunk is a station served by its PU; a fixed pool of task objects
//! circulates through the chunks and back to the head (multi-buffering with
//! recycling).
//!
//! One engine serves both fault-free and faulted runs: [`simulate`] takes
//! an `Option<&FaultSpec>`, and with `None` every fault lookup is skipped
//! behind a single predictable branch — a golden-fixture suite pins the
//! fault-free path bit-identically to the pre-unification clean engine.
//!
//! Fidelity detail that matters for the paper's results: when a chunk starts
//! a *stage*, its service time is computed against the set of PUs busy **at
//! that instant** (their current stage's class and bandwidth demand). Real
//! pipelines therefore experience time-varying interference that no static
//! profiling table captures exactly — which is why the paper needs
//! interference-aware profiling to get *close* (Fig. 6) and autotuning to
//! close the residual gap (Table 4).

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use bt_telemetry::{DispatcherCounters, RunTelemetry, SpanRecorder};

use crate::cost;
use crate::fault::{FaultSpec, StageFaultKind};
use crate::run::{RunConfig, RunReport, RunStats, TimelineSpan};
use crate::{ActiveKernel, Micros, NoiseModel, PuClass, PuSpec, SocError, SocSpec, WorkProfile};

/// One pipeline chunk: a PU class plus the stages it executes in order.
#[derive(Debug, Clone)]
pub struct ChunkSpec {
    /// The PU class serving this chunk.
    pub pu: PuClass,
    /// Work profiles of the chunk's stages, in pipeline order.
    pub stages: Vec<WorkProfile>,
    /// Whether every stage pays the PU's completion-synchronization cost.
    ///
    /// BT-Implementer chunks submit kernels asynchronously and synchronize
    /// once per chunk per task (`false`, the default); accelerator-oriented
    /// baselines synchronize after every stage (`true`). On mobile Vulkan
    /// stacks this difference is a large part of the pipeline speedup.
    pub sync_per_stage: bool,
}

impl ChunkSpec {
    /// Creates a chunk of `stages` on `pu` with once-per-chunk
    /// synchronization (the BT-Implementer dispatch pattern).
    pub fn new(pu: PuClass, stages: Vec<WorkProfile>) -> ChunkSpec {
        ChunkSpec {
            pu,
            stages,
            sync_per_stage: false,
        }
    }

    /// Switches to per-stage synchronization (the baseline offload
    /// pattern).
    pub fn with_per_stage_sync(mut self) -> ChunkSpec {
        self.sync_per_stage = true;
        self
    }
}

/// The pending completion events, one slot per chunk.
///
/// A chunk serves at most one in-flight (task, stage) at a time, so the
/// event set never exceeds the chunk count and a fixed array of next
/// completion times replaces a binary heap: push is a store, pop is an
/// argmin scan over a handful of `f64`s. The ascending scan with a strict
/// `<` keeps the heap's exact (time, lowest chunk index) tie-break, so
/// traces are bit-identical to the heap-based engine it replaced.
#[derive(Debug)]
pub(crate) struct EventSlots {
    /// Completion time per chunk; `INFINITY` marks an idle chunk.
    next_done: Vec<f64>,
}

impl EventSlots {
    pub(crate) fn new(n_chunks: usize) -> EventSlots {
        EventSlots {
            next_done: vec![f64::INFINITY; n_chunks],
        }
    }

    /// Schedules chunk `chunk` to complete its in-flight stage at `time`.
    pub(crate) fn push(&mut self, chunk: usize, time: f64) {
        debug_assert!(self.next_done[chunk].is_infinite(), "one event per chunk");
        self.next_done[chunk] = time;
    }

    /// Removes and returns the earliest `(time, chunk)` event.
    ///
    /// # Panics
    ///
    /// Panics if no event is pending (the pipeline cannot deadlock with
    /// buffered queues, so this is unreachable from `simulate`).
    pub(crate) fn pop(&mut self) -> (f64, usize) {
        let mut best = (f64::INFINITY, usize::MAX);
        for (chunk, &t) in self.next_done.iter().enumerate() {
            if t < best.0 {
                best = (t, chunk);
            }
        }
        assert!(
            best.1 != usize::MAX,
            "pipeline cannot deadlock with buffered queues"
        );
        self.next_done[best.1] = f64::INFINITY;
        best
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct InFlight {
    pub(crate) task: usize,
    pub(crate) stage: usize,
    /// (class, bw demand) advertised to co-runners while this stage runs.
    pub(crate) demand: f64,
}

#[derive(Debug)]
pub(crate) struct ChunkState {
    pub(crate) input: VecDeque<usize>,
    pub(crate) busy: Option<InFlight>,
    pub(crate) busy_since: f64,
    /// Contiguous (start, end) busy intervals, one per completed task.
    /// Always collected: the measurement window is only known at the end,
    /// so in-window utilization needs the raw intervals.
    pub(crate) busy_spans: Vec<(f64, f64)>,
}

/// Multiplicative hasher for the memo cache's packed `u64` keys.
///
/// The key's fields already occupy disjoint bit ranges, so one Fibonacci
/// multiply spreads them adequately; routing 8 bytes through SipHash (the
/// `HashMap` default) costs a significant fraction of the roofline
/// evaluation the cache exists to avoid.
#[derive(Debug, Default, Clone, Copy)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// The noiseless base-latency memo keyed on (chunk, stage, busy set).
type ServiceCache = HashMap<u64, f64, std::hash::BuildHasherDefault<KeyHasher>>;

/// Allocation-lean service-time computation for the event loop.
///
/// Per dispatch the old path allocated a fresh `Vec<ActiveKernel>` of
/// co-runners and re-walked the roofline model. This struct instead keeps a
/// reusable scratch buffer, precomputes the per-(chunk, stage) bandwidth
/// demand and synchronization cost (both independent of the busy set), and
/// memoizes the noiseless base latency per (chunk, stage, busy-set) key.
///
/// Cache keying: each chunk's contribution to the busy set is `0` when idle
/// or `stage + 1` when busy, packed in [`ServiceModel::STAGE_BITS`] bits per
/// chunk; the dispatching chunk's own slot is forced to `0` (a chunk is
/// never its own co-runner) and its (chunk, stage) coordinates occupy the
/// high bits. That key determines the co-runner multiset exactly because a
/// co-runner's advertised bandwidth demand is a pure function of its
/// (chunk, stage). Pipelines too wide or too deep for the packing
/// (> [`ServiceModel::MAX_CACHED_CHUNKS`] chunks, or ≥ 63 stages in one
/// chunk) fall back to the uncached path.
pub(crate) struct ServiceModel<'a> {
    pub(crate) soc: &'a SocSpec,
    pub(crate) chunks: &'a [ChunkSpec],
    pub(crate) pus: Vec<&'a PuSpec>,
    /// `demand[chunk][stage]`: DRAM bandwidth advertised while that stage
    /// runs (busy-set independent).
    pub(crate) demand: Vec<Vec<f64>>,
    /// `sync[chunk][stage]`: completion-synchronization cost added to the
    /// sampled service time.
    pub(crate) sync: Vec<Vec<f64>>,
    /// Reused co-runner buffer (cleared per dispatch, never reallocated
    /// once it reaches `chunks - 1` capacity).
    scratch: Vec<ActiveKernel>,
    /// Noiseless base-latency memo, `None` when disabled or unkeyable.
    cache: Option<ServiceCache>,
}

impl<'a> ServiceModel<'a> {
    /// Bits per chunk in the busy-set key: stage index + 1, or 0 for idle.
    pub(crate) const STAGE_BITS: u32 = 6;
    /// Chunk-count limit for the packed key (6 bits × 8 chunks = 48 bits of
    /// busy set, leaving room for the dispatcher coordinates).
    pub(crate) const MAX_CACHED_CHUNKS: usize = 8;

    pub(crate) fn new(
        soc: &'a SocSpec,
        chunks: &'a [ChunkSpec],
        use_cache: bool,
    ) -> ServiceModel<'a> {
        let pus: Vec<&PuSpec> = chunks
            .iter()
            .map(|c| soc.pu(c.pu).expect("chunk PUs validated by simulate"))
            .collect();
        let demand: Vec<Vec<f64>> = chunks
            .iter()
            .zip(&pus)
            .map(|(c, pu)| c.stages.iter().map(|w| cost::bw_demand(w, pu)).collect())
            .collect();
        let sync: Vec<Vec<f64>> = chunks
            .iter()
            .zip(&pus)
            .map(|(c, pu)| {
                (0..c.stages.len())
                    .map(|s| {
                        if c.sync_per_stage || s + 1 == c.stages.len() {
                            pu.sync_overhead_us()
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        let keyable = chunks.len() <= Self::MAX_CACHED_CHUNKS
            && chunks
                .iter()
                .all(|c| c.stages.len() < (1 << Self::STAGE_BITS) - 1);
        ServiceModel {
            soc,
            chunks,
            pus,
            demand,
            sync,
            scratch: Vec::with_capacity(chunks.len().saturating_sub(1)),
            // Pre-sized past the busy-set combinations short pipelines
            // reach, so steady-state runs never pay a rehash-and-grow.
            cache: (use_cache && keyable).then(|| {
                ServiceCache::with_capacity_and_hasher(
                    256,
                    std::hash::BuildHasherDefault::default(),
                )
            }),
        }
    }

    /// Service time (µs, noise applied) and bandwidth demand (GB/s) for
    /// `chunk_idx` starting `stage_idx` against the instantaneous busy set.
    pub(crate) fn service(
        &mut self,
        chunk_idx: usize,
        stage_idx: usize,
        states: &[ChunkState],
        noise: &mut NoiseModel,
    ) -> (f64, f64) {
        // Key first: a cache hit skips the co-runner scratch build and the
        // roofline walk entirely — the steady state of a converged pipeline
        // cycles through a handful of busy sets, so hits dominate.
        let key = self.cache.as_ref().map(|_| {
            let mut busy_key = 0u64;
            for (i, s) in states.iter().enumerate() {
                if i == chunk_idx {
                    continue;
                }
                if let Some(inflight) = s.busy {
                    busy_key |= (inflight.stage as u64 + 1) << (i as u32 * Self::STAGE_BITS);
                }
            }
            busy_key | (chunk_idx as u64) << 48 | (stage_idx as u64) << (48 + Self::STAGE_BITS)
        });
        let cached = key.and_then(|k| self.cache.as_ref().and_then(|c| c.get(&k).copied()));
        let base = match cached {
            Some(v) => v,
            None => {
                self.scratch.clear();
                for (i, s) in states.iter().enumerate() {
                    if i == chunk_idx {
                        continue;
                    }
                    if let Some(inflight) = s.busy {
                        self.scratch
                            .push(ActiveKernel::new(self.chunks[i].pu, inflight.demand));
                    }
                }
                let work = &self.chunks[chunk_idx].stages[stage_idx];
                let v = cost::latency_under(work, self.pus[chunk_idx], self.soc, &self.scratch)
                    .as_f64();
                if let (Some(cache), Some(k)) = (self.cache.as_mut(), key) {
                    cache.insert(k, v);
                }
                v
            }
        };
        let t = base * noise.factor() + self.sync[chunk_idx][stage_idx];
        (t, self.demand[chunk_idx][stage_idx])
    }

    /// Batch-engine counterpart of [`ServiceModel::service`], returning the
    /// *noiseless* base latency only (the batch engine applies per-lane
    /// noise and sync itself). The busy set arrives as an incrementally
    /// maintained packed key (`STAGE_BITS`-wide `stage + 1` fields in
    /// chunk order; the dispatcher's own field is masked out here, so
    /// callers need not clear it) plus an on-miss co-runner enumerator.
    /// Lanes share this memo: the memoized value is a pure function of
    /// (chunk, stage, busy set), so one lane's miss prices every lane's
    /// hit without coupling their noise streams.
    pub(crate) fn base_keyed(
        &mut self,
        chunk_idx: usize,
        stage_idx: usize,
        busy_fields: u64,
        co_runners: impl FnOnce(&mut Vec<ActiveKernel>),
    ) -> f64 {
        let key = self.cache.as_ref().map(|_| {
            let own = ((1u64 << Self::STAGE_BITS) - 1) << (chunk_idx as u32 * Self::STAGE_BITS);
            (busy_fields & !own)
                | (chunk_idx as u64) << 48
                | (stage_idx as u64) << (48 + Self::STAGE_BITS)
        });
        let cached = key.and_then(|k| self.cache.as_ref().and_then(|c| c.get(&k).copied()));
        match cached {
            Some(v) => v,
            None => {
                self.scratch.clear();
                co_runners(&mut self.scratch);
                let work = &self.chunks[chunk_idx].stages[stage_idx];
                let v = cost::latency_under(work, self.pus[chunk_idx], self.soc, &self.scratch)
                    .as_f64();
                if let (Some(cache), Some(k)) = (self.cache.as_mut(), key) {
                    cache.insert(k, v);
                }
                v
            }
        }
    }
}

/// The mode-parameterized pipeline engine behind [`simulate`].
///
/// `faults: None` is the hot path: every fault lookup sits behind one
/// predictable branch and the run is bit-identical to passing an empty
/// [`FaultSpec`].
struct Engine<'a> {
    chunks: &'a [ChunkSpec],
    faults: Option<&'a FaultSpec>,
    /// Loss instant of each chunk's PU class, if it is lost at all.
    loss: Vec<Option<f64>>,
    states: Vec<ChunkState>,
    /// The chunk's in-flight stage dies at its (loss-clamped) completion.
    doomed: Vec<bool>,
    events: EventSlots,
    model: ServiceModel<'a>,
    noise: NoiseModel,
    started: usize,
    total_tasks: usize,
    completed: usize,
    dropped: usize,
    faults_fired: u32,
    entry_time: Vec<f64>,
    /// `(entry, exit)` per completed task, in completion order (which at
    /// the FIFO tail is also task order).
    completions: Vec<(f64, f64)>,
    timeline: Vec<TimelineSpan>,
    collect_timeline: bool,
    counters: Vec<DispatcherCounters>,
    tele_counters: bool,
    /// A drop recycled an object to the head outside the normal
    /// completion flow since the last head pump.
    recycled: bool,
}

impl Engine<'_> {
    fn lost(&self, c: usize, now: f64) -> bool {
        self.loss[c].is_some_and(|t| now >= t)
    }

    /// Drops the task just popped from a non-head chunk: its object
    /// recycles to the head pool.
    fn drop_and_recycle(&mut self) {
        self.dropped += 1;
        self.states[0].input.push_back(usize::MAX);
        self.recycled = true;
    }

    /// Closes the chunk's busy interval at `now` and frees it.
    fn finish_span(&mut self, c: usize, now: f64) {
        let since = self.states[c].busy_since;
        self.states[c].busy_spans.push((since, now));
        self.states[c].busy = None;
        if self.tele_counters {
            self.counters[c].record_task(Duration::from_secs_f64((now - since) * 1e-6));
        }
    }

    /// The task's fault at `(c, stage)` if a spec is active.
    fn stage_fault(&self, c: usize, task: usize, stage: usize) -> Option<StageFaultKind> {
        self.faults.and_then(|f| f.stage_fault(c, task, stage))
    }

    /// Samples the (possibly perturbed) service time of `(c, stage, task)`
    /// at `now` and schedules its completion, clamped to the chunk's loss
    /// instant.
    fn start_stage(&mut self, c: usize, task: usize, stage: usize, now: f64) {
        let (base, demand) = self.model.service(c, stage, &self.states, &mut self.noise);
        let mut dt = base;
        if let Some(spec) = self.faults {
            // Straggler multiplier, counted as one fault activation at the
            // task's first stage on that chunk.
            let straggle = spec.straggler_factor(c, task);
            if stage == 0 && straggle != 1.0 {
                self.faults_fired += 1;
            }
            dt = base * spec.slowdown_factor(self.chunks[c].pu, now) * straggle;
            if let Some(StageFaultKind::Timeout { extra_us }) = spec.stage_fault(c, task, stage) {
                dt += extra_us;
                self.faults_fired += 1;
            }
        }
        let mut end = now + dt;
        if let Some(t_loss) = self.loss[c] {
            if end > t_loss {
                // The PU dies mid-service; the stage "completes" at the
                // loss instant as a doomed event and the task drops there.
                end = t_loss;
                self.doomed[c] = true;
            }
        }
        self.states[c].busy = Some(InFlight {
            task,
            stage,
            demand,
        });
        if stage == 0 {
            self.states[c].busy_since = now;
        }
        self.events.push(c, end);
        if self.collect_timeline {
            self.timeline.push(TimelineSpan {
                chunk: c,
                stage: Some(stage),
                task: task as u64,
                start_us: now,
                end_us: end,
            });
        }
    }

    /// Starts work on idle chunk `c`: admits new tasks at the head, drains
    /// fault-induced drops (lost PU, stage-0 `Error`) without advancing
    /// virtual time, and dispatches the first unfaulted arrival.
    fn pump(&mut self, c: usize, now: f64) {
        loop {
            if self.states[c].busy.is_some() {
                return;
            }
            let task = if c == 0 {
                if self.started >= self.total_tasks || self.states[0].input.is_empty() {
                    return;
                }
                // A lost head consumes the task stream but keeps its
                // objects: every remaining admission drops immediately.
                if self.lost(0, now) {
                    self.entry_time[self.started] = now;
                    self.started += 1;
                    self.dropped += 1;
                    self.faults_fired += 1;
                    continue;
                }
                self.states[0].input.pop_front();
                let t = self.started;
                self.started += 1;
                self.entry_time[t] = now;
                t
            } else {
                match self.states[c].input.pop_front() {
                    Some(t) => t,
                    None => return,
                }
            };
            if c != 0 && self.lost(c, now) {
                self.faults_fired += 1;
                self.drop_and_recycle();
                continue;
            }
            if matches!(self.stage_fault(c, task, 0), Some(StageFaultKind::Error)) {
                self.faults_fired += 1;
                self.dropped += 1;
                self.states[0].input.push_back(usize::MAX);
                if c != 0 {
                    self.recycled = true;
                }
                continue;
            }
            self.start_stage(c, task, 0, now);
            return;
        }
    }

    /// Objects recycled by drops re-arm the head outside the normal
    /// completion flow; give it a chance to admit with them.
    fn flush_recycled(&mut self, now: f64) {
        while self.recycled {
            self.recycled = false;
            self.pump(0, now);
        }
    }

    fn run(&mut self) {
        self.pump(0, 0.0);
        while self.completed + self.dropped < self.total_tasks {
            let (now, c) = self.events.pop();
            let inflight = self.states[c].busy.expect("event implies busy chunk");

            if self.doomed[c] {
                // The PU died mid-service at `now` (its loss instant).
                self.doomed[c] = false;
                self.finish_span(c, now);
                self.faults_fired += 1;
                self.drop_and_recycle();
                self.pump(c, now); // drains the queued input as drops
                self.flush_recycled(now);
                continue;
            }

            if inflight.stage + 1 < self.chunks[c].stages.len() {
                if matches!(
                    self.stage_fault(c, inflight.task, inflight.stage + 1),
                    Some(StageFaultKind::Error)
                ) {
                    self.faults_fired += 1;
                    self.finish_span(c, now);
                    self.drop_and_recycle();
                    self.pump(c, now);
                    self.flush_recycled(now);
                } else {
                    // Next stage of the same chunk; re-sample interference.
                    self.start_stage(c, inflight.task, inflight.stage + 1, now);
                }
                continue;
            }

            // Chunk finished its last stage for this task.
            self.finish_span(c, now);
            let task = inflight.task;
            if c + 1 == self.chunks.len() {
                self.completions.push((self.entry_time[task], now));
                self.completed += 1;
                self.states[0].input.push_back(usize::MAX);
                if self.tele_counters {
                    self.counters[c].sample_queue_depth(self.states[0].input.len());
                }
                self.pump(0, now);
            } else {
                self.states[c + 1].input.push_back(task);
                if self.tele_counters {
                    self.counters[c].sample_queue_depth(self.states[c + 1].input.len());
                }
                self.pump(c + 1, now);
            }
            self.pump(c, now);
            self.flush_recycled(now);
        }
    }
}

/// Simulates pipelined execution of `chunks` on `soc`, optionally under
/// the perturbations in `faults`.
///
/// Fault semantics — every activation is a pure function of
/// `(chunk, task, stage, class, virtual time)`, so faulted runs are exactly
/// as seed-deterministic as fault-free ones:
///
/// - **Slowdown ramps** multiply a stage's sampled service time by the
///   class factor in effect at dispatch time.
/// - **Stragglers** multiply every stage of one `(chunk, task)` pair.
/// - **Stage `Timeout` faults** add `extra_us` to that one iteration.
/// - **Stage `Error` faults** drop the task; its object recycles to the
///   pipeline head and the chunk moves on.
/// - **PU loss** kills the class at `at_us`: in-flight work on it dies at
///   the loss instant, queued and future arrivals at its chunks drop (their
///   objects recycle), and the rest of the pipeline drains. A lost *head*
///   consumes the remaining task stream as immediate drops.
///
/// The engine maintains `completed + dropped == submitted` and never
/// deadlocks; `faults == None` skips every fault lookup and is
/// bit-identical to an empty spec.
///
/// # Errors
///
/// Returns [`SocError::EmptySimulation`] if `chunks` is empty, any chunk
/// has no stages, or `cfg.tasks == 0`; [`SocError::MissingPu`] if a chunk
/// names a PU class the device lacks.
pub fn simulate(
    soc: &SocSpec,
    chunks: &[ChunkSpec],
    cfg: &RunConfig,
    faults: Option<&FaultSpec>,
) -> Result<RunReport, SocError> {
    if chunks.is_empty() || cfg.tasks == 0 || chunks.iter().any(|c| c.stages.is_empty()) {
        return Err(SocError::EmptySimulation);
    }
    for chunk in chunks {
        soc.try_pu(chunk.pu)?;
    }

    let n_chunks = chunks.len();
    let total_tasks = (cfg.tasks + cfg.warmup) as usize;
    let buffers = if cfg.buffers == 0 {
        n_chunks + 1
    } else {
        cfg.buffers as usize
    };
    let mut states: Vec<ChunkState> = (0..n_chunks)
        .map(|_| ChunkState {
            input: VecDeque::with_capacity(buffers),
            busy: None,
            busy_since: 0.0,
            // One span per task served; sized up front so the event loop
            // never reallocates it.
            busy_spans: Vec::with_capacity(total_tasks),
        })
        .collect();
    // All task objects begin recycled at the head of the pipeline.
    for _ in 0..buffers {
        states[0].input.push_back(usize::MAX); // placeholder: object slot
    }
    let collect_timeline = cfg.record_timeline || cfg.telemetry.spans;
    let tele_counters = cfg.telemetry.counters;

    let mut eng = Engine {
        chunks,
        faults,
        loss: match faults {
            Some(f) => chunks.iter().map(|c| f.loss_at(c.pu)).collect(),
            None => vec![None; n_chunks],
        },
        states,
        doomed: vec![false; n_chunks],
        events: EventSlots::new(n_chunks),
        model: ServiceModel::new(soc, chunks, cfg.service_cache),
        noise: NoiseModel::new(cfg.noise_sigma, cfg.seed),
        started: 0,
        total_tasks,
        completed: 0,
        dropped: 0,
        faults_fired: 0,
        entry_time: vec![0.0f64; total_tasks],
        completions: Vec::with_capacity(total_tasks),
        timeline: if collect_timeline {
            let total_stages: usize = chunks.iter().map(|c| c.stages.len()).sum();
            Vec::with_capacity(total_tasks * total_stages)
        } else {
            Vec::new()
        },
        collect_timeline,
        counters: if tele_counters {
            vec![DispatcherCounters::new(); n_chunks]
        } else {
            Vec::new()
        },
        tele_counters,
        recycled: false,
    };
    eng.run();
    debug_assert_eq!(eng.completed + eng.dropped, eng.started);

    let spans: Vec<&[(f64, f64)]> = eng.states.iter().map(|s| s.busy_spans.as_slice()).collect();
    let stats = steady_stats_from_completions(&eng.completions, cfg.warmup as usize, &spans);
    let telemetry = if cfg.telemetry.any() {
        let mut tele = RunTelemetry::new("des");
        if eng.tele_counters {
            tele.dispatchers = eng
                .counters
                .iter()
                .enumerate()
                .map(|(i, c)| c.stats(format!("chunk{i}")))
                .collect();
        }
        if cfg.telemetry.spans {
            let mut rec = SpanRecorder::virtual_time(true);
            for ev in &eng.timeline {
                rec.record_virtual(
                    ev.chunk as u32,
                    ev.task,
                    ev.stage.map(|s| s as u32),
                    ev.start_us,
                    ev.end_us,
                );
            }
            tele.spans = rec.into_spans();
        }
        Some(tele)
    } else {
        None
    };

    Ok(RunReport {
        submitted: eng.started as u64,
        completed: eng.completed as u64,
        dropped: eng.dropped as u64,
        faults_fired: eng.faults_fired,
        stats,
        timeline: if cfg.record_timeline {
            std::mem::take(&mut eng.timeline)
        } else {
            Vec::new()
        },
        telemetry,
        degraded: None,
    })
}

/// Builds steady-state stats over `completions` — `(entry, exit)` pairs
/// of the tasks that actually completed, in task-sequence order (at the
/// static pipeline's FIFO tail this is also completion order) — using the
/// departure-to-departure convention shared by every engine. The first
/// `warmup` *completions* (whatever their sequence numbers) are excluded as
/// the pipeline-fill transient; dropped tasks contribute nothing. Shared by
/// both simulation engines; returns `None` when nothing completed.
pub(crate) fn steady_stats_from_completions(
    completions: &[(f64, f64)],
    warmup: usize,
    busy_spans: &[&[(f64, f64)]],
) -> Option<RunStats> {
    let n = completions.len();
    if n == 0 {
        return None;
    }
    let (w_start, skip, intervals) = if warmup > 0 && n > warmup {
        (completions[warmup - 1].1, warmup, (n - warmup) as f64)
    } else if n > 1 {
        (completions[0].1, 0, (n - 1) as f64)
    } else {
        (completions[0].0, 0, 1.0)
    };
    let w_end = completions[n - 1].1;
    let makespan = (w_end - w_start).max(1e-9);
    let measured = &completions[skip..];
    let mean_latency = measured.iter().map(|(e, x)| x - e).sum::<f64>() / measured.len() as f64;

    let chunk_utilization: Vec<f64> = busy_spans
        .iter()
        .map(|spans| {
            let in_window: f64 = spans
                .iter()
                .map(|&(t0, t1)| (t1.min(w_end) - t0.max(w_start)).max(0.0))
                .sum();
            in_window / makespan
        })
        .collect();
    let bottleneck_chunk = chunk_utilization
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("utilization is never NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0);

    Some(RunStats {
        makespan: Micros::new(makespan),
        mean_task_latency: Micros::new(mean_latency),
        time_per_task: Micros::new(makespan / intervals.max(1.0)),
        throughput_hz: intervals.max(1.0) / (makespan / 1e6),
        chunk_utilization,
        bottleneck_chunk,
        tasks: (n - skip) as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LoadContext;
    use crate::devices;
    use bt_telemetry::TelemetryConfig;

    fn noiseless() -> RunConfig {
        RunConfig {
            tasks: 30,
            warmup: 5,
            seed: 1,
            noise_sigma: 0.0,
            ..RunConfig::default()
        }
    }

    fn stage(flops: f64) -> WorkProfile {
        WorkProfile::new(flops, flops / 4.0)
    }

    /// Clean-run stats, panicking if the run degraded.
    fn stats(soc: &SocSpec, chunks: &[ChunkSpec], cfg: &RunConfig) -> RunStats {
        simulate(soc, chunks, cfg, None)
            .expect("simulates")
            .expect_stats()
            .clone()
    }

    #[test]
    fn empty_inputs_rejected() {
        let soc = devices::pixel_7a();
        assert!(matches!(
            simulate(&soc, &[], &noiseless(), None),
            Err(SocError::EmptySimulation)
        ));
        let chunks = [ChunkSpec::new(PuClass::BigCpu, vec![])];
        assert!(matches!(
            simulate(&soc, &chunks, &noiseless(), None),
            Err(SocError::EmptySimulation)
        ));
    }

    #[test]
    fn missing_pu_rejected() {
        let soc = devices::jetson_orin_nano();
        let chunks = [ChunkSpec::new(PuClass::LittleCpu, vec![stage(1e6)])];
        assert!(matches!(
            simulate(&soc, &chunks, &noiseless(), None),
            Err(SocError::MissingPu(PuClass::LittleCpu))
        ));
    }

    #[test]
    fn single_chunk_matches_serial_sum() {
        let soc = devices::jetson_orin_nano();
        let stages = vec![stage(1e7), stage(2e7), stage(5e6)];
        let chunks = [ChunkSpec::new(PuClass::BigCpu, stages.clone())];
        let report = stats(&soc, &chunks, &noiseless());
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let serial: f64 = stages
            .iter()
            .map(|w| cost::latency(w, pu, &soc, &LoadContext::isolated()).as_f64())
            .sum();
        let per_task = report.time_per_task.as_f64();
        assert!(
            (per_task - serial).abs() / serial < 0.02,
            "per-task {per_task} vs serial {serial}"
        );
    }

    #[test]
    fn two_balanced_chunks_double_throughput() {
        let soc = devices::jetson_orin_nano();
        // Two equal compute-bound stages; no interference model coupling
        // beyond DVFS, which for Jetson slows CPUs ~1.33x under load.
        let one = [ChunkSpec::new(
            PuClass::BigCpu,
            vec![stage(2e7), stage(2e7)],
        )];
        let two = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(2e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(2e7)]),
        ];
        let serial = stats(&soc, &one, &noiseless());
        let piped = stats(&soc, &two, &noiseless());
        assert!(
            piped.time_per_task < serial.time_per_task,
            "pipelining should raise throughput: {} vs {}",
            piped.time_per_task,
            serial.time_per_task
        );
    }

    #[test]
    fn bottleneck_chunk_has_highest_utilization() {
        let soc = devices::jetson_orin_nano();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(5e7)]), // heavy
            ChunkSpec::new(PuClass::Gpu, vec![stage(1e6)]),    // light
        ];
        let report = stats(&soc, &chunks, &noiseless());
        assert_eq!(report.bottleneck_chunk, 0);
        assert!(report.chunk_utilization[0] > report.chunk_utilization[1]);
    }

    #[test]
    fn throughput_consistent_with_time_per_task() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(1e7)]),
        ];
        let r = stats(&soc, &chunks, &noiseless());
        let expect = 1e6 / r.time_per_task.as_f64();
        assert!((r.throughput_hz - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ];
        let cfg = RunConfig {
            noise_sigma: 0.05,
            seed: 42,
            ..noiseless()
        };
        let a = stats(&soc, &chunks, &cfg);
        let b = stats(&soc, &chunks, &cfg);
        assert_eq!(a.makespan.as_f64(), b.makespan.as_f64());
        let cfg2 = RunConfig { seed: 43, ..cfg };
        let c = stats(&soc, &chunks, &cfg2);
        assert_ne!(a.makespan.as_f64(), c.makespan.as_f64());
    }

    #[test]
    fn mean_task_latency_at_least_time_per_task() {
        // Residence time includes queueing, so it can't be below the
        // steady-state inter-departure time in a balanced pipeline.
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(9e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(1.1e7)]),
        ];
        let r = stats(&soc, &chunks, &noiseless());
        assert!(r.mean_task_latency.as_f64() >= 0.9 * r.time_per_task.as_f64());
    }

    #[test]
    fn zero_warmup_agrees_with_warmed_measurement() {
        // Departure-to-departure windows make the steady-state estimate
        // independent of warmup in a noiseless simulation. Before the
        // window fix, warmup == 0 anchored at the first *entry* and
        // divided by `tasks`, charging the pipeline-fill transient to
        // every task.
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(9e6)]),
        ];
        let warm = stats(&soc, &chunks, &noiseless());
        let cold_cfg = RunConfig {
            warmup: 0,
            ..noiseless()
        };
        let cold = stats(&soc, &chunks, &cold_cfg);
        let (a, b) = (warm.time_per_task.as_f64(), cold.time_per_task.as_f64());
        assert!(
            (a - b).abs() / a < 1e-6,
            "warmup=5 gives {a} µs/task but warmup=0 gives {b}"
        );
    }

    #[test]
    fn utilization_clipped_to_window_stays_bounded() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(3e7)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(1e6)]),
        ];
        for warmup in [0, 1, 5] {
            let cfg = RunConfig {
                warmup,
                ..noiseless()
            };
            let r = stats(&soc, &chunks, &cfg);
            for (i, u) in r.chunk_utilization.iter().enumerate() {
                assert!(
                    (0.0..=1.0).contains(u),
                    "warmup={warmup} chunk{i} utilization {u} out of bounds"
                );
            }
            // The heavy chunk saturates its window.
            assert!(r.chunk_utilization[0] > 0.9);
        }
    }

    #[test]
    fn telemetry_mirrors_run_structure() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ];
        let cfg = RunConfig {
            telemetry: TelemetryConfig::full(),
            ..noiseless()
        };
        let r = simulate(&soc, &chunks, &cfg, None).unwrap();
        let tele = r.telemetry.expect("telemetry enabled");
        assert_eq!(tele.source, "des");
        assert_eq!(tele.dispatchers.len(), 2);
        let total = (cfg.tasks + cfg.warmup) as u64;
        for d in &tele.dispatchers {
            assert_eq!(d.tasks, total);
            assert!(d.queue_samples > 0);
        }
        // Spans cover every stage execution: 2 stages + 1 stage per task.
        assert_eq!(tele.spans.len(), 3 * total as usize);
        // Timeline stays empty unless record_timeline was requested.
        assert!(r.timeline.is_empty());

        let off = simulate(&soc, &chunks, &noiseless(), None).unwrap();
        assert!(off.telemetry.is_none());
    }

    #[test]
    fn service_cache_is_bit_identical_to_uncached() {
        let soc = devices::pixel_7a();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(7e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ];
        let cached = RunConfig {
            noise_sigma: 0.05,
            seed: 9,
            ..noiseless()
        };
        let uncached = RunConfig {
            service_cache: false,
            ..cached.clone()
        };
        let a = stats(&soc, &chunks, &cached);
        let b = stats(&soc, &chunks, &uncached);
        assert_eq!(a.makespan.as_f64(), b.makespan.as_f64());
        assert_eq!(a.mean_task_latency.as_f64(), b.mean_task_latency.as_f64());
        assert_eq!(a.time_per_task.as_f64(), b.time_per_task.as_f64());
        assert_eq!(a.chunk_utilization, b.chunk_utilization);
        assert_eq!(a.bottleneck_chunk, b.bottleneck_chunk);
    }

    #[test]
    fn interference_raises_pipeline_cost_vs_isolated_sum() {
        // On the Pixel, two concurrently busy CPU chunks slow each other
        // down (DVFS 1.3x), so the pipeline's bottleneck exceeds the
        // isolated latency of the heavier chunk.
        let soc = devices::pixel_7a();
        let heavy = stage(2e7);
        let pu = soc.pu(PuClass::BigCpu).unwrap();
        let iso = cost::latency(&heavy, pu, &soc, &LoadContext::isolated()).as_f64();
        let chunks = [
            ChunkSpec::new(PuClass::BigCpu, vec![heavy.clone()]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(1.9e7)]),
        ];
        let r = stats(&soc, &chunks, &noiseless());
        assert!(
            r.time_per_task.as_f64() > iso * 1.1,
            "contended bottleneck {} should exceed isolated {}",
            r.time_per_task.as_f64(),
            iso
        );
    }

    // ------------------------- fault injection --------------------------

    use crate::fault::{PuLoss, SlowdownRamp, StageFault, Straggler};

    fn fault_chunks() -> Vec<ChunkSpec> {
        vec![
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(7e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ]
    }

    #[test]
    fn none_faults_is_bit_identical_to_empty_spec() {
        // The `None` fast path skips every fault lookup; the empty-spec
        // path walks them and multiplies by 1.0. Both must consume the
        // noise stream identically and report identical numbers.
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let cfg = RunConfig {
            noise_sigma: 0.05,
            seed: 9,
            record_timeline: true,
            telemetry: TelemetryConfig::full(),
            ..noiseless()
        };
        let plain = simulate(&soc, &chunks, &cfg, None).unwrap();
        let empty = FaultSpec::none();
        let faulted = simulate(&soc, &chunks, &cfg, Some(&empty)).unwrap();
        assert_eq!(faulted.submitted, u64::from(cfg.tasks + cfg.warmup));
        assert_eq!(faulted.completed, faulted.submitted);
        assert_eq!(faulted.dropped, 0);
        assert_eq!(faulted.faults_fired, 0);
        assert!(!faulted.is_degraded());
        let (r, p) = (faulted.expect_stats(), plain.expect_stats());
        assert_eq!(r.makespan.as_f64(), p.makespan.as_f64());
        assert_eq!(r.mean_task_latency.as_f64(), p.mean_task_latency.as_f64());
        assert_eq!(r.time_per_task.as_f64(), p.time_per_task.as_f64());
        assert_eq!(r.chunk_utilization, p.chunk_utilization);
        assert_eq!(r.bottleneck_chunk, p.bottleneck_chunk);
        assert_eq!(r.tasks, p.tasks);
        assert_eq!(faulted.timeline, plain.timeline);
        let (a, b) = (faulted.telemetry.unwrap(), plain.telemetry.unwrap());
        assert_eq!(a.dispatchers.len(), b.dispatchers.len());
        assert_eq!(a.spans.len(), b.spans.len());
    }

    #[test]
    fn slowdown_ramp_inflates_time_per_task() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let base = stats(&soc, &chunks, &noiseless());
        let spec = FaultSpec {
            slowdowns: vec![SlowdownRamp {
                class: PuClass::BigCpu,
                start_us: 0.0,
                ramp_us: 0.0,
                factor: 3.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate(&soc, &chunks, &noiseless(), Some(&spec)).unwrap();
        let r = r.expect_stats();
        assert!(
            r.time_per_task.as_f64() > base.time_per_task.as_f64() * 1.5,
            "throttled {} vs base {}",
            r.time_per_task,
            base.time_per_task
        );
    }

    #[test]
    fn straggler_fires_once_and_completes_everything() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let spec = FaultSpec {
            stragglers: vec![Straggler {
                chunk: 1,
                task: 7,
                factor: 20.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate(&soc, &chunks, &noiseless(), Some(&spec)).unwrap();
        assert_eq!(r.faults_fired, 1);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.completed, r.submitted);
        let base = stats(&soc, &chunks, &noiseless());
        assert!(r.expect_stats().makespan.as_f64() > base.makespan.as_f64());
    }

    #[test]
    fn stage_error_drops_exactly_that_task() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        // Second stage of the first chunk, mid-stream task.
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 12,
                stage: 1,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let r = simulate(&soc, &chunks, &noiseless(), Some(&spec)).unwrap();
        assert_eq!(r.dropped, 1);
        assert_eq!(r.completed, r.submitted - 1);
        assert!(r.is_degraded());
        assert!(r.stats.is_some());
    }

    #[test]
    fn stage_timeout_adds_its_delay() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let base = stats(&soc, &chunks, &noiseless());
        let extra = 5e4;
        let spec = FaultSpec {
            stage_faults: vec![StageFault {
                chunk: 2,
                task: 15,
                stage: 0,
                kind: StageFaultKind::Timeout { extra_us: extra },
            }],
            ..FaultSpec::default()
        };
        let r = simulate(&soc, &chunks, &noiseless(), Some(&spec)).unwrap();
        assert_eq!(r.dropped, 0);
        assert_eq!(r.faults_fired, 1);
        let faulted = r.expect_stats();
        // The stall lands inside the measured window of the tail chunk, so
        // the makespan grows by at least most of the injected delay.
        assert!(
            faulted.makespan.as_f64() > base.makespan.as_f64() + 0.5 * extra,
            "timeout did not stretch the window: {} vs {}",
            faulted.makespan,
            base.makespan
        );
    }

    #[test]
    fn head_loss_at_time_zero_drops_everything() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let spec = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::BigCpu,
                at_us: 0.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate(&soc, &chunks, &noiseless(), Some(&spec)).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.dropped, r.submitted);
        assert!(r.stats.is_none());
        assert!(r.is_degraded());
    }

    #[test]
    fn midrun_tail_loss_drains_and_degrades() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let cfg = RunConfig {
            record_timeline: true,
            ..noiseless()
        };
        let base = simulate(&soc, &chunks, &cfg, None).unwrap();
        let t_end = base
            .timeline
            .iter()
            .map(|e| e.end_us)
            .fold(0.0f64, f64::max);
        let spec = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::Gpu,
                at_us: t_end / 2.0,
            }],
            ..FaultSpec::default()
        };
        let r = simulate(&soc, &chunks, &noiseless(), Some(&spec)).unwrap();
        assert!(r.completed > 0, "tasks before the loss should complete");
        assert!(r.dropped > 0, "tasks after the loss should drop");
        assert_eq!(r.completed + r.dropped, r.submitted);
        assert!(r.stats.is_some());
    }

    #[test]
    fn faulted_runs_are_seed_deterministic() {
        let soc = devices::pixel_7a();
        let chunks = fault_chunks();
        let cfg = RunConfig {
            noise_sigma: 0.05,
            seed: 77,
            ..noiseless()
        };
        let spec = FaultSpec {
            slowdowns: vec![SlowdownRamp {
                class: PuClass::MediumCpu,
                start_us: 500.0,
                ramp_us: 1000.0,
                factor: 2.0,
            }],
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 9,
                stage: 0,
                kind: StageFaultKind::Error,
            }],
            ..FaultSpec::default()
        };
        let a = simulate(&soc, &chunks, &cfg, Some(&spec)).unwrap();
        let b = simulate(&soc, &chunks, &cfg, Some(&spec)).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let other = simulate(&soc, &chunks, &RunConfig { seed: 78, ..cfg }, Some(&spec)).unwrap();
        assert_ne!(
            a.expect_stats().makespan.as_f64(),
            other.expect_stats().makespan.as_f64()
        );
    }
}
