use serde::{Deserialize, Serialize};

use crate::{GpuBackend, PerClass, PuClass};

/// Black-box resource-demand description of one pipeline stage.
///
/// BetterTogether profiles stages without source-level inspection (§3.2 of
/// the paper); the simulator substrate needs *some* description of what a
/// stage does, so each kernel in `bt-kernels` carries a `WorkProfile` — the
/// moral equivalent of what hardware counters would reveal about it:
///
/// - `flops` — arithmetic operations per task,
/// - `bytes` — DRAM traffic per task (reads + writes beyond cache),
/// - `parallel_fraction` — Amdahl fraction executable in parallel,
/// - `divergence` — 0 (uniform control flow) to 1 (fully divergent),
/// - `irregularity` — 0 (streaming access) to 1 (pointer chasing),
/// - `launches` — number of kernel launches / parallel regions per task.
///
/// Per-class efficiency overrides allow calibrating a stage against measured
/// device behaviour when the analytic traits are insufficient (documented in
/// DESIGN.md; used sparingly by the workload definitions).
///
/// ```
/// use bt_soc::WorkProfile;
/// let sort = WorkProfile::new(40.0e6, 21.0e6)
///     .with_divergence(0.55)
///     .with_irregularity(0.5)
///     .with_launches(8);
/// assert_eq!(sort.launches(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkProfile {
    flops: f64,
    bytes: f64,
    parallel_fraction: f64,
    divergence: f64,
    irregularity: f64,
    launches: u32,
    eff_override: PerClass<f64>,
    backend_eff: [Option<f64>; 2],
}

impl WorkProfile {
    /// Creates a profile for a stage performing `flops` arithmetic
    /// operations and moving `bytes` bytes of DRAM traffic per task.
    ///
    /// Defaults: fully parallel, uniform control flow, streaming
    /// access, one kernel launch.
    ///
    /// # Panics
    ///
    /// Panics if `flops` or `bytes` is negative, or both are zero.
    pub fn new(flops: f64, bytes: f64) -> WorkProfile {
        assert!(flops >= 0.0 && bytes >= 0.0, "work must be non-negative");
        assert!(flops > 0.0 || bytes > 0.0, "a stage must do some work");
        WorkProfile {
            flops,
            bytes,
            parallel_fraction: 1.0,
            divergence: 0.0,
            irregularity: 0.0,
            launches: 1,
            eff_override: PerClass::empty(),
            backend_eff: [None, None],
        }
    }

    /// Sets the Amdahl parallel fraction in `[0, 1]`.
    pub fn with_parallel_fraction(mut self, f: f64) -> WorkProfile {
        assert!((0.0..=1.0).contains(&f));
        self.parallel_fraction = f;
        self
    }

    /// Sets the control-flow divergence in `[0, 1]`.
    pub fn with_divergence(mut self, d: f64) -> WorkProfile {
        assert!((0.0..=1.0).contains(&d));
        self.divergence = d;
        self
    }

    /// Sets the memory-access irregularity in `[0, 1]`.
    pub fn with_irregularity(mut self, irr: f64) -> WorkProfile {
        assert!((0.0..=1.0).contains(&irr));
        self.irregularity = irr;
        self
    }

    /// Sets the number of kernel launches (or parallel regions) per task.
    /// Multi-pass algorithms such as radix sort pay the dispatch overhead
    /// once per pass.
    pub fn with_launches(mut self, n: u32) -> WorkProfile {
        assert!(n >= 1);
        self.launches = n;
        self
    }

    /// Overrides the achieved-efficiency multiplier for one PU class.
    ///
    /// The analytic model multiplies its throughput estimate for `class` by
    /// `eff` (default 1.0). Values below 1.0 model stages that map worse to
    /// the class than the generic traits predict; above 1.0, better. Used
    /// for calibration against published per-device numbers.
    pub fn with_efficiency(mut self, class: PuClass, eff: f64) -> WorkProfile {
        assert!(eff > 0.0);
        self.eff_override.set(class, eff);
        self
    }

    /// Returns a copy with `flops` and `bytes` scaled by `factor`,
    /// everything else (parallelism, divergence, launch count, efficiency
    /// calibration) unchanged — the model of the same stage run at a
    /// different input scale. Fixed per-launch overheads in the latency
    /// model don't scale, so per-class latency shifts non-uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is non-positive or non-finite.
    pub fn scaled(&self, factor: f64) -> WorkProfile {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive and finite"
        );
        let mut scaled = self.clone();
        scaled.flops *= factor;
        scaled.bytes *= factor;
        scaled
    }

    /// Arithmetic operations per task.
    pub fn flops(&self) -> f64 {
        self.flops
    }

    /// DRAM traffic per task in bytes.
    pub fn bytes(&self) -> f64 {
        self.bytes
    }

    /// Amdahl parallel fraction.
    pub fn parallel_fraction(&self) -> f64 {
        self.parallel_fraction
    }

    /// Control-flow divergence in `[0, 1]`.
    pub fn divergence(&self) -> f64 {
        self.divergence
    }

    /// Memory irregularity in `[0, 1]`.
    pub fn irregularity(&self) -> f64 {
        self.irregularity
    }

    /// Kernel launches per task.
    pub fn launches(&self) -> u32 {
        self.launches
    }

    /// Per-class efficiency multiplier (1.0 when not overridden).
    pub fn efficiency(&self, class: PuClass) -> f64 {
        self.eff_override.get(class).copied().unwrap_or(1.0)
    }

    /// Declares the quality of this stage's kernel under a GPU backend.
    ///
    /// Kernels are implemented separately per backend (CUDA vs. Vulkan
    /// compute, §3.1 of the paper) and can differ drastically in quality —
    /// e.g. a CUDA radix sort built on warp-synchronous primitives versus a
    /// portable Vulkan multi-pass shader. The multiplier scales achieved
    /// throughput on GPUs driven through `backend`.
    pub fn with_backend_efficiency(mut self, backend: GpuBackend, eff: f64) -> WorkProfile {
        assert!(eff > 0.0);
        self.backend_eff[backend.index()] = Some(eff);
        self
    }

    /// The backend efficiency multiplier (1.0 when not declared).
    pub fn backend_efficiency(&self, backend: GpuBackend) -> f64 {
        self.backend_eff[backend.index()].unwrap_or(1.0)
    }

    /// Arithmetic intensity in FLOP/byte (`f64::INFINITY` for pure compute).
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Returns a profile for the combined execution of `self` followed by
    /// `other` (used when several stages form a chunk and their aggregate
    /// demand matters, e.g. for bandwidth accounting).
    pub fn merged(&self, other: &WorkProfile) -> WorkProfile {
        let total_flops = self.flops + other.flops;
        let weight = |a: f64, b: f64| {
            if total_flops > 0.0 {
                (a * self.flops + b * other.flops) / total_flops
            } else {
                (a + b) / 2.0
            }
        };
        WorkProfile {
            flops: total_flops,
            bytes: self.bytes + other.bytes,
            parallel_fraction: weight(self.parallel_fraction, other.parallel_fraction),
            divergence: weight(self.divergence, other.divergence),
            irregularity: weight(self.irregularity, other.irregularity),
            launches: self.launches + other.launches,
            eff_override: PerClass::empty(),
            backend_eff: [None, None],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let w = WorkProfile::new(1e6, 1e5);
        assert_eq!(w.launches(), 1);
        assert_eq!(w.divergence(), 0.0);
        assert!(w.parallel_fraction() > 0.9);
        assert_eq!(w.efficiency(PuClass::Gpu), 1.0);
    }

    #[test]
    fn arithmetic_intensity() {
        let w = WorkProfile::new(2e6, 1e6);
        assert!((w.arithmetic_intensity() - 2.0).abs() < 1e-12);
        let pure = WorkProfile::new(1e6, 0.0);
        assert!(pure.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn efficiency_override() {
        let w = WorkProfile::new(1e6, 1e5).with_efficiency(PuClass::Gpu, 0.25);
        assert_eq!(w.efficiency(PuClass::Gpu), 0.25);
        assert_eq!(w.efficiency(PuClass::BigCpu), 1.0);
    }

    #[test]
    fn merged_sums_work_and_weights_traits() {
        let a = WorkProfile::new(3e6, 1e6).with_divergence(0.0);
        let b = WorkProfile::new(1e6, 1e6).with_divergence(0.8);
        let m = a.merged(&b);
        assert!((m.flops() - 4e6).abs() < 1.0);
        assert!((m.bytes() - 2e6).abs() < 1.0);
        // flop-weighted: 0.8 * 1/4 = 0.2
        assert!((m.divergence() - 0.2).abs() < 1e-9);
        assert_eq!(m.launches(), 2);
    }

    #[test]
    #[should_panic(expected = "some work")]
    fn zero_work_panics() {
        let _ = WorkProfile::new(0.0, 0.0);
    }
}
