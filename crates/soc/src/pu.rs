use std::fmt;

use serde::{Deserialize, Serialize};

use crate::SocError;

pub use bt_rt::PuClass;

/// The GPGPU programming backend an integrated GPU is driven through.
///
/// Kernel implementations differ per backend (the paper implements CUDA
/// kernels for Jetson and GLSL/Vulkan compute shaders for the Arm and
/// Qualcomm GPUs), and so does achievable efficiency: e.g. the CUDA radix
/// sort uses warp-synchronous primitives unavailable in portable Vulkan
/// shaders. [`crate::WorkProfile::with_backend_efficiency`] captures this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuBackend {
    /// NVIDIA CUDA (Jetson-class devices).
    Cuda,
    /// Vulkan compute / SPIR-V (mobile GPUs).
    Vulkan,
}

impl GpuBackend {
    /// Stable index in `0..2`.
    pub const fn index(self) -> usize {
        match self {
            GpuBackend::Cuda => 0,
            GpuBackend::Vulkan => 1,
        }
    }
}

/// Identifier of a processing unit within one [`crate::SocSpec`].
///
/// A `PuId` pairs a class with the index of the cluster of that class on the
/// device (always 0 on the devices modeled here, but the type leaves room for
/// SoCs with multiple clusters of the same class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PuId {
    class: PuClass,
    cluster: u8,
}

impl PuId {
    /// Identifier of the (single) cluster of `class` on the device.
    pub const fn new(class: PuClass) -> PuId {
        PuId { class, cluster: 0 }
    }

    /// The PU class this identifier refers to.
    pub const fn class(self) -> PuClass {
        self.class
    }
}

impl From<PuClass> for PuId {
    fn from(class: PuClass) -> PuId {
        PuId::new(class)
    }
}

impl fmt::Display for PuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.class, self.cluster)
    }
}

/// Architectural specification of one PU cluster.
///
/// The fields feed the roofline cost model in [`crate::cost`]: peak
/// arithmetic throughput is derived from `cores × freq_ghz × ipc ×
/// simd_lanes × arith_eff`, memory behaviour from `mem_bw_gbs`, and
/// fixed costs from `dispatch_overhead_us`.
///
/// Construct with [`PuSpec::new`] and refine with the builder-style `with_*`
/// methods:
///
/// ```
/// use bt_soc::{PuClass, PuSpec};
/// let big = PuSpec::new(PuClass::BigCpu, "Cortex-X1", 2, 2.85)
///     .with_ipc(4.0)
///     .with_simd_lanes(4)
///     .with_mem_bw_gbs(18.0);
/// assert!(big.peak_gflops() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PuSpec {
    class: PuClass,
    name: String,
    cores: u32,
    freq_ghz: f64,
    ipc: f64,
    simd_lanes: u32,
    arith_eff: f64,
    divergence_penalty: f64,
    irregular_penalty: f64,
    mem_bw_gbs: f64,
    dispatch_overhead_us: f64,
    sync_overhead_us: f64,
    l2_kib: u32,
    pinnable_cores: u32,
    gpu_backend: Option<GpuBackend>,
}

impl PuSpec {
    /// Creates a specification for a cluster of `cores` cores of the given
    /// `class`, running at `freq_ghz` GHz. Remaining parameters take
    /// class-appropriate defaults; override them with the `with_*` methods.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `freq_ghz <= 0.0`.
    pub fn new(class: PuClass, name: impl Into<String>, cores: u32, freq_ghz: f64) -> PuSpec {
        assert!(cores > 0, "a PU cluster needs at least one core");
        assert!(freq_ghz > 0.0, "clock frequency must be positive");
        let (ipc, simd, arith_eff, div_pen, irr_pen, bw, overhead, sync, l2) = match class {
            PuClass::BigCpu => (3.0, 4, 0.35, 0.15, 0.45, 16.0, 12.0, 4.0, 512),
            PuClass::MediumCpu => (2.2, 4, 0.35, 0.18, 0.50, 12.0, 12.0, 4.0, 256),
            PuClass::LittleCpu => (1.1, 2, 0.30, 0.25, 0.60, 6.0, 15.0, 4.0, 128),
            PuClass::Gpu => (2.0, 16, 0.45, 0.85, 0.80, 22.0, 45.0, 60.0, 1024),
        };
        PuSpec {
            class,
            name: name.into(),
            cores,
            freq_ghz,
            ipc,
            simd_lanes: simd,
            arith_eff,
            divergence_penalty: div_pen,
            irregular_penalty: irr_pen,
            mem_bw_gbs: bw,
            dispatch_overhead_us: overhead,
            sync_overhead_us: sync,
            l2_kib: l2,
            pinnable_cores: if class.is_cpu() { cores } else { 0 },
            gpu_backend: None,
        }
    }

    /// Declares the GPGPU backend this GPU is programmed through.
    ///
    /// # Panics
    ///
    /// Panics if called on a CPU cluster.
    pub fn with_backend(mut self, backend: GpuBackend) -> PuSpec {
        assert!(!self.class.is_cpu(), "backends apply to GPUs only");
        self.gpu_backend = Some(backend);
        self
    }

    /// Sets sustained instructions per cycle per core.
    pub fn with_ipc(mut self, ipc: f64) -> PuSpec {
        assert!(ipc > 0.0);
        self.ipc = ipc;
        self
    }

    /// Sets the number of f32 SIMD/SIMT lanes per core (NEON width for CPUs,
    /// ALUs per shader core for GPUs).
    pub fn with_simd_lanes(mut self, lanes: u32) -> PuSpec {
        assert!(lanes > 0);
        self.simd_lanes = lanes;
        self
    }

    /// Sets the fraction of peak arithmetic throughput achievable by tuned
    /// kernels (captures instruction mix, pipeline stalls, compiler quality).
    pub fn with_arith_eff(mut self, eff: f64) -> PuSpec {
        assert!(eff > 0.0 && eff <= 1.0);
        self.arith_eff = eff;
        self
    }

    /// Sets the throughput fraction *lost* under fully divergent control
    /// flow (0 = immune, 1 = throughput collapses to a single lane).
    ///
    /// Mobile GPUs that execute warps in strict lockstep have values near
    /// 0.85–0.95; desktop-class GPUs with independent thread scheduling are
    /// lower; CPUs with branch prediction are near 0.1–0.25.
    pub fn with_divergence_penalty(mut self, p: f64) -> PuSpec {
        assert!((0.0..=1.0).contains(&p));
        self.divergence_penalty = p;
        self
    }

    /// Sets the bandwidth fraction lost under fully irregular (pointer
    /// chasing / non-coalesced) memory access.
    pub fn with_irregular_penalty(mut self, p: f64) -> PuSpec {
        assert!((0.0..=1.0).contains(&p));
        self.irregular_penalty = p;
        self
    }

    /// Sets the DRAM bandwidth (GB/s) achievable by this cluster alone.
    pub fn with_mem_bw_gbs(mut self, bw: f64) -> PuSpec {
        assert!(bw > 0.0);
        self.mem_bw_gbs = bw;
        self
    }

    /// Sets the fixed per-kernel dispatch overhead in microseconds (OpenMP
    /// fork for CPUs, asynchronous kernel submission for GPUs).
    pub fn with_dispatch_overhead_us(mut self, us: f64) -> PuSpec {
        assert!(us >= 0.0);
        self.dispatch_overhead_us = us;
        self
    }

    /// Sets the completion-synchronization cost in microseconds: a Vulkan
    /// fence wait / `cudaStreamSynchronize` on GPUs, the implicit OpenMP
    /// join on CPUs.
    ///
    /// This cost is what BT-Implementer amortizes (§3.4): kernels within a
    /// chunk are submitted asynchronously and synchronized *once per chunk
    /// per task*, while an accelerator-oriented baseline synchronizes after
    /// every stage. On mobile Vulkan stacks the fence round-trip is large,
    /// which is a major source of the paper's pipeline speedups on phones.
    pub fn with_sync_overhead_us(mut self, us: f64) -> PuSpec {
        assert!(us >= 0.0);
        self.sync_overhead_us = us;
        self
    }

    /// Sets the L2 cache size in KiB.
    pub fn with_l2_kib(mut self, kib: u32) -> PuSpec {
        self.l2_kib = kib;
        self
    }

    /// Sets how many cores of this cluster the OS allows to be pinned via
    /// `sched_setaffinity` (the OnePlus 11 exposes only 5 of its 8 cores,
    /// see §5.1 of the paper). A cluster with zero pinnable cores can be
    /// profiled but is excluded from pipeline schedules.
    pub fn with_pinnable_cores(mut self, n: u32) -> PuSpec {
        assert!(n <= self.cores);
        self.pinnable_cores = n;
        self
    }

    /// The PU class of this cluster.
    pub fn class(&self) -> PuClass {
        self.class
    }

    /// Marketing/architecture name, e.g. `"Cortex-X1"` or `"Mali-G710 MP7"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores (CPU) or shader cores/SMs (GPU) in the cluster.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Clock frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Sustained instructions per cycle per core.
    pub fn ipc(&self) -> f64 {
        self.ipc
    }

    /// f32 lanes per core.
    pub fn simd_lanes(&self) -> u32 {
        self.simd_lanes
    }

    /// Achievable fraction of peak arithmetic throughput.
    pub fn arith_eff(&self) -> f64 {
        self.arith_eff
    }

    /// Throughput fraction lost under fully divergent control flow.
    pub fn divergence_penalty(&self) -> f64 {
        self.divergence_penalty
    }

    /// Bandwidth fraction lost under fully irregular access.
    pub fn irregular_penalty(&self) -> f64 {
        self.irregular_penalty
    }

    /// DRAM bandwidth (GB/s) achievable by this cluster alone.
    pub fn mem_bw_gbs(&self) -> f64 {
        self.mem_bw_gbs
    }

    /// Fixed per-kernel dispatch overhead in microseconds.
    pub fn dispatch_overhead_us(&self) -> f64 {
        self.dispatch_overhead_us
    }

    /// Completion-synchronization cost in microseconds (see
    /// [`PuSpec::with_sync_overhead_us`]).
    pub fn sync_overhead_us(&self) -> f64 {
        self.sync_overhead_us
    }

    /// L2 cache size in KiB.
    pub fn l2_kib(&self) -> u32 {
        self.l2_kib
    }

    /// Cores the OS allows user threads to be pinned to.
    pub fn pinnable_cores(&self) -> u32 {
        self.pinnable_cores
    }

    /// The GPGPU backend, if this is a GPU with one declared.
    pub fn gpu_backend(&self) -> Option<GpuBackend> {
        self.gpu_backend
    }

    /// Whether this cluster can host a pipeline chunk (requires at least one
    /// pinnable core for CPUs; GPUs are always schedulable).
    pub fn schedulable(&self) -> bool {
        !self.class.is_cpu() || self.pinnable_cores > 0
    }

    /// Peak single-precision throughput in GFLOP/s, before efficiency
    /// derating: `cores × freq × ipc × simd_lanes`.
    pub fn peak_gflops(&self) -> f64 {
        self.cores as f64 * self.freq_ghz * self.ipc * self.simd_lanes as f64
    }

    /// Sustained throughput in GFLOP/s for well-behaved kernels:
    /// `peak × arith_eff`.
    pub fn sustained_gflops(&self) -> f64 {
        self.peak_gflops() * self.arith_eff
    }

    /// Validates that all numeric parameters are physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`SocError::InvalidSpec`] naming the first non-positive
    /// parameter.
    pub fn validate(&self) -> Result<(), SocError> {
        let checks: [(&'static str, f64); 4] = [
            ("freq_ghz", self.freq_ghz),
            ("ipc", self.ipc),
            ("arith_eff", self.arith_eff),
            ("mem_bw_gbs", self.mem_bw_gbs),
        ];
        for (param, value) in checks {
            if value <= 0.0 {
                return Err(SocError::InvalidSpec { param, value });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pu_id_from_class() {
        let id: PuId = PuClass::MediumCpu.into();
        assert_eq!(id.class(), PuClass::MediumCpu);
        assert_eq!(id.to_string(), "med#0");
    }

    #[test]
    fn spec_defaults_and_builders() {
        let spec = PuSpec::new(PuClass::BigCpu, "X1", 2, 2.85)
            .with_ipc(4.0)
            .with_simd_lanes(4)
            .with_arith_eff(0.4);
        assert_eq!(spec.cores(), 2);
        assert!((spec.peak_gflops() - 2.0 * 2.85 * 4.0 * 4.0).abs() < 1e-9);
        assert!(spec.sustained_gflops() < spec.peak_gflops());
        assert!(spec.schedulable());
        spec.validate().unwrap();
    }

    #[test]
    fn gpu_not_pinnable_but_schedulable() {
        let gpu = PuSpec::new(PuClass::Gpu, "Mali", 7, 0.85);
        assert_eq!(gpu.pinnable_cores(), 0);
        assert!(gpu.schedulable());
    }

    #[test]
    fn cpu_without_pinnable_cores_is_not_schedulable() {
        let little = PuSpec::new(PuClass::LittleCpu, "A510", 3, 2.0).with_pinnable_cores(0);
        assert!(!little.schedulable());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = PuSpec::new(PuClass::BigCpu, "bad", 0, 1.0);
    }

    #[test]
    fn validate_rejects_nonpositive() {
        let mut spec = PuSpec::new(PuClass::BigCpu, "X1", 2, 2.85);
        spec.freq_ghz = -1.0;
        assert!(matches!(
            spec.validate(),
            Err(SocError::InvalidSpec {
                param: "freq_ghz",
                ..
            })
        ));
    }
}
