//! Batched structure-of-arrays execution of the chain DES.
//!
//! Every sweep the framework runs — fault matrices, seed sweeps,
//! autotuning fan-out — simulates the *same* schedule many times with only
//! the seed (and possibly the fault plan) varying. [`simulate_batch`] runs
//! B such lanes in one pass over structure-of-arrays state: per-chunk
//! next-completion times become B-wide columns, the per-chunk busy records
//! become flat `[chunk][lane]` arrays, the RNG state is one array of B
//! per-lane noise streams (block-prefilled so sampling stays in a tight
//! loop), and the noiseless service memo is shared across the whole batch
//! (one lane's miss prices every lane's hit; per-lane noise is applied
//! after the lookup).
//!
//! Lanes are completely independent — no state is shared except the memo,
//! whose entries are a pure function of (chunk, stage, busy set) — so each
//! lane replays the scalar engine's event sequence exactly and the report
//! for lane *i* is **bit-identical** to `simulate` with that lane's seed
//! and fault spec. `tests/batch_determinism.rs` and the golden-replay suite
//! pin this oracle.
//!
//! Beyond sharing the memo, the batch engine removes per-event costs the
//! scalar engine pays:
//!
//! - the busy-set memo is a direct-mapped dense table indexed by an
//!   incrementally maintained mixed-radix busy index (no hashing, no key
//!   rebuild from the busy set) whenever the schedule's
//!   `Π (stages_i + 1)` radix product fits;
//! - noise factors are prefilled per lane in blocks, so the lognormal
//!   sampler runs in a tight loop instead of being interleaved with event
//!   bookkeeping;
//! - the next-event argmin is computed for *all* lanes in one chunk-major
//!   vectorizable pass per wavefront sweep;
//! - input queues are flat power-of-two rings (mask, not modulo).
//!
//! The event loop advances lanes in a round-robin wavefront: one event per
//! active lane per sweep, so per-event work touches contiguous lanes of
//! each column instead of re-entering the scalar engine B times.

use std::time::Duration;

use bt_telemetry::{DispatcherCounters, RunTelemetry, SpanRecorder};

use crate::cost;
use crate::des::{steady_stats_from_completions, ChunkSpec, ServiceModel};
use crate::fault::{FaultSpec, StageFaultKind};
use crate::run::{RunConfig, RunReport, TimelineSpan};
use crate::{ActiveKernel, NoiseModel, SocError, SocSpec};

/// One lane of a batched run: the seed of its noise stream plus an
/// optional fault plan. `None` faults is bit-identical to an empty spec
/// (the scalar engine's contract, inherited here).
#[derive(Debug, Clone, Default)]
pub struct DesSeedSpec {
    /// Seed for this lane's measurement-noise stream (overrides
    /// [`RunConfig::seed`], which batched runs ignore).
    pub seed: u64,
    /// Fault plan injected into this lane, if any.
    pub faults: Option<FaultSpec>,
}

impl DesSeedSpec {
    /// A clean (fault-free) lane with the given seed.
    pub fn new(seed: u64) -> DesSeedSpec {
        DesSeedSpec { seed, faults: None }
    }

    /// A faulted lane: `seed` for noise, `faults` injected.
    pub fn with_faults(seed: u64, faults: FaultSpec) -> DesSeedSpec {
        DesSeedSpec {
            seed,
            faults: Some(faults),
        }
    }
}

/// `busy_stage` sentinel for an idle (chunk, lane) slot.
const IDLE: u32 = u32::MAX;
/// Queue token for a recycled task object waiting at the head.
const PLACEHOLDER: u32 = u32::MAX;
/// Per-lane noise prefill block (doubles per refill up to this cap; the
/// whole batch's buffers stay a few tens of KB).
const NOISE_BLK: usize = 256;

/// Direct-mapped dense replacement for the scalar engine's hashed service
/// memo: one `f64` row of `radix_product` entries per (chunk, stage),
/// indexed by the mixed-radix encoding of the co-runner busy set
/// (`Σ field_i · weight_i` over chunks `i ≠ dispatcher`, where a field is
/// `stage + 1` or 0 when idle). `INFINITY` marks an unpriced entry; the
/// stored value is the same noiseless base latency the scalar memo holds,
/// so the table is value-neutral.
struct DenseMemo {
    table: Vec<f64>,
    /// Entries per (chunk, stage) row.
    p: usize,
}

impl DenseMemo {
    /// Entry cap: the radix product of realistic schedules is tiny (tens);
    /// anything past this falls back to the hashed memo.
    const MAX_ENTRIES: usize = 1 << 18;

    /// Mixed-radix weights (`Π_{j<i} (stages_j + 1)`), or `None` when the
    /// key space is too large to tabulate densely.
    fn weights(chunks: &[ChunkSpec], max_stages: usize) -> Option<(Vec<u64>, usize)> {
        let mut w = Vec::with_capacity(chunks.len());
        let mut p = 1usize;
        for c in chunks {
            w.push(p as u64);
            p = p.checked_mul(c.stages.len() + 1)?;
            if p > (1 << 16) {
                return None;
            }
        }
        (chunks.len() * max_stages * p <= Self::MAX_ENTRIES).then_some((w, p))
    }
}

/// The structure-of-arrays batch engine. All per-(chunk, lane) state lives
/// in flat arrays indexed `chunk * lanes + lane`, so a column (one chunk
/// across the batch) is contiguous.
struct BatchEngine<'a> {
    chunks: &'a [ChunkSpec],
    specs: &'a [DesSeedSpec],
    n_chunks: usize,
    lanes: usize,
    total_tasks: usize,
    max_stages: usize,
    /// Ring capacity per (chunk, lane): buffers rounded up to a power of
    /// two so wraparound is a mask.
    cap: usize,
    model: ServiceModel<'a>,
    dense: Option<DenseMemo>,
    /// Mixed-radix busy-field weights (all-zero when `dense` is `None`,
    /// making the accumulator updates no-ops).
    weights: Vec<u64>,
    /// Busy-set-independent (base-demand, sync) per `[chunk][stage]`,
    /// flattened to `chunk * max_stages + stage`.
    demand_flat: Vec<f64>,
    sync_flat: Vec<f64>,
    /// Co-runner scratch for dense-memo misses.
    scratch: Vec<ActiveKernel>,

    // ---- [chunk][lane] columns ----
    /// Next completion time; `INFINITY` marks an idle slot. This is the
    /// scalar engine's `EventSlots` widened to B lanes per chunk.
    next_done: Vec<f64>,
    /// In-flight stage index, or [`IDLE`].
    busy_stage: Vec<u32>,
    /// In-flight task sequence number (valid while busy).
    busy_task: Vec<u32>,
    /// Bandwidth demand advertised while the in-flight stage runs.
    busy_demand: Vec<f64>,
    busy_since: Vec<f64>,
    doomed: Vec<bool>,
    /// Loss instant of the chunk's PU class in that lane's fault plan.
    loss: Vec<Option<f64>>,
    busy_spans: Vec<Vec<(f64, f64)>>,
    /// Flat ring buffers, `cap` slots per (chunk, lane).
    q: Vec<u32>,
    q_head: Vec<u32>,
    q_len: Vec<u32>,
    counters: Vec<DispatcherCounters>,

    // ---- per-lane arrays ----
    /// Incrementally maintained mixed-radix busy index (dense memo).
    acc: Vec<u64>,
    /// Incrementally maintained packed busy key (hashed-memo fallback).
    busy_key: Vec<u64>,
    noise: Vec<NoiseModel>,
    noise_buf: Vec<f64>,
    noise_pos: Vec<u32>,
    started: Vec<u32>,
    completed: Vec<u32>,
    dropped: Vec<u32>,
    faults_fired: Vec<u32>,
    recycled: Vec<bool>,
    /// `entry_time[lane * total_tasks + task]`.
    entry_time: Vec<f64>,
    completions: Vec<Vec<(f64, f64)>>,
    timeline: Vec<Vec<TimelineSpan>>,

    collect_timeline: bool,
    tele_counters: bool,
}

impl BatchEngine<'_> {
    #[inline]
    fn slot(&self, c: usize, l: usize) -> usize {
        c * self.lanes + l
    }

    #[inline]
    fn q_pop(&mut self, c: usize, l: usize) -> Option<u32> {
        let s = self.slot(c, l);
        if self.q_len[s] == 0 {
            return None;
        }
        let base = s * self.cap;
        let v = self.q[base + self.q_head[s] as usize];
        self.q_head[s] = (self.q_head[s] + 1) & (self.cap as u32 - 1);
        self.q_len[s] -= 1;
        Some(v)
    }

    #[inline]
    fn q_push(&mut self, c: usize, l: usize, v: u32) {
        let s = self.slot(c, l);
        debug_assert!(
            (self.q_len[s] as usize) < self.cap,
            "object pool bounds every queue"
        );
        let idx = (self.q_head[s] + self.q_len[s]) & (self.cap as u32 - 1);
        self.q[s * self.cap + idx as usize] = v;
        self.q_len[s] += 1;
    }

    /// Next factor of lane `l`'s noise stream, from the prefill buffer —
    /// value-identical to calling [`NoiseModel::factor`] directly.
    #[inline]
    fn noise_next(&mut self, l: usize) -> f64 {
        let pos = self.noise_pos[l] as usize;
        if pos == NOISE_BLK {
            let start = l * NOISE_BLK;
            self.noise[l].fill_factors(&mut self.noise_buf[start..start + NOISE_BLK]);
            self.noise_pos[l] = 1;
            return self.noise_buf[start];
        }
        self.noise_pos[l] = pos as u32 + 1;
        self.noise_buf[l * NOISE_BLK + pos]
    }

    fn lost(&self, c: usize, l: usize, now: f64) -> bool {
        self.loss[self.slot(c, l)].is_some_and(|t| now >= t)
    }

    /// Drops the task just popped from a non-head chunk: its object
    /// recycles to the head pool.
    fn drop_and_recycle(&mut self, l: usize) {
        self.dropped[l] += 1;
        self.q_push(0, l, PLACEHOLDER);
        self.recycled[l] = true;
    }

    /// Closes the slot's busy interval at `now` and frees it.
    fn finish_span(&mut self, c: usize, l: usize, now: f64) {
        let s = self.slot(c, l);
        let since = self.busy_since[s];
        self.busy_spans[s].push((since, now));
        let field = u64::from(self.busy_stage[s]) + 1;
        self.busy_stage[s] = IDLE;
        self.acc[l] -= field * self.weights[c];
        let mask = (1u64 << ServiceModel::STAGE_BITS) - 1;
        self.busy_key[l] &= !(mask << (c as u32 * ServiceModel::STAGE_BITS));
        if self.tele_counters {
            self.counters[s].record_task(Duration::from_secs_f64((now - since) * 1e-6));
        }
    }

    /// Samples the (possibly perturbed) service time of `(c, stage, task)`
    /// at `now` in lane `l` and schedules its completion, clamped to the
    /// chunk's loss instant — the lane-indexed mirror of the scalar
    /// engine's `start_stage`.
    fn start_stage(&mut self, l: usize, c: usize, task: usize, stage: usize, now: f64) {
        let lanes = self.lanes;
        let s = c * lanes + l;
        let old = self.busy_stage[s];
        let old_field = if old == IDLE { 0 } else { u64::from(old) + 1 };
        let nf = self.noise_next(l);
        let row = c * self.max_stages + stage;
        let base = if let Some(dm) = &mut self.dense {
            let idx = (self.acc[l] - old_field * self.weights[c]) as usize;
            let fi = row * dm.p + idx;
            let v = dm.table[fi];
            if v < f64::INFINITY {
                v
            } else {
                // Cold miss: enumerate this lane's co-runners from the
                // columns and walk the roofline model once for the whole
                // batch.
                self.scratch.clear();
                for i in 0..self.n_chunks {
                    if i == c {
                        continue;
                    }
                    let si = i * lanes + l;
                    if self.busy_stage[si] != IDLE {
                        self.scratch
                            .push(ActiveKernel::new(self.chunks[i].pu, self.busy_demand[si]));
                    }
                }
                let v = cost::latency_under(
                    &self.chunks[c].stages[stage],
                    self.model.pus[c],
                    self.model.soc,
                    &self.scratch,
                )
                .as_f64();
                dm.table[fi] = v;
                v
            }
        } else {
            let key = self.busy_key[l];
            let model = &mut self.model;
            let busy_stage = &self.busy_stage;
            let busy_demand = &self.busy_demand;
            let chunks = self.chunks;
            let n = self.n_chunks;
            model.base_keyed(c, stage, key, |scratch| {
                for (i, chunk) in chunks.iter().enumerate().take(n) {
                    if i == c {
                        continue;
                    }
                    let si = i * lanes + l;
                    if busy_stage[si] != IDLE {
                        scratch.push(ActiveKernel::new(chunk.pu, busy_demand[si]));
                    }
                }
            })
        };
        // The scalar engine's `service()` output is `base * noise + sync`;
        // fault multipliers apply to that whole quantity.
        let t = base * nf + self.sync_flat[row];
        let mut dt = t;
        if let Some(spec) = self.specs[l].faults.as_ref() {
            // Straggler multiplier, counted as one fault activation at the
            // task's first stage on that chunk.
            let straggle = spec.straggler_factor(c, task);
            if stage == 0 && straggle != 1.0 {
                self.faults_fired[l] += 1;
            }
            dt = t * spec.slowdown_factor(self.chunks[c].pu, now) * straggle;
            if let Some(StageFaultKind::Timeout { extra_us }) = spec.stage_fault(c, task, stage) {
                dt += extra_us;
                self.faults_fired[l] += 1;
            }
        }
        let mut end = now + dt;
        if let Some(t_loss) = self.loss[s] {
            if end > t_loss {
                // The PU dies mid-service; the stage "completes" at the
                // loss instant as a doomed event and the task drops there.
                end = t_loss;
                self.doomed[s] = true;
            }
        }
        self.busy_stage[s] = stage as u32;
        self.busy_task[s] = task as u32;
        self.busy_demand[s] = self.demand_flat[row];
        if stage == 0 {
            self.busy_since[s] = now;
        }
        self.acc[l] += (stage as u64 + 1 - old_field) * self.weights[c];
        let shift = c as u32 * ServiceModel::STAGE_BITS;
        let mask = (1u64 << ServiceModel::STAGE_BITS) - 1;
        self.busy_key[l] = (self.busy_key[l] & !(mask << shift)) | ((stage as u64 + 1) << shift);
        debug_assert!(self.next_done[s].is_infinite(), "one event per slot");
        self.next_done[s] = end;
        if self.collect_timeline {
            self.timeline[l].push(TimelineSpan {
                chunk: c,
                stage: Some(stage),
                task: task as u64,
                start_us: now,
                end_us: end,
            });
        }
    }

    /// Starts work on idle chunk `c` of lane `l`: admits new tasks at the
    /// head, drains fault-induced drops without advancing virtual time,
    /// and dispatches the first unfaulted arrival.
    fn pump(&mut self, l: usize, c: usize, now: f64) {
        loop {
            if self.busy_stage[self.slot(c, l)] != IDLE {
                return;
            }
            let task = if c == 0 {
                if self.started[l] as usize >= self.total_tasks || self.q_len[self.slot(0, l)] == 0
                {
                    return;
                }
                // A lost head consumes the task stream but keeps its
                // objects: every remaining admission drops immediately.
                if self.lost(0, l, now) {
                    self.entry_time[l * self.total_tasks + self.started[l] as usize] = now;
                    self.started[l] += 1;
                    self.dropped[l] += 1;
                    self.faults_fired[l] += 1;
                    continue;
                }
                self.q_pop(0, l);
                let t = self.started[l] as usize;
                self.started[l] += 1;
                self.entry_time[l * self.total_tasks + t] = now;
                t
            } else {
                match self.q_pop(c, l) {
                    Some(t) => t as usize,
                    None => return,
                }
            };
            if c != 0 && self.lost(c, l, now) {
                self.faults_fired[l] += 1;
                self.drop_and_recycle(l);
                continue;
            }
            let fault = self.specs[l]
                .faults
                .as_ref()
                .and_then(|f| f.stage_fault(c, task, 0));
            if matches!(fault, Some(StageFaultKind::Error)) {
                self.faults_fired[l] += 1;
                self.dropped[l] += 1;
                self.q_push(0, l, PLACEHOLDER);
                if c != 0 {
                    self.recycled[l] = true;
                }
                continue;
            }
            self.start_stage(l, c, task, 0, now);
            return;
        }
    }

    /// Objects recycled by drops re-arm the head outside the normal
    /// completion flow; give it a chance to admit with them.
    fn flush_recycled(&mut self, l: usize, now: f64) {
        while self.recycled[l] {
            self.recycled[l] = false;
            self.pump(l, 0, now);
        }
    }

    /// Processes lane `l`'s next event, popped by the sweep's argmin pass —
    /// one iteration of the scalar engine's event loop, so per-lane event
    /// order (and therefore every per-lane float) is identical to
    /// `simulate`.
    fn step(&mut self, l: usize, now: f64, c: usize) {
        assert!(
            now.is_finite(),
            "pipeline cannot deadlock with buffered queues"
        );
        let s = self.slot(c, l);
        self.next_done[s] = f64::INFINITY;
        debug_assert!(self.busy_stage[s] != IDLE, "event implies busy slot");
        let in_task = self.busy_task[s] as usize;
        let in_stage = self.busy_stage[s] as usize;

        if self.doomed[s] {
            // The PU died mid-service at `now` (its loss instant).
            self.doomed[s] = false;
            self.finish_span(c, l, now);
            self.faults_fired[l] += 1;
            self.drop_and_recycle(l);
            self.pump(l, c, now); // drains the queued input as drops
            self.flush_recycled(l, now);
            return;
        }

        if in_stage + 1 < self.chunks[c].stages.len() {
            let fault = self.specs[l]
                .faults
                .as_ref()
                .and_then(|f| f.stage_fault(c, in_task, in_stage + 1));
            if matches!(fault, Some(StageFaultKind::Error)) {
                self.faults_fired[l] += 1;
                self.finish_span(c, l, now);
                self.drop_and_recycle(l);
                self.pump(l, c, now);
                self.flush_recycled(l, now);
            } else {
                // Next stage of the same chunk; re-sample interference.
                self.start_stage(l, c, in_task, in_stage + 1, now);
            }
            return;
        }

        // Chunk finished its last stage for this task.
        self.finish_span(c, l, now);
        if c + 1 == self.n_chunks {
            self.completions[l].push((self.entry_time[l * self.total_tasks + in_task], now));
            self.completed[l] += 1;
            self.q_push(0, l, PLACEHOLDER);
            if self.tele_counters {
                let depth = self.q_len[self.slot(0, l)] as usize;
                self.counters[s].sample_queue_depth(depth);
            }
            self.pump(l, 0, now);
        } else {
            self.q_push(c + 1, l, in_task as u32);
            if self.tele_counters {
                let depth = self.q_len[self.slot(c + 1, l)] as usize;
                self.counters[s].sample_queue_depth(depth);
            }
            self.pump(l, c + 1, now);
        }
        self.pump(l, c, now);
        self.flush_recycled(l, now);
    }

    /// The round-robin wavefront: each sweep computes every lane's next
    /// event in one chunk-major vectorizable argmin pass over the
    /// `next_done` columns (stepping lane `l` only mutates lane `l`'s
    /// entries, so the precomputed minima of the other lanes stay valid),
    /// then processes one event per unfinished lane.
    fn run(&mut self) {
        let lanes = self.lanes;
        for l in 0..lanes {
            self.pump(l, 0, 0.0);
        }
        let mut finished = vec![false; lanes];
        let mut remaining = lanes;
        let mut best_t = vec![f64::INFINITY; lanes];
        let mut best_c = vec![0u32; lanes];
        while remaining > 0 {
            best_t.copy_from_slice(&self.next_done[..lanes]);
            best_c.fill(0);
            for c in 1..self.n_chunks {
                let row = &self.next_done[c * lanes..(c + 1) * lanes];
                for l in 0..lanes {
                    // Strict `<`: the scalar engine's (time, lowest chunk
                    // index) tie-break.
                    if row[l] < best_t[l] {
                        best_t[l] = row[l];
                        best_c[l] = c as u32;
                    }
                }
            }
            for l in 0..lanes {
                if finished[l] {
                    continue;
                }
                if (self.completed[l] + self.dropped[l]) as usize >= self.total_tasks {
                    finished[l] = true;
                    remaining -= 1;
                    continue;
                }
                self.step(l, best_t[l], best_c[l] as usize);
            }
        }
    }
}

/// Simulates `lanes.len()` runs of `chunks` on `soc` in one
/// structure-of-arrays pass — one lane per [`DesSeedSpec`], each
/// bit-identical to the scalar [`crate::des::simulate`] with that lane's
/// seed and fault spec.
///
/// `cfg` supplies everything except the seed (tasks, warmup, buffers,
/// noise sigma, service cache, timeline/telemetry collection);
/// [`RunConfig::seed`] is ignored in favor of each lane's own. The
/// noiseless service memo is shared across the batch — one lane's cache
/// miss prices every lane's subsequent hit — and the batched layout
/// amortizes the per-run setup and event-loop bookkeeping the scalar
/// engine repays B times, which is where the aggregate speedup comes
/// from.
///
/// # Errors
///
/// Returns [`SocError::EmptySimulation`] if `chunks` or `lanes` is empty,
/// any chunk has no stages, or `cfg.tasks == 0`; [`SocError::MissingPu`]
/// if a chunk names a PU class the device lacks.
pub fn simulate_batch(
    soc: &SocSpec,
    chunks: &[ChunkSpec],
    cfg: &RunConfig,
    lanes: &[DesSeedSpec],
) -> Result<Vec<RunReport>, SocError> {
    if chunks.is_empty()
        || lanes.is_empty()
        || cfg.tasks == 0
        || chunks.iter().any(|c| c.stages.is_empty())
    {
        return Err(SocError::EmptySimulation);
    }
    for chunk in chunks {
        soc.try_pu(chunk.pu)?;
    }

    let n_chunks = chunks.len();
    let n_lanes = lanes.len();
    let slots = n_chunks * n_lanes;
    let total_tasks = (cfg.tasks + cfg.warmup) as usize;
    let buffers = if cfg.buffers == 0 {
        n_chunks + 1
    } else {
        cfg.buffers as usize
    };
    let cap = buffers.next_power_of_two();
    let collect_timeline = cfg.record_timeline || cfg.telemetry.spans;
    let tele_counters = cfg.telemetry.counters;
    let max_stages = chunks.iter().map(|c| c.stages.len()).max().unwrap_or(0);
    let total_stages: usize = chunks.iter().map(|c| c.stages.len()).sum();

    // The dense direct-mapped memo replaces the hashed one whenever the
    // schedule's busy-set radix product fits; otherwise the ServiceModel
    // fallback keeps the scalar engine's exact caching behavior. Both are
    // value-neutral, so the choice cannot change any lane's bits.
    let dense_cfg = if cfg.service_cache {
        DenseMemo::weights(chunks, max_stages)
    } else {
        None
    };
    let (weights, dense) = match dense_cfg {
        Some((w, p)) => (
            w,
            Some(DenseMemo {
                table: vec![f64::INFINITY; n_chunks * max_stages * p],
                p,
            }),
        ),
        None => (vec![0; n_chunks], None),
    };
    let model = ServiceModel::new(soc, chunks, cfg.service_cache && dense.is_none());
    let demand_flat: Vec<f64> = (0..n_chunks)
        .flat_map(|c| {
            (0..max_stages)
                .map(|s| model.demand[c].get(s).copied().unwrap_or(0.0))
                .collect::<Vec<_>>()
        })
        .collect();
    let sync_flat: Vec<f64> = (0..n_chunks)
        .flat_map(|c| {
            (0..max_stages)
                .map(|s| model.sync[c].get(s).copied().unwrap_or(0.0))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut eng = BatchEngine {
        chunks,
        specs: lanes,
        n_chunks,
        lanes: n_lanes,
        total_tasks,
        max_stages,
        cap,
        model,
        dense,
        weights,
        demand_flat,
        sync_flat,
        scratch: Vec::with_capacity(n_chunks.saturating_sub(1)),
        next_done: vec![f64::INFINITY; slots],
        busy_stage: vec![IDLE; slots],
        busy_task: vec![0; slots],
        busy_demand: vec![0.0; slots],
        busy_since: vec![0.0; slots],
        doomed: vec![false; slots],
        loss: {
            let mut v = Vec::with_capacity(slots);
            for chunk in chunks.iter().take(n_chunks) {
                for spec in lanes {
                    v.push(spec.faults.as_ref().and_then(|f| f.loss_at(chunk.pu)));
                }
            }
            v
        },
        busy_spans: (0..slots)
            .map(|_| Vec::with_capacity(total_tasks))
            .collect(),
        q: vec![PLACEHOLDER; slots * cap],
        q_head: vec![0; slots],
        q_len: vec![0; slots],
        counters: if tele_counters {
            vec![DispatcherCounters::new(); slots]
        } else {
            Vec::new()
        },
        acc: vec![0; n_lanes],
        busy_key: vec![0; n_lanes],
        noise: lanes
            .iter()
            .map(|spec| NoiseModel::new(cfg.noise_sigma, spec.seed))
            .collect(),
        noise_buf: vec![0.0; n_lanes * NOISE_BLK],
        // Start exhausted so the first draw triggers a refill.
        noise_pos: vec![NOISE_BLK as u32; n_lanes],
        started: vec![0; n_lanes],
        completed: vec![0; n_lanes],
        dropped: vec![0; n_lanes],
        faults_fired: vec![0; n_lanes],
        recycled: vec![false; n_lanes],
        entry_time: vec![0.0; n_lanes * total_tasks],
        completions: (0..n_lanes)
            .map(|_| Vec::with_capacity(total_tasks))
            .collect(),
        timeline: if collect_timeline {
            (0..n_lanes)
                .map(|_| Vec::with_capacity(total_tasks * total_stages))
                .collect()
        } else {
            (0..n_lanes).map(|_| Vec::new()).collect()
        },
        collect_timeline,
        tele_counters,
    };
    // All task objects begin recycled at the head of every lane.
    for l in 0..n_lanes {
        eng.q_len[l] = buffers as u32;
    }
    eng.run();

    let mut reports = Vec::with_capacity(n_lanes);
    for l in 0..n_lanes {
        debug_assert_eq!(eng.completed[l] + eng.dropped[l], eng.started[l]);
        let spans: Vec<&[(f64, f64)]> = (0..n_chunks)
            .map(|c| eng.busy_spans[c * n_lanes + l].as_slice())
            .collect();
        let stats = steady_stats_from_completions(&eng.completions[l], cfg.warmup as usize, &spans);
        let telemetry = if cfg.telemetry.any() {
            let mut tele = RunTelemetry::new("des");
            if tele_counters {
                tele.dispatchers = (0..n_chunks)
                    .map(|c| eng.counters[c * n_lanes + l].stats(format!("chunk{c}")))
                    .collect();
            }
            if cfg.telemetry.spans {
                let mut rec = SpanRecorder::virtual_time(true);
                for ev in &eng.timeline[l] {
                    rec.record_virtual(
                        ev.chunk as u32,
                        ev.task,
                        ev.stage.map(|s| s as u32),
                        ev.start_us,
                        ev.end_us,
                    );
                }
                tele.spans = rec.into_spans();
            }
            Some(tele)
        } else {
            None
        };
        reports.push(RunReport {
            submitted: u64::from(eng.started[l]),
            completed: u64::from(eng.completed[l]),
            dropped: u64::from(eng.dropped[l]),
            faults_fired: eng.faults_fired[l],
            stats,
            timeline: if cfg.record_timeline {
                std::mem::take(&mut eng.timeline[l])
            } else {
                Vec::new()
            },
            telemetry,
            degraded: None,
        });
    }
    Ok(reports)
}

/// [`simulate_batch`] sharded over up to `max_threads` scoped threads:
/// lanes split into contiguous shards, each shard a full SoA pass, results
/// concatenated in lane order. Lanes are independent, so sharding cannot
/// change any lane's bits — only which lanes share a memo instance, which
/// is value-neutral.
///
/// # Errors
///
/// Same contract as [`simulate_batch`].
pub fn simulate_batch_parallel(
    soc: &SocSpec,
    chunks: &[ChunkSpec],
    cfg: &RunConfig,
    lanes: &[DesSeedSpec],
    max_threads: usize,
) -> Result<Vec<RunReport>, SocError> {
    let workers = max_threads.max(1).min(lanes.len());
    if workers <= 1 {
        return simulate_batch(soc, chunks, cfg, lanes);
    }
    // Contiguous shard bounds, remainder spread over the leading shards.
    let per = lanes.len() / workers;
    let extra = lanes.len() % workers;
    let mut bounds = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = per + usize::from(w < extra);
        bounds.push((start, start + len));
        start += len;
    }
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| scope.spawn(move || simulate_batch(soc, chunks, cfg, &lanes[lo..hi])))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch shard panicked"))
            .collect::<Vec<_>>()
    });
    let mut out = Vec::with_capacity(lanes.len());
    for shard in results {
        out.extend(shard?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate;
    use crate::devices;
    use crate::fault::{PuLoss, StageFault, Straggler};
    use crate::{PuClass, WorkProfile};
    use bt_telemetry::TelemetryConfig;

    fn stage(flops: f64) -> WorkProfile {
        WorkProfile::new(flops, flops / 4.0)
    }

    fn chunks() -> Vec<ChunkSpec> {
        vec![
            ChunkSpec::new(PuClass::BigCpu, vec![stage(1e7), stage(5e6)]),
            ChunkSpec::new(PuClass::MediumCpu, vec![stage(7e6)]),
            ChunkSpec::new(PuClass::Gpu, vec![stage(8e6)]),
        ]
    }

    fn cfg() -> RunConfig {
        RunConfig {
            tasks: 30,
            warmup: 5,
            noise_sigma: 0.05,
            record_timeline: true,
            telemetry: TelemetryConfig::full(),
            ..RunConfig::default()
        }
    }

    fn faulty_spec(seed: u64) -> FaultSpec {
        FaultSpec {
            stragglers: vec![Straggler {
                chunk: 1,
                task: 7,
                factor: 4.0,
            }],
            stage_faults: vec![StageFault {
                chunk: 0,
                task: 9 + (seed % 3) as usize,
                stage: 1,
                kind: StageFaultKind::Error,
            }],
            losses: if seed.is_multiple_of(2) {
                vec![PuLoss {
                    class: PuClass::Gpu,
                    at_us: 4000.0,
                }]
            } else {
                Vec::new()
            },
            ..FaultSpec::default()
        }
    }

    #[test]
    fn lanes_are_bit_identical_to_scalar_runs() {
        let soc = devices::pixel_7a();
        let chunks = chunks();
        let cfg = cfg();
        let lanes: Vec<DesSeedSpec> = (0..7)
            .map(|i| {
                if i % 2 == 0 {
                    DesSeedSpec::new(40 + i)
                } else {
                    DesSeedSpec::with_faults(40 + i, faulty_spec(i))
                }
            })
            .collect();
        let batched = simulate_batch(&soc, &chunks, &cfg, &lanes).unwrap();
        for (lane, report) in lanes.iter().zip(&batched) {
            let scalar_cfg = RunConfig {
                seed: lane.seed,
                ..cfg.clone()
            };
            let scalar = simulate(&soc, &chunks, &scalar_cfg, lane.faults.as_ref()).unwrap();
            assert_eq!(format!("{report:?}"), format!("{scalar:?}"));
        }
    }

    #[test]
    fn sharded_batch_matches_single_pass() {
        let soc = devices::pixel_7a();
        let chunks = chunks();
        let cfg = cfg();
        let lanes: Vec<DesSeedSpec> = (0..9).map(DesSeedSpec::new).collect();
        let one = simulate_batch(&soc, &chunks, &cfg, &lanes).unwrap();
        let sharded = simulate_batch_parallel(&soc, &chunks, &cfg, &lanes, 4).unwrap();
        assert_eq!(one.len(), sharded.len());
        for (a, b) in one.iter().zip(&sharded) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn empty_batch_rejected() {
        let soc = devices::pixel_7a();
        assert!(matches!(
            simulate_batch(&soc, &chunks(), &cfg(), &[]),
            Err(SocError::EmptySimulation)
        ));
    }

    #[test]
    fn cache_off_batch_still_matches_scalar() {
        let soc = devices::pixel_7a();
        let chunks = chunks();
        let cfg = RunConfig {
            service_cache: false,
            ..cfg()
        };
        let lanes = [
            DesSeedSpec::new(3),
            DesSeedSpec::with_faults(4, faulty_spec(4)),
        ];
        let batched = simulate_batch(&soc, &chunks, &cfg, &lanes).unwrap();
        for (lane, report) in lanes.iter().zip(&batched) {
            let scalar_cfg = RunConfig {
                seed: lane.seed,
                ..cfg.clone()
            };
            let scalar = simulate(&soc, &chunks, &scalar_cfg, lane.faults.as_ref()).unwrap();
            assert_eq!(format!("{report:?}"), format!("{scalar:?}"));
        }
    }

    #[test]
    fn wide_pipeline_falls_back_to_hashed_memo() {
        // 9 chunks exceed the packed-key limit; the batch engine must stay
        // bit-identical through the uncached fallback.
        let soc = devices::pixel_7a();
        let chunks: Vec<ChunkSpec> = (0..9)
            .map(|i| {
                ChunkSpec::new(
                    match i % 3 {
                        0 => PuClass::BigCpu,
                        1 => PuClass::MediumCpu,
                        _ => PuClass::Gpu,
                    },
                    vec![stage(1e6 + 1e5 * i as f64)],
                )
            })
            .collect();
        let cfg = RunConfig {
            tasks: 10,
            warmup: 2,
            noise_sigma: 0.05,
            ..RunConfig::default()
        };
        let lanes = [DesSeedSpec::new(1), DesSeedSpec::new(2)];
        let batched = simulate_batch(&soc, &chunks, &cfg, &lanes).unwrap();
        for (lane, report) in lanes.iter().zip(&batched) {
            let scalar_cfg = RunConfig {
                seed: lane.seed,
                ..cfg.clone()
            };
            let scalar = simulate(&soc, &chunks, &scalar_cfg, None).unwrap();
            assert_eq!(format!("{report:?}"), format!("{scalar:?}"));
        }
    }
}
