//! Content hashing for cache keys.
//!
//! The serving layer addresses plans by content: a plan cell is keyed by
//! *what was solved* — the device model, the application, the profiling
//! table — not by names, so two requests agree on a cached plan exactly
//! when a cold solve would have produced the same answer for both.
//!
//! Hashes are computed over the canonical `serde_json` encoding of the
//! value. serde_json serializes struct fields in declaration order and
//! formats `f64`s shortest-round-trip, so the encoding — and therefore the
//! hash — is deterministic across processes and platforms for any value
//! that round-trips. FNV-1a is used rather than `std`'s `DefaultHasher`
//! because the latter's algorithm is explicitly unspecified and may change
//! between Rust releases, which would silently invalidate persisted plan
//! artifacts.

use serde::Serialize;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a 64-bit hash of a byte string. Stable across processes,
/// platforms, and Rust releases.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content hash of any serializable value: FNV-1a 64 over its canonical
/// JSON encoding.
///
/// # Panics
///
/// Panics if the value fails to serialize (only possible for types whose
/// `Serialize` impl can error, e.g. maps with non-string keys).
pub fn json_hash<T: Serialize>(value: &T) -> u64 {
    let encoded = serde_json::to_string(value).expect("value must serialize to JSON");
    fnv1a64(encoded.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn json_hash_is_deterministic_and_discriminating() {
        let a = crate::devices::pixel_7a();
        let b = crate::devices::pixel_7a();
        assert_eq!(json_hash(&a), json_hash(&b));
        assert_ne!(json_hash(&a), json_hash(&crate::devices::oneplus_11()));
    }

    #[test]
    fn spec_content_hash_tracks_spec_changes() {
        let soc = crate::devices::jetson_orin_nano();
        let lp = crate::devices::jetson_orin_nano_lp();
        assert_eq!(soc.content_hash(), soc.clone().content_hash());
        assert_ne!(soc.content_hash(), lp.content_hash());
    }
}
