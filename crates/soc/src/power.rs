//! Per-PU power modeling and pipeline energy accounting.
//!
//! The paper motivates edge processing with *reduced energy consumption*
//! (§1) and characterizes the Jetson's 25 W / 7 W power modes (§4.2); this
//! module makes those figures first-class so schedules can be compared on
//! energy and energy-delay product, not just latency. The model is the
//! standard two-state abstraction: each PU draws `idle_watts` when
//! powered but unoccupied and `busy_watts` while executing a kernel.

use serde::{Deserialize, Serialize};

use crate::run::RunStats;
use crate::{Micros, PerClass, PuClass, SocSpec};

/// Two-state power draw of one PU cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSpec {
    /// Watts drawn while executing.
    pub busy_watts: f64,
    /// Watts drawn while idle but powered.
    pub idle_watts: f64,
}

impl PowerSpec {
    /// Creates a power spec.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or `idle > busy`.
    pub fn new(busy_watts: f64, idle_watts: f64) -> PowerSpec {
        assert!(idle_watts >= 0.0 && busy_watts >= idle_watts);
        PowerSpec {
            busy_watts,
            idle_watts,
        }
    }

    /// Class-typical defaults for edge SoCs (order-of-magnitude figures
    /// consistent with the Jetson's published 7–25 W module budgets).
    pub fn default_for(class: PuClass) -> PowerSpec {
        match class {
            PuClass::BigCpu => PowerSpec::new(3.5, 0.25),
            PuClass::MediumCpu => PowerSpec::new(2.0, 0.18),
            PuClass::LittleCpu => PowerSpec::new(0.8, 0.08),
            PuClass::Gpu => PowerSpec::new(6.0, 0.5),
        }
    }
}

/// Device-level power model: one [`PowerSpec`] per PU class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    specs: PerClass<PowerSpec>,
}

impl PowerModel {
    /// A model with class-typical defaults for every cluster of `soc`.
    pub fn default_for(soc: &SocSpec) -> PowerModel {
        PowerModel {
            specs: soc
                .classes()
                .into_iter()
                .map(|c| (c, PowerSpec::default_for(c)))
                .collect(),
        }
    }

    /// Overrides one class's spec.
    pub fn with_class(mut self, class: PuClass, spec: PowerSpec) -> PowerModel {
        self.specs.set(class, spec);
        self
    }

    /// The spec for `class` (class-typical default if absent).
    pub fn spec(&self, class: PuClass) -> PowerSpec {
        self.specs
            .get(class)
            .copied()
            .unwrap_or_else(|| PowerSpec::default_for(class))
    }
}

/// Energy accounting for one simulated pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total energy over the measured window, in joules.
    pub total_j: f64,
    /// Energy per task, in millijoules.
    pub per_task_mj: f64,
    /// Energy-delay product per task, in millijoule-milliseconds.
    pub edp_mj_ms: f64,
    /// Average device power over the window, in watts.
    pub avg_watts: f64,
}

/// Computes the energy of a simulated run: each chunk's PU is busy for its
/// measured utilization share of the makespan; every *other* cluster of
/// the device idles at its idle power (they stay powered on a UMA SoC).
///
/// `chunk_classes` pairs `report.chunk_utilization` entries with the PU
/// class serving that chunk.
///
/// # Panics
///
/// Panics if `chunk_classes.len()` disagrees with the report's chunk count.
pub fn energy_of_run(
    soc: &SocSpec,
    model: &PowerModel,
    report: &RunStats,
    chunk_classes: &[PuClass],
) -> EnergyReport {
    energy_of_window(
        model,
        report.makespan,
        &report.chunk_utilization,
        report.tasks,
        chunk_classes,
        &soc.classes(),
    )
}

/// Execution-substrate-agnostic form of [`energy_of_run`]: accounts a
/// measured window given its makespan, per-chunk utilization, and task
/// count, without requiring a [`RunStats`] — so wall-clock host runs (or
/// any other measurement source) can be priced by the same model.
///
/// `powered_classes` lists every cluster drawing idle power for the whole
/// window (on a UMA SoC, all of them), whether or not it hosts a chunk.
///
/// # Panics
///
/// Panics if `chunk_classes.len()` disagrees with `chunk_utilization`.
pub fn energy_of_window(
    model: &PowerModel,
    makespan: Micros,
    chunk_utilization: &[f64],
    tasks: u32,
    chunk_classes: &[PuClass],
    powered_classes: &[PuClass],
) -> EnergyReport {
    assert_eq!(
        chunk_classes.len(),
        chunk_utilization.len(),
        "one class per chunk"
    );
    let span_s = makespan.as_secs();
    let mut energy = 0.0;
    // Busy + idle split for clusters hosting chunks.
    let mut hosted: Vec<PuClass> = Vec::new();
    for (&class, &util) in chunk_classes.iter().zip(chunk_utilization) {
        let spec = model.spec(class);
        let busy_s = span_s * util.clamp(0.0, 1.0);
        energy += busy_s * spec.busy_watts + (span_s - busy_s) * spec.idle_watts;
        hosted.push(class);
    }
    // Clusters with no chunk idle for the whole window.
    for &class in powered_classes {
        if !hosted.contains(&class) {
            energy += span_s * model.spec(class).idle_watts;
        }
    }
    let per_task_j = energy / tasks.max(1) as f64;
    let per_task_ms = Micros::new(makespan.as_f64() / tasks.max(1) as f64);
    EnergyReport {
        total_j: energy,
        per_task_mj: per_task_j * 1e3,
        edp_mj_ms: per_task_j * 1e3 * per_task_ms.as_millis(),
        avg_watts: if span_s > 0.0 { energy / span_s } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{simulate, ChunkSpec};
    use crate::run::RunConfig;
    use crate::{devices, WorkProfile};

    fn run(chunks: &[ChunkSpec]) -> (SocSpec, RunStats) {
        let soc = devices::pixel_7a();
        let cfg = RunConfig {
            noise_sigma: 0.0,
            ..RunConfig::default()
        };
        let report = simulate(&soc, chunks, &cfg, None).expect("simulates");
        let stats = report.expect_stats().clone();
        (soc, stats)
    }

    #[test]
    fn busy_pu_costs_more_than_idle() {
        let chunks = [ChunkSpec::new(
            PuClass::BigCpu,
            vec![WorkProfile::new(1e7, 1e6)],
        )];
        let (soc, report) = run(&chunks);
        let model = PowerModel::default_for(&soc);
        let e = energy_of_run(&soc, &model, &report, &[PuClass::BigCpu]);
        // Average power must exceed the all-idle floor and stay below the
        // all-busy ceiling.
        let idle_floor: f64 = soc
            .classes()
            .iter()
            .map(|&c| model.spec(c).idle_watts)
            .sum();
        let busy_ceiling: f64 = soc
            .classes()
            .iter()
            .map(|&c| model.spec(c).busy_watts)
            .sum();
        assert!(e.avg_watts > idle_floor, "{} <= {idle_floor}", e.avg_watts);
        assert!(e.avg_watts < busy_ceiling);
        assert!(e.per_task_mj > 0.0 && e.edp_mj_ms > 0.0);
    }

    #[test]
    fn gpu_heavy_run_draws_more_power_than_little_run() {
        let work = WorkProfile::new(5e7, 5e6);
        let (soc, gpu_report) = run(&[ChunkSpec::new(PuClass::Gpu, vec![work.clone()])]);
        let (_, little_report) = run(&[ChunkSpec::new(PuClass::LittleCpu, vec![work])]);
        let model = PowerModel::default_for(&soc);
        let gpu = energy_of_run(&soc, &model, &gpu_report, &[PuClass::Gpu]);
        let little = energy_of_run(&soc, &model, &little_report, &[PuClass::LittleCpu]);
        assert!(gpu.avg_watts > little.avg_watts);
    }

    #[test]
    fn overrides_take_effect() {
        let soc = devices::jetson_orin_nano();
        let model =
            PowerModel::default_for(&soc).with_class(PuClass::Gpu, PowerSpec::new(15.0, 2.0));
        assert_eq!(model.spec(PuClass::Gpu).busy_watts, 15.0);
        assert_eq!(
            model.spec(PuClass::BigCpu),
            PowerSpec::default_for(PuClass::BigCpu)
        );
    }

    #[test]
    #[should_panic(expected = "one class per chunk")]
    fn chunk_class_mismatch_panics() {
        let chunks = [ChunkSpec::new(
            PuClass::BigCpu,
            vec![WorkProfile::new(1e6, 1e5)],
        )];
        let (soc, report) = run(&chunks);
        let model = PowerModel::default_for(&soc);
        let _ = energy_of_run(&soc, &model, &report, &[]);
    }

    #[test]
    #[should_panic]
    fn idle_above_busy_rejected() {
        let _ = PowerSpec::new(1.0, 2.0);
    }
}
