//! Property tests of the discrete-event pipeline simulator: conservation,
//! determinism, and queueing-theoretic bounds over randomized schedules.

use bt_soc::des::{simulate, ChunkSpec};
use bt_soc::{
    cost, devices, InterferenceModel, PuClass, PuSpec, RunConfig, RunStats, SocBuilder, SocSpec,
    WorkProfile,
};
use proptest::prelude::*;

/// A device with no interference at all, so queueing bounds are exact.
fn clean_soc() -> bt_soc::SocSpec {
    SocBuilder::new("clean")
        .pu(PuSpec::new(PuClass::BigCpu, "big", 4, 2.0))
        .pu(PuSpec::new(PuClass::MediumCpu, "med", 4, 1.5))
        .pu(PuSpec::new(PuClass::Gpu, "gpu", 8, 1.0))
        .dram_bw_gbs(1e9) // effectively unlimited
        .interference(InterferenceModel::none())
        .build()
        .expect("valid device")
}

fn chunk_strategy() -> impl Strategy<Value = Vec<ChunkSpec>> {
    let classes = [PuClass::BigCpu, PuClass::MediumCpu, PuClass::Gpu];
    proptest::collection::vec(
        (0usize..3, proptest::collection::vec(1.0e5f64..5.0e7, 1..4)),
        1..=3,
    )
    .prop_map(move |raw| {
        // Distinct classes per chunk (use index order).
        raw.into_iter()
            .enumerate()
            .map(|(i, (_, flops))| {
                ChunkSpec::new(
                    classes[i],
                    flops
                        .into_iter()
                        .map(|f| WorkProfile::new(f, f / 4.0))
                        .collect(),
                )
            })
            .collect()
    })
}

fn noiseless(tasks: u32) -> RunConfig {
    RunConfig {
        tasks,
        warmup: 3,
        noise_sigma: 0.0,
        ..RunConfig::default()
    }
}

/// Clean-run stats; fault-free runs always complete everything.
fn stats(soc: &SocSpec, chunks: &[ChunkSpec], cfg: &RunConfig) -> RunStats {
    let report = simulate(soc, chunks, cfg, None).expect("simulates");
    assert_eq!(report.completed, report.submitted, "clean run conserves");
    report.expect_stats().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn deterministic_and_positive(chunks in chunk_strategy()) {
        let soc = clean_soc();
        let a = stats(&soc, &chunks, &noiseless(20));
        let b = stats(&soc, &chunks, &noiseless(20));
        prop_assert_eq!(a.makespan.as_f64(), b.makespan.as_f64());
        prop_assert!(a.time_per_task.as_f64() > 0.0);
        prop_assert!(a.mean_task_latency.as_f64() > 0.0);
        prop_assert_eq!(a.chunk_utilization.len(), chunks.len());
    }

    #[test]
    fn bottleneck_lower_bound_holds(chunks in chunk_strategy()) {
        // Without interference, steady-state time-per-task can't beat the
        // slowest chunk's isolated service time.
        let soc = clean_soc();
        let report = stats(&soc, &chunks, &noiseless(40));
        let bottleneck: f64 = chunks
            .iter()
            .map(|c| {
                let pu = soc.pu(c.pu).expect("present");
                c.stages
                    .iter()
                    .map(|w| cost::latency(w, pu, &soc, &cost::LoadContext::isolated()).as_f64())
                    .sum::<f64>()
                    + pu.sync_overhead_us()
            })
            .fold(0.0, f64::max);
        prop_assert!(
            report.time_per_task.as_f64() >= bottleneck * 0.99,
            "{} < bottleneck {}",
            report.time_per_task.as_f64(),
            bottleneck
        );
        // And with ample buffering it approaches it (within 30%).
        prop_assert!(
            report.time_per_task.as_f64() <= bottleneck * 1.3 + 1.0,
            "{} >> bottleneck {}",
            report.time_per_task.as_f64(),
            bottleneck
        );
    }

    #[test]
    fn residence_time_at_least_service_sum(chunks in chunk_strategy()) {
        // A task's mean residence time is at least the sum of all its
        // isolated service times (queueing only adds).
        let soc = clean_soc();
        let report = stats(&soc, &chunks, &noiseless(20));
        let service_sum: f64 = chunks
            .iter()
            .map(|c| {
                let pu = soc.pu(c.pu).expect("present");
                c.stages
                    .iter()
                    .map(|w| cost::latency(w, pu, &soc, &cost::LoadContext::isolated()).as_f64())
                    .sum::<f64>()
            })
            .sum();
        prop_assert!(report.mean_task_latency.as_f64() >= service_sum * 0.99);
    }

    #[test]
    fn more_buffers_never_hurt_much(chunks in chunk_strategy()) {
        let soc = clean_soc();
        let shallow = stats(
            &soc,
            &chunks,
            &RunConfig { buffers: 1, ..noiseless(30) },
        );
        let deep = stats(
            &soc,
            &chunks,
            &RunConfig { buffers: 8, ..noiseless(30) },
        );
        prop_assert!(
            deep.time_per_task.as_f64() <= shallow.time_per_task.as_f64() * 1.01,
            "deep {} vs shallow {}",
            deep.time_per_task.as_f64(),
            shallow.time_per_task.as_f64()
        );
    }

    #[test]
    fn utilization_bounded_and_bottleneck_is_argmax(chunks in chunk_strategy()) {
        let soc = clean_soc();
        let report = stats(&soc, &chunks, &noiseless(30));
        for &u in &report.chunk_utilization {
            prop_assert!((0.0..=1.02).contains(&u), "utilization {u}");
        }
        let max = report
            .chunk_utilization
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        prop_assert!(
            (report.chunk_utilization[report.bottleneck_chunk] - max).abs() < 1e-9
        );
    }
}

#[test]
fn real_devices_simulate_every_class_combination() {
    // Smoke over every device: a two-chunk schedule on each pair of
    // present classes.
    let work = WorkProfile::new(1e7, 2e6);
    for soc in devices::all() {
        let classes = soc.classes();
        for &a in &classes {
            for &b in &classes {
                if a == b {
                    continue;
                }
                let chunks = [
                    ChunkSpec::new(a, vec![work.clone()]),
                    ChunkSpec::new(b, vec![work.clone()]),
                ];
                let r = stats(&soc, &chunks, &noiseless(10));
                assert!(r.time_per_task.as_f64() > 0.0, "{} {a}/{b}", soc.name());
            }
        }
    }
}
