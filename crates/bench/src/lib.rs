//! # bt-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§5), each
//! regenerating the corresponding result from the reproduction's substrate
//! and writing a JSON artefact under `results/`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_stage_heterogeneity` | Fig. 1 — stage × PU latencies on the Pixel |
//! | `motivation_isolated_error` | §1 — isolated-model misprediction |
//! | `table3_baselines` | Table 3 — homogeneous baselines per device/app |
//! | `fig4_speedups` | Fig. 4 — BetterTogether speedups + geomeans |
//! | `fig5_pred_vs_measured` | Fig. 5 — predicted vs. measured scatter, 3 models |
//! | `fig6_correlation` | Fig. 6 — correlation heatmaps |
//! | `table4_autotune` | Table 4 — top-10 measured/predicted, autotuning gain |
//! | `fig7_interference` | Fig. 7 — interference-to-isolated ratios per PU |
//! | `solver_perf` | §3.3 — solver runtime and schedule tiers |
//! | `energy_efficiency` | extension — energy/EDP vs baselines |
//! | `ablation_sweeps` | extension — θ / 𝒦 / interference / buffering ablations |
//! | `dynamic_vs_static` | extension — vs a StarPU-style dynamic runtime |
//! | `timeline` | extension — ASCII Gantt of pipelined execution |
//! | `input_scaling` | extension — schedule sensitivity to input scale |
//! | `bench_mt` | extension — multi-tenant co-run vs naive time-slicing |
//! | `calibrate` | (tool) full calibration dump |
//!
//! Criterion benches (`cargo bench`) additionally cover kernel throughput,
//! the SPSC queue hot path, solver scaling, and simulator throughput.

pub mod mt;

use std::fs;
use std::path::PathBuf;

use bt_kernels::{apps, AppModel};
use bt_soc::{devices, SocSpec};
use serde::Serialize;

/// The paper's three workloads at paper-scale configuration, in evaluation
/// order: AlexNet-dense, AlexNet-sparse, Octree.
pub fn paper_apps() -> Vec<AppModel> {
    vec![
        apps::alexnet_dense_app(apps::AlexNetConfig::default()).model(),
        apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model(),
        apps::octree_app(apps::OctreeConfig::default()).model(),
    ]
}

/// Short labels matching the paper's figure axes (CIFAR-D, CIFAR-S, Tree).
pub fn paper_app_labels() -> [&'static str; 3] {
    ["CIFAR-D", "CIFAR-S", "Tree"]
}

/// The fork/join perception workload — the fourth app, kept out of
/// [`paper_apps`] so the paper's chain-only figures keep their three-app
/// shape. Benchmarks exercising the DAG engine pull it from here.
pub fn branching_app() -> AppModel {
    apps::perception_app(apps::PerceptionConfig::default()).model()
}

/// Short label for [`branching_app`], matching the paper-label style.
pub fn branching_app_label() -> &'static str {
    "Percep"
}

/// The paper's four evaluation platforms, in Table 2 order.
pub fn paper_devices() -> Vec<SocSpec> {
    devices::all()
}

/// Writes an experiment artefact as pretty JSON under `results/`.
///
/// # Panics
///
/// Panics if the artefact cannot be serialized or written (experiment
/// binaries treat that as fatal).
pub fn write_result<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artefact");
    fs::write(&path, json).expect("write artefact");
    println!("\n[artefact written to results/{name}.json]");
}

/// Writes a performance-trajectory artefact as pretty JSON at the
/// **repository root** (next to `Cargo.toml`), not under `results/`.
///
/// Root placement is deliberate: these artefacts (e.g. `BENCH_eval.json`)
/// are per-commit performance records that CI uploads and reviewers diff
/// across PRs, while `results/` holds regenerable paper figures.
///
/// # Panics
///
/// Panics if the artefact cannot be serialized or written.
pub fn write_root_result<T: Serialize>(name: &str, value: &T) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artefact");
    fs::write(&path, json).expect("write artefact");
    println!("\n[artefact written to {name}.json]");
}

/// Renders one row of an aligned text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sets_have_expected_sizes() {
        assert_eq!(paper_apps().len(), 3);
        assert_eq!(paper_devices().len(), 4);
        assert_eq!(paper_apps()[0].stage_count(), 9);
        assert_eq!(paper_apps()[2].stage_count(), 7);
    }

    #[test]
    fn branching_app_really_branches() {
        let app = branching_app();
        assert!(!app.task_graph().is_chain());
        assert_eq!(branching_app_label(), "Percep");
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a   bb");
    }

    #[test]
    fn gantt_renders_rows_and_scale() {
        use bt_soc::TimelineSpan;
        let events = vec![
            TimelineSpan {
                chunk: 0,
                stage: Some(0),
                task: 0,
                start_us: 0.0,
                end_us: 500.0,
            },
            TimelineSpan {
                chunk: 1,
                stage: Some(0),
                task: 0,
                start_us: 500.0,
                end_us: 1000.0,
            },
            TimelineSpan {
                chunk: 0,
                stage: Some(0),
                task: 1,
                start_us: 500.0,
                end_us: 1000.0,
            },
        ];
        let labels = vec!["cpu".to_string(), "gpu".to_string()];
        let chart = render_gantt(&events, &labels, 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3, "two rows + axis");
        assert!(lines[0].contains('0') && lines[0].contains('1'));
        assert!(lines[1].starts_with("gpu |"));
        assert!(lines[1].contains('·'), "gpu row has idle time");
        assert!(lines[2].contains("1.0 ms"));
    }

    #[test]
    fn gantt_empty_timeline() {
        let spans: [GanttSpan; 0] = [];
        assert_eq!(
            render_gantt(&spans, &["x".into()], 20),
            "(empty timeline)\n"
        );
    }
}

/// One (predicted, measured) pair for a candidate schedule.
#[derive(Debug, Clone, Serialize)]
pub struct PredMeasured {
    /// The schedule in compact letter form.
    pub schedule: String,
    /// Model-predicted latency in µs (`T_max` under the chosen table).
    pub predicted_us: f64,
    /// Simulator-measured steady-state latency in µs.
    pub measured_us: f64,
}

/// Produces the top-`k` candidates of one performance-modeling approach and
/// measures each in the simulator — the data behind Figs. 5 and 6.
///
/// `mode` selects the profiling table (interference-aware vs. isolated);
/// `utilization_filter` enables BT's level-1 filter. The three approaches
/// of Fig. 5 are `(InterferenceHeavy, true)`, `(InterferenceHeavy, false)`,
/// and `(Isolated, false)`.
pub fn predicted_vs_measured(
    soc: &SocSpec,
    app: &AppModel,
    mode: bt_profiler::ProfileMode,
    utilization_filter: bool,
    k: usize,
) -> Vec<PredMeasured> {
    use bt_core::OptimizerConfig;
    use bt_pipeline::simulate_schedule;
    use bt_profiler::{profile, ProfilerConfig};
    use bt_soc::RunConfig;

    let table = profile(soc, app, mode, &ProfilerConfig::default());
    let cfg = OptimizerConfig {
        candidates: k,
        ..OptimizerConfig::with_threshold(if utilization_filter { 0.45 } else { 0.0 })
    };
    let candidates = bt_core::optimize(soc, &table, &cfg).expect("candidates exist");
    candidates
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let run = RunConfig {
                seed: i as u64,
                ..RunConfig::default()
            };
            let measured = simulate_schedule(soc, app, &c.schedule, &run, None)
                .expect("candidate simulates")
                .expect_stats()
                .time_per_task;
            PredMeasured {
                schedule: c.schedule.to_string(),
                predicted_us: c.predicted.as_f64(),
                measured_us: measured.as_f64(),
            }
        })
        .collect()
}

pub use bt_soc::gantt::{render_gantt, GanttSpan};
