//! **Extension experiment**: energy per task and energy-delay product of
//! BetterTogether pipelines vs. homogeneous baselines.
//!
//! The paper motivates edge processing with reduced energy consumption
//! (§1) and evaluates the Jetson's 7 W low-power mode; this experiment
//! quantifies the energy story for the schedules the framework produces:
//! heterogeneous pipelines draw more instantaneous power (more silicon
//! busy) but finish tasks enough faster to win on energy-delay product —
//! and usually on plain energy per task as well.

use bt_core::energy::{measure_baseline_energy, measure_energy};
use bt_core::{BetterTogether, SimBackend};
use bt_soc::power::PowerModel;
use bt_soc::PuClass;
use serde::Serialize;

#[derive(Serialize)]
struct EnergyCell {
    device: String,
    app: String,
    schedule: String,
    bt_mj_per_task: f64,
    cpu_mj_per_task: f64,
    gpu_mj_per_task: f64,
    bt_edp: f64,
    best_baseline_edp: f64,
    edp_improvement: f64,
}

fn main() {
    let apps = bt_bench::paper_apps();
    let labels = bt_bench::paper_app_labels();

    println!("Energy efficiency — mJ/task and EDP (mJ·ms), pipeline vs baselines\n");
    println!(
        "{:>22} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "device", "app", "BT mJ", "CPU mJ", "GPU mJ", "EDP gain"
    );

    let mut cells = Vec::new();
    for soc in bt_bench::paper_devices() {
        let model = PowerModel::default_for(&soc);
        for (ai, app) in apps.iter().enumerate() {
            let d = BetterTogether::new(soc.clone(), app.clone())
                .run()
                .expect("framework runs");
            let backend = SimBackend::new(soc.clone(), app.clone());
            let best = d.best_schedule().expect("autotuned");
            let bt = measure_energy(&backend, best, &model).expect("energy");
            let cpu = measure_baseline_energy(&backend, PuClass::BigCpu, &model).expect("energy");
            let gpu = measure_baseline_energy(&backend, PuClass::Gpu, &model).expect("energy");
            let best_edp = cpu.edp_mj_ms.min(gpu.edp_mj_ms);
            let gain = best_edp / bt.edp_mj_ms;
            println!(
                "{:>22} {:>9} {:>10.2} {:>10.2} {:>10.2} {:>11.2}x",
                soc.name(),
                labels[ai],
                bt.per_task_mj,
                cpu.per_task_mj,
                gpu.per_task_mj,
                gain
            );
            cells.push(EnergyCell {
                device: soc.name().to_string(),
                app: labels[ai].to_string(),
                schedule: best.to_string(),
                bt_mj_per_task: bt.per_task_mj,
                cpu_mj_per_task: cpu.per_task_mj,
                gpu_mj_per_task: gpu.per_task_mj,
                bt_edp: bt.edp_mj_ms,
                best_baseline_edp: best_edp,
                edp_improvement: gain,
            });
        }
    }

    let wins = cells.iter().filter(|c| c.edp_improvement > 1.0).count();
    println!(
        "\nPipelines win on EDP in {wins}/{} configurations.",
        cells.len()
    );
    bt_bench::write_result("energy_efficiency", &cells);
}
