//! **§3.3 solver claims**: each solver invocation completes in < 50 ms for
//! the paper's case study (N = 9 stages, M = 4 PU classes), and top-ranked
//! schedules cluster into performance tiers.
//!
//! This binary times both optimizer engines (exact enumeration and the
//! DPLL/SAT encoding) on the real Pixel/AlexNet problem, sweeps the SAT
//! engine across stage counts, and reports the tier structure of the
//! candidate predictions.

use std::time::Instant;

use bt_core::{build_problem, optimize, OptimizerConfig, SolverEngine};
use bt_kernels::apps;
use bt_profiler::{profile, ProfileMode, ProfilerConfig};
use bt_soc::devices;
use bt_solver::ScheduleProblem;
use serde::Serialize;

#[derive(Serialize)]
struct SolverPerf {
    exact_ms: f64,
    sat_single_solve_ms: f64,
    sat_20_candidates_ms: f64,
    meets_paper_50ms_claim: bool,
    scaling: Vec<(usize, f64)>,
    tiers: Vec<(f64, usize)>,
}

fn main() {
    let soc = devices::pixel_7a();
    let app = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
    let table = profile(
        &soc,
        &app,
        ProfileMode::InterferenceHeavy,
        &ProfilerConfig::default(),
    );
    println!("§3.3 — solver performance on the paper's case study (N=9, M=4)\n");

    // Exact engine: full candidate generation.
    let t0 = Instant::now();
    let exact = optimize(&soc, &table, &OptimizerConfig::default()).expect("candidates");
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("exact enumeration, 20 candidates: {exact_ms:.2} ms");

    // SAT engine: single optimal solve, then the full candidate loop.
    let problem = build_problem(&soc, &table).expect("valid problem");
    let t0 = Instant::now();
    let _ = problem.min_latency(&[]).expect("feasible");
    let sat_single = t0.elapsed().as_secs_f64() * 1e3;
    println!("SAT single min-latency solve:    {sat_single:.2} ms (paper: <50 ms per invocation)");

    let t0 = Instant::now();
    let _sat = optimize(
        &soc,
        &table,
        &OptimizerConfig {
            engine: SolverEngine::Sat,
            ..OptimizerConfig::default()
        },
    )
    .expect("candidates");
    let sat_20 = t0.elapsed().as_secs_f64() * 1e3;
    println!("SAT 20-candidate generation:     {sat_20:.2} ms");

    // Scaling sweep in N (synthetic tables, M = 4).
    println!("\nSAT min-latency scaling (synthetic, M=4):");
    let mut scaling = Vec::new();
    for n in [4usize, 6, 8, 9, 10, 12, 14] {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..4)
                    .map(|c| 100.0 + 137.0 * ((i * 7 + c * 13) % 23) as f64)
                    .collect()
            })
            .collect();
        let p = ScheduleProblem::new(rows).expect("valid");
        let t0 = Instant::now();
        let _ = p.min_latency(&[]).expect("feasible");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("  N = {n:>2}: {ms:>8.2} ms");
        scaling.push((n, ms));
    }

    // Tier structure of the real candidates (±6% clustering, §3.3).
    let mut tiers: Vec<(f64, usize)> = Vec::new();
    for c in &exact {
        let p = c.predicted.as_f64();
        match tiers.last_mut() {
            Some((anchor, count)) if (p - *anchor).abs() / *anchor <= 0.06 => *count += 1,
            _ => tiers.push((p, 1)),
        }
    }
    println!("\nPerformance tiers among the top-20 predictions (anchor µs × members):");
    for (anchor, members) in &tiers {
        println!("  {:>10.1} µs × {members}", anchor);
    }

    let meets = sat_single < 50.0;
    println!(
        "\nPaper's <50 ms-per-invocation claim: {}",
        if meets { "met" } else { "NOT met" }
    );

    bt_bench::write_result(
        "solver_perf",
        &SolverPerf {
            exact_ms,
            sat_single_solve_ms: sat_single,
            sat_20_candidates_ms: sat_20,
            meets_paper_50ms_claim: meets,
            scaling,
            tiers,
        },
    );
}
