//! **Figure 4**: speedup of BetterTogether over the best homogeneous
//! baseline for every (application, device) pair, with per-device and
//! overall geometric means.
//!
//! Shape targets from the paper: the phones see the largest gains (Pixel
//! geomean 5.10×, OnePlus 3.55×) with the maximum on Octree/Pixel (8.40×);
//! the Jetson configurations see the smallest (1.09× / 1.15×) because the
//! homogeneous CPU complex offers only two PU classes.

use bt_core::{metrics, BetterTogether};
use serde::Serialize;

#[derive(Serialize)]
struct SpeedupCell {
    device: String,
    app: String,
    best_schedule: String,
    bt_ms: f64,
    baseline_cpu_ms: f64,
    baseline_gpu_ms: f64,
    speedup_vs_best: f64,
    speedup_vs_cpu: f64,
    speedup_vs_gpu: f64,
}

#[derive(Serialize)]
struct Fig4 {
    cells: Vec<SpeedupCell>,
    per_device_geomean: Vec<(String, f64)>,
    overall_geomean: f64,
    overall_geomean_vs_cpu: f64,
    max_speedup: f64,
    max_speedup_at: String,
}

fn main() {
    let apps = bt_bench::paper_apps();
    let labels = bt_bench::paper_app_labels();

    println!("Figure 4 — BetterTogether speedup over the best homogeneous baseline\n");
    println!(
        "{:>22} {:>9} {:>12} {:>9} {:>9} {:>8}  schedule",
        "device", "app", "baseline(ms)", "BT(ms)", "speedup", "vs-cpu"
    );

    let mut cells = Vec::new();
    let mut per_device_geomean = Vec::new();
    for soc in bt_bench::paper_devices() {
        let mut device_speedups = Vec::new();
        for (ai, app) in apps.iter().enumerate() {
            let d = BetterTogether::new(soc.clone(), app.clone())
                .run()
                .expect("framework runs");
            let cell = SpeedupCell {
                device: soc.name().to_string(),
                app: labels[ai].to_string(),
                best_schedule: d.best_schedule().expect("autotuned").to_string(),
                bt_ms: d.best_latency().expect("measured").as_millis(),
                baseline_cpu_ms: d.baselines.cpu().expect("measured").as_millis(),
                baseline_gpu_ms: d.baselines.gpu().expect("measured").as_millis(),
                speedup_vs_best: d.speedup_over_best_baseline().expect("measured"),
                speedup_vs_cpu: d.speedup_over_cpu().expect("measured"),
                speedup_vs_gpu: d.speedup_over_gpu().expect("measured"),
            };
            println!(
                "{:>22} {:>9} {:>12.2} {:>9.2} {:>8.2}x {:>7.2}x  {}",
                cell.device,
                cell.app,
                cell.baseline_cpu_ms.min(cell.baseline_gpu_ms),
                cell.bt_ms,
                cell.speedup_vs_best,
                cell.speedup_vs_cpu,
                cell.best_schedule
            );
            device_speedups.push(cell.speedup_vs_best);
            cells.push(cell);
        }
        let g = metrics::geomean(&device_speedups).expect("positive speedups");
        per_device_geomean.push((soc.name().to_string(), g));
    }

    let all: Vec<f64> = cells.iter().map(|c| c.speedup_vs_best).collect();
    let vs_cpu: Vec<f64> = cells.iter().map(|c| c.speedup_vs_cpu).collect();
    let overall = metrics::geomean(&all).expect("positive");
    let overall_cpu = metrics::geomean(&vs_cpu).expect("positive");
    let (max_i, max) = all
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty");

    println!("\nPer-device geomeans (paper: Pixel 5.10, OnePlus 3.55, Jetson 1.09, LP 1.15):");
    for (name, g) in &per_device_geomean {
        println!("  {name:>22}: {g:.2}x");
    }
    println!(
        "\nOverall geomean: {overall:.2}x (paper: 2.17–2.72x)   vs CPU-only: {overall_cpu:.2}x (paper: 11.23x)"
    );
    println!(
        "Max speedup: {max:.2}x on {}/{} (paper: 8.40x on Octree/Pixel)",
        cells[max_i].device, cells[max_i].app
    );

    bt_bench::write_result(
        "fig4_speedups",
        &Fig4 {
            max_speedup: *max,
            max_speedup_at: format!("{}/{}", cells[max_i].device, cells[max_i].app),
            cells,
            per_device_geomean,
            overall_geomean: overall,
            overall_geomean_vs_cpu: overall_cpu,
        },
    );
}
