//! **Figure 7**: average ratio of interference-heavy to isolated execution
//! time for every PU on every device, averaged across the three
//! applications.
//!
//! Paper's measurements this model is calibrated against: Pixel — little
//! 1.39×, medium 1.20×, big 1.40×, GPU 0.86×; OnePlus — big 1.38×, medium
//! 1.00×, little 0.63× (firmware boost!), GPU 0.64×; Jetson — CPU 1.43×,
//! GPU 1.19×; Jetson LP — CPU 1.29×, GPU 1.74×. This experiment validates
//! that the *end-to-end* profiler recovers those ratios from the model
//! (DVFS multipliers compose with dynamic DRAM contention, so agreement is
//! not automatic).

use bt_profiler::{profile, ProfileMode, ProfilerConfig};
use bt_soc::PuClass;
use serde::Serialize;

/// Paper's Fig. 7 ratios: (device index, class) → ratio.
fn paper_ratio(device: usize, class: PuClass) -> Option<f64> {
    use PuClass::*;
    let table: [&[(PuClass, f64)]; 4] = [
        &[
            (BigCpu, 1.40),
            (MediumCpu, 1.20),
            (LittleCpu, 1.39),
            (Gpu, 0.86),
        ],
        &[
            (BigCpu, 1.38),
            (MediumCpu, 1.00),
            (LittleCpu, 0.63),
            (Gpu, 0.64),
        ],
        &[(BigCpu, 1.43), (Gpu, 1.19)],
        &[(BigCpu, 1.29), (Gpu, 1.74)],
    ];
    table[device]
        .iter()
        .find(|(c, _)| *c == class)
        .map(|&(_, r)| r)
}

#[derive(Serialize)]
struct Fig7Cell {
    device: String,
    class: String,
    ratio: f64,
    paper_ratio: f64,
    direction_matches: bool,
}

fn main() {
    let cfg = ProfilerConfig {
        noise_sigma: 0.0,
        ..ProfilerConfig::default()
    };
    let apps = bt_bench::paper_apps();

    println!("Figure 7 — interference-heavy / isolated latency ratios (avg over 3 apps)\n");
    println!(
        "{:>22} {:>8} {:>9} {:>9} {:>10}",
        "device", "PU", "ours", "paper", "direction"
    );

    let mut cells = Vec::new();
    let mut directions_ok = 0;
    let mut total = 0;
    for (di, soc) in bt_bench::paper_devices().iter().enumerate() {
        for (ci, &class) in soc.classes().iter().enumerate() {
            // Average over apps and stages, via the profiler's ratio API.
            let mut ratios = Vec::new();
            for app in &apps {
                let iso = profile(soc, app, ProfileMode::Isolated, &cfg);
                let heavy = profile(soc, app, ProfileMode::InterferenceHeavy, &cfg);
                let matrix = heavy.ratio_over(&iso).expect("same table shape");
                ratios.extend(matrix.iter().map(|row| row[ci]));
            }
            let ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
            let paper = paper_ratio(di, class).expect("class present in Fig 7");
            // Direction: slowdown (>1.05), speedup (<0.95), or neutral.
            let dir = |r: f64| {
                if r > 1.05 {
                    ">1"
                } else if r < 0.95 {
                    "<1"
                } else {
                    "~1"
                }
            };
            let matches = dir(ratio) == dir(paper);
            directions_ok += usize::from(matches);
            total += 1;
            println!(
                "{:>22} {:>8} {:>9.3} {:>9.2} {:>10}",
                soc.name(),
                class.label(),
                ratio,
                paper,
                if matches { "match" } else { "MISMATCH" }
            );
            cells.push(Fig7Cell {
                device: soc.name().to_string(),
                class: class.label().to_string(),
                ratio,
                paper_ratio: paper,
                direction_matches: matches,
            });
        }
    }
    println!("\nDirection agreement: {directions_ok}/{total} PU entries");
    bt_bench::write_result("fig7_interference", &cells);
}
