//! **Figure 5**: predicted vs. measured execution times for the top-20
//! schedules of AlexNet-sparse on the Google Pixel 7a, under three
//! performance-modeling approaches:
//!
//! (a) BetterTogether — interference-aware table + utilization filter;
//! (b) latency-only — interference-aware table, no filter;
//! (c) isolated table + latency-only — the prior-work approach.
//!
//! The paper's result: (a) tracks the measured times closely; (b) and
//! especially (c) show growing discrepancies.

use bt_core::metrics::pearson;
use bt_kernels::apps;
use bt_profiler::ProfileMode;
use bt_soc::devices;
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Panel {
    label: String,
    mode: String,
    utilization_filter: bool,
    pairs: Vec<bt_bench::PredMeasured>,
    correlation: f64,
    mean_abs_rel_error: f64,
}

fn panel(
    label: &str,
    soc: &bt_soc::SocSpec,
    app: &bt_kernels::AppModel,
    mode: ProfileMode,
    filter: bool,
) -> Fig5Panel {
    let pairs = bt_bench::predicted_vs_measured(soc, app, mode, filter, 20);
    let predicted: Vec<f64> = pairs.iter().map(|p| p.predicted_us).collect();
    let measured: Vec<f64> = pairs.iter().map(|p| p.measured_us).collect();
    let correlation = pearson(&predicted, &measured).unwrap_or(0.0);
    let mean_abs_rel_error = pairs
        .iter()
        .map(|p| ((p.predicted_us - p.measured_us) / p.measured_us).abs())
        .sum::<f64>()
        / pairs.len() as f64;

    println!("--- ({label}) mode={} filter={filter} ---", mode.label());
    println!(
        "{:>11} {:>12} {:>12} {:>8}",
        "schedule", "predicted", "measured", "err"
    );
    for p in &pairs {
        println!(
            "{:>11} {:>10.2}ms {:>10.2}ms {:>7.1}%",
            p.schedule,
            p.predicted_us / 1e3,
            p.measured_us / 1e3,
            100.0 * (p.predicted_us - p.measured_us) / p.measured_us
        );
    }
    println!(
        "correlation = {correlation:.4}, mean |rel err| = {:.1}%\n",
        100.0 * mean_abs_rel_error
    );
    Fig5Panel {
        label: label.into(),
        mode: mode.label().into(),
        utilization_filter: filter,
        pairs,
        correlation,
        mean_abs_rel_error,
    }
}

fn main() {
    let soc = devices::pixel_7a();
    let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
    println!(
        "Figure 5 — predicted vs measured, AlexNet-sparse on {} (top 20 schedules)\n",
        soc.name()
    );

    let a = panel(
        "a: BetterTogether",
        &soc,
        &app,
        ProfileMode::InterferenceHeavy,
        true,
    );
    let b = panel(
        "b: latency-only",
        &soc,
        &app,
        ProfileMode::InterferenceHeavy,
        false,
    );
    let c = panel(
        "c: isolated+latency-only",
        &soc,
        &app,
        ProfileMode::Isolated,
        false,
    );

    println!("Summary (paper: (a) closest, then (b), then (c)):");
    println!(
        "  (a) r = {:.3}, err = {:.1}%",
        a.correlation,
        100.0 * a.mean_abs_rel_error
    );
    println!(
        "  (b) r = {:.3}, err = {:.1}%",
        b.correlation,
        100.0 * b.mean_abs_rel_error
    );
    println!(
        "  (c) r = {:.3}, err = {:.1}%",
        c.correlation,
        100.0 * c.mean_abs_rel_error
    );

    bt_bench::write_result("fig5_pred_vs_measured", &vec![a, b, c]);
}
